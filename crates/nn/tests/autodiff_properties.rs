//! Property tests for the autodiff engine: analytic gradients must match
//! central finite differences for randomly shaped networks and inputs, and
//! tensor algebra must satisfy its identities.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vaesa_nn::{finite_diff_check, Activation, Graph, Mlp, Tensor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random MLP (depth 1-2, widths 1-6, any activation pair), random
    /// input batch: parameter gradients match finite differences.
    #[test]
    fn mlp_param_gradients_match_finite_difference(
        seed in 0u64..1000,
        w1 in 1usize..6,
        w2 in 1usize..6,
        batch in 1usize..4,
        act_idx in 0usize..4,
    ) {
        let acts = [
            Activation::LeakyRelu,
            Activation::Sigmoid,
            Activation::Tanh,
            Activation::Identity,
        ];
        let act = acts[act_idx];
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut mlp = Mlp::new(&[3, w1, w2], act, Activation::Identity, &mut rng);
        let x = vaesa_nn::rand_uniform(batch, 3, -1.0, 1.0, &mut rng);
        let t = vaesa_nn::rand_uniform(batch, w2, -1.0, 1.0, &mut rng);

        let loss_of = |m: &Mlp| {
            let mut g = Graph::new();
            let xi = g.leaf(x.clone());
            let ti = g.leaf(t.clone());
            let pass = m.forward(&mut g, xi);
            let l = g.mse(pass.output, ti);
            (g, pass, l)
        };
        let (mut g, pass, l) = loss_of(&mlp);
        g.backward(l);
        mlp.zero_grad();
        mlp.accumulate_grads(&g, &pass);
        let analytic = mlp.flatten_grads();
        let theta = mlp.flatten_params();
        let mut probe = mlp.clone();
        let worst = finite_diff_check(&theta, &analytic, 1e-6, |p| {
            probe.unflatten_params(p);
            let (g, _, l) = loss_of(&probe);
            g.value(l).get(0, 0)
        });
        // Leaky ReLU has kinks; tolerate subgradient mismatches there.
        let tol = if act == Activation::LeakyRelu { 5e-2 } else { 1e-6 };
        prop_assert!(worst < tol, "gradient off by {worst} for {act:?}");
    }

    /// Input gradients (the quantity `vae_gd` descends) also match finite
    /// differences.
    #[test]
    fn input_gradients_match_finite_difference(
        seed in 0u64..1000,
        x in proptest::collection::vec(-2.0f64..2.0, 4),
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mlp = Mlp::new(&[4, 5, 1], Activation::Tanh, Activation::Identity, &mut rng);
        let value_of = |xv: &[f64]| {
            let mut g = Graph::new();
            let xi = g.leaf(Tensor::row_vector(xv));
            let pass = mlp.forward(&mut g, xi);
            let l = g.sum_all(pass.output);
            (g, xi, l)
        };
        let (mut g, xi, l) = value_of(&x);
        g.backward(l);
        let analytic = g.grad(xi).expect("input grad").clone().into_vec();
        let worst = finite_diff_check(&x, &analytic, 1e-6, |xv| {
            let (g, _, l) = value_of(xv);
            g.value(l).get(0, 0)
        });
        prop_assert!(worst < 1e-6, "input gradient off by {worst}");
    }

    /// Matmul distributes over addition: (A+B)·C = A·C + B·C.
    #[test]
    fn matmul_distributes(
        a in proptest::collection::vec(-5.0f64..5.0, 6),
        b in proptest::collection::vec(-5.0f64..5.0, 6),
        c in proptest::collection::vec(-5.0f64..5.0, 6),
    ) {
        let ma = Tensor::from_vec(2, 3, a);
        let mb = Tensor::from_vec(2, 3, b);
        let mc = Tensor::from_vec(3, 2, c);
        let left = ma.add(&mb).matmul(&mc);
        let right = ma.matmul(&mc).add(&mb.matmul(&mc));
        prop_assert!(left.approx_eq(&right, 1e-9));
    }

    /// Transpose is an involution and respects matmul: (A·B)ᵀ = Bᵀ·Aᵀ.
    #[test]
    fn transpose_identities(
        a in proptest::collection::vec(-5.0f64..5.0, 6),
        b in proptest::collection::vec(-5.0f64..5.0, 6),
    ) {
        let ma = Tensor::from_vec(2, 3, a);
        let mb = Tensor::from_vec(3, 2, b);
        prop_assert!(ma.transpose().transpose().approx_eq(&ma, 0.0));
        let left = ma.matmul(&mb).transpose();
        let right = mb.transpose().matmul(&ma.transpose());
        prop_assert!(left.approx_eq(&right, 1e-12));
    }

    /// Slicing then concatenating restores the tensor.
    #[test]
    fn slice_concat_roundtrip(
        data in proptest::collection::vec(-9.0f64..9.0, 12),
        split in 1usize..4,
    ) {
        let t = Tensor::from_vec(3, 4, data);
        let left = t.slice_cols(0, split);
        let right = t.slice_cols(split, 4);
        prop_assert!(left.concat_cols(&right).approx_eq(&t, 0.0));
    }

    /// sum_rows agrees with a manual column sum.
    #[test]
    fn sum_rows_matches_manual(data in proptest::collection::vec(-9.0f64..9.0, 12)) {
        let t = Tensor::from_vec(4, 3, data.clone());
        let s = t.sum_rows();
        for c in 0..3 {
            let manual: f64 = (0..4).map(|r| data[r * 3 + c]).sum();
            prop_assert!((s.get(0, c) - manual).abs() < 1e-12);
        }
    }
}
