//! Property tests for the f32 SIMD backend: every f32 matmul variant must
//! stay within an analytic error bound of an f64 reference computed on the
//! same (f32-rounded) inputs, across random shapes including empty, 1-row,
//! and odd-tail cases. A separate serialized section checks the precision-
//! routed `Tensor` path: bounded drift where f32 routing engages, bit-exact
//! f64 results where the amortize guard keeps it off.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Mutex;
use vaesa_nn::{randn, set_precision, F32Accum, Precision, Tensor, TensorF32};

/// Scalar f64 reference matmul that never consults the global precision
/// mode, so these tests stay correct even if another test in this binary is
/// concurrently holding the mode at f32.
fn ref_matmul(a: &[f64], b: &[f64], m: usize, k: usize, n: usize) -> Vec<f64> {
    let mut out = vec![0.0; m * n];
    for i in 0..m {
        for kk in 0..k {
            let av = a[i * k + kk];
            for j in 0..n {
                out[i * n + j] += av * b[kk * n + j];
            }
        }
    }
    out
}

/// Element-wise magnitude reference `Σ_k |a||b|`, the scale the rounding
/// bound is relative to.
fn abs_matmul(a: &[f64], b: &[f64], m: usize, k: usize, n: usize) -> Vec<f64> {
    let aa: Vec<f64> = a.iter().map(|v| v.abs()).collect();
    let bb: Vec<f64> = b.iter().map(|v| v.abs()).collect();
    ref_matmul(&aa, &bb, m, k, n)
}

/// Asserts `|got - want| <= bound` element-wise, where the bound charges one
/// f32 ulp (~1.2e-7) per accumulation step against the magnitude sum, plus
/// an absolute floor for cancellation down to zero.
fn assert_within_f32_bound(
    got: &[f64],
    want: &[f64],
    mags: &[f64],
    inner: usize,
) -> Result<(), TestCaseError> {
    const EPS32: f64 = f32::EPSILON as f64; // 1.19e-7
    for ((&g, &w), &m) in got.iter().zip(want).zip(mags) {
        let bound = EPS32 * (inner as f64 + 4.0) * m + 1e-9;
        prop_assert!(
            (g - w).abs() <= bound,
            "f32 result {g} vs f64 reference {w} exceeds bound {bound} (magnitude {m}, inner {inner})"
        );
    }
    Ok(())
}

/// Inputs rounded to f32 once, then widened: both sides of every comparison
/// see the identical operand values, so the check isolates kernel
/// accumulation error from input representation error.
fn rounded_pair(rows: usize, cols: usize, rng: &mut ChaCha8Rng) -> (TensorF32, Vec<f64>) {
    let t = randn(rows, cols, rng);
    let t32 = TensorF32::from_f64(&t);
    let widened: Vec<f64> = t32.as_slice().iter().map(|&v| f64::from(v)).collect();
    (t32, widened)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `TensorF32::matmul` tracks the f64 reference within the accumulation
    /// bound for random shapes, including empty dims (0), single rows, and
    /// odd tails that exercise the masked SIMD lanes.
    #[test]
    fn f32_matmul_within_bound(
        seed in 0u64..1000,
        m in 0usize..34,
        k in 0usize..34,
        n in 0usize..34,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let (a32, a) = rounded_pair(m, k, &mut rng);
        let (b32, b) = rounded_pair(k, n, &mut rng);
        let got = a32.matmul(&b32).to_f64();
        let want = ref_matmul(&a, &b, m, k, n);
        let mags = abs_matmul(&a, &b, m, k, n);
        assert_within_f32_bound(got.as_slice(), &want, &mags, k)?;
    }

    /// The fused-transpose variants (`AᵀB` and `ABᵀ`, both accumulation
    /// modes) satisfy the same bound.
    #[test]
    fn f32_transpose_matmuls_within_bound(
        seed in 0u64..1000,
        m in 0usize..34,
        k in 0usize..34,
        n in 0usize..34,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);

        // AᵀB: A is k x m (shared dim first), B is k x n.
        let (a32, a) = rounded_pair(k, m, &mut rng);
        let (b32, b) = rounded_pair(k, n, &mut rng);
        let got = a32.matmul_transpose_a(&b32).to_f64();
        let mut at = vec![0.0; m * k];
        for r in 0..k {
            for c in 0..m {
                at[c * k + r] = a[r * m + c];
            }
        }
        let want = ref_matmul(&at, &b, m, k, n);
        let mags = abs_matmul(&at, &b, m, k, n);
        assert_within_f32_bound(got.as_slice(), &want, &mags, k)?;

        // ABᵀ: A is m x k, B is n x k (shared dim last).
        let (a32, a) = rounded_pair(m, k, &mut rng);
        let (b32, b) = rounded_pair(n, k, &mut rng);
        let mut bt = vec![0.0; k * n];
        for r in 0..n {
            for c in 0..k {
                bt[c * n + r] = b[r * k + c];
            }
        }
        let want = ref_matmul(&a, &bt, m, k, n);
        let mags = abs_matmul(&a, &bt, m, k, n);
        for accum in [F32Accum::F32, F32Accum::F64] {
            let got = a32.matmul_transpose_b_with(&b32, accum).to_f64();
            assert_within_f32_bound(got.as_slice(), &want, &mags, k)?;
        }
    }
}

/// Tests below flip the process-global precision; they serialize on this
/// mutex and restore f64 on drop (including panic unwinds) so concurrent
/// tests in this binary never observe a stray f32 mode.
static PRECISION_LOCK: Mutex<()> = Mutex::new(());

struct F32ModeGuard<'a> {
    _lock: std::sync::MutexGuard<'a, ()>,
}

impl F32ModeGuard<'_> {
    fn engage() -> Self {
        let lock = PRECISION_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_precision(Precision::F32);
        F32ModeGuard { _lock: lock }
    }
}

impl Drop for F32ModeGuard<'_> {
    fn drop(&mut self) {
        set_precision(Precision::F64);
    }
}

/// With the global mode at f32, a shape large enough to amortize the
/// conversion routes through the f32 kernels (bounded drift from the f64
/// reference), while a shape below the amortize threshold stays on the f64
/// path bit-exactly.
#[test]
fn routed_tensor_matmul_respects_amortize_guard() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    // 64x64x48: m*k*n = 196_608 >= 4*(m*k + k*n + m*n) = 40_960 → routes.
    let a = randn(64, 64, &mut rng);
    let b = randn(64, 48, &mut rng);
    // 64x32x1: head-output shape, conversion dominates → stays f64.
    let c = randn(64, 32, &mut rng);
    let d = randn(32, 1, &mut rng);

    let want_ab = a.matmul(&b);
    let want_cd = c.matmul(&d);

    let _mode = F32ModeGuard::engage();
    let got_ab = a.matmul(&b);
    let got_cd = c.matmul(&d);

    const EPS32: f64 = f32::EPSILON as f64;
    let mags = abs_matmul(a.as_slice(), b.as_slice(), 64, 64, 48);
    for ((&g, &w), &m) in got_ab.as_slice().iter().zip(want_ab.as_slice()).zip(&mags) {
        // One extra (input-rounding) ulp per operand pair on top of the
        // accumulation bound: the routed path narrows f64 inputs itself.
        let bound = EPS32 * (64.0 + 4.0 + 2.0) * m + 1e-9;
        assert!(
            (g - w).abs() <= bound,
            "routed f32 {g} vs f64 {w} > {bound}"
        );
    }
    assert!(
        got_ab.as_slice() != want_ab.as_slice(),
        "64x64x48 should have routed to f32 (bit-identical result means the guard never engaged)"
    );
    assert_eq!(
        got_cd.as_slice(),
        want_cd.as_slice(),
        "sub-threshold shape must stay bit-exact f64 under f32 mode"
    );
}

/// The f32 fused leaky-ReLU matches the f64 activation within one f32
/// rounding of the input, and preserves sign-selection semantics exactly
/// (negative slope side, zero, NaN propagation).
#[test]
fn routed_leaky_relu_tracks_f64() {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let x = randn(33, 17, &mut rng); // odd tail on both SIMD widths
    let want = x.leaky_relu(0.01);

    let _mode = F32ModeGuard::engage();
    let got = x.leaky_relu(0.01);
    const EPS32: f64 = f32::EPSILON as f64;
    for (&g, (&w, &src)) in got
        .as_slice()
        .iter()
        .zip(want.as_slice().iter().zip(x.as_slice()))
    {
        let bound = 2.0 * EPS32 * src.abs() + 1e-12;
        assert!((g - w).abs() <= bound, "leaky f32 {g} vs f64 {w} at {src}");
        assert_eq!(g > 0.0, w > 0.0, "slope selection must match at {src}");
    }

    // Edge semantics: the f32 path must agree with the scalar definition
    // `if x > 0 { x } else { slope * x }` on zero signs and NaN.
    let edge = Tensor::from_vec(1, 4, vec![0.0, -0.0, f64::NAN, -1.0]);
    let e = edge.leaky_relu(0.01);
    assert_eq!(e.get(0, 0), 0.0);
    assert_eq!(e.get(0, 1).to_bits(), (-0.0f64 * 0.01).to_bits());
    assert!(e.get(0, 2).is_nan());
    assert!((e.get(0, 3) - (-0.01)).abs() <= 1e-9);
}
