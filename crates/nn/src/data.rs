use crate::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

/// Shuffled minibatch iterator over row-aligned tensors.
///
/// Given `n` data rows, [`Batcher::epoch`] yields index batches covering a
/// random permutation of `0..n`; pair it with [`Tensor::select_rows`] to
/// materialize each batch. The final batch may be smaller than `batch_size`.
///
/// # Examples
///
/// ```
/// use vaesa_nn::{Batcher, Tensor};
/// use rand::SeedableRng;
///
/// let xs = Tensor::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0], &[4.0]]);
/// let batcher = Batcher::new(5, 2);
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// let mut seen = 0;
/// for batch in batcher.epoch(&mut rng) {
///     let xb = xs.select_rows(&batch);
///     seen += xb.rows();
/// }
/// assert_eq!(seen, 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Batcher {
    n: usize,
    batch_size: usize,
}

impl Batcher {
    /// Creates a batcher over `n` rows with the given batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn new(n: usize, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Batcher { n, batch_size }
    }

    /// Number of rows covered per epoch.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of batches per epoch.
    pub fn batches_per_epoch(&self) -> usize {
        self.n.div_ceil(self.batch_size)
    }

    /// Produces one epoch of shuffled index batches.
    pub fn epoch(&self, rng: &mut impl Rng) -> Vec<Vec<usize>> {
        let mut idx: Vec<usize> = (0..self.n).collect();
        idx.shuffle(rng);
        idx.chunks(self.batch_size).map(<[usize]>::to_vec).collect()
    }
}

/// Draws a `rows x cols` tensor of standard-normal samples using the
/// Box–Muller transform.
///
/// Used for the VAE reparameterization trick (`z = μ + ε·σ`) and for random
/// latent starting points in gradient-descent search.
pub fn randn(rows: usize, cols: usize, rng: &mut impl Rng) -> Tensor {
    let mut out = Tensor::zeros(0, 0);
    randn_into(rows, cols, rng, &mut out);
    out
}

/// Like [`randn`], but fills `out` in place, reusing its buffer.
///
/// Draws exactly the same RNG stream as [`randn`], so swapping one for the
/// other does not perturb downstream random state.
pub fn randn_into(rows: usize, cols: usize, rng: &mut impl Rng, out: &mut Tensor) {
    out.resize_uninit(rows, cols);
    let data = out.as_mut_slice();
    let n = data.len();
    let mut i = 0;
    while i < n {
        // Box–Muller: two uniforms -> two independent standard normals.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        data[i] = r * theta.cos();
        i += 1;
        if i < n {
            data[i] = r * theta.sin();
            i += 1;
        }
    }
}

/// Draws a `rows x cols` tensor of uniform samples in `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn rand_uniform(rows: usize, cols: usize, lo: f64, hi: f64, rng: &mut impl Rng) -> Tensor {
    assert!(lo < hi, "invalid uniform range [{lo}, {hi})");
    let data = (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn epoch_covers_all_indices_once() {
        let b = Batcher::new(10, 3);
        assert_eq!(b.batches_per_epoch(), 4);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let batches = b.epoch(&mut rng);
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn epoch_shuffles_deterministically_per_seed() {
        let b = Batcher::new(32, 8);
        let e1 = b.epoch(&mut ChaCha8Rng::seed_from_u64(9));
        let e2 = b.epoch(&mut ChaCha8Rng::seed_from_u64(9));
        let e3 = b.epoch(&mut ChaCha8Rng::seed_from_u64(10));
        assert_eq!(e1, e2);
        assert_ne!(e1, e3);
    }

    #[test]
    fn last_batch_may_be_short() {
        let b = Batcher::new(5, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let batches = b.epoch(&mut rng);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[2].len(), 1);
    }

    #[test]
    fn randn_moments_are_plausible() {
        for seed in [3u64, 4, 5] {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let t = randn(100, 100, &mut rng);
            let mean = t.mean();
            let var = t.map(|v| v * v).mean() - mean * mean;
            // 10k draws: std err of the mean is 0.01, so allow 3 sigma.
            assert!(mean.abs() < 0.03, "seed {seed}: mean {mean} too far from 0");
            assert!(
                (var - 1.0).abs() < 0.05,
                "seed {seed}: variance {var} too far from 1"
            );
        }
    }

    #[test]
    fn randn_into_matches_randn_stream() {
        let a = randn(7, 3, &mut ChaCha8Rng::seed_from_u64(11));
        let mut b = Tensor::zeros(2, 2);
        let ptr = {
            randn_into(7, 3, &mut ChaCha8Rng::seed_from_u64(11), &mut b);
            b.as_slice().as_ptr()
        };
        assert_eq!(a.as_slice(), b.as_slice());
        assert_eq!(a.shape(), b.shape());
        // Refilling with a smaller shape must keep the allocation.
        randn_into(2, 2, &mut ChaCha8Rng::seed_from_u64(12), &mut b);
        assert_eq!(ptr, b.as_slice().as_ptr(), "buffer must be reused");
    }

    #[test]
    fn rand_uniform_respects_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let t = rand_uniform(50, 50, -2.0, 5.0, &mut rng);
        assert!(t.as_slice().iter().all(|&v| (-2.0..5.0).contains(&v)));
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_panics() {
        let _ = Batcher::new(5, 0);
    }
}
