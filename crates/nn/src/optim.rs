use crate::Param;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};
use vaesa_linalg::Precision;

/// Global optimizer-step counter, cached so the per-batch increment is one
/// relaxed atomic add (no registry lookup) after first use.
fn adam_steps() -> &'static Arc<vaesa_obs::Counter> {
    static C: OnceLock<Arc<vaesa_obs::Counter>> = OnceLock::new();
    C.get_or_init(|| vaesa_obs::counter("nn.adam.steps"))
}

/// Plain stochastic gradient descent with optional gradient clipping.
///
/// # Examples
///
/// ```
/// use vaesa_nn::{Param, Sgd, Tensor};
///
/// let mut p = Param::new(Tensor::from_rows(&[&[1.0]]));
/// p.grad = Tensor::from_rows(&[&[0.5]]);
/// let sgd = Sgd::new(0.1);
/// sgd.step(&mut [&mut p]);
/// assert!((p.value.get(0, 0) - 0.95).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub learning_rate: f64,
    /// Per-element gradient magnitude clip; `None` disables clipping.
    pub clip: Option<f64>,
}

impl Sgd {
    /// Creates SGD with the given learning rate and no clipping.
    pub fn new(learning_rate: f64) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        Sgd {
            learning_rate,
            clip: None,
        }
    }

    /// Sets per-element gradient clipping.
    pub fn with_clip(mut self, clip: f64) -> Self {
        assert!(clip > 0.0, "clip threshold must be positive");
        self.clip = Some(clip);
        self
    }

    /// Applies one descent step to each parameter, in place.
    pub fn step(&self, params: &mut [&mut Param]) {
        for p in params.iter_mut() {
            let n = p.value.len();
            debug_assert_eq!(n, p.grad.len(), "param/grad shape mismatch");
            for i in 0..n {
                let mut g = p.grad.as_slice()[i];
                if let Some(c) = self.clip {
                    g = g.clamp(-c, c);
                }
                p.value.as_mut_slice()[i] -= self.learning_rate * g;
            }
        }
    }
}

/// The Adam optimizer (Kingma & Ba) with bias correction.
///
/// Holds only hyperparameters and the step counter; the per-parameter moment
/// estimates live inside each [`Param`], so one `Adam` can drive any number
/// of models.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate (paper default 1e-3).
    pub learning_rate: f64,
    /// Exponential decay for the first moment.
    pub beta1: f64,
    /// Exponential decay for the second moment.
    pub beta2: f64,
    /// Numerical-stability epsilon.
    pub epsilon: f64,
    t: u64,
}

impl Adam {
    /// Creates Adam with the conventional β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
    pub fn new(learning_rate: f64) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        Adam {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            t: 0,
        }
    }

    /// Number of optimization steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one Adam update to each parameter, in place.
    ///
    /// Equivalent to [`Adam::begin_step`] followed by [`Adam::update`] on
    /// every parameter.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        self.begin_step();
        for p in params.iter_mut() {
            self.update(p);
        }
    }

    /// Advances the step counter. Call once per optimization step, before
    /// any [`Adam::update`] calls for that step.
    pub fn begin_step(&mut self) {
        self.t += 1;
        adam_steps().incr();
    }

    /// Applies the current step's update to a single parameter.
    ///
    /// Used by model-level helpers (e.g. `Mlp::adam_step`) that visit
    /// parameters one at a time; the bias-correction term is derived from the
    /// step counter advanced by [`Adam::begin_step`]. In f32 precision mode
    /// the moment/update loop runs on the SIMD f32 backend.
    ///
    /// # Panics
    ///
    /// Panics if called before any [`Adam::begin_step`].
    pub fn update(&self, p: &mut Param) {
        assert!(self.t > 0, "call begin_step before update");
        let t = self.t as f64;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        let n = p.value.len();
        debug_assert_eq!(n, p.grad.len(), "param/grad shape mismatch");
        if Precision::active().is_f32() {
            crate::simd32::adam_update(
                p.value.as_mut_slice(),
                p.grad.as_slice(),
                p.m.as_mut_slice(),
                p.v.as_mut_slice(),
                self.learning_rate,
                self.beta1,
                self.beta2,
                self.epsilon,
                bc1,
                bc2,
            );
            return;
        }
        for i in 0..n {
            let g = p.grad.as_slice()[i];
            let m = self.beta1 * p.m.as_slice()[i] + (1.0 - self.beta1) * g;
            let v = self.beta2 * p.v.as_slice()[i] + (1.0 - self.beta2) * g * g;
            p.m.as_mut_slice()[i] = m;
            p.v.as_mut_slice()[i] = v;
            let m_hat = m / bc1;
            let v_hat = v / bc2;
            p.value.as_mut_slice()[i] -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    fn quadratic_grad(p: &Param) -> Tensor {
        // f(x) = ½‖x - 3‖² => ∇f = x - 3
        p.value.map(|x| x - 3.0)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut p = Param::new(Tensor::from_rows(&[&[0.0, 10.0]]));
        let sgd = Sgd::new(0.2);
        for _ in 0..100 {
            p.grad = quadratic_grad(&p);
            sgd.step(&mut [&mut p]);
        }
        assert!(p.value.as_slice().iter().all(|&x| (x - 3.0).abs() < 1e-6));
    }

    #[test]
    fn sgd_clipping_limits_step_size() {
        let mut p = Param::new(Tensor::from_rows(&[&[0.0]]));
        p.grad = Tensor::from_rows(&[&[1000.0]]);
        Sgd::new(0.1).with_clip(1.0).step(&mut [&mut p]);
        assert!((p.value.get(0, 0) + 0.1).abs() < 1e-12); // moved exactly -lr*clip
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut p = Param::new(Tensor::from_rows(&[&[-4.0, 8.0, 0.0]]));
        let mut adam = Adam::new(0.1);
        for _ in 0..500 {
            p.grad = quadratic_grad(&p);
            adam.step(&mut [&mut p]);
        }
        assert_eq!(adam.steps(), 500);
        assert!(
            p.value.as_slice().iter().all(|&x| (x - 3.0).abs() < 1e-3),
            "adam failed to converge: {:?}",
            p.value.as_slice()
        );
    }

    #[test]
    fn adam_first_step_magnitude_is_learning_rate() {
        // With bias correction, |Δx| of the very first step equals lr for
        // any nonzero gradient.
        let mut p = Param::new(Tensor::from_rows(&[&[5.0]]));
        p.grad = Tensor::from_rows(&[&[123.0]]);
        let mut adam = Adam::new(0.01);
        adam.step(&mut [&mut p]);
        assert!((p.value.get(0, 0) - (5.0 - 0.01)).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_learning_rate_panics() {
        let _ = Adam::new(0.0);
    }
}
