use crate::{Graph, Tensor, VarId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A trainable parameter tensor together with its gradient and Adam moments.
///
/// Layers own their `Param`s; optimizers mutate them through
/// [`crate::Adam::step`] / [`crate::Sgd::step`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Gradient accumulated by the most recent backward pass.
    pub grad: Tensor,
    /// First-moment estimate (Adam state).
    pub m: Tensor,
    /// Second-moment estimate (Adam state).
    pub v: Tensor,
}

impl Param {
    /// Wraps a value tensor with zeroed gradient and optimizer state.
    pub fn new(value: Tensor) -> Self {
        let (r, c) = value.shape();
        Param {
            value,
            grad: Tensor::zeros(r, c),
            m: Tensor::zeros(r, c),
            v: Tensor::zeros(r, c),
        }
    }

    /// Resets the gradient to zero in place, keeping the buffer allocation.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }
}

/// Activation functions available between MLP layers.
///
/// The paper's VAE uses leaky ReLU between layers (§III-B1); sigmoid is used
/// on decoder/predictor outputs because all features and labels are
/// min-max-normalized into `[0, 1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Activation {
    /// Leaky ReLU with negative slope 0.01.
    #[default]
    LeakyRelu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// No activation.
    Identity,
}

impl Activation {
    /// Applies the activation to a graph node.
    pub fn apply(self, g: &mut Graph, x: VarId) -> VarId {
        match self {
            Activation::LeakyRelu => g.leaky_relu(x, 0.01),
            Activation::Sigmoid => g.sigmoid(x),
            Activation::Tanh => g.tanh(x),
            Activation::Identity => x,
        }
    }
}

/// A fully connected layer `y = x W + b`.
///
/// Weights are initialized with Kaiming-uniform scaling
/// (`U(-√(6/fan_in), √(6/fan_in))`), biases at zero.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    /// Weight matrix of shape `in_dim x out_dim`.
    pub weight: Param,
    /// Bias row of shape `1 x out_dim`.
    pub bias: Param,
}

impl Linear {
    /// Creates a new layer with Kaiming-uniform weights drawn from `rng`.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        assert!(
            in_dim > 0 && out_dim > 0,
            "layer dimensions must be positive"
        );
        let bound = (6.0 / in_dim as f64).sqrt();
        let data: Vec<f64> = (0..in_dim * out_dim)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Linear {
            weight: Param::new(Tensor::from_vec(in_dim, out_dim, data)),
            bias: Param::new(Tensor::zeros(1, out_dim)),
        }
    }

    /// Input feature count.
    pub fn in_dim(&self) -> usize {
        self.weight.value.rows()
    }

    /// Output feature count.
    pub fn out_dim(&self) -> usize {
        self.weight.value.cols()
    }

    /// Runs the layer on graph node `x`, returning `(output, weight id, bias id)`.
    ///
    /// The returned ids let the caller pull gradients back into the `Param`s
    /// after `backward`; [`Mlp::forward`] does this bookkeeping for you.
    pub fn forward(&self, g: &mut Graph, x: VarId) -> (VarId, VarId, VarId) {
        let w = g.leaf(self.weight.value.clone());
        let b = g.leaf(self.bias.value.clone());
        let prod = g.matmul(x, w);
        let out = g.add_row_broadcast(prod, b);
        (out, w, b)
    }
}

/// A multilayer perceptron with a uniform hidden activation and an optional
/// output activation.
///
/// This is the building block for the VAE encoder, decoder, and the latency
/// and energy predictor heads.
///
/// # Examples
///
/// ```
/// use vaesa_nn::{Mlp, Activation, Graph, Tensor};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let mlp = Mlp::new(&[4, 8, 2], Activation::LeakyRelu, Activation::Identity, &mut rng);
/// let mut g = Graph::new();
/// let x = g.leaf(Tensor::zeros(3, 4));
/// let y = mlp.forward(&mut g, x).output;
/// assert_eq!(g.value(y).shape(), (3, 2));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
    hidden_activation: Activation,
    output_activation: Activation,
}

/// The result of an [`Mlp::forward`] pass: the output node plus the graph
/// ids of every parameter leaf, used to route gradients back into the model.
#[derive(Debug, Clone)]
pub struct MlpPass {
    /// Graph node holding the MLP output.
    pub output: VarId,
    /// `(weight id, bias id)` per layer, in layer order.
    pub param_ids: Vec<(VarId, VarId)>,
}

impl Mlp {
    /// Builds an MLP with the given layer widths, e.g. `&[6, 32, 16, 4]`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given or any width is zero.
    pub fn new(
        widths: &[usize],
        hidden_activation: Activation,
        output_activation: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(
            widths.len() >= 2,
            "an MLP needs at least input and output widths"
        );
        let layers = widths
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], rng))
            .collect();
        Mlp {
            layers,
            hidden_activation,
            output_activation,
        }
    }

    /// Input feature count.
    pub fn in_dim(&self) -> usize {
        self.layers.first().expect("mlp has layers").in_dim()
    }

    /// Output feature count.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("mlp has layers").out_dim()
    }

    /// Number of linear layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Total number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.weight.value.len() + l.bias.value.len())
            .sum()
    }

    /// Runs the MLP on graph node `x`.
    pub fn forward(&self, g: &mut Graph, x: VarId) -> MlpPass {
        let mut h = x;
        let mut param_ids = Vec::with_capacity(self.layers.len());
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let (out, w, b) = layer.forward(g, h);
            param_ids.push((w, b));
            h = if i == last {
                self.output_activation.apply(g, out)
            } else {
                self.hidden_activation.apply(g, out)
            };
        }
        MlpPass {
            output: h,
            param_ids,
        }
    }

    /// Adds the gradients recorded in `g` for the pass `pass` into each
    /// parameter's `grad` buffer.
    ///
    /// Call after `g.backward(loss)`. Parameters that received no gradient
    /// (e.g. when the loss does not depend on this MLP) are left untouched.
    pub fn accumulate_grads(&mut self, g: &Graph, pass: &MlpPass) {
        assert_eq!(
            pass.param_ids.len(),
            self.layers.len(),
            "pass does not match this MLP"
        );
        for (layer, &(wid, bid)) in self.layers.iter_mut().zip(&pass.param_ids) {
            if let Some(gw) = g.grad(wid) {
                layer.weight.grad.add_assign(gw);
            }
            if let Some(gb) = g.grad(bid) {
                layer.bias.grad.add_assign(gb);
            }
        }
    }

    /// Visits every parameter mutably (weights then bias, per layer).
    pub fn visit_params(&mut self, f: &mut impl FnMut(&mut Param)) {
        for layer in &mut self.layers {
            f(&mut layer.weight);
            f(&mut layer.bias);
        }
    }

    /// Resets all gradients to zero.
    pub fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Flattens all parameter values into one vector (for tests and
    /// finite-difference checks).
    pub fn flatten_params(&self) -> Vec<f64> {
        let mut out = Vec::new();
        for layer in &self.layers {
            out.extend_from_slice(layer.weight.value.as_slice());
            out.extend_from_slice(layer.bias.value.as_slice());
        }
        out
    }

    /// Overwrites all parameter values from a flat vector produced by
    /// [`Mlp::flatten_params`].
    ///
    /// # Panics
    ///
    /// Panics if `flat` has the wrong length.
    pub fn unflatten_params(&mut self, flat: &[f64]) {
        assert_eq!(
            flat.len(),
            self.param_count(),
            "flat parameter length mismatch"
        );
        let mut offset = 0;
        for layer in &mut self.layers {
            for dst in [&mut layer.weight, &mut layer.bias] {
                let n = dst.value.len();
                let (r, c) = dst.value.shape();
                dst.value = Tensor::from_vec(r, c, flat[offset..offset + n].to_vec());
                offset += n;
            }
        }
    }

    /// Applies one Adam step to every parameter of this MLP.
    ///
    /// Advances the optimizer's step counter exactly once, then updates each
    /// parameter with the same bias correction.
    pub fn adam_step(&mut self, adam: &mut crate::Adam) {
        adam.begin_step();
        self.visit_params(&mut |p| adam.update(p));
    }

    /// Flattens all parameter gradients in the same order as
    /// [`Mlp::flatten_params`].
    pub fn flatten_grads(&self) -> Vec<f64> {
        let mut out = Vec::new();
        for layer in &self.layers {
            out.extend_from_slice(layer.weight.grad.as_slice());
            out.extend_from_slice(layer.bias.grad.as_slice());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::finite_diff_check;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn linear_shapes_and_init_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let l = Linear::new(6, 3, &mut rng);
        assert_eq!(l.in_dim(), 6);
        assert_eq!(l.out_dim(), 3);
        let bound = (6.0f64 / 6.0).sqrt();
        assert!(l.weight.value.as_slice().iter().all(|w| w.abs() <= bound));
        assert!(l.bias.value.as_slice().iter().all(|&b| b == 0.0));
    }

    #[test]
    fn mlp_forward_shapes() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mlp = Mlp::new(
            &[5, 7, 3],
            Activation::LeakyRelu,
            Activation::Sigmoid,
            &mut rng,
        );
        assert_eq!(mlp.in_dim(), 5);
        assert_eq!(mlp.out_dim(), 3);
        assert_eq!(mlp.depth(), 2);
        assert_eq!(mlp.param_count(), 5 * 7 + 7 + 7 * 3 + 3);
        let mut g = Graph::new();
        let x = g.leaf(Tensor::zeros(4, 5));
        let pass = mlp.forward(&mut g, x);
        assert_eq!(g.value(pass.output).shape(), (4, 3));
        // Sigmoid output stays in (0, 1).
        assert!(g
            .value(pass.output)
            .as_slice()
            .iter()
            .all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn mlp_gradients_match_finite_difference() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut mlp = Mlp::new(&[3, 4, 2], Activation::Tanh, Activation::Identity, &mut rng);
        let x = Tensor::from_rows(&[&[0.3, -0.8, 0.5], &[1.0, 0.2, -0.4]]);
        let target = Tensor::from_rows(&[&[0.1, 0.9], &[-0.5, 0.3]]);

        let loss_of = |mlp: &Mlp| {
            let mut g = Graph::new();
            let xi = g.leaf(x.clone());
            let ti = g.leaf(target.clone());
            let pass = mlp.forward(&mut g, xi);
            let l = g.mse(pass.output, ti);
            (g, pass, l)
        };

        let (mut g, pass, l) = loss_of(&mlp);
        g.backward(l);
        mlp.zero_grad();
        mlp.accumulate_grads(&g, &pass);
        let analytic = mlp.flatten_grads();
        let theta = mlp.flatten_params();

        let mut probe = mlp.clone();
        let worst = finite_diff_check(&theta, &analytic, 1e-6, |p| {
            probe.unflatten_params(p);
            let (g, _, l) = loss_of(&probe);
            g.value(l).get(0, 0)
        });
        assert!(worst < 1e-7, "mlp grads off by {worst}");
    }

    #[test]
    fn flatten_roundtrip() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut mlp = Mlp::new(
            &[2, 3, 1],
            Activation::LeakyRelu,
            Activation::Identity,
            &mut rng,
        );
        let flat = mlp.flatten_params();
        let mut clone = mlp.clone();
        clone.unflatten_params(&flat);
        assert_eq!(clone.flatten_params(), flat);
        // Mutating through unflatten changes the forward result.
        let bumped: Vec<f64> = flat.iter().map(|v| v + 1.0).collect();
        mlp.unflatten_params(&bumped);
        assert_ne!(mlp.flatten_params(), flat);
    }

    #[test]
    fn accumulate_grads_adds_rather_than_overwrites() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut mlp = Mlp::new(
            &[2, 2],
            Activation::Identity,
            Activation::Identity,
            &mut rng,
        );
        let x = Tensor::from_rows(&[&[1.0, 1.0]]);
        let t = Tensor::from_rows(&[&[0.0, 0.0]]);
        let run = |mlp: &Mlp| {
            let mut g = Graph::new();
            let xi = g.leaf(x.clone());
            let ti = g.leaf(t.clone());
            let pass = mlp.forward(&mut g, xi);
            let l = g.mse(pass.output, ti);
            g.backward(l);
            (g, pass)
        };
        mlp.zero_grad();
        let (g1, p1) = run(&mlp);
        mlp.accumulate_grads(&g1, &p1);
        let once = mlp.flatten_grads();
        let (g2, p2) = run(&mlp);
        mlp.accumulate_grads(&g2, &p2);
        let twice = mlp.flatten_grads();
        for (a, b) in once.iter().zip(&twice) {
            assert!((b - 2.0 * a).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_grad_clears() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut mlp = Mlp::new(
            &[2, 2],
            Activation::Identity,
            Activation::Identity,
            &mut rng,
        );
        mlp.visit_params(&mut |p| p.grad = Tensor::fill(p.grad.rows(), p.grad.cols(), 3.0));
        mlp.zero_grad();
        assert!(mlp.flatten_grads().iter().all(|&g| g == 0.0));
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn mlp_rejects_single_width() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let _ = Mlp::new(&[4], Activation::Identity, Activation::Identity, &mut rng);
    }
}
