//! SIMD `f32` compute backend for the [`Tensor`](crate::Tensor) hot loops.
//!
//! When the process-global [`Precision`](vaesa_linalg::Precision) is
//! [`F32`](vaesa_linalg::Precision::F32), the `Tensor` matmul family, the
//! elementwise activations, and the Adam update route through this module:
//! operands are rounded to `f32` once, the O(m·k·n) work runs in wide `f32`
//! SIMD (runtime-dispatched AVX2+FMA or AVX-512F+FMA, scalar fallback), and
//! results are widened back to `f64` storage. Conversion is O(elements) while
//! the kernels are O(elements · inner), so the round trip is amortized for
//! every shape the models use.
//!
//! Accumulation order is pinned exactly like the `f64` kernels — fixed panel
//! and lane layouts, row blocks independent of thread count — so a given
//! machine produces bit-identical `f32` results for every `VAESA_THREADS`
//! setting. Across machines the FMA contraction in the SIMD bodies may round
//! differently from the scalar fallback; the determinism gate only ever
//! compares runs from the same machine, and cross-machine comparability is
//! handled by the `cpu_features` manifest line (see DESIGN.md, "Precision
//! policy").
//!
//! `matmul_transpose_b` optionally switches to reduction dot products with
//! `f64` running sums ([`F32Accum::F64`], selected by `VAESA_F32_ACCUM=f64`)
//! for workloads where the inner dimension is long enough for `f32`
//! round-off to bite; its default `f32`-accumulate path materializes `Bᵀ`
//! and reuses the panel matmul kernel.

use std::sync::{Arc, OnceLock};

/// Count of matmul-family products routed through the f32 backend. Counters
/// are deterministic (call counts never depend on thread count), so this is
/// safe to include in the manifest's gated slice; it only appears when the
/// run actually executed f32 kernels.
fn f32_matmuls() -> &'static Arc<vaesa_obs::Counter> {
    static C: OnceLock<Arc<vaesa_obs::Counter>> = OnceLock::new();
    C.get_or_init(|| vaesa_obs::counter("nn.f32.matmuls"))
}

/// Accumulation width used by the `matmul_transpose_b` reduction panels when
/// the f32 backend is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum F32Accum {
    /// Accumulate dot products in `f32` (the default; fastest).
    F32,
    /// Round operands to `f32` but accumulate their products in `f64`,
    /// halving the SIMD width of the reduction in exchange for error that
    /// stays O(ulp) in the inner dimension.
    F64,
}

/// The process-wide [`F32Accum`] mode: `VAESA_F32_ACCUM=f64` selects
/// [`F32Accum::F64`], anything else (including unset) the `f32` default.
/// Read once and cached.
pub fn f32_accum_mode() -> F32Accum {
    static M: OnceLock<F32Accum> = OnceLock::new();
    *M.get_or_init(|| match std::env::var("VAESA_F32_ACCUM") {
        Ok(v) if v.trim().eq_ignore_ascii_case("f64") => F32Accum::F64,
        _ => F32Accum::F32,
    })
}

/// SIMD tier selected once per process from runtime feature detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SimdLevel {
    Avx512,
    Avx2,
    Scalar,
}

fn simd_level() -> SimdLevel {
    static L: OnceLock<SimdLevel> = OnceLock::new();
    *L.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("fma")
            {
                return SimdLevel::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                return SimdLevel::Avx2;
            }
        }
        SimdLevel::Scalar
    })
}

#[inline]
pub(crate) fn to_f32(src: &[f64]) -> Vec<f32> {
    src.iter().map(|&v| v as f32).collect()
}

/// Whether an `m x k` · `k x n`-shaped product is worth the f64→f32 round
/// trip: the O(m·k·n) kernel must dominate the O(m·k + k·n + m·n)
/// conversion passes. Degenerate shapes (like the predictor heads'
/// single-column output layer) spend more on rounding traffic than the
/// narrower arithmetic saves, so the precision-routed `Tensor` paths keep
/// them on the f64 kernels.
pub(crate) fn amortizes(m: usize, k: usize, n: usize) -> bool {
    m * k * n >= 4 * (m * k + k * n + m * n)
}

/// Transposed copy of a row-major `rows x cols` buffer.
fn transpose_f32(src: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    debug_assert_eq!(src.len(), rows * cols);
    let mut out = vec![0.0f32; src.len()];
    for r in 0..rows {
        for c in 0..cols {
            out[c * rows + r] = src[r * cols + c];
        }
    }
    out
}

/// Fused round-and-transpose of a row-major `rows x cols` `f64` buffer:
/// one pass instead of a narrowing pass followed by a transpose pass.
fn transpose_to_f32(src: &[f64], rows: usize, cols: usize) -> Vec<f32> {
    debug_assert_eq!(src.len(), rows * cols);
    let mut out = vec![0.0f32; src.len()];
    for r in 0..rows {
        for c in 0..cols {
            out[c * rows + r] = src[r * cols + c] as f32;
        }
    }
    out
}

#[inline]
fn write_f64(src: &[f32], dst: &mut [f64]) {
    debug_assert_eq!(src.len(), dst.len());
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = f64::from(s);
    }
}

// ---------------------------------------------------------------------------
// matmul: out_row += a_row * B, B row-major, k unrolled in panels of four.
// ---------------------------------------------------------------------------

/// One output row of `A * B`. `FMA` bodies contract with `mul_add` (compiled
/// to hardware FMA under `#[target_feature]`); the scalar body uses separate
/// multiply/add so the fallback never hits the libm soft-float `fma`.
#[inline(always)]
fn matmul_row_body<const FMA: bool>(a_row: &[f32], b: &[f32], out_row: &mut [f32]) {
    let inner = a_row.len();
    let n = out_row.len();
    debug_assert_eq!(b.len(), inner * n);
    let mut k = 0;
    while k + 4 <= inner {
        let (a0, a1, a2, a3) = (a_row[k], a_row[k + 1], a_row[k + 2], a_row[k + 3]);
        let b0 = &b[k * n..][..n];
        let b1 = &b[(k + 1) * n..][..n];
        let b2 = &b[(k + 2) * n..][..n];
        let b3 = &b[(k + 3) * n..][..n];
        for j in 0..n {
            let mut acc = out_row[j];
            if FMA {
                acc = a0.mul_add(b0[j], acc);
                acc = a1.mul_add(b1[j], acc);
                acc = a2.mul_add(b2[j], acc);
                acc = a3.mul_add(b3[j], acc);
            } else {
                acc += a0 * b0[j];
                acc += a1 * b1[j];
                acc += a2 * b2[j];
                acc += a3 * b3[j];
            }
            out_row[j] = acc;
        }
        k += 4;
    }
    while k < inner {
        let a0 = a_row[k];
        let b_row = &b[k * n..][..n];
        for j in 0..n {
            if FMA {
                out_row[j] = a0.mul_add(b_row[j], out_row[j]);
            } else {
                out_row[j] += a0 * b_row[j];
            }
        }
        k += 1;
    }
}

type MatmulBlock = unsafe fn(&[f32], &[f32], usize, usize, usize, &mut [f32]);

/// Four-row register-blocked `A * B` tile in AVX-512 intrinsics. Each
/// output element accumulates along one FMA chain in ascending-`k` order —
/// the same per-element arithmetic as [`matmul_row_body`]'s FMA variant —
/// but with up to eight independent chains (4 rows x 2 column vectors) in
/// flight, so the chains hide each other's four-cycle FMA latency.
///
/// # Safety
///
/// Requires AVX-512F and FMA (guaranteed by the [`simd_level`] dispatch).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,fma")]
unsafe fn matmul_block_avx512(
    a: &[f32],
    b: &[f32],
    first_row: usize,
    inner: usize,
    n: usize,
    out: &mut [f32],
) {
    use std::arch::x86_64::*;
    let rows = out.len() / n;
    if rows != 4 {
        for (r, out_row) in out.chunks_mut(n).enumerate() {
            let i = first_row + r;
            matmul_row_body::<true>(&a[i * inner..(i + 1) * inner], b, out_row);
        }
        return;
    }
    let a0 = &a[first_row * inner..][..inner];
    let a1 = &a[(first_row + 1) * inner..][..inner];
    let a2 = &a[(first_row + 2) * inner..][..inner];
    let a3 = &a[(first_row + 3) * inner..][..inner];
    let (o01, o23) = out.split_at_mut(2 * n);
    let (o0, o1) = o01.split_at_mut(n);
    let (o2, o3) = o23.split_at_mut(n);
    let mut j = 0;
    // 32-column tiles: eight chains saturate the two FMA ports.
    while j + 32 <= n {
        let mut s00 = _mm512_loadu_ps(o0.as_ptr().add(j));
        let mut s01 = _mm512_loadu_ps(o0.as_ptr().add(j + 16));
        let mut s10 = _mm512_loadu_ps(o1.as_ptr().add(j));
        let mut s11 = _mm512_loadu_ps(o1.as_ptr().add(j + 16));
        let mut s20 = _mm512_loadu_ps(o2.as_ptr().add(j));
        let mut s21 = _mm512_loadu_ps(o2.as_ptr().add(j + 16));
        let mut s30 = _mm512_loadu_ps(o3.as_ptr().add(j));
        let mut s31 = _mm512_loadu_ps(o3.as_ptr().add(j + 16));
        for k in 0..inner {
            let b0 = _mm512_loadu_ps(b.as_ptr().add(k * n + j));
            let b1 = _mm512_loadu_ps(b.as_ptr().add(k * n + j + 16));
            let v0 = _mm512_set1_ps(*a0.get_unchecked(k));
            s00 = _mm512_fmadd_ps(v0, b0, s00);
            s01 = _mm512_fmadd_ps(v0, b1, s01);
            let v1 = _mm512_set1_ps(*a1.get_unchecked(k));
            s10 = _mm512_fmadd_ps(v1, b0, s10);
            s11 = _mm512_fmadd_ps(v1, b1, s11);
            let v2 = _mm512_set1_ps(*a2.get_unchecked(k));
            s20 = _mm512_fmadd_ps(v2, b0, s20);
            s21 = _mm512_fmadd_ps(v2, b1, s21);
            let v3 = _mm512_set1_ps(*a3.get_unchecked(k));
            s30 = _mm512_fmadd_ps(v3, b0, s30);
            s31 = _mm512_fmadd_ps(v3, b1, s31);
        }
        _mm512_storeu_ps(o0.as_mut_ptr().add(j), s00);
        _mm512_storeu_ps(o0.as_mut_ptr().add(j + 16), s01);
        _mm512_storeu_ps(o1.as_mut_ptr().add(j), s10);
        _mm512_storeu_ps(o1.as_mut_ptr().add(j + 16), s11);
        _mm512_storeu_ps(o2.as_mut_ptr().add(j), s20);
        _mm512_storeu_ps(o2.as_mut_ptr().add(j + 16), s21);
        _mm512_storeu_ps(o3.as_mut_ptr().add(j), s30);
        _mm512_storeu_ps(o3.as_mut_ptr().add(j + 16), s31);
        j += 32;
    }
    // Masked tail covers everything under 32 columns, 16 at a time.
    while j < n {
        let lanes = (n - j).min(16);
        let mask: __mmask16 = ((1u32 << lanes) - 1) as __mmask16;
        let mut s0 = _mm512_maskz_loadu_ps(mask, o0.as_ptr().add(j));
        let mut s1 = _mm512_maskz_loadu_ps(mask, o1.as_ptr().add(j));
        let mut s2 = _mm512_maskz_loadu_ps(mask, o2.as_ptr().add(j));
        let mut s3 = _mm512_maskz_loadu_ps(mask, o3.as_ptr().add(j));
        for k in 0..inner {
            let vb = _mm512_maskz_loadu_ps(mask, b.as_ptr().add(k * n + j));
            s0 = _mm512_fmadd_ps(_mm512_set1_ps(*a0.get_unchecked(k)), vb, s0);
            s1 = _mm512_fmadd_ps(_mm512_set1_ps(*a1.get_unchecked(k)), vb, s1);
            s2 = _mm512_fmadd_ps(_mm512_set1_ps(*a2.get_unchecked(k)), vb, s2);
            s3 = _mm512_fmadd_ps(_mm512_set1_ps(*a3.get_unchecked(k)), vb, s3);
        }
        _mm512_mask_storeu_ps(o0.as_mut_ptr().add(j), mask, s0);
        _mm512_mask_storeu_ps(o1.as_mut_ptr().add(j), mask, s1);
        _mm512_mask_storeu_ps(o2.as_mut_ptr().add(j), mask, s2);
        _mm512_mask_storeu_ps(o3.as_mut_ptr().add(j), mask, s3);
        j += lanes;
    }
}

/// AVX2 variant of [`matmul_block_avx512`]: 8-wide vectors, 16-column
/// tiles, `maskload`/`maskstore` tail. Same ascending-`k` chains.
///
/// # Safety
///
/// Requires AVX2 and FMA (guaranteed by the [`simd_level`] dispatch).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn matmul_block_avx2(
    a: &[f32],
    b: &[f32],
    first_row: usize,
    inner: usize,
    n: usize,
    out: &mut [f32],
) {
    use std::arch::x86_64::*;
    let rows = out.len() / n;
    if rows != 4 {
        for (r, out_row) in out.chunks_mut(n).enumerate() {
            let i = first_row + r;
            matmul_row_body::<true>(&a[i * inner..(i + 1) * inner], b, out_row);
        }
        return;
    }
    let a0 = &a[first_row * inner..][..inner];
    let a1 = &a[(first_row + 1) * inner..][..inner];
    let a2 = &a[(first_row + 2) * inner..][..inner];
    let a3 = &a[(first_row + 3) * inner..][..inner];
    let (o01, o23) = out.split_at_mut(2 * n);
    let (o0, o1) = o01.split_at_mut(n);
    let (o2, o3) = o23.split_at_mut(n);
    let mut j = 0;
    while j + 16 <= n {
        let mut s00 = _mm256_loadu_ps(o0.as_ptr().add(j));
        let mut s01 = _mm256_loadu_ps(o0.as_ptr().add(j + 8));
        let mut s10 = _mm256_loadu_ps(o1.as_ptr().add(j));
        let mut s11 = _mm256_loadu_ps(o1.as_ptr().add(j + 8));
        let mut s20 = _mm256_loadu_ps(o2.as_ptr().add(j));
        let mut s21 = _mm256_loadu_ps(o2.as_ptr().add(j + 8));
        let mut s30 = _mm256_loadu_ps(o3.as_ptr().add(j));
        let mut s31 = _mm256_loadu_ps(o3.as_ptr().add(j + 8));
        for k in 0..inner {
            let b0 = _mm256_loadu_ps(b.as_ptr().add(k * n + j));
            let b1 = _mm256_loadu_ps(b.as_ptr().add(k * n + j + 8));
            let v0 = _mm256_set1_ps(*a0.get_unchecked(k));
            s00 = _mm256_fmadd_ps(v0, b0, s00);
            s01 = _mm256_fmadd_ps(v0, b1, s01);
            let v1 = _mm256_set1_ps(*a1.get_unchecked(k));
            s10 = _mm256_fmadd_ps(v1, b0, s10);
            s11 = _mm256_fmadd_ps(v1, b1, s11);
            let v2 = _mm256_set1_ps(*a2.get_unchecked(k));
            s20 = _mm256_fmadd_ps(v2, b0, s20);
            s21 = _mm256_fmadd_ps(v2, b1, s21);
            let v3 = _mm256_set1_ps(*a3.get_unchecked(k));
            s30 = _mm256_fmadd_ps(v3, b0, s30);
            s31 = _mm256_fmadd_ps(v3, b1, s31);
        }
        _mm256_storeu_ps(o0.as_mut_ptr().add(j), s00);
        _mm256_storeu_ps(o0.as_mut_ptr().add(j + 8), s01);
        _mm256_storeu_ps(o1.as_mut_ptr().add(j), s10);
        _mm256_storeu_ps(o1.as_mut_ptr().add(j + 8), s11);
        _mm256_storeu_ps(o2.as_mut_ptr().add(j), s20);
        _mm256_storeu_ps(o2.as_mut_ptr().add(j + 8), s21);
        _mm256_storeu_ps(o3.as_mut_ptr().add(j), s30);
        _mm256_storeu_ps(o3.as_mut_ptr().add(j + 8), s31);
        j += 16;
    }
    while j < n {
        let lanes = (n - j).min(8) as i32;
        let idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
        let mask = _mm256_cmpgt_epi32(_mm256_set1_epi32(lanes), idx);
        let mut s0 = _mm256_maskload_ps(o0.as_ptr().add(j), mask);
        let mut s1 = _mm256_maskload_ps(o1.as_ptr().add(j), mask);
        let mut s2 = _mm256_maskload_ps(o2.as_ptr().add(j), mask);
        let mut s3 = _mm256_maskload_ps(o3.as_ptr().add(j), mask);
        for k in 0..inner {
            let vb = _mm256_maskload_ps(b.as_ptr().add(k * n + j), mask);
            s0 = _mm256_fmadd_ps(_mm256_set1_ps(*a0.get_unchecked(k)), vb, s0);
            s1 = _mm256_fmadd_ps(_mm256_set1_ps(*a1.get_unchecked(k)), vb, s1);
            s2 = _mm256_fmadd_ps(_mm256_set1_ps(*a2.get_unchecked(k)), vb, s2);
            s3 = _mm256_fmadd_ps(_mm256_set1_ps(*a3.get_unchecked(k)), vb, s3);
        }
        _mm256_maskstore_ps(o0.as_mut_ptr().add(j), mask, s0);
        _mm256_maskstore_ps(o1.as_mut_ptr().add(j), mask, s1);
        _mm256_maskstore_ps(o2.as_mut_ptr().add(j), mask, s2);
        _mm256_maskstore_ps(o3.as_mut_ptr().add(j), mask, s3);
        j += lanes as usize;
    }
}

/// `unsafe` only to share the dispatch-table signature; always safe to
/// call. Per-row panel body — the portable fallback.
unsafe fn matmul_block_scalar(
    a: &[f32],
    b: &[f32],
    first_row: usize,
    inner: usize,
    n: usize,
    out: &mut [f32],
) {
    for (r, out_row) in out.chunks_mut(n).enumerate() {
        let i = first_row + r;
        matmul_row_body::<false>(&a[i * inner..(i + 1) * inner], b, out_row);
    }
}

fn matmul_block_kernel() -> MatmulBlock {
    match simd_level() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 => matmul_block_avx512,
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => matmul_block_avx2,
        _ => matmul_block_scalar,
    }
}

// ---------------------------------------------------------------------------
// matmul_transpose_b, wide-accumulate variant: contiguous dot products with
// f64 running sums. (The default f32-accumulate variant instead materializes
// Bᵀ and reuses the panel matmul kernel above — see `matmul_tb_rows`.)
// ---------------------------------------------------------------------------

#[inline(always)]
fn tb_row_acc64_body(a_row: &[f32], b: &[f32], out_row: &mut [f32]) {
    let inner = a_row.len();
    for (j, o) in out_row.iter_mut().enumerate() {
        let b_row = &b[j * inner..][..inner];
        let a8 = a_row.chunks_exact(8);
        let b8 = b_row.chunks_exact(8);
        let (ra, rb) = (a8.remainder(), b8.remainder());
        // Operands are f32, products and the running sums are f64: the
        // optional wide-accumulate mode for reduction-heavy panels. Eight
        // independent lanes; the lane layout (and thus the result) is fixed
        // regardless of thread count or SIMD width.
        let mut acc = [0.0f64; 8];
        for (ca, cb) in a8.zip(b8) {
            for t in 0..8 {
                acc[t] += f64::from(ca[t]) * f64::from(cb[t]);
            }
        }
        let mut tail = 0.0f64;
        for (&a, &b) in ra.iter().zip(rb) {
            tail += f64::from(a) * f64::from(b);
        }
        let sum = ((acc[0] + acc[1]) + (acc[2] + acc[3]))
            + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
            + tail;
        *o = sum as f32;
    }
}

type TbRow = unsafe fn(&[f32], &[f32], &mut [f32]);

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,fma")]
unsafe fn tb_row_avx512_acc64(a_row: &[f32], b: &[f32], out_row: &mut [f32]) {
    tb_row_acc64_body(a_row, b, out_row)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn tb_row_avx2_acc64(a_row: &[f32], b: &[f32], out_row: &mut [f32]) {
    tb_row_acc64_body(a_row, b, out_row)
}

/// `unsafe` only to share the dispatch-table signature; always safe to call.
unsafe fn tb_row_scalar_acc64(a_row: &[f32], b: &[f32], out_row: &mut [f32]) {
    tb_row_acc64_body(a_row, b, out_row)
}

fn tb_row_acc64_kernel() -> TbRow {
    match simd_level() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 => tb_row_avx512_acc64,
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => tb_row_avx2_acc64,
        _ => tb_row_scalar_acc64,
    }
}

// ---------------------------------------------------------------------------
// Elementwise: leaky ReLU fused with the f64<->f32 round trip — one pass
// that narrows each lane to f32, selects branch-free, and widens back.
// No intermediate f32 buffers; the select multiply carries no FMA, so the
// result is bit-identical across SIMD tiers.
// ---------------------------------------------------------------------------

#[inline(always)]
fn leaky_body(src: &[f64], slope: f32, dst: &mut [f64]) {
    for (d, &v) in dst.iter_mut().zip(src) {
        let x = v as f32;
        *d = f64::from(if x > 0.0 { x } else { slope * x });
    }
}

type LeakyKernel = unsafe fn(&[f64], f32, &mut [f64]);

/// # Safety
///
/// Requires AVX-512F (guaranteed by the [`simd_level`] dispatch).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn leaky_avx512(src: &[f64], slope: f32, dst: &mut [f64]) {
    use std::arch::x86_64::*;
    let n = src.len();
    let vs = _mm256_set1_ps(slope);
    let zero = _mm256_setzero_ps();
    let mut i = 0;
    while i + 8 <= n {
        let x = _mm512_cvtpd_ps(_mm512_loadu_pd(src.as_ptr().add(i)));
        let keep = _mm256_cmp_ps::<_CMP_GT_OQ>(x, zero);
        let r = _mm256_blendv_ps(_mm256_mul_ps(x, vs), x, keep);
        _mm512_storeu_pd(dst.as_mut_ptr().add(i), _mm512_cvtps_pd(r));
        i += 8;
    }
    leaky_body(&src[i..], slope, &mut dst[i..]);
}

/// # Safety
///
/// Requires AVX2 (guaranteed by the [`simd_level`] dispatch).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn leaky_avx2(src: &[f64], slope: f32, dst: &mut [f64]) {
    use std::arch::x86_64::*;
    let n = src.len();
    let vs = _mm_set1_ps(slope);
    let zero = _mm_setzero_ps();
    let mut i = 0;
    while i + 4 <= n {
        let x = _mm256_cvtpd_ps(_mm256_loadu_pd(src.as_ptr().add(i)));
        let keep = _mm_cmpgt_ps(x, zero);
        let r = _mm_blendv_ps(_mm_mul_ps(x, vs), x, keep);
        _mm256_storeu_pd(dst.as_mut_ptr().add(i), _mm256_cvtps_pd(r));
        i += 4;
    }
    leaky_body(&src[i..], slope, &mut dst[i..]);
}

/// `unsafe` only to share the dispatch-table signature; always safe to call.
unsafe fn leaky_scalar(src: &[f64], slope: f32, dst: &mut [f64]) {
    leaky_body(src, slope, dst)
}

/// Leaky ReLU over an `f64` buffer with f32 rounding semantics, in a single
/// fused narrow-select-widen pass.
pub(crate) fn leaky_relu(src: &[f64], slope: f64) -> Vec<f64> {
    let kernel: LeakyKernel = match simd_level() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 => leaky_avx512,
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => leaky_avx2,
        _ => leaky_scalar,
    };
    let mut out = vec![0.0f64; src.len()];
    // SAFETY: the kernel was selected under runtime feature detection.
    unsafe { kernel(src, slope as f32, &mut out) };
    out
}

// ---------------------------------------------------------------------------
// Drivers shared by the precision-routed Tensor methods and TensorF32.
// ---------------------------------------------------------------------------

fn matmul_rows(a32: &[f32], b32: &[f32], m: usize, inner: usize, n: usize, out32: &mut [f32]) {
    let kernel = matmul_block_kernel();
    crate::tensor::run_rowblocks(out32, n, m * n * inner, |first_row, chunk| {
        // SAFETY: the kernel was selected under runtime feature detection.
        unsafe { kernel(a32, b32, first_row, inner, n, chunk) }
    });
}

/// `out = A * B` through the f32 backend; shapes as in `Tensor::matmul`.
pub(crate) fn matmul_into(a: &[f64], b: &[f64], m: usize, inner: usize, n: usize, out: &mut [f64]) {
    f32_matmuls().incr();
    let (a32, b32) = (to_f32(a), to_f32(b));
    let mut out32 = vec![0.0f32; m * n];
    matmul_rows(&a32, &b32, m, inner, n, &mut out32);
    write_f64(&out32, out);
}

fn matmul_ta_rows(a32: &[f32], b32: &[f32], r_dim: usize, p: usize, n: usize, out32: &mut [f32]) {
    // Materializing Aᵀ once turns Aᵀ·B into the plain row-panel product over
    // contiguous B rows: the O(r·p) gather is amortized by the O(r·p·n)
    // kernel, and each output row sees the same column values in the same
    // order a per-row strided gather would produce.
    let at = transpose_f32(a32, r_dim, p);
    matmul_rows(&at, b32, p, r_dim, n, out32);
}

/// `out = Aᵀ * B` through the f32 backend; shapes as in
/// `Tensor::matmul_transpose_a` (`A` is `r_dim x p`, `B` is `r_dim x n`).
pub(crate) fn matmul_ta_into(
    a: &[f64],
    b: &[f64],
    r_dim: usize,
    p: usize,
    n: usize,
    out: &mut [f64],
) {
    f32_matmuls().incr();
    // Aᵀ is materialized straight from the f64 source — the narrowing pass
    // and the transpose fuse into one sweep.
    let at = transpose_to_f32(a, r_dim, p);
    let b32 = to_f32(b);
    let mut out32 = vec![0.0f32; p * n];
    matmul_rows(&at, &b32, p, r_dim, n, &mut out32);
    write_f64(&out32, out);
}

fn matmul_tb_rows(
    a32: &[f32],
    b32: &[f32],
    m: usize,
    inner: usize,
    n: usize,
    accum: F32Accum,
    out32: &mut [f32],
) {
    match accum {
        F32Accum::F32 => {
            // Materializing Bᵀ once (an O(n·inner) copy) turns every output
            // row into the same contiguous panel product the plain matmul
            // kernel runs — ~3x faster on the backward-pass shapes than
            // strided per-element dot products.
            let bt = transpose_f32(b32, n, inner);
            matmul_rows(a32, &bt, m, inner, n, out32);
        }
        F32Accum::F64 => {
            let kernel = tb_row_acc64_kernel();
            crate::tensor::run_rowwise(out32, n, m * n * inner, |i, out_row| {
                // SAFETY: the kernel was selected under runtime feature
                // detection.
                unsafe { kernel(&a32[i * inner..(i + 1) * inner], b32, out_row) }
            });
        }
    }
}

/// `out = A * Bᵀ` through the f32 backend; shapes as in
/// `Tensor::matmul_transpose_b` (`A` is `m x inner`, `B` is `n x inner`).
/// Accumulation width follows [`f32_accum_mode`].
pub(crate) fn matmul_tb_into(
    a: &[f64],
    b: &[f64],
    m: usize,
    inner: usize,
    n: usize,
    out: &mut [f64],
) {
    f32_matmuls().incr();
    let a32 = to_f32(a);
    let mut out32 = vec![0.0f32; m * n];
    match f32_accum_mode() {
        F32Accum::F32 => {
            // Bᵀ is materialized straight from the f64 source (narrow and
            // transpose in one sweep), then the plain panel kernel runs.
            let bt = transpose_to_f32(b, n, inner);
            matmul_rows(&a32, &bt, m, inner, n, &mut out32);
        }
        F32Accum::F64 => {
            let b32 = to_f32(b);
            matmul_tb_rows(&a32, &b32, m, inner, n, F32Accum::F64, &mut out32);
        }
    }
    write_f64(&out32, out);
}

// ---------------------------------------------------------------------------
// Adam: the elementwise moment/update loop in f32.
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn adam_body(
    value: &mut [f32],
    grad: &[f32],
    m: &mut [f32],
    v: &mut [f32],
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    bc1: f32,
    bc2: f32,
) {
    for i in 0..value.len() {
        let g = grad[i];
        let mi = beta1 * m[i] + (1.0 - beta1) * g;
        let vi = beta2 * v[i] + (1.0 - beta2) * g * g;
        m[i] = mi;
        v[i] = vi;
        let m_hat = mi / bc1;
        let v_hat = vi / bc2;
        value[i] -= lr * m_hat / (v_hat.sqrt() + eps);
    }
}

type AdamKernel =
    unsafe fn(&mut [f32], &[f32], &mut [f32], &mut [f32], f32, f32, f32, f32, f32, f32);

#[allow(clippy::too_many_arguments)]
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,fma")]
unsafe fn adam_avx512(
    value: &mut [f32],
    grad: &[f32],
    m: &mut [f32],
    v: &mut [f32],
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    bc1: f32,
    bc2: f32,
) {
    adam_body(value, grad, m, v, lr, beta1, beta2, eps, bc1, bc2)
}

#[allow(clippy::too_many_arguments)]
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn adam_avx2(
    value: &mut [f32],
    grad: &[f32],
    m: &mut [f32],
    v: &mut [f32],
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    bc1: f32,
    bc2: f32,
) {
    adam_body(value, grad, m, v, lr, beta1, beta2, eps, bc1, bc2)
}

/// `unsafe` only to share the dispatch-table signature; always safe to call.
#[allow(clippy::too_many_arguments)]
unsafe fn adam_scalar(
    value: &mut [f32],
    grad: &[f32],
    m: &mut [f32],
    v: &mut [f32],
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    bc1: f32,
    bc2: f32,
) {
    adam_body(value, grad, m, v, lr, beta1, beta2, eps, bc1, bc2)
}

/// One Adam update in f32: moments and parameters are rounded to f32,
/// updated with the SIMD-vectorized loop, and widened back.
#[allow(clippy::too_many_arguments)]
pub(crate) fn adam_update(
    value: &mut [f64],
    grad: &[f64],
    m: &mut [f64],
    v: &mut [f64],
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    bc1: f64,
    bc2: f64,
) {
    let kernel: AdamKernel = match simd_level() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 => adam_avx512,
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => adam_avx2,
        _ => adam_scalar,
    };
    let mut value32 = to_f32(value);
    let grad32 = to_f32(grad);
    let mut m32 = to_f32(m);
    let mut v32 = to_f32(v);
    // SAFETY: the kernel was selected under runtime feature detection.
    unsafe {
        kernel(
            &mut value32,
            &grad32,
            &mut m32,
            &mut v32,
            lr as f32,
            beta1 as f32,
            beta2 as f32,
            eps as f32,
            bc1 as f32,
            bc2 as f32,
        )
    };
    write_f64(&value32, value);
    write_f64(&m32, m);
    write_f64(&v32, v);
}

// ---------------------------------------------------------------------------
// TensorF32: a thin public handle on the same kernels.
// ---------------------------------------------------------------------------

/// A dense, row-major `f32` tensor over the same SIMD kernels the
/// precision-routed [`Tensor`](crate::Tensor) paths use.
///
/// This is the direct way to drive the f32 backend without flipping the
/// process-global [`Precision`](vaesa_linalg::Precision) — benchmarks and
/// property tests compare it against the `f64` reference kernel for the
/// same inputs.
///
/// # Examples
///
/// ```
/// use vaesa_nn::{Tensor, TensorF32};
///
/// let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let c = TensorF32::from_f64(&a).matmul(&TensorF32::from_f64(&a)).to_f64();
/// assert_eq!(c.get(0, 0), 7.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TensorF32 {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl TensorF32 {
    /// Creates a `rows x cols` tensor of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        TensorF32 {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        TensorF32 { rows, cols, data }
    }

    /// Rounds an `f64` tensor to `f32` storage.
    pub fn from_f64(t: &crate::Tensor) -> Self {
        TensorF32 {
            rows: t.rows(),
            cols: t.cols(),
            data: to_f32(t.as_slice()),
        }
    }

    /// Widens back to an `f64` tensor (exact: every `f32` is an `f64`).
    pub fn to_f64(&self) -> crate::Tensor {
        crate::Tensor::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|&v| f64::from(v)).collect(),
        )
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the flat row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the flat row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Matrix product `self * other` on the SIMD f32 kernel; accumulation
    /// order is fixed for every thread count and SIMD width.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &TensorF32) -> TensorF32 {
        assert_eq!(
            self.cols, other.rows,
            "matmul: inner dimensions differ ({} vs {})",
            self.cols, other.rows
        );
        let (m, inner, n) = (self.rows, self.cols, other.cols);
        let mut out = TensorF32::zeros(m, n);
        if m == 0 || n == 0 || inner == 0 {
            return out;
        }
        matmul_rows(&self.data, &other.data, m, inner, n, &mut out.data);
        out
    }

    /// Fused product `selfᵀ * other` (shapes as in
    /// `Tensor::matmul_transpose_a`).
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != other.rows()`.
    pub fn matmul_transpose_a(&self, other: &TensorF32) -> TensorF32 {
        assert_eq!(
            self.rows, other.rows,
            "matmul_transpose_a: shared row counts differ ({} vs {})",
            self.rows, other.rows
        );
        let (r_dim, p, n) = (self.rows, self.cols, other.cols);
        let mut out = TensorF32::zeros(p, n);
        if p == 0 || n == 0 || r_dim == 0 {
            return out;
        }
        matmul_ta_rows(&self.data, &other.data, r_dim, p, n, &mut out.data);
        out
    }

    /// Fused product `self * otherᵀ` with the accumulation width from
    /// [`f32_accum_mode`].
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_transpose_b(&self, other: &TensorF32) -> TensorF32 {
        self.matmul_transpose_b_with(other, f32_accum_mode())
    }

    /// [`TensorF32::matmul_transpose_b`] with an explicit [`F32Accum`],
    /// letting tests and callers pick the wide-accumulate variant without
    /// touching the environment.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_transpose_b_with(&self, other: &TensorF32, accum: F32Accum) -> TensorF32 {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transpose_b: inner dimensions differ ({} vs {})",
            self.cols, other.cols
        );
        let (m, inner, n) = (self.rows, self.cols, other.rows);
        let mut out = TensorF32::zeros(m, n);
        if m == 0 || n == 0 || inner == 0 {
            return out;
        }
        matmul_tb_rows(&self.data, &other.data, m, inner, n, accum, &mut out.data);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    fn pattern(rows: usize, cols: usize, salt: u64) -> Tensor {
        let mut state = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let data = (0..rows * cols)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0
            })
            .collect();
        Tensor::from_vec(rows, cols, data)
    }

    #[test]
    fn f32_matmul_tracks_f64_reference() {
        for &(m, k, n) in &[(1, 1, 1), (2, 3, 5), (7, 13, 17), (64, 65, 63)] {
            let a = pattern(m, k, 3);
            let b = pattern(k, n, 4);
            let exact = a.matmul(&b);
            let fast = TensorF32::from_f64(&a)
                .matmul(&TensorF32::from_f64(&b))
                .to_f64();
            let tol = 1e-4 * k.max(1) as f64;
            assert!(
                fast.approx_eq(&exact, tol),
                "f32 matmul diverged at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn f32_transpose_variants_track_f64_reference() {
        let (m, k, n) = (13, 17, 5);
        let a = pattern(m, k, 7);
        let b = pattern(m, n, 8);
        let c = pattern(n, k, 9);
        let (a32, b32, c32) = (
            TensorF32::from_f64(&a),
            TensorF32::from_f64(&b),
            TensorF32::from_f64(&c),
        );
        let tol = 1e-4 * m.max(k) as f64;
        assert!(a32
            .matmul_transpose_a(&b32)
            .to_f64()
            .approx_eq(&a.matmul_transpose_a(&b), tol));
        for accum in [F32Accum::F32, F32Accum::F64] {
            assert!(a32
                .matmul_transpose_b_with(&c32, accum)
                .to_f64()
                .approx_eq(&a.matmul_transpose_b(&c), tol));
        }
    }

    #[test]
    fn f32_wide_accumulate_is_at_least_as_accurate() {
        // On a long reduction the f64-accumulate variant must not be worse
        // than plain f32 accumulation.
        let a = pattern(2, 4096, 21);
        let b = pattern(3, 4096, 22);
        let exact = a.matmul_transpose_b(&b);
        let (a32, b32) = (TensorF32::from_f64(&a), TensorF32::from_f64(&b));
        let err = |t: &Tensor| -> f64 {
            t.as_slice()
                .iter()
                .zip(exact.as_slice())
                .fold(0.0f64, |m, (&x, &y)| m.max((x - y).abs()))
        };
        let narrow = err(&a32.matmul_transpose_b_with(&b32, F32Accum::F32).to_f64());
        let wide = err(&a32.matmul_transpose_b_with(&b32, F32Accum::F64).to_f64());
        assert!(
            wide <= narrow + 1e-12,
            "wide accumulate lost accuracy: wide={wide} narrow={narrow}"
        );
    }

    #[test]
    fn empty_shapes_are_well_formed() {
        let a = TensorF32::zeros(0, 4);
        let b = TensorF32::zeros(4, 3);
        assert_eq!(a.matmul(&b).shape(), (0, 3));
        let c = TensorF32::zeros(2, 0);
        assert_eq!(c.matmul(&TensorF32::zeros(0, 5)).as_slice(), &[0.0; 10]);
        assert_eq!(
            c.matmul_transpose_b(&TensorF32::zeros(3, 0)).shape(),
            (2, 3)
        );
    }

    #[test]
    fn adam_update_f32_tracks_f64() {
        let n = 37;
        let value = pattern(1, n, 31).into_vec();
        let grad = pattern(1, n, 32).into_vec();
        let m0 = pattern(1, n, 33).map(|x| x * 0.1).into_vec();
        let v0 = pattern(1, n, 34).map(|x| x.abs() * 0.01).into_vec();
        let (lr, b1, b2, eps) = (1e-3, 0.9, 0.999, 1e-8);
        let (bc1, bc2) = (1.0 - 0.9f64.powi(3), 1.0 - 0.999f64.powi(3));

        // f64 reference update.
        let mut value64 = value.clone();
        let mut m64 = m0.clone();
        let mut v64 = v0.clone();
        for i in 0..n {
            let g = grad[i];
            let m = b1 * m64[i] + (1.0 - b1) * g;
            let v = b2 * v64[i] + (1.0 - b2) * g * g;
            m64[i] = m;
            v64[i] = v;
            value64[i] -= lr * (m / bc1) / ((v / bc2).sqrt() + eps);
        }

        let mut value32 = value.clone();
        let mut m32 = m0.clone();
        let mut v32 = v0.clone();
        adam_update(
            &mut value32,
            &grad,
            &mut m32,
            &mut v32,
            lr,
            b1,
            b2,
            eps,
            bc1,
            bc2,
        );
        for i in 0..n {
            assert!(
                (value32[i] - value64[i]).abs() < 1e-5,
                "adam f32 diverged at {i}: {} vs {}",
                value32[i],
                value64[i]
            );
        }
    }
}
