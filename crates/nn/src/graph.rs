use crate::Tensor;

/// Identifier of a value node in a [`Graph`].
///
/// `VarId`s are only meaningful for the graph that created them; using an id
/// from a different graph is a logic error (caught by bounds assertions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(usize);

/// The primitive differentiable operations supported by the tape.
#[derive(Debug, Clone)]
enum Op {
    /// A leaf value (input, parameter, or constant).
    Leaf,
    /// Matrix product `a * b`.
    MatMul(VarId, VarId),
    /// Elementwise sum of two same-shape tensors.
    Add(VarId, VarId),
    /// Elementwise difference `a - b`.
    Sub(VarId, VarId),
    /// Elementwise product.
    Mul(VarId, VarId),
    /// Adds a `1 x cols` bias row to every row of `a`.
    AddRowBroadcast(VarId, VarId),
    /// Multiplies by a compile-time constant.
    Scale(VarId, f64),
    /// Adds a constant to every element (the constant's gradient is zero,
    /// so it is not stored).
    AddScalar(VarId),
    /// Leaky ReLU with the given negative slope.
    LeakyRelu(VarId, f64),
    /// Logistic sigmoid.
    Sigmoid(VarId),
    /// Hyperbolic tangent.
    Tanh(VarId),
    /// Elementwise exponential.
    Exp(VarId),
    /// Elementwise natural log (inputs must be positive).
    Ln(VarId),
    /// Elementwise square.
    Square(VarId),
    /// Sum of all elements, producing a `1 x 1` tensor.
    SumAll(VarId),
    /// Mean of all elements, producing a `1 x 1` tensor.
    MeanAll(VarId),
    /// Column slice `[start, end)`.
    SliceCols(VarId, usize, usize),
    /// Column concatenation of two tensors with equal row counts.
    ConcatCols(VarId, VarId),
}

#[derive(Debug, Clone)]
struct Node {
    value: Tensor,
    op: Op,
}

/// A dynamically built reverse-mode automatic-differentiation tape.
///
/// Every operation appends a node holding the forward value; [`Graph::backward`]
/// then walks the tape in reverse, accumulating gradients with respect to a
/// scalar (`1 x 1`) loss node.
///
/// The graph is rebuilt each training step (define-by-run), which keeps the
/// implementation simple and makes control flow in model code trivially
/// correct.
///
/// # Examples
///
/// ```
/// use vaesa_nn::{Graph, Tensor};
///
/// let mut g = Graph::new();
/// let x = g.leaf(Tensor::from_rows(&[&[3.0]]));
/// let y = g.square(x); // y = x²  =>  dy/dx = 2x = 6
/// g.backward(y);
/// assert_eq!(g.grad(x).unwrap().get(0, 0), 6.0);
/// ```
#[derive(Debug, Default)]
pub struct Graph {
    nodes: Vec<Node>,
    grads: Vec<Option<Tensor>>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Number of nodes currently on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Tensor, op: Op) -> VarId {
        self.nodes.push(Node { value, op });
        self.grads.push(None);
        VarId(self.nodes.len() - 1)
    }

    /// Adds a leaf node (input, parameter, or constant) holding `value`.
    pub fn leaf(&mut self, value: Tensor) -> VarId {
        self.push(value, Op::Leaf)
    }

    /// Forward value of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn value(&self, id: VarId) -> &Tensor {
        &self.nodes[id.0].value
    }

    /// Gradient of the last [`Graph::backward`] loss with respect to node
    /// `id`, or `None` if the node did not receive a gradient.
    pub fn grad(&self, id: VarId) -> Option<&Tensor> {
        self.grads[id.0].as_ref()
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).matmul(self.value(b));
        self.push(v, Op::MatMul(a, b))
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).add(self.value(b));
        self.push(v, Op::Add(a, b))
    }

    /// Elementwise difference `a - b`.
    pub fn sub(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).sub(self.value(b));
        self.push(v, Op::Sub(a, b))
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).mul(self.value(b));
        self.push(v, Op::Mul(a, b))
    }

    /// Adds a `1 x cols` bias row to every row of `a`.
    pub fn add_row_broadcast(&mut self, a: VarId, bias: VarId) -> VarId {
        let v = self.value(a).add_row_broadcast(self.value(bias));
        self.push(v, Op::AddRowBroadcast(a, bias))
    }

    /// Multiplies every element by the constant `k`.
    pub fn scale(&mut self, a: VarId, k: f64) -> VarId {
        let v = self.value(a).scale(k);
        self.push(v, Op::Scale(a, k))
    }

    /// Adds the constant `k` to every element.
    pub fn add_scalar(&mut self, a: VarId, k: f64) -> VarId {
        let v = self.value(a).map(|x| x + k);
        self.push(v, Op::AddScalar(a))
    }

    /// Leaky ReLU activation: `x if x > 0 else slope * x`. Computed in the
    /// active precision (see [`Tensor::leaky_relu`]).
    pub fn leaky_relu(&mut self, a: VarId, slope: f64) -> VarId {
        let v = self.value(a).leaky_relu(slope);
        self.push(v, Op::LeakyRelu(a, slope))
    }

    /// Logistic sigmoid activation, computed in the active precision.
    pub fn sigmoid(&mut self, a: VarId) -> VarId {
        let v = self.value(a).sigmoid();
        self.push(v, Op::Sigmoid(a))
    }

    /// Hyperbolic tangent activation, computed in the active precision.
    pub fn tanh(&mut self, a: VarId) -> VarId {
        let v = self.value(a).tanh();
        self.push(v, Op::Tanh(a))
    }

    /// Elementwise exponential, computed in the active precision.
    pub fn exp(&mut self, a: VarId) -> VarId {
        let v = self.value(a).exp();
        self.push(v, Op::Exp(a))
    }

    /// Elementwise natural logarithm, computed in the active precision.
    ///
    /// # Panics
    ///
    /// Debug-asserts that all inputs are positive.
    pub fn ln(&mut self, a: VarId) -> VarId {
        debug_assert!(
            self.value(a).as_slice().iter().all(|&x| x > 0.0),
            "ln requires positive inputs"
        );
        let v = self.value(a).ln();
        self.push(v, Op::Ln(a))
    }

    /// Elementwise square.
    pub fn square(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(|x| x * x);
        self.push(v, Op::Square(a))
    }

    /// Sum of all elements as a `1 x 1` tensor.
    pub fn sum_all(&mut self, a: VarId) -> VarId {
        let v = Tensor::from_vec(1, 1, vec![self.value(a).sum()]);
        self.push(v, Op::SumAll(a))
    }

    /// Mean of all elements as a `1 x 1` tensor.
    pub fn mean_all(&mut self, a: VarId) -> VarId {
        let v = Tensor::from_vec(1, 1, vec![self.value(a).mean()]);
        self.push(v, Op::MeanAll(a))
    }

    /// Column slice `[start, end)`.
    pub fn slice_cols(&mut self, a: VarId, start: usize, end: usize) -> VarId {
        let v = self.value(a).slice_cols(start, end);
        self.push(v, Op::SliceCols(a, start, end))
    }

    /// Column-wise concatenation.
    pub fn concat_cols(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).concat_cols(self.value(b));
        self.push(v, Op::ConcatCols(a, b))
    }

    /// Mean-squared error between `pred` and `target` as a `1 x 1` node.
    ///
    /// This is the reconstruction / predictor loss used throughout VAESA.
    pub fn mse(&mut self, pred: VarId, target: VarId) -> VarId {
        let diff = self.sub(pred, target);
        let sq = self.square(diff);
        self.mean_all(sq)
    }

    /// KL divergence `KL(N(μ, σ²) ‖ N(0, I))` averaged over the batch,
    /// from `mu` and `log_var` tensors of shape `batch x dz`:
    ///
    /// `-0.5 * mean_batch( Σ_d (1 + logσ² - μ² - σ²) )`
    pub fn kl_divergence(&mut self, mu: VarId, log_var: VarId) -> VarId {
        let dz = self.value(mu).cols() as f64;
        let mu2 = self.square(mu);
        let var = self.exp(log_var);
        let one_plus = self.add_scalar(log_var, 1.0);
        let t1 = self.sub(one_plus, mu2);
        let t2 = self.sub(t1, var);
        // mean over all N·dz elements times dz = batch-mean of the row sums
        let m = self.mean_all(t2);
        self.scale(m, -0.5 * dz)
    }

    /// Runs reverse-mode differentiation from the scalar node `loss`.
    ///
    /// Gradients from any previous `backward` call are cleared first.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a `1 x 1` tensor.
    pub fn backward(&mut self, loss: VarId) {
        assert_eq!(
            self.value(loss).shape(),
            (1, 1),
            "backward requires a scalar (1x1) loss node"
        );
        for g in &mut self.grads {
            *g = None;
        }
        self.grads[loss.0] = Some(Tensor::from_vec(1, 1, vec![1.0]));

        for i in (0..self.nodes.len()).rev() {
            // Take the node's gradient out of its slot for the duration of
            // this step and put it back afterwards: arms that only read the
            // upstream gradient (matmul, scale, slicing) then skip the full
            // clone the old `grads[i].clone()` formulation paid on every
            // live node. Operands always precede their node on the tape, so
            // no `accumulate` below can touch slot `i` while it is empty.
            let Some(gout) = self.grads[i].take() else {
                continue;
            };
            let op = self.nodes[i].op.clone();
            match op {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    // Fused variants avoid materializing transposed copies
                    // of the forward values on every backward step.
                    let ga = gout.matmul_transpose_b(&self.nodes[b.0].value);
                    let gb = self.nodes[a.0].value.matmul_transpose_a(&gout);
                    self.accumulate(a, ga);
                    self.accumulate(b, gb);
                }
                Op::Add(a, b) => {
                    self.accumulate(a, gout.clone());
                    self.accumulate(b, gout.clone());
                }
                Op::Sub(a, b) => {
                    self.accumulate(a, gout.clone());
                    // Elementwise negation flips the sign bit exactly like
                    // the old `scale(-1.0)`.
                    self.accumulate(b, gout.map(|v| -v));
                }
                Op::Mul(a, b) => {
                    self.accumulate(a, gout.mul(&self.nodes[b.0].value));
                    self.accumulate(b, gout.mul(&self.nodes[a.0].value));
                }
                Op::AddRowBroadcast(a, bias) => {
                    self.accumulate(bias, gout.sum_rows());
                    self.accumulate(a, gout.clone());
                }
                Op::Scale(a, k) => self.accumulate(a, gout.scale(k)),
                Op::AddScalar(a) => self.accumulate(a, gout.clone()),
                // The unary backward rules below multiply a copy of `gout`
                // in place with the local derivative, fused into one
                // branch-free loop each. Every fused form performs the exact
                // rounding sequence of the old two-tensor formulation, so
                // f64 results stay bit-identical.
                Op::LeakyRelu(a, slope) => {
                    let mut g = gout.clone();
                    for (gv, &xv) in g
                        .as_mut_slice()
                        .iter_mut()
                        .zip(self.nodes[a.0].value.as_slice())
                    {
                        *gv *= if xv > 0.0 { 1.0 } else { slope };
                    }
                    self.accumulate(a, g);
                }
                Op::Sigmoid(a) => {
                    let mut g = gout.clone();
                    for (gv, &yv) in g
                        .as_mut_slice()
                        .iter_mut()
                        .zip(self.nodes[i].value.as_slice())
                    {
                        *gv *= yv * (1.0 - yv);
                    }
                    self.accumulate(a, g);
                }
                Op::Tanh(a) => {
                    let mut g = gout.clone();
                    for (gv, &yv) in g
                        .as_mut_slice()
                        .iter_mut()
                        .zip(self.nodes[i].value.as_slice())
                    {
                        *gv *= 1.0 - yv * yv;
                    }
                    self.accumulate(a, g);
                }
                Op::Exp(a) => {
                    let mut g = gout.clone();
                    for (gv, &yv) in g
                        .as_mut_slice()
                        .iter_mut()
                        .zip(self.nodes[i].value.as_slice())
                    {
                        *gv *= yv;
                    }
                    self.accumulate(a, g);
                }
                Op::Ln(a) => {
                    let mut g = gout.clone();
                    for (gv, &xv) in g
                        .as_mut_slice()
                        .iter_mut()
                        .zip(self.nodes[a.0].value.as_slice())
                    {
                        *gv *= 1.0 / xv;
                    }
                    self.accumulate(a, g);
                }
                Op::Square(a) => {
                    let mut g = gout.clone();
                    for (gv, &xv) in g
                        .as_mut_slice()
                        .iter_mut()
                        .zip(self.nodes[a.0].value.as_slice())
                    {
                        *gv *= 2.0 * xv;
                    }
                    self.accumulate(a, g);
                }
                Op::SumAll(a) => {
                    let (r, c) = self.nodes[a.0].value.shape();
                    let g = Tensor::fill(r, c, gout.get(0, 0));
                    self.accumulate(a, g);
                }
                Op::MeanAll(a) => {
                    let (r, c) = self.nodes[a.0].value.shape();
                    let n = (r * c) as f64;
                    let g = Tensor::fill(r, c, gout.get(0, 0) / n);
                    self.accumulate(a, g);
                }
                Op::SliceCols(a, start, _end) => {
                    let (r, c) = self.nodes[a.0].value.shape();
                    let width = gout.cols();
                    let mut g = Tensor::zeros(r, c);
                    for row in 0..r {
                        g.as_mut_slice()[row * c + start..row * c + start + width]
                            .copy_from_slice(gout.row(row));
                    }
                    self.accumulate(a, g);
                }
                Op::ConcatCols(a, b) => {
                    let ca = self.nodes[a.0].value.cols();
                    let cb = self.nodes[b.0].value.cols();
                    self.accumulate(a, gout.slice_cols(0, ca));
                    self.accumulate(b, gout.slice_cols(ca, ca + cb));
                }
            }
            self.grads[i] = Some(gout);
        }
    }

    fn accumulate(&mut self, id: VarId, g: Tensor) {
        match &mut self.grads[id.0] {
            Some(existing) => existing.add_assign(&g),
            slot @ None => *slot = Some(g),
        }
    }

    /// Clears the tape for reuse, keeping both backing allocations so a
    /// per-minibatch training loop stops paying two `Vec` growths per step.
    ///
    /// All previously issued [`VarId`]s become invalid.
    pub fn reset(&mut self) {
        self.nodes.clear();
        self.grads.clear();
    }

    /// Takes the forward value out of node `id`, leaving an empty tensor.
    ///
    /// The training loop uses this to reclaim minibatch input buffers
    /// after the optimizer step, feeding them back into
    /// [`Tensor::select_rows_into`] for the next batch instead of
    /// allocating fresh tensors.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn take_value(&mut self, id: VarId) -> Tensor {
        std::mem::replace(&mut self.nodes[id.0].value, Tensor::zeros(0, 0))
    }
}

/// Checks an analytic gradient against central finite differences.
///
/// `f` must build a fresh graph from the flat parameter vector `x` and
/// return the scalar loss; `analytic` is the gradient to verify. Returns the
/// maximum absolute discrepancy.
///
/// Intended for tests; O(len(x)) evaluations of `f`.
pub fn finite_diff_check(
    x: &[f64],
    analytic: &[f64],
    eps: f64,
    mut f: impl FnMut(&[f64]) -> f64,
) -> f64 {
    assert_eq!(x.len(), analytic.len(), "gradient length mismatch");
    let mut worst: f64 = 0.0;
    let mut xp = x.to_vec();
    for i in 0..x.len() {
        xp[i] = x[i] + eps;
        let fp = f(&xp);
        xp[i] = x[i] - eps;
        let fm = f(&xp);
        xp[i] = x[i];
        let numeric = (fp - fm) / (2.0 * eps);
        worst = worst.max((numeric - analytic[i]).abs());
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar(v: f64) -> Tensor {
        Tensor::from_vec(1, 1, vec![v])
    }

    #[test]
    fn simple_chain_rule() {
        // y = (2x + 1)² at x = 3 => y = 49, dy/dx = 2*(2x+1)*2 = 28
        let mut g = Graph::new();
        let x = g.leaf(scalar(3.0));
        let s = g.scale(x, 2.0);
        let t = g.add_scalar(s, 1.0);
        let y = g.square(t);
        assert_eq!(g.value(y).get(0, 0), 49.0);
        g.backward(y);
        assert_eq!(g.grad(x).unwrap().get(0, 0), 28.0);
    }

    #[test]
    fn matmul_gradients_match_finite_difference() {
        // loss = mean((A·B)²) for random-ish A, B.
        let a0 = [0.5, -1.0, 2.0, 0.3, 1.5, -0.7];
        let b0 = [1.0, -0.5, 0.25, 2.0, -1.5, 0.75];
        let build = |av: &[f64], bv: &[f64]| {
            let mut g = Graph::new();
            let a = g.leaf(Tensor::from_vec(2, 3, av.to_vec()));
            let b = g.leaf(Tensor::from_vec(3, 2, bv.to_vec()));
            let p = g.matmul(a, b);
            let sq = g.square(p);
            let l = g.mean_all(sq);
            (g, a, b, l)
        };
        let (mut g, a, b, l) = build(&a0, &b0);
        g.backward(l);
        let ga = g.grad(a).unwrap().clone().into_vec();
        let gb = g.grad(b).unwrap().clone().into_vec();

        let worst_a = finite_diff_check(&a0, &ga, 1e-6, |av| {
            let (g, _, _, l) = build(av, &b0);
            g.value(l).get(0, 0)
        });
        let worst_b = finite_diff_check(&b0, &gb, 1e-6, |bv| {
            let (g, _, _, l) = build(&a0, bv);
            g.value(l).get(0, 0)
        });
        assert!(worst_a < 1e-7, "matmul grad A off by {worst_a}");
        assert!(worst_b < 1e-7, "matmul grad B off by {worst_b}");
    }

    #[test]
    fn activations_match_finite_difference() {
        let x0 = [-1.2, -0.1, 0.0, 0.4, 2.5];
        for act in ["leaky", "sigmoid", "tanh", "exp"] {
            let build = |xv: &[f64]| {
                let mut g = Graph::new();
                let x = g.leaf(Tensor::from_vec(1, xv.len(), xv.to_vec()));
                let y = match act {
                    "leaky" => g.leaky_relu(x, 0.01),
                    "sigmoid" => g.sigmoid(x),
                    "tanh" => g.tanh(x),
                    "exp" => g.exp(x),
                    _ => unreachable!(),
                };
                let sq = g.square(y);
                let l = g.sum_all(sq);
                (g, x, l)
            };
            let (mut g, x, l) = build(&x0);
            g.backward(l);
            let gx = g.grad(x).unwrap().clone().into_vec();
            let worst = finite_diff_check(&x0, &gx, 1e-6, |xv| {
                let (g, _, l) = build(xv);
                g.value(l).get(0, 0)
            });
            // leaky relu has a kink at 0.0 (x0 contains 0.0) where the
            // subgradient is used; skip exactness there by tolerance.
            assert!(worst < 1e-2, "{act} grad off by {worst}");
        }
    }

    #[test]
    fn ln_gradient() {
        let x0 = [0.5, 1.0, 3.0];
        let build = |xv: &[f64]| {
            let mut g = Graph::new();
            let x = g.leaf(Tensor::from_vec(1, 3, xv.to_vec()));
            let y = g.ln(x);
            let l = g.sum_all(y);
            (g, x, l)
        };
        let (mut g, x, l) = build(&x0);
        g.backward(l);
        let gx = g.grad(x).unwrap().clone().into_vec();
        assert!((gx[0] - 2.0).abs() < 1e-12);
        assert!((gx[1] - 1.0).abs() < 1e-12);
        assert!((gx[2] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn broadcast_bias_gradient_sums_over_rows() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]));
        let b = g.leaf(Tensor::row_vector(&[0.1, 0.2]));
        let y = g.add_row_broadcast(x, b);
        let l = g.sum_all(y);
        g.backward(l);
        assert_eq!(g.grad(b).unwrap().as_slice(), &[3.0, 3.0]);
        assert_eq!(g.grad(x).unwrap().as_slice(), &[1.0; 6]);
    }

    #[test]
    fn slice_and_concat_route_gradients() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]));
        let left = g.slice_cols(x, 0, 2);
        let right = g.slice_cols(x, 2, 4);
        let scaled = g.scale(right, 10.0);
        let joined = g.concat_cols(left, scaled);
        let l = g.sum_all(joined);
        g.backward(l);
        assert_eq!(g.grad(x).unwrap().as_slice(), &[1.0, 1.0, 10.0, 10.0]);
    }

    #[test]
    fn mse_matches_manual_computation() {
        let mut g = Graph::new();
        let pred = g.leaf(Tensor::from_rows(&[&[1.0, 2.0]]));
        let target = g.leaf(Tensor::from_rows(&[&[0.0, 4.0]]));
        let l = g.mse(pred, target);
        // ((1-0)² + (2-4)²)/2 = (1 + 4)/2 = 2.5
        assert_eq!(g.value(l).get(0, 0), 2.5);
        g.backward(l);
        // d/dpred = 2*(pred-target)/n = [1, -2]
        assert_eq!(g.grad(pred).unwrap().as_slice(), &[1.0, -2.0]);
    }

    #[test]
    fn kl_divergence_of_standard_normal_is_zero() {
        let mut g = Graph::new();
        let mu = g.leaf(Tensor::zeros(4, 2));
        let logvar = g.leaf(Tensor::zeros(4, 2));
        let kl = g.kl_divergence(mu, logvar);
        assert!(g.value(kl).get(0, 0).abs() < 1e-12);
    }

    #[test]
    fn kl_divergence_known_value_and_gradient() {
        // KL(N(μ, σ²) || N(0,1)) per dim = 0.5(μ² + σ² - lnσ² - 1).
        // For μ=1, lnσ²=0 (σ²=1): 0.5 * 1 = 0.5 per dim, 2 dims => 1.0.
        let mu0 = [1.0, 1.0];
        let build = |m: &[f64]| {
            let mut g = Graph::new();
            let mu = g.leaf(Tensor::from_vec(1, 2, m.to_vec()));
            let lv = g.leaf(Tensor::zeros(1, 2));
            let kl = g.kl_divergence(mu, lv);
            (g, mu, kl)
        };
        let (mut g, mu, kl) = build(&mu0);
        assert!((g.value(kl).get(0, 0) - 1.0).abs() < 1e-12);
        g.backward(kl);
        let gmu = g.grad(mu).unwrap().clone().into_vec();
        let worst = finite_diff_check(&mu0, &gmu, 1e-6, |m| {
            let (g, _, kl) = build(m);
            g.value(kl).get(0, 0)
        });
        assert!(worst < 1e-8, "kl grad off by {worst}");
    }

    #[test]
    fn gradients_accumulate_through_shared_nodes() {
        // y = x + x => dy/dx = 2
        let mut g = Graph::new();
        let x = g.leaf(scalar(5.0));
        let y = g.add(x, x);
        let l = g.sum_all(y);
        g.backward(l);
        assert_eq!(g.grad(x).unwrap().get(0, 0), 2.0);
    }

    #[test]
    fn backward_clears_previous_gradients() {
        let mut g = Graph::new();
        let x = g.leaf(scalar(2.0));
        let y = g.square(x);
        g.backward(y);
        assert_eq!(g.grad(x).unwrap().get(0, 0), 4.0);
        g.backward(y); // same loss again: must not double-accumulate
        assert_eq!(g.grad(x).unwrap().get(0, 0), 4.0);
    }

    #[test]
    #[should_panic(expected = "scalar")]
    fn backward_rejects_non_scalar_loss() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::zeros(2, 2));
        g.backward(x);
    }

    #[test]
    fn reset_reuses_tape_allocations() {
        let mut g = Graph::new();
        let x = g.leaf(scalar(2.0));
        let y = g.square(x);
        g.backward(y);
        g.reset();
        assert!(g.is_empty());
        let x2 = g.leaf(scalar(3.0));
        let y2 = g.square(x2);
        g.backward(y2);
        assert_eq!(g.grad(x2).unwrap().get(0, 0), 6.0);
    }

    #[test]
    fn take_value_reclaims_leaf_buffer() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_rows(&[&[1.0, 2.0]]));
        let taken = g.take_value(x);
        assert_eq!(taken.as_slice(), &[1.0, 2.0]);
        assert!(g.value(x).is_empty());
    }

    #[test]
    fn unreached_nodes_have_no_grad() {
        let mut g = Graph::new();
        let x = g.leaf(scalar(1.0));
        let unused = g.leaf(scalar(9.0));
        let y = g.square(x);
        g.backward(y);
        assert!(g.grad(unused).is_none());
    }
}
