#![deny(missing_docs)]
//! Tensors, reverse-mode automatic differentiation, MLP layers, and
//! optimizers — the neural-network substrate for the VAESA reproduction.
//!
//! The paper trains its VAE and performance predictors with PyTorch; this
//! crate provides the equivalent machinery from scratch:
//!
//! - [`Tensor`]: dense 2-D `f64` arrays (batch × features). Setting the
//!   process-global [`Precision`] to `F32` (env `VAESA_PRECISION=f32`)
//!   reroutes its matmul/activation/Adam hot loops through the SIMD f32
//!   backend ([`TensorF32`] exposes the same kernels directly); `f64` stays
//!   the bit-exact default.
//! - [`Graph`]: a define-by-run autodiff tape with the operations the VAESA
//!   models need (matmul, broadcasting bias, leaky ReLU/sigmoid/tanh, exp/ln,
//!   slicing/concatenation, MSE and Gaussian-KL losses).
//! - [`Linear`] / [`Mlp`]: fully connected networks with Kaiming-uniform
//!   initialization.
//! - [`Sgd`] / [`Adam`]: optimizers; Adam carries per-parameter moments in
//!   [`Param`].
//! - [`Batcher`], [`randn`], [`rand_uniform`]: minibatching and sampling
//!   helpers (seeded, deterministic).
//!
//! # Examples
//!
//! Train a tiny regressor on `y = 2x`:
//!
//! ```
//! use vaesa_nn::{Activation, Adam, Graph, Mlp, Tensor};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let mut mlp = Mlp::new(&[1, 8, 1], Activation::Tanh, Activation::Identity, &mut rng);
//! let mut adam = Adam::new(0.01);
//! let xs = Tensor::from_rows(&[&[0.0], &[0.5], &[1.0]]);
//! let ys = xs.scale(2.0);
//! let mut last_loss = f64::INFINITY;
//! for _ in 0..1000 {
//!     let mut g = Graph::new();
//!     let x = g.leaf(xs.clone());
//!     let t = g.leaf(ys.clone());
//!     let pass = mlp.forward(&mut g, x);
//!     let loss = g.mse(pass.output, t);
//!     g.backward(loss);
//!     mlp.zero_grad();
//!     mlp.accumulate_grads(&g, &pass);
//!     mlp.adam_step(&mut adam);
//!     last_loss = g.value(loss).get(0, 0);
//! }
//! assert!(last_loss < 1e-3);
//! ```

mod data;
mod graph;
mod layers;
mod optim;
mod simd32;
mod tensor;

pub use data::{rand_uniform, randn, randn_into, Batcher};
pub use graph::{finite_diff_check, Graph, VarId};
pub use layers::{Activation, Linear, Mlp, MlpPass, Param};
pub use optim::{Adam, Sgd};
pub use simd32::{f32_accum_mode, F32Accum, TensorF32};
pub use tensor::Tensor;
pub use vaesa_linalg::{cpu_features, set_precision, Precision};
