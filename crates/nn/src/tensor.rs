use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major, two-dimensional `f64` tensor.
///
/// Throughout this workspace the first dimension is the batch dimension and
/// the second is the feature dimension, so a minibatch of 32 six-feature
/// hardware configurations is a `32 x 6` tensor.
///
/// `Tensor` deliberately supports only the operations the VAESA models need;
/// autodiff over these operations lives in [`crate::Graph`].
///
/// # Examples
///
/// ```
/// use vaesa_nn::Tensor;
///
/// let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Tensor::fill(2, 2, 1.0);
/// let sum = a.add(&b);
/// assert_eq!(sum.get(1, 1), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Tensor {
    /// Creates a `rows x cols` tensor of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` tensor filled with `value`.
    pub fn fill(rows: usize, cols: usize, value: f64) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Tensor { rows, cols, data }
    }

    /// Creates a tensor from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows are empty or ragged.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "from_rows requires equal-length rows"
        );
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Tensor {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a single-row tensor from a slice.
    pub fn row_vector(values: &[f64]) -> Self {
        Tensor::from_vec(1, values.len(), values.to_vec())
    }

    /// Number of rows (batch size).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (feature count).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn set(&mut self, r: usize, c: usize, value: f64) {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        self.data[r * self.cols + c] = value;
    }

    /// Borrows the flat row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the flat row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrows row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Stacks row tensors vertically.
    ///
    /// # Panics
    ///
    /// Panics if the input is empty or the column counts differ.
    pub fn vstack(parts: &[Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "vstack requires at least one tensor");
        let cols = parts[0].cols;
        assert!(
            parts.iter().all(|p| p.cols == cols),
            "vstack requires equal column counts"
        );
        let rows = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        Tensor { rows, cols, data }
    }

    /// Selects a subset of rows by index, cloning them into a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Tensor {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Tensor {
            rows: indices.len(),
            cols: self.cols,
            data,
        }
    }

    /// Applies `f` elementwise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    fn zip(&self, other: &Tensor, op: &str, f: impl Fn(f64, f64) -> f64) -> Tensor {
        assert_eq!(
            self.shape(),
            other.shape(),
            "{op}: shape mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Elementwise sum.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, "add", |a, b| a + b)
    }

    /// Elementwise difference.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, "sub", |a, b| a - b)
    }

    /// Elementwise product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, "mul", |a, b| a * b)
    }

    /// Multiplies every element by `k`.
    pub fn scale(&self, k: f64) -> Tensor {
        self.map(|v| v * k)
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul: inner dimensions differ ({} vs {})",
            self.cols, other.rows
        );
        let mut out = Tensor::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Adds a `1 x cols` row vector to every row.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 x self.cols()`.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Tensor {
        assert_eq!(
            bias.shape(),
            (1, self.cols),
            "broadcast bias must be 1x{}, got {:?}",
            self.cols,
            bias.shape()
        );
        let mut out = self.clone();
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[r * self.cols + c] += bias.data[c];
            }
        }
        out
    }

    /// Sums every element.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of every element; 0.0 for an empty tensor.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Sums over rows, producing a `1 x cols` tensor.
    pub fn sum_rows(&self) -> Tensor {
        let mut out = Tensor::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Copies columns `[start, end)` into a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.cols()`.
    pub fn slice_cols(&self, start: usize, end: usize) -> Tensor {
        assert!(start <= end && end <= self.cols, "invalid column range {start}..{end}");
        let width = end - start;
        let mut data = Vec::with_capacity(self.rows * width);
        for r in 0..self.rows {
            data.extend_from_slice(&self.data[r * self.cols + start..r * self.cols + end]);
        }
        Tensor {
            rows: self.rows,
            cols: width,
            data,
        }
    }

    /// Concatenates two tensors with equal row counts along columns.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn concat_cols(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rows, other.rows,
            "concat_cols: row counts differ ({} vs {})",
            self.rows, other.rows
        );
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Tensor {
            rows: self.rows,
            cols,
            data,
        }
    }

    /// Largest absolute element, or 0.0 when empty.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &v| m.max(v.abs()))
    }

    /// Returns `true` if both tensors have the same shape and all elements
    /// are within `tol` of each other.
    pub fn approx_eq(&self, other: &Tensor, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Tensor {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(12) {
                write!(f, "{:>11.5} ", self.get(r, c))?;
            }
            writeln!(f, "{}", if self.cols > 12 { "..." } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  ... ({} more rows)", self.rows - 8)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_accessors() {
        let t = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.get(1, 2), 6.0);
        assert_eq!(t.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_bad_shape_panics() {
        let _ = Tensor::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn elementwise_and_scale() {
        let a = Tensor::from_rows(&[&[1.0, -2.0]]);
        let b = Tensor::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.add(&b).as_slice(), &[4.0, 2.0]);
        assert_eq!(a.sub(&b).as_slice(), &[-2.0, -6.0]);
        assert_eq!(a.mul(&b).as_slice(), &[3.0, -8.0]);
        assert_eq!(a.scale(-1.0).as_slice(), &[-1.0, 2.0]);
        assert_eq!(a.map(f64::abs).as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn matmul_and_transpose() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
        assert_eq!(a.transpose().as_slice(), &[1.0, 3.0, 2.0, 4.0]);
    }

    #[test]
    fn broadcast_bias() {
        let x = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::row_vector(&[10.0, 20.0]);
        let y = x.add_row_broadcast(&b);
        assert_eq!(y.as_slice(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.5);
        assert_eq!(t.sum_rows().as_slice(), &[4.0, 6.0]);
        assert_eq!(t.max_abs(), 4.0);
    }

    #[test]
    fn slicing_and_concat() {
        let t = Tensor::from_rows(&[&[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0, 7.0, 8.0]]);
        let left = t.slice_cols(0, 2);
        let right = t.slice_cols(2, 4);
        assert_eq!(left.as_slice(), &[1.0, 2.0, 5.0, 6.0]);
        assert_eq!(right.as_slice(), &[3.0, 4.0, 7.0, 8.0]);
        let joined = left.concat_cols(&right);
        assert!(joined.approx_eq(&t, 0.0));
    }

    #[test]
    fn stacking_and_selection() {
        let a = Tensor::row_vector(&[1.0, 2.0]);
        let b = Tensor::row_vector(&[3.0, 4.0]);
        let s = Tensor::vstack(&[a, b]);
        assert_eq!(s.shape(), (2, 2));
        let sel = s.select_rows(&[1, 0, 1]);
        assert_eq!(sel.as_slice(), &[3.0, 4.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn display_is_nonempty() {
        let t = Tensor::zeros(1, 1);
        assert!(format!("{t}").contains("1x1"));
    }
}
