use serde::{Deserialize, Serialize};
use std::fmt;
use vaesa_linalg::Precision;

/// A dense, row-major, two-dimensional `f64` tensor.
///
/// Throughout this workspace the first dimension is the batch dimension and
/// the second is the feature dimension, so a minibatch of 32 six-feature
/// hardware configurations is a `32 x 6` tensor.
///
/// `Tensor` deliberately supports only the operations the VAESA models need;
/// autodiff over these operations lives in [`crate::Graph`].
///
/// # Examples
///
/// ```
/// use vaesa_nn::Tensor;
///
/// let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Tensor::fill(2, 2, 1.0);
/// let sum = a.add(&b);
/// assert_eq!(sum.get(1, 1), 5.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Tensor {
    /// Creates a `rows x cols` tensor of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` tensor filled with `value`.
    pub fn fill(rows: usize, cols: usize, value: f64) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Tensor { rows, cols, data }
    }

    /// Creates a tensor from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows are empty or ragged.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "from_rows requires equal-length rows"
        );
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Tensor {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a single-row tensor from a slice.
    pub fn row_vector(values: &[f64]) -> Self {
        Tensor::from_vec(1, values.len(), values.to_vec())
    }

    /// Number of rows (batch size).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (feature count).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn set(&mut self, r: usize, c: usize, value: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = value;
    }

    /// Borrows the flat row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the flat row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrows row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Stacks row tensors vertically.
    ///
    /// # Panics
    ///
    /// Panics if the input is empty or the column counts differ.
    pub fn vstack(parts: &[Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "vstack requires at least one tensor");
        let cols = parts[0].cols;
        assert!(
            parts.iter().all(|p| p.cols == cols),
            "vstack requires equal column counts"
        );
        let rows = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        Tensor { rows, cols, data }
    }

    /// Selects a subset of rows by index, cloning them into a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Tensor {
        let mut out = Tensor::zeros(0, 0);
        self.select_rows_into(indices, &mut out);
        out
    }

    /// Like [`Tensor::select_rows`], but reuses `out`'s buffer instead of
    /// allocating — the training loop calls this once per minibatch.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows_into(&self, indices: &[usize], out: &mut Tensor) {
        out.rows = indices.len();
        out.cols = self.cols;
        out.data.clear();
        out.data.reserve(indices.len() * self.cols);
        for &i in indices {
            out.data.extend_from_slice(self.row(i));
        }
    }

    /// Applies `f` elementwise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` elementwise in `f32` — operands are rounded once and the
    /// result widened back. The elementwise path of the f32 precision mode.
    fn map_f32(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f64::from(f(v as f32))).collect(),
        }
    }

    /// Elementwise logistic sigmoid `1 / (1 + e^-x)`, computed in the active
    /// [`Precision`] (f32 transcendentals roughly halve the cost).
    pub fn sigmoid(&self) -> Tensor {
        match Precision::active() {
            Precision::F64 => self.map(|x| 1.0 / (1.0 + (-x).exp())),
            Precision::F32 => self.map_f32(|x| 1.0 / (1.0 + (-x).exp())),
        }
    }

    /// Elementwise hyperbolic tangent in the active [`Precision`].
    pub fn tanh(&self) -> Tensor {
        match Precision::active() {
            Precision::F64 => self.map(f64::tanh),
            Precision::F32 => self.map_f32(f32::tanh),
        }
    }

    /// Elementwise natural exponential in the active [`Precision`].
    pub fn exp(&self) -> Tensor {
        match Precision::active() {
            Precision::F64 => self.map(f64::exp),
            Precision::F32 => self.map_f32(f32::exp),
        }
    }

    /// Elementwise natural logarithm in the active [`Precision`]; callers
    /// guarantee positive inputs (see `Graph::ln`).
    pub fn ln(&self) -> Tensor {
        match Precision::active() {
            Precision::F64 => self.map(f64::ln),
            Precision::F32 => self.map_f32(f32::ln),
        }
    }

    /// Elementwise leaky ReLU (`x` for positive inputs, `slope * x`
    /// otherwise) in the active [`Precision`]. The f32 path runs the
    /// runtime-dispatched branch-free SIMD select kernel.
    pub fn leaky_relu(&self, slope: f64) -> Tensor {
        match Precision::active() {
            Precision::F64 => self.map(|x| if x > 0.0 { x } else { slope * x }),
            Precision::F32 => Tensor {
                rows: self.rows,
                cols: self.cols,
                data: crate::simd32::leaky_relu(&self.data, slope),
            },
        }
    }

    fn zip(&self, other: &Tensor, op: &str, f: impl Fn(f64, f64) -> f64) -> Tensor {
        assert_eq!(
            self.shape(),
            other.shape(),
            "{op}: shape mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Elementwise sum.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, "add", |a, b| a + b)
    }

    /// Elementwise sum in place (`self += other`), avoiding the fresh
    /// allocation of [`Tensor::add`] on gradient-accumulation paths.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "add_assign: shape mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Reshapes to `rows x cols`, reusing the backing buffer when possible.
    ///
    /// Element values after the call are unspecified; callers are expected to
    /// overwrite the whole tensor (e.g. [`crate::randn_into`]).
    pub fn resize_uninit(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Reshapes to `rows x cols` and overwrites the contents with `data`
    /// (row-major), reusing the backing buffer when possible.
    ///
    /// This is the batched-inference counterpart of [`Tensor::from_vec`]
    /// for hot loops that refill the same tensor every iteration.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn copy_from_flat(&mut self, rows: usize, cols: usize, data: &[f64]) {
        assert_eq!(
            data.len(),
            rows * cols,
            "copy_from_flat: {} elements cannot fill a {rows}x{cols} tensor",
            data.len()
        );
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.extend_from_slice(data);
    }

    /// Elementwise difference.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, "sub", |a, b| a - b)
    }

    /// Elementwise product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, "mul", |a, b| a * b)
    }

    /// Multiplies every element by `k`.
    pub fn scale(&self, k: f64) -> Tensor {
        self.map(|v| v * k)
    }

    /// Matrix product `self * other`, using a cache-blocked, B-packed
    /// kernel that parallelizes over output rows for large products.
    ///
    /// The inner dimension is processed in fixed panels of
    /// [`KERNEL_PANEL`] with a pinned accumulation order, so results are
    /// bit-identical for every thread count (see DESIGN.md, "Threading &
    /// determinism policy"). When the active [`Precision`] is `F32`, the
    /// product (like both fused transpose variants) routes through the
    /// runtime-dispatched SIMD f32 backend instead — same fixed
    /// accumulation order, tolerance-tested accuracy — for every shape
    /// whose O(m·k·n) kernel work amortizes the f64→f32 round trip;
    /// degenerate products keep the f64 kernels (a deterministic,
    /// shape-only choice).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul: inner dimensions differ ({} vs {})",
            self.cols, other.rows
        );
        let (m, inner, n) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(m, n);
        if m == 0 || n == 0 || inner == 0 {
            return out;
        }
        if Precision::active().is_f32() && crate::simd32::amortizes(m, inner, n) {
            crate::simd32::matmul_into(&self.data, &other.data, m, inner, n, &mut out.data);
            return out;
        }
        let packed = pack_b_panels(&other.data, inner, n);
        run_rowwise(&mut out.data, n, m * n * inner, |i, out_row| {
            let a_row = &self.data[i * inner..(i + 1) * inner];
            packed_panel_product(a_row, &packed, out_row, n);
        });
        out
    }

    /// Fused product `selfᵀ * other` without materializing the transpose.
    ///
    /// `self` is `r x p`, `other` is `r x n`; the result is `p x n` with
    /// `out[i][j] = Σ_r self[r][i] * other[r][j]`. Accumulation runs over
    /// `r` in increasing order for every output element, independent of
    /// thread count.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != other.rows()`.
    pub fn matmul_transpose_a(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rows, other.rows,
            "matmul_transpose_a: shared row counts differ ({} vs {})",
            self.rows, other.rows
        );
        let (r_dim, p, n) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(p, n);
        if p == 0 || n == 0 || r_dim == 0 {
            return out;
        }
        if Precision::active().is_f32() && crate::simd32::amortizes(p, r_dim, n) {
            crate::simd32::matmul_ta_into(&self.data, &other.data, r_dim, p, n, &mut out.data);
            return out;
        }
        run_rowwise(&mut out.data, n, p * n * r_dim, |i, out_row| {
            for r in 0..r_dim {
                let coeff = self.data[r * p + i];
                let b_row = &other.data[r * n..(r + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += coeff * b;
                }
            }
        });
        out
    }

    /// Fused product `self * otherᵀ` without materializing the transpose.
    ///
    /// `self` is `m x k`, `other` is `n x k`; the result is `m x n` built
    /// from contiguous row dot products, accumulated in increasing `k`
    /// order for every output element.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_transpose_b(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transpose_b: inner dimensions differ ({} vs {})",
            self.cols, other.cols
        );
        let (m, inner, n) = (self.rows, self.cols, other.rows);
        let mut out = Tensor::zeros(m, n);
        if m == 0 || n == 0 || inner == 0 {
            return out;
        }
        if Precision::active().is_f32() && crate::simd32::amortizes(m, inner, n) {
            crate::simd32::matmul_tb_into(&self.data, &other.data, m, inner, n, &mut out.data);
            return out;
        }
        run_rowwise(&mut out.data, n, m * n * inner, |i, out_row| {
            let a_row = &self.data[i * inner..(i + 1) * inner];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &other.data[j * inner..(j + 1) * inner];
                // Four independent accumulation lanes break the serial FP add
                // dependency chain; the lane layout (and thus the final value)
                // is fixed and independent of the thread count.
                let mut acc = [0.0f64; 4];
                let a4 = a_row.chunks_exact(4);
                let b4 = b_row.chunks_exact(4);
                let (ra, rb) = (a4.remainder(), b4.remainder());
                for (ca, cb) in a4.zip(b4) {
                    acc[0] += ca[0] * cb[0];
                    acc[1] += ca[1] * cb[1];
                    acc[2] += ca[2] * cb[2];
                    acc[3] += ca[3] * cb[3];
                }
                let mut tail = 0.0;
                for (&a, &b) in ra.iter().zip(rb) {
                    tail += a * b;
                }
                *o = (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail;
            }
        });
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Adds a `1 x cols` row vector to every row.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 x self.cols()`.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Tensor {
        assert_eq!(
            bias.shape(),
            (1, self.cols),
            "broadcast bias must be 1x{}, got {:?}",
            self.cols,
            bias.shape()
        );
        if self.cols == 0 {
            return self.clone();
        }
        // Single fused pass: the clone-then-add formulation touched every
        // element twice. Same additions in the same order, one traversal.
        let mut data = Vec::with_capacity(self.data.len());
        for row in self.data.chunks_exact(self.cols) {
            data.extend(row.iter().zip(&bias.data).map(|(&v, &b)| v + b));
        }
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Sums every element.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of every element; 0.0 for an empty tensor.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Sums over rows, producing a `1 x cols` tensor.
    pub fn sum_rows(&self) -> Tensor {
        let mut out = Tensor::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Copies columns `[start, end)` into a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.cols()`.
    pub fn slice_cols(&self, start: usize, end: usize) -> Tensor {
        assert!(
            start <= end && end <= self.cols,
            "invalid column range {start}..{end}"
        );
        let width = end - start;
        let mut data = Vec::with_capacity(self.rows * width);
        for r in 0..self.rows {
            data.extend_from_slice(&self.data[r * self.cols + start..r * self.cols + end]);
        }
        Tensor {
            rows: self.rows,
            cols: width,
            data,
        }
    }

    /// Concatenates two tensors with equal row counts along columns.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn concat_cols(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(0, 0);
        self.concat_cols_into(other, &mut out);
        out
    }

    /// Like [`Tensor::concat_cols`], but reuses `out`'s buffer.
    ///
    /// # Panics
    ///
    /// Panics on row-count mismatch.
    pub fn concat_cols_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.rows, other.rows,
            "concat_cols: row counts differ ({} vs {})",
            self.rows, other.rows
        );
        let cols = self.cols + other.cols;
        out.rows = self.rows;
        out.cols = cols;
        out.data.clear();
        out.data.reserve(self.rows * cols);
        for r in 0..self.rows {
            out.data.extend_from_slice(self.row(r));
            out.data.extend_from_slice(other.row(r));
        }
    }

    /// Largest absolute element, or 0.0 when empty.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &v| m.max(v.abs()))
    }

    /// Returns `true` if both tensors have the same shape and all elements
    /// are within `tol` of each other.
    pub fn approx_eq(&self, other: &Tensor, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

/// Inner-dimension panel width of the blocked matmul kernel. Four packed
/// B rows per panel keeps the working set inside L1 while letting the
/// compiler vectorize the fused per-column accumulation.
const KERNEL_PANEL: usize = 4;

/// Output rows per parallel work chunk.
const ROW_BLOCK: usize = 4;

/// Multiply-accumulate count above which a product is worth fanning out
/// to the worker pool (below it, thread spawn costs dominate).
const PAR_FLOP_THRESHOLD: usize = 1 << 18;

/// Packs the `inner x n` matrix `b` into zero-padded panels of
/// [`KERNEL_PANEL`] consecutive inner-dimension rows, interleaved per
/// column: element `t` of panel `p` for column `j` lands at
/// `[p * PANEL * n + j * PANEL + t]`. The layout makes the kernel's inner
/// loop a contiguous stream regardless of `n`.
fn pack_b_panels(b: &[f64], inner: usize, n: usize) -> Vec<f64> {
    let panels = inner.div_ceil(KERNEL_PANEL);
    let mut packed = vec![0.0; panels * KERNEL_PANEL * n];
    for p in 0..panels {
        let base = p * KERNEL_PANEL * n;
        for t in 0..KERNEL_PANEL {
            let k = p * KERNEL_PANEL + t;
            if k >= inner {
                break;
            }
            let b_row = &b[k * n..(k + 1) * n];
            for (j, &v) in b_row.iter().enumerate() {
                packed[base + j * KERNEL_PANEL + t] = v;
            }
        }
    }
    packed
}

/// One output row of the blocked product: `out_row += a_row * B` with `B`
/// pre-packed by [`pack_b_panels`]. The accumulation order — panels in
/// increasing `k`, four fused multiply-adds per panel — is fixed, so the
/// result never depends on how rows were distributed across threads.
fn packed_panel_product(a_row: &[f64], packed: &[f64], out_row: &mut [f64], n: usize) {
    let inner = a_row.len();
    for (p, panel) in packed.chunks_exact(KERNEL_PANEL * n).enumerate() {
        let k0 = p * KERNEL_PANEL;
        let a0 = a_row[k0];
        let a1 = if k0 + 1 < inner { a_row[k0 + 1] } else { 0.0 };
        let a2 = if k0 + 2 < inner { a_row[k0 + 2] } else { 0.0 };
        let a3 = if k0 + 3 < inner { a_row[k0 + 3] } else { 0.0 };
        for (o, col) in out_row.iter_mut().zip(panel.chunks_exact(KERNEL_PANEL)) {
            *o += a0 * col[0] + a1 * col[1] + a2 * col[2] + a3 * col[3];
        }
    }
}

/// Runs `kernel(row_index, out_row)` over every `n`-wide row of `data`,
/// fanning out to the worker pool when the product is large enough
/// (`flops` multiply-accumulates) and a pool exists. Row blocks are fixed
/// by [`ROW_BLOCK`], never by thread count, so the arithmetic each output
/// element sees is identical in serial and parallel runs. Generic over the
/// element type so the f64 and f32 kernels share one fan-out policy.
/// Like [`run_rowwise`], but hands the kernel whole [`ROW_BLOCK`]-row
/// chunks (`kernel(first_row, chunk)`, the last chunk possibly short).
/// The f32 backend's register-blocked matmul kernel wants all rows of a
/// block at once so it can keep one FMA chain per row in flight; the chunk
/// boundaries are identical to [`run_rowwise`]'s parallel distribution, so
/// the arithmetic each output element sees is unchanged.
pub(crate) fn run_rowblocks<T: Send>(
    data: &mut [T],
    n: usize,
    flops: usize,
    kernel: impl Fn(usize, &mut [T]) + Sync,
) {
    debug_assert_eq!(data.len() % n, 0);
    if flops >= PAR_FLOP_THRESHOLD && vaesa_par::num_threads() > 1 {
        vaesa_par::par_chunks_mut(data, ROW_BLOCK * n, |_, offset, chunk| {
            kernel(offset / n, chunk);
        });
    } else {
        for (c, chunk) in data.chunks_mut(ROW_BLOCK * n).enumerate() {
            kernel(c * ROW_BLOCK, chunk);
        }
    }
}

pub(crate) fn run_rowwise<T: Send>(
    data: &mut [T],
    n: usize,
    flops: usize,
    kernel: impl Fn(usize, &mut [T]) + Sync,
) {
    debug_assert_eq!(data.len() % n, 0);
    if flops >= PAR_FLOP_THRESHOLD && vaesa_par::num_threads() > 1 {
        vaesa_par::par_chunks_mut(data, ROW_BLOCK * n, |_, offset, chunk| {
            let first_row = offset / n;
            for (r, out_row) in chunk.chunks_mut(n).enumerate() {
                kernel(first_row + r, out_row);
            }
        });
    } else {
        for (i, out_row) in data.chunks_mut(n).enumerate() {
            kernel(i, out_row);
        }
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Tensor {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(12) {
                write!(f, "{:>11.5} ", self.get(r, c))?;
            }
            writeln!(f, "{}", if self.cols > 12 { "..." } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  ... ({} more rows)", self.rows - 8)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_accessors() {
        let t = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.get(1, 2), 6.0);
        assert_eq!(t.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_bad_shape_panics() {
        let _ = Tensor::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn copy_from_flat_reshapes_and_overwrites() {
        let mut t = Tensor::from_rows(&[&[9.0, 9.0, 9.0], &[9.0, 9.0, 9.0]]);
        t.copy_from_flat(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "copy_from_flat")]
    fn copy_from_flat_bad_shape_panics() {
        let mut t = Tensor::zeros(1, 1);
        t.copy_from_flat(2, 2, &[1.0]);
    }

    #[test]
    fn elementwise_and_scale() {
        let a = Tensor::from_rows(&[&[1.0, -2.0]]);
        let b = Tensor::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.add(&b).as_slice(), &[4.0, 2.0]);
        assert_eq!(a.sub(&b).as_slice(), &[-2.0, -6.0]);
        assert_eq!(a.mul(&b).as_slice(), &[3.0, -8.0]);
        assert_eq!(a.scale(-1.0).as_slice(), &[-1.0, 2.0]);
        assert_eq!(a.map(f64::abs).as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn matmul_and_transpose() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
        assert_eq!(a.transpose().as_slice(), &[1.0, 3.0, 2.0, 4.0]);
    }

    #[test]
    fn broadcast_bias() {
        let x = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::row_vector(&[10.0, 20.0]);
        let y = x.add_row_broadcast(&b);
        assert_eq!(y.as_slice(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.5);
        assert_eq!(t.sum_rows().as_slice(), &[4.0, 6.0]);
        assert_eq!(t.max_abs(), 4.0);
    }

    #[test]
    fn slicing_and_concat() {
        let t = Tensor::from_rows(&[&[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0, 7.0, 8.0]]);
        let left = t.slice_cols(0, 2);
        let right = t.slice_cols(2, 4);
        assert_eq!(left.as_slice(), &[1.0, 2.0, 5.0, 6.0]);
        assert_eq!(right.as_slice(), &[3.0, 4.0, 7.0, 8.0]);
        let joined = left.concat_cols(&right);
        assert!(joined.approx_eq(&t, 0.0));
    }

    #[test]
    fn stacking_and_selection() {
        let a = Tensor::row_vector(&[1.0, 2.0]);
        let b = Tensor::row_vector(&[3.0, 4.0]);
        let s = Tensor::vstack(&[a, b]);
        assert_eq!(s.shape(), (2, 2));
        let sel = s.select_rows(&[1, 0, 1]);
        assert_eq!(sel.as_slice(), &[3.0, 4.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn display_is_nonempty() {
        let t = Tensor::zeros(1, 1);
        assert!(format!("{t}").contains("1x1"));
    }

    /// Plain i-k-j triple loop, the pre-blocking semantics (minus the
    /// removed zero-skip branch): the oracle for the packed kernel.
    fn matmul_reference(a: &Tensor, b: &Tensor) -> Tensor {
        assert_eq!(a.cols(), b.rows());
        let mut out = Tensor::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for k in 0..a.cols() {
                let av = a.get(i, k);
                for j in 0..b.cols() {
                    let cur = out.get(i, j);
                    out.set(i, j, cur + av * b.get(k, j));
                }
            }
        }
        out
    }

    /// Deterministic pseudo-random filler (no RNG dependency needed).
    fn pattern_tensor(rows: usize, cols: usize, salt: u64) -> Tensor {
        let mut state = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let data = (0..rows * cols)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                // Uniform-ish in [-2, 2), plus exact zeros so the removed
                // zero-skip branch's absence is exercised on sparse data.
                if state.is_multiple_of(7) {
                    0.0
                } else {
                    ((state >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0
                }
            })
            .collect();
        Tensor::from_vec(rows, cols, data)
    }

    #[test]
    fn blocked_matmul_matches_reference_on_odd_shapes() {
        // Odd/prime shapes stress the panel tail and row-block tail paths.
        for &(m, k, n) in &[
            (1, 1, 1),
            (2, 3, 5),
            (5, 7, 3),
            (7, 13, 17),
            (13, 4, 1),
            (1, 31, 37),
            (31, 37, 13),
            (64, 65, 63),
        ] {
            let a = pattern_tensor(m, k, (m * 1000 + k) as u64);
            let b = pattern_tensor(k, n, (k * 1000 + n) as u64);
            let fast = a.matmul(&b);
            let slow = matmul_reference(&a, &b);
            assert!(
                fast.approx_eq(&slow, 1e-12),
                "blocked matmul diverged from reference at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn blocked_matmul_is_deterministic_across_thread_counts() {
        // Big enough to cross PAR_FLOP_THRESHOLD and actually fan out.
        let a = pattern_tensor(96, 80, 1);
        let b = pattern_tensor(80, 96, 2);
        let baseline = {
            std::env::set_var("VAESA_THREADS", "1");
            a.matmul(&b)
        };
        for threads in ["2", "3", "8"] {
            std::env::set_var("VAESA_THREADS", threads);
            let out = a.matmul(&b);
            assert_eq!(
                out.as_slice(),
                baseline.as_slice(),
                "thread count {threads} changed matmul bits"
            );
        }
        std::env::remove_var("VAESA_THREADS");
    }

    #[test]
    fn transpose_fused_variants_match_materialized_transpose() {
        for &(m, k, n) in &[(3, 5, 7), (13, 17, 5), (40, 33, 29)] {
            let a = pattern_tensor(m, k, 11);
            let b = pattern_tensor(m, n, 12);
            let fused = a.matmul_transpose_a(&b);
            let materialized = a.transpose().matmul(&b);
            assert!(
                fused.approx_eq(&materialized, 1e-12),
                "matmul_transpose_a diverged at {m}x{k}x{n}"
            );

            let c = pattern_tensor(n, k, 13);
            let fused_b = a.matmul_transpose_b(&c);
            let materialized_b = a.matmul(&c.transpose());
            assert!(
                fused_b.approx_eq(&materialized_b, 1e-12),
                "matmul_transpose_b diverged at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn empty_products_are_well_formed() {
        let a = Tensor::zeros(0, 4);
        let b = Tensor::zeros(4, 3);
        assert_eq!(a.matmul(&b).shape(), (0, 3));
        let c = Tensor::zeros(2, 0);
        let d = Tensor::zeros(3, 0);
        assert_eq!(c.matmul(&Tensor::zeros(0, 5)).shape(), (2, 5));
        assert_eq!(c.matmul(&Tensor::zeros(0, 5)).as_slice(), &[0.0; 10]);
        assert_eq!(c.matmul_transpose_b(&d).shape(), (2, 3));
    }

    #[test]
    fn select_rows_into_reuses_buffer() {
        let t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let mut out = Tensor::zeros(0, 0);
        t.select_rows_into(&[2, 0], &mut out);
        assert_eq!(out.as_slice(), &[5.0, 6.0, 1.0, 2.0]);
        let ptr = out.as_slice().as_ptr();
        t.select_rows_into(&[1, 1], &mut out);
        assert_eq!(out.as_slice(), &[3.0, 4.0, 3.0, 4.0]);
        assert_eq!(ptr, out.as_slice().as_ptr(), "buffer must be reused");
    }

    #[test]
    fn add_assign_and_fill_zero() {
        let mut a = Tensor::from_rows(&[&[1.0, 2.0]]);
        let b = Tensor::from_rows(&[&[10.0, 20.0]]);
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[11.0, 22.0]);
        a.fill_zero();
        assert_eq!(a.as_slice(), &[0.0, 0.0]);
    }
}
