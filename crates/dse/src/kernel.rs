use serde::{Deserialize, Serialize};

/// Stationary covariance kernels for Gaussian-process regression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum KernelKind {
    /// Squared-exponential (RBF) kernel.
    Rbf,
    /// Matérn-5/2 kernel — the conventional choice for Bayesian
    /// optimization (Snoek et al. 2012), less smooth than RBF.
    #[default]
    Matern52,
}

/// A kernel with an isotropic lengthscale and an output variance.
///
/// # Examples
///
/// ```
/// use vaesa_dse::{Kernel, KernelKind};
///
/// let k = Kernel::new(KernelKind::Rbf, 1.0, 2.0);
/// assert_eq!(k.eval(&[0.0], &[0.0]), 2.0); // k(x,x) = variance
/// assert!(k.eval(&[0.0], &[3.0]) < 0.05);  // decays with distance
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    /// Kernel family.
    pub kind: KernelKind,
    /// Isotropic lengthscale (> 0).
    pub lengthscale: f64,
    /// Output variance (> 0); `k(x, x) = variance`.
    pub variance: f64,
}

impl Kernel {
    /// Creates a kernel.
    ///
    /// # Panics
    ///
    /// Panics if `lengthscale` or `variance` is not positive.
    pub fn new(kind: KernelKind, lengthscale: f64, variance: f64) -> Self {
        assert!(lengthscale > 0.0, "lengthscale must be positive");
        assert!(variance > 0.0, "variance must be positive");
        Kernel {
            kind,
            lengthscale,
            variance,
        }
    }

    /// Evaluates `k(a, b)`.
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` have different lengths.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "kernel input dimension mismatch");
        let d2: f64 = a
            .iter()
            .zip(b)
            .map(|(&x, &y)| {
                let d = (x - y) / self.lengthscale;
                d * d
            })
            .sum();
        match self.kind {
            KernelKind::Rbf => self.variance * (-0.5 * d2).exp(),
            KernelKind::Matern52 => {
                let r = d2.sqrt();
                let sqrt5_r = 5f64.sqrt() * r;
                self.variance * (1.0 + sqrt5_r + 5.0 * d2 / 3.0) * (-sqrt5_r).exp()
            }
        }
    }
}

impl Default for Kernel {
    fn default() -> Self {
        Kernel::new(KernelKind::Matern52, 1.0, 1.0)
    }
}

/// A kernel with automatic-relevance-determination (ARD): one lengthscale
/// per input dimension, so the GP can stretch along axes the objective is
/// insensitive to. Standard practice for Bayesian optimization over
/// heterogeneous hardware parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArdKernel {
    /// Kernel family.
    pub kind: KernelKind,
    /// Per-dimension lengthscales (> 0).
    pub lengthscales: Vec<f64>,
    /// Output variance (> 0).
    pub variance: f64,
}

impl ArdKernel {
    /// Creates an ARD kernel.
    ///
    /// # Panics
    ///
    /// Panics if any lengthscale or the variance is not positive, or no
    /// dimensions are given.
    pub fn new(kind: KernelKind, lengthscales: Vec<f64>, variance: f64) -> Self {
        assert!(
            !lengthscales.is_empty(),
            "ARD kernel needs at least one dimension"
        );
        assert!(
            lengthscales.iter().all(|&l| l > 0.0),
            "lengthscales must be positive"
        );
        assert!(variance > 0.0, "variance must be positive");
        ArdKernel {
            kind,
            lengthscales,
            variance,
        }
    }

    /// An ARD kernel with every dimension at the same lengthscale.
    pub fn isotropic(kind: KernelKind, dim: usize, lengthscale: f64, variance: f64) -> Self {
        ArdKernel::new(kind, vec![lengthscale; dim], variance)
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.lengthscales.len()
    }

    /// Evaluates `k(a, b)`.
    ///
    /// # Panics
    ///
    /// Panics if the inputs do not match the kernel's dimensionality.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), self.dim(), "kernel input dimension mismatch");
        assert_eq!(b.len(), self.dim(), "kernel input dimension mismatch");
        let d2: f64 = a
            .iter()
            .zip(b)
            .zip(&self.lengthscales)
            .map(|((&x, &y), &l)| {
                let d = (x - y) / l;
                d * d
            })
            .sum();
        match self.kind {
            KernelKind::Rbf => self.variance * (-0.5 * d2).exp(),
            KernelKind::Matern52 => {
                let r = d2.sqrt();
                let sqrt5_r = 5f64.sqrt() * r;
                self.variance * (1.0 + sqrt5_r + 5.0 * d2 / 3.0) * (-sqrt5_r).exp()
            }
        }
    }
}

// ---------------------------------------------------------------------------
// SIMD f32 row fill: the kernel-matrix hot loop of the f32 precision mode.
// ---------------------------------------------------------------------------

/// Packs points into the column-major f32 layout [`kernel_row_f32`] consumes:
/// element `d * n + j` holds dimension `d` of point `j`. Column-major storage
/// makes the per-dimension distance accumulation a contiguous SIMD stream
/// over candidates.
///
/// # Panics
///
/// Panics if the points are ragged.
pub fn pack_points_f32(pts: &[Vec<f64>]) -> Vec<f32> {
    let n = pts.len();
    let dim = pts.first().map_or(0, Vec::len);
    let mut packed = vec![0.0f32; dim * n];
    for (j, p) in pts.iter().enumerate() {
        assert_eq!(p.len(), dim, "pack_points_f32: ragged point set");
        for (d, &v) in p.iter().enumerate() {
            packed[d * n + j] = v as f32;
        }
    }
    packed
}

/// `out[j] = Σ_d ((x[d] - pts_col[d*n + j]) * inv_ls[d])²` in f32. The FMA
/// body contracts with `mul_add` (hardware FMA under `#[target_feature]`);
/// the scalar fallback multiplies and adds separately so it never hits the
/// libm soft-float `fma`.
#[inline(always)]
fn dist2_row_body<const FMA: bool>(x: &[f32], inv_ls: &[f32], pts_col: &[f32], out: &mut [f32]) {
    let n = out.len();
    out.fill(0.0);
    for (d, (&xd, &il)) in x.iter().zip(inv_ls).enumerate() {
        let col = &pts_col[d * n..][..n];
        for (o, &c) in out.iter_mut().zip(col) {
            let diff = (xd - c) * il;
            if FMA {
                *o = diff.mul_add(diff, *o);
            } else {
                *o += diff * diff;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,fma")]
unsafe fn dist2_row_avx512(x: &[f32], inv_ls: &[f32], pts_col: &[f32], out: &mut [f32]) {
    dist2_row_body::<true>(x, inv_ls, pts_col, out)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn dist2_row_avx2(x: &[f32], inv_ls: &[f32], pts_col: &[f32], out: &mut [f32]) {
    dist2_row_body::<true>(x, inv_ls, pts_col, out)
}

/// `unsafe` only to share the dispatch-table signature; always safe to call.
unsafe fn dist2_row_scalar(x: &[f32], inv_ls: &[f32], pts_col: &[f32], out: &mut [f32]) {
    dist2_row_body::<false>(x, inv_ls, pts_col, out)
}

fn dist2_row(x: &[f32], inv_ls: &[f32], pts_col: &[f32], out: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: each call is guarded by runtime feature detection.
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("fma")
        {
            return unsafe { dist2_row_avx512(x, inv_ls, pts_col, out) };
        }
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return unsafe { dist2_row_avx2(x, inv_ls, pts_col, out) };
        }
    }
    // SAFETY: the scalar fallback has no feature requirements.
    unsafe { dist2_row_scalar(x, inv_ls, pts_col, out) }
}

/// Fills `out[j] = k(x, p_j)` in f32 over points packed by
/// [`pack_points_f32`]: SIMD distance accumulation followed by the f32
/// transcendental tail. `inv_ls[d]` is `1 / lengthscale_d` rounded to f32;
/// the distance is computed as a multiply by the reciprocal (not a divide),
/// which differs from the f64 path by O(ulp) and stays inside the
/// documented row-fill tolerance.
///
/// # Panics
///
/// Panics if `x` and `inv_ls` lengths differ or `pts_col` is not
/// `x.len() * out.len()` long.
pub fn kernel_row_f32(
    kind: KernelKind,
    variance: f64,
    inv_ls: &[f32],
    x: &[f32],
    pts_col: &[f32],
    out: &mut [f32],
) {
    assert_eq!(x.len(), inv_ls.len(), "kernel input dimension mismatch");
    assert_eq!(
        pts_col.len(),
        x.len() * out.len(),
        "packed point buffer does not match shape"
    );
    dist2_row(x, inv_ls, pts_col, out);
    let variance = variance as f32;
    match kind {
        KernelKind::Rbf => {
            for o in out.iter_mut() {
                *o = variance * (-0.5 * *o).exp();
            }
        }
        KernelKind::Matern52 => {
            for o in out.iter_mut() {
                let d2 = *o;
                let sqrt5_r = (5.0 * d2).sqrt();
                *o = variance * (1.0 + sqrt5_r + 5.0 * d2 / 3.0) * (-sqrt5_r).exp();
            }
        }
    }
}

impl Kernel {
    /// [`kernel_row_f32`] with this kernel's parameters: fills
    /// `out[j] = k(x, p_j)` in f32 over points packed column-major by
    /// [`pack_points_f32`]. Hot paths precompute the reciprocal
    /// lengthscales and call [`kernel_row_f32`] directly.
    pub fn eval_row_f32(&self, x: &[f32], pts_col: &[f32], out: &mut [f32]) {
        let inv_ls = vec![(1.0 / self.lengthscale) as f32; x.len()];
        kernel_row_f32(self.kind, self.variance, &inv_ls, x, pts_col, out);
    }
}

impl ArdKernel {
    /// Reciprocal lengthscales rounded to f32, the precomputed form
    /// [`kernel_row_f32`] consumes.
    pub fn inv_lengthscales_f32(&self) -> Vec<f32> {
        self.lengthscales
            .iter()
            .map(|&l| (1.0 / l) as f32)
            .collect()
    }

    /// [`kernel_row_f32`] with this kernel's parameters (see
    /// [`Kernel::eval_row_f32`]).
    pub fn eval_row_f32(&self, x: &[f32], pts_col: &[f32], out: &mut [f32]) {
        kernel_row_f32(
            self.kind,
            self.variance,
            &self.inv_lengthscales_f32(),
            x,
            pts_col,
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_covariance_equals_variance() {
        for kind in [KernelKind::Rbf, KernelKind::Matern52] {
            let k = Kernel::new(kind, 0.7, 3.0);
            let x = [1.0, -2.0, 0.5];
            assert!((k.eval(&x, &x) - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn symmetric_and_decaying() {
        for kind in [KernelKind::Rbf, KernelKind::Matern52] {
            let k = Kernel::new(kind, 1.0, 1.0);
            let a = [0.0, 0.0];
            let b = [1.0, 1.0];
            let c = [3.0, 3.0];
            assert!((k.eval(&a, &b) - k.eval(&b, &a)).abs() < 1e-15);
            assert!(k.eval(&a, &b) > k.eval(&a, &c));
            assert!(k.eval(&a, &c) > 0.0);
        }
    }

    #[test]
    fn lengthscale_controls_decay() {
        let short = Kernel::new(KernelKind::Rbf, 0.1, 1.0);
        let long = Kernel::new(KernelKind::Rbf, 10.0, 1.0);
        let a = [0.0];
        let b = [1.0];
        assert!(short.eval(&a, &b) < 0.01);
        assert!(long.eval(&a, &b) > 0.99);
    }

    #[test]
    fn rbf_known_value() {
        let k = Kernel::new(KernelKind::Rbf, 1.0, 1.0);
        // d² = 1 => exp(-0.5)
        assert!((k.eval(&[0.0], &[1.0]) - (-0.5f64).exp()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "lengthscale")]
    fn zero_lengthscale_panics() {
        let _ = Kernel::new(KernelKind::Rbf, 0.0, 1.0);
    }

    #[test]
    fn ard_matches_isotropic_when_scales_are_equal() {
        let iso = Kernel::new(KernelKind::Matern52, 0.7, 2.0);
        let ard = ArdKernel::isotropic(KernelKind::Matern52, 3, 0.7, 2.0);
        let a = [0.1, -0.5, 1.2];
        let b = [0.3, 0.0, -0.4];
        assert!((iso.eval(&a, &b) - ard.eval(&a, &b)).abs() < 1e-12);
    }

    #[test]
    fn ard_ignores_dimensions_with_huge_lengthscales() {
        // A huge lengthscale on dim 1 makes the kernel blind to it.
        let ard = ArdKernel::new(KernelKind::Rbf, vec![1.0, 1e9], 1.0);
        let near = ard.eval(&[0.0, 0.0], &[0.0, 100.0]);
        assert!(near > 0.999, "dim 1 should be irrelevant, k = {near}");
        let far = ard.eval(&[0.0, 0.0], &[3.0, 0.0]);
        assert!(far < 0.05, "dim 0 still matters, k = {far}");
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn empty_ard_rejected() {
        let _ = ArdKernel::new(KernelKind::Rbf, vec![], 1.0);
    }

    #[test]
    fn f32_row_fill_tracks_scalar_eval() {
        let pts: Vec<Vec<f64>> = (0..13)
            .map(|j| {
                (0..3)
                    .map(|d| ((j * 3 + d) as f64 * 0.37).sin() * 2.0)
                    .collect()
            })
            .collect();
        let packed = pack_points_f32(&pts);
        let x = [0.25, -1.5, 0.8];
        let x32: Vec<f32> = x.iter().map(|&v| v as f32).collect();
        for kind in [KernelKind::Rbf, KernelKind::Matern52] {
            let iso = Kernel::new(kind, 0.7, 2.0);
            let ard = ArdKernel::new(kind, vec![0.4, 0.9, 2.0], 1.5);
            let mut row = vec![0.0f32; pts.len()];
            iso.eval_row_f32(&x32, &packed, &mut row);
            for (j, p) in pts.iter().enumerate() {
                let exact = iso.eval(&x, p);
                assert!(
                    (f64::from(row[j]) - exact).abs() <= 1e-5 * exact.abs().max(1.0),
                    "iso {kind:?} row fill diverged at {j}: {} vs {exact}",
                    row[j]
                );
            }
            ard.eval_row_f32(&x32, &packed, &mut row);
            for (j, p) in pts.iter().enumerate() {
                let exact = ard.eval(&x, p);
                assert!(
                    (f64::from(row[j]) - exact).abs() <= 1e-5 * exact.abs().max(1.0),
                    "ard {kind:?} row fill diverged at {j}: {} vs {exact}",
                    row[j]
                );
            }
        }
    }

    #[test]
    fn f32_row_fill_empty_and_single() {
        let k = Kernel::new(KernelKind::Rbf, 1.0, 1.0);
        let mut empty: Vec<f32> = Vec::new();
        k.eval_row_f32(&[0.5], &[], &mut empty); // n = 0: nothing to fill
        let packed = pack_points_f32(&[vec![2.0]]);
        let mut one = vec![0.0f32; 1];
        k.eval_row_f32(&[2.0], &packed, &mut one);
        assert!((f64::from(one[0]) - 1.0).abs() < 1e-6, "k(x,x) = variance");
    }
}
