use serde::{Deserialize, Serialize};

/// Stationary covariance kernels for Gaussian-process regression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum KernelKind {
    /// Squared-exponential (RBF) kernel.
    Rbf,
    /// Matérn-5/2 kernel — the conventional choice for Bayesian
    /// optimization (Snoek et al. 2012), less smooth than RBF.
    #[default]
    Matern52,
}

/// A kernel with an isotropic lengthscale and an output variance.
///
/// # Examples
///
/// ```
/// use vaesa_dse::{Kernel, KernelKind};
///
/// let k = Kernel::new(KernelKind::Rbf, 1.0, 2.0);
/// assert_eq!(k.eval(&[0.0], &[0.0]), 2.0); // k(x,x) = variance
/// assert!(k.eval(&[0.0], &[3.0]) < 0.05);  // decays with distance
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    /// Kernel family.
    pub kind: KernelKind,
    /// Isotropic lengthscale (> 0).
    pub lengthscale: f64,
    /// Output variance (> 0); `k(x, x) = variance`.
    pub variance: f64,
}

impl Kernel {
    /// Creates a kernel.
    ///
    /// # Panics
    ///
    /// Panics if `lengthscale` or `variance` is not positive.
    pub fn new(kind: KernelKind, lengthscale: f64, variance: f64) -> Self {
        assert!(lengthscale > 0.0, "lengthscale must be positive");
        assert!(variance > 0.0, "variance must be positive");
        Kernel {
            kind,
            lengthscale,
            variance,
        }
    }

    /// Evaluates `k(a, b)`.
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` have different lengths.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "kernel input dimension mismatch");
        let d2: f64 = a
            .iter()
            .zip(b)
            .map(|(&x, &y)| {
                let d = (x - y) / self.lengthscale;
                d * d
            })
            .sum();
        match self.kind {
            KernelKind::Rbf => self.variance * (-0.5 * d2).exp(),
            KernelKind::Matern52 => {
                let r = d2.sqrt();
                let sqrt5_r = 5f64.sqrt() * r;
                self.variance * (1.0 + sqrt5_r + 5.0 * d2 / 3.0) * (-sqrt5_r).exp()
            }
        }
    }
}

impl Default for Kernel {
    fn default() -> Self {
        Kernel::new(KernelKind::Matern52, 1.0, 1.0)
    }
}

/// A kernel with automatic-relevance-determination (ARD): one lengthscale
/// per input dimension, so the GP can stretch along axes the objective is
/// insensitive to. Standard practice for Bayesian optimization over
/// heterogeneous hardware parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArdKernel {
    /// Kernel family.
    pub kind: KernelKind,
    /// Per-dimension lengthscales (> 0).
    pub lengthscales: Vec<f64>,
    /// Output variance (> 0).
    pub variance: f64,
}

impl ArdKernel {
    /// Creates an ARD kernel.
    ///
    /// # Panics
    ///
    /// Panics if any lengthscale or the variance is not positive, or no
    /// dimensions are given.
    pub fn new(kind: KernelKind, lengthscales: Vec<f64>, variance: f64) -> Self {
        assert!(
            !lengthscales.is_empty(),
            "ARD kernel needs at least one dimension"
        );
        assert!(
            lengthscales.iter().all(|&l| l > 0.0),
            "lengthscales must be positive"
        );
        assert!(variance > 0.0, "variance must be positive");
        ArdKernel {
            kind,
            lengthscales,
            variance,
        }
    }

    /// An ARD kernel with every dimension at the same lengthscale.
    pub fn isotropic(kind: KernelKind, dim: usize, lengthscale: f64, variance: f64) -> Self {
        ArdKernel::new(kind, vec![lengthscale; dim], variance)
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.lengthscales.len()
    }

    /// Evaluates `k(a, b)`.
    ///
    /// # Panics
    ///
    /// Panics if the inputs do not match the kernel's dimensionality.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), self.dim(), "kernel input dimension mismatch");
        assert_eq!(b.len(), self.dim(), "kernel input dimension mismatch");
        let d2: f64 = a
            .iter()
            .zip(b)
            .zip(&self.lengthscales)
            .map(|((&x, &y), &l)| {
                let d = (x - y) / l;
                d * d
            })
            .sum();
        match self.kind {
            KernelKind::Rbf => self.variance * (-0.5 * d2).exp(),
            KernelKind::Matern52 => {
                let r = d2.sqrt();
                let sqrt5_r = 5f64.sqrt() * r;
                self.variance * (1.0 + sqrt5_r + 5.0 * d2 / 3.0) * (-sqrt5_r).exp()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_covariance_equals_variance() {
        for kind in [KernelKind::Rbf, KernelKind::Matern52] {
            let k = Kernel::new(kind, 0.7, 3.0);
            let x = [1.0, -2.0, 0.5];
            assert!((k.eval(&x, &x) - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn symmetric_and_decaying() {
        for kind in [KernelKind::Rbf, KernelKind::Matern52] {
            let k = Kernel::new(kind, 1.0, 1.0);
            let a = [0.0, 0.0];
            let b = [1.0, 1.0];
            let c = [3.0, 3.0];
            assert!((k.eval(&a, &b) - k.eval(&b, &a)).abs() < 1e-15);
            assert!(k.eval(&a, &b) > k.eval(&a, &c));
            assert!(k.eval(&a, &c) > 0.0);
        }
    }

    #[test]
    fn lengthscale_controls_decay() {
        let short = Kernel::new(KernelKind::Rbf, 0.1, 1.0);
        let long = Kernel::new(KernelKind::Rbf, 10.0, 1.0);
        let a = [0.0];
        let b = [1.0];
        assert!(short.eval(&a, &b) < 0.01);
        assert!(long.eval(&a, &b) > 0.99);
    }

    #[test]
    fn rbf_known_value() {
        let k = Kernel::new(KernelKind::Rbf, 1.0, 1.0);
        // d² = 1 => exp(-0.5)
        assert!((k.eval(&[0.0], &[1.0]) - (-0.5f64).exp()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "lengthscale")]
    fn zero_lengthscale_panics() {
        let _ = Kernel::new(KernelKind::Rbf, 0.0, 1.0);
    }

    #[test]
    fn ard_matches_isotropic_when_scales_are_equal() {
        let iso = Kernel::new(KernelKind::Matern52, 0.7, 2.0);
        let ard = ArdKernel::isotropic(KernelKind::Matern52, 3, 0.7, 2.0);
        let a = [0.1, -0.5, 1.2];
        let b = [0.3, 0.0, -0.4];
        assert!((iso.eval(&a, &b) - ard.eval(&a, &b)).abs() < 1e-12);
    }

    #[test]
    fn ard_ignores_dimensions_with_huge_lengthscales() {
        // A huge lengthscale on dim 1 makes the kernel blind to it.
        let ard = ArdKernel::new(KernelKind::Rbf, vec![1.0, 1e9], 1.0);
        let near = ard.eval(&[0.0, 0.0], &[0.0, 100.0]);
        assert!(near > 0.999, "dim 1 should be irrelevant, k = {near}");
        let far = ard.eval(&[0.0, 0.0], &[3.0, 0.0]);
        assert!(far < 0.05, "dim 0 still matters, k = {far}");
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn empty_ard_rejected() {
        let _ = ArdKernel::new(KernelKind::Rbf, vec![], 1.0);
    }
}
