use rand::Rng;
use serde::{Deserialize, Serialize};

/// An axis-aligned continuous box, the search domain for all continuous
/// optimizers in this crate.
///
/// VAESA's latent space is searched as a box (typically `[-3, 3]^dz`, three
/// standard deviations of the KL-regularized prior); the baseline `bo` runs
/// on the box of normalized input features `[0, 1]^6`.
///
/// # Examples
///
/// ```
/// use vaesa_dse::BoxSpace;
/// use rand::SeedableRng;
///
/// let space = BoxSpace::symmetric(4, 3.0); // [-3, 3]^4
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let x = space.sample(&mut rng);
/// assert_eq!(x.len(), 4);
/// assert!(space.contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoxSpace {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl BoxSpace {
    /// Creates a box from per-dimension bounds.
    ///
    /// # Panics
    ///
    /// Panics if the bound vectors differ in length, are empty, or any
    /// `lo >= hi`.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "bound lengths differ");
        assert!(!lo.is_empty(), "space must have at least one dimension");
        assert!(
            lo.iter().zip(&hi).all(|(a, b)| a < b),
            "every lower bound must be below its upper bound"
        );
        BoxSpace { lo, hi }
    }

    /// The box `[-half_width, half_width]^dim`.
    pub fn symmetric(dim: usize, half_width: f64) -> Self {
        assert!(half_width > 0.0, "half width must be positive");
        BoxSpace::new(vec![-half_width; dim], vec![half_width; dim])
    }

    /// The unit box `[0, 1]^dim`.
    pub fn unit(dim: usize) -> Self {
        BoxSpace::new(vec![0.0; dim], vec![1.0; dim])
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Lower bounds.
    pub fn lower(&self) -> &[f64] {
        &self.lo
    }

    /// Upper bounds.
    pub fn upper(&self) -> &[f64] {
        &self.hi
    }

    /// Draws a uniform sample.
    pub fn sample(&self, rng: &mut impl Rng) -> Vec<f64> {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(&a, &b)| rng.gen_range(a..b))
            .collect()
    }

    /// Returns `true` if `x` lies inside the (closed) box.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn contains(&self, x: &[f64]) -> bool {
        assert_eq!(x.len(), self.dim(), "dimension mismatch");
        x.iter()
            .zip(self.lo.iter().zip(&self.hi))
            .all(|(&v, (&a, &b))| v >= a && v <= b)
    }

    /// Clamps `x` into the box, in place.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn clamp(&self, x: &mut [f64]) {
        assert_eq!(x.len(), self.dim(), "dimension mismatch");
        for (v, (&a, &b)) in x.iter_mut().zip(self.lo.iter().zip(&self.hi)) {
            *v = v.clamp(a, b);
        }
    }

    /// Per-dimension widths.
    pub fn widths(&self) -> Vec<f64> {
        self.lo.iter().zip(&self.hi).map(|(&a, &b)| b - a).collect()
    }

    /// An evenly spaced grid with `per_axis` points per dimension
    /// (inclusive of both bounds).
    ///
    /// # Panics
    ///
    /// Panics if `per_axis < 2`.
    pub fn grid(&self, per_axis: usize) -> Vec<Vec<f64>> {
        assert!(per_axis >= 2, "grid needs at least 2 points per axis");
        let d = self.dim();
        let mut points = Vec::new();
        let mut idx = vec![0usize; d];
        loop {
            let p: Vec<f64> = (0..d)
                .map(|i| {
                    let t = idx[i] as f64 / (per_axis - 1) as f64;
                    self.lo[i] + t * (self.hi[i] - self.lo[i])
                })
                .collect();
            points.push(p);
            let mut axis = 0;
            loop {
                idx[axis] += 1;
                if idx[axis] < per_axis {
                    break;
                }
                idx[axis] = 0;
                axis += 1;
                if axis == d {
                    return points;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn constructors_and_accessors() {
        let s = BoxSpace::new(vec![0.0, -1.0], vec![2.0, 1.0]);
        assert_eq!(s.dim(), 2);
        assert_eq!(s.widths(), vec![2.0, 2.0]);
        assert_eq!(BoxSpace::unit(3).lower(), &[0.0, 0.0, 0.0]);
        assert_eq!(BoxSpace::symmetric(2, 3.0).upper(), &[3.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "below its upper bound")]
    fn inverted_bounds_panic() {
        let _ = BoxSpace::new(vec![1.0], vec![1.0]);
    }

    #[test]
    fn sampling_stays_inside() {
        let s = BoxSpace::new(vec![-5.0, 0.0], vec![-1.0, 0.1]);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for _ in 0..200 {
            assert!(s.contains(&s.sample(&mut rng)));
        }
    }

    #[test]
    fn clamp_projects_outside_points() {
        let s = BoxSpace::unit(2);
        let mut x = vec![-0.5, 1.7];
        s.clamp(&mut x);
        assert_eq!(x, vec![0.0, 1.0]);
        assert!(s.contains(&x));
    }

    #[test]
    fn grid_includes_corners() {
        let s = BoxSpace::unit(2);
        let g = s.grid(3);
        assert_eq!(g.len(), 9);
        assert!(g.contains(&vec![0.0, 0.0]));
        assert!(g.contains(&vec![1.0, 1.0]));
        assert!(g.contains(&vec![0.5, 0.5]));
    }
}
