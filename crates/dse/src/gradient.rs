use crate::{BatchDifferentiableObjective, BoxSpace, DifferentiableObjective};
use serde::{Deserialize, Serialize};

/// Configuration for [`GradientDescent`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GdConfig {
    /// Step size.
    pub learning_rate: f64,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f64,
    /// Number of gradient steps.
    pub steps: usize,
    /// Per-element gradient clip; `None` disables clipping.
    pub clip: Option<f64>,
}

impl Default for GdConfig {
    fn default() -> Self {
        GdConfig {
            learning_rate: 0.05,
            momentum: 0.8,
            steps: 100,
            clip: Some(10.0),
        }
    }
}

/// One point along a gradient-descent path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GdStep {
    /// Step index (0 is the starting point).
    pub step: usize,
    /// Position after this step.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
}

/// The recorded path of one gradient-descent run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GdPath {
    /// Every step, starting with the initial point.
    pub steps: Vec<GdStep>,
}

impl GdPath {
    /// The final position.
    pub fn final_point(&self) -> &[f64] {
        &self.steps.last().expect("path has at least the start").x
    }

    /// The final objective value.
    pub fn final_value(&self) -> f64 {
        self.steps
            .last()
            .expect("path has at least the start")
            .value
    }

    /// The minimum objective value along the path.
    pub fn best_value(&self) -> f64 {
        self.steps
            .iter()
            .map(|s| s.value)
            .fold(f64::INFINITY, f64::min)
    }

    /// The position at a given step index, if recorded.
    pub fn at_step(&self, step: usize) -> Option<&GdStep> {
        self.steps.get(step)
    }
}

/// Gradient descent over a differentiable objective, projected into a box.
///
/// This drives the paper's `gd` and `vae_gd` flows: the objective is the
/// trained performance-predictor EDP (which is differentiable end to end),
/// and the domain is either the normalized input space or the VAE latent
/// space. Only the *final* point is sent to the scheduler + cost model, so
/// a whole descent costs one simulator query (§III-C2).
///
/// # Examples
///
/// ```
/// use vaesa_dse::{BoxSpace, FnDifferentiable, GdConfig, GradientDescent};
///
/// let space = BoxSpace::symmetric(2, 5.0);
/// let mut objective = FnDifferentiable::new(2, |x: &[f64]| {
///     let v = (x[0] - 2.0).powi(2) + (x[1] + 1.0).powi(2);
///     (v, vec![2.0 * (x[0] - 2.0), 2.0 * (x[1] + 1.0)])
/// });
/// let gd = GradientDescent::new(space, GdConfig::default());
/// let path = gd.run(&mut objective, &[0.0, 0.0]);
/// assert!(path.final_value() < 1e-2);
/// ```
#[derive(Debug, Clone)]
pub struct GradientDescent {
    space: BoxSpace,
    config: GdConfig,
}

impl GradientDescent {
    /// Creates a driver over `space` with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the learning rate is not positive or momentum is not in
    /// `[0, 1)`.
    pub fn new(space: BoxSpace, config: GdConfig) -> Self {
        assert!(config.learning_rate > 0.0, "learning rate must be positive");
        assert!(
            (0.0..1.0).contains(&config.momentum),
            "momentum must be in [0, 1)"
        );
        GradientDescent { space, config }
    }

    /// The configured number of steps.
    pub fn steps(&self) -> usize {
        self.config.steps
    }

    /// Runs descent from `start`, recording every step.
    ///
    /// # Panics
    ///
    /// Panics if `start` has the wrong dimensionality.
    pub fn run(&self, objective: &mut dyn DifferentiableObjective, start: &[f64]) -> GdPath {
        assert_eq!(objective.dim(), self.space.dim(), "dimension mismatch");
        assert_eq!(start.len(), self.space.dim(), "start dimension mismatch");
        let mut x = start.to_vec();
        self.space.clamp(&mut x);
        let mut velocity = vec![0.0; x.len()];
        let (v0, _) = objective.evaluate_with_grad(&x);
        let mut steps = vec![GdStep {
            step: 0,
            x: x.clone(),
            value: v0,
        }];
        for step in 1..=self.config.steps {
            let (_, mut grad) = objective.evaluate_with_grad(&x);
            if let Some(c) = self.config.clip {
                for g in &mut grad {
                    *g = g.clamp(-c, c);
                }
            }
            for i in 0..x.len() {
                velocity[i] =
                    self.config.momentum * velocity[i] - self.config.learning_rate * grad[i];
                x[i] += velocity[i];
            }
            self.space.clamp(&mut x);
            let (value, _) = objective.evaluate_with_grad(&x);
            steps.push(GdStep {
                step,
                x: x.clone(),
                value,
            });
        }
        GdPath { steps }
    }

    /// Runs descent from every start in lockstep, advancing the whole batch
    /// with one batched objective evaluation per gradient step.
    ///
    /// The per-row update arithmetic (clip, momentum, clamp, value
    /// re-evaluation) is identical to [`GradientDescent::run`], so as long
    /// as the batched objective is row-equivalent to its per-point
    /// counterpart, path `r` is bit-identical to running
    /// [`GradientDescent::run`] from `starts[r]` alone.
    ///
    /// # Panics
    ///
    /// Panics if any start has the wrong dimensionality.
    pub fn run_batch(
        &self,
        objective: &mut dyn BatchDifferentiableObjective,
        starts: &[Vec<f64>],
    ) -> Vec<GdPath> {
        assert_eq!(objective.dim(), self.space.dim(), "dimension mismatch");
        let dz = self.space.dim();
        let b = starts.len();
        if b == 0 {
            return Vec::new();
        }
        let mut xs: Vec<f64> = Vec::with_capacity(b * dz);
        for start in starts {
            assert_eq!(start.len(), dz, "start dimension mismatch");
            xs.extend_from_slice(start);
        }
        for row in xs.chunks_mut(dz) {
            self.space.clamp(row);
        }
        let mut velocity = vec![0.0; b * dz];
        let (v0, _) = objective.evaluate_with_grad_batch(&xs, b);
        let mut paths: Vec<GdPath> = (0..b)
            .map(|r| GdPath {
                steps: vec![GdStep {
                    step: 0,
                    x: xs[r * dz..(r + 1) * dz].to_vec(),
                    value: v0[r],
                }],
            })
            .collect();
        for step in 1..=self.config.steps {
            let (_, mut grad) = objective.evaluate_with_grad_batch(&xs, b);
            if let Some(c) = self.config.clip {
                for g in &mut grad {
                    *g = g.clamp(-c, c);
                }
            }
            for i in 0..xs.len() {
                velocity[i] =
                    self.config.momentum * velocity[i] - self.config.learning_rate * grad[i];
                xs[i] += velocity[i];
            }
            for row in xs.chunks_mut(dz) {
                self.space.clamp(row);
            }
            let (values, _) = objective.evaluate_with_grad_batch(&xs, b);
            for (r, path) in paths.iter_mut().enumerate() {
                path.steps.push(GdStep {
                    step,
                    x: xs[r * dz..(r + 1) * dz].to_vec(),
                    value: values[r],
                });
            }
        }
        paths
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnDifferentiable;

    fn quadratic() -> FnDifferentiable<impl FnMut(&[f64]) -> (f64, Vec<f64>)> {
        FnDifferentiable::new(2, |x: &[f64]| {
            let v = (x[0] - 2.0).powi(2) + (x[1] + 1.0).powi(2);
            (v, vec![2.0 * (x[0] - 2.0), 2.0 * (x[1] + 1.0)])
        })
    }

    #[test]
    fn converges_to_interior_minimum() {
        let gd = GradientDescent::new(BoxSpace::symmetric(2, 5.0), GdConfig::default());
        let path = gd.run(&mut quadratic(), &[-4.0, 4.0]);
        assert_eq!(path.steps.len(), 101);
        let end = path.final_point();
        assert!((end[0] - 2.0).abs() < 0.05, "x0 = {}", end[0]);
        assert!((end[1] + 1.0).abs() < 0.05, "x1 = {}", end[1]);
    }

    #[test]
    fn respects_box_constraints() {
        // Minimum at (2, -1) lies outside the box [-0.5, 0.5]^2.
        let gd = GradientDescent::new(BoxSpace::symmetric(2, 0.5), GdConfig::default());
        let path = gd.run(&mut quadratic(), &[0.0, 0.0]);
        let end = path.final_point();
        assert!((end[0] - 0.5).abs() < 1e-9);
        assert!((end[1] + 0.5).abs() < 1e-9);
        for s in &path.steps {
            assert!(s.x.iter().all(|v| v.abs() <= 0.5 + 1e-12));
        }
    }

    #[test]
    fn value_decreases_overall() {
        let gd = GradientDescent::new(BoxSpace::symmetric(2, 5.0), GdConfig::default());
        let path = gd.run(&mut quadratic(), &[-4.0, 4.0]);
        assert!(path.final_value() < path.steps[0].value / 100.0);
        assert!(path.best_value() <= path.final_value());
    }

    #[test]
    fn at_step_indexes_path() {
        let config = GdConfig {
            steps: 10,
            ..GdConfig::default()
        };
        let gd = GradientDescent::new(BoxSpace::symmetric(2, 5.0), config);
        let path = gd.run(&mut quadratic(), &[1.0, 1.0]);
        assert_eq!(path.at_step(0).unwrap().x, vec![1.0, 1.0]);
        assert!(path.at_step(10).is_some());
        assert!(path.at_step(11).is_none());
    }

    #[test]
    fn clipping_tames_huge_gradients() {
        let mut steep = FnDifferentiable::new(1, |x: &[f64]| (1e6 * x[0] * x[0], vec![2e6 * x[0]]));
        let config = GdConfig {
            learning_rate: 0.01,
            momentum: 0.0,
            steps: 50,
            clip: Some(1.0),
        };
        let gd = GradientDescent::new(BoxSpace::symmetric(1, 2.0), config);
        let path = gd.run(&mut steep, &[1.5]);
        // Without clipping this would oscillate to the box bounds; with
        // clipping it walks steadily down.
        assert!(path.final_value() < path.steps[0].value);
        assert!(path.final_point()[0].abs() < 1.5);
    }

    #[test]
    fn run_batch_matches_run_bitwise_per_start() {
        use crate::FnBatchDifferentiable;
        let dim = 3;
        let scalar = |x: &[f64]| {
            let v = (x[0] - 0.7).powi(2) + (x[1] * x[2]).sin() + x[2] * x[2];
            let g = vec![
                2.0 * (x[0] - 0.7),
                x[2] * (x[1] * x[2]).cos(),
                x[1] * (x[1] * x[2]).cos() + 2.0 * x[2],
            ];
            (v, g)
        };
        let starts: Vec<Vec<f64>> = vec![
            vec![-2.0, 1.5, 0.25],
            vec![0.0, 0.0, 0.0],
            vec![3.0, -3.0, 3.0], // clamped into the box before step 0
            vec![0.4, -0.9, 1.1],
        ];
        let config = GdConfig {
            steps: 25,
            ..GdConfig::default()
        };
        let gd = GradientDescent::new(BoxSpace::symmetric(dim, 2.0), config);
        let serial: Vec<GdPath> = starts
            .iter()
            .map(|s| {
                let mut obj = FnDifferentiable::new(dim, scalar);
                gd.run(&mut obj, s)
            })
            .collect();
        let mut batch_obj = FnBatchDifferentiable::new(dim, |xs: &[f64], batch: usize| {
            let mut values = Vec::with_capacity(batch);
            let mut grads = Vec::with_capacity(xs.len());
            for row in xs.chunks(dim) {
                let (v, g) = scalar(row);
                values.push(v);
                grads.extend_from_slice(&g);
            }
            (values, grads)
        });
        let batched = gd.run_batch(&mut batch_obj, &starts);
        assert_eq!(batched.len(), serial.len());
        for (b, s) in batched.iter().zip(&serial) {
            assert_eq!(b.steps.len(), s.steps.len());
            for (bs, ss) in b.steps.iter().zip(&s.steps) {
                assert_eq!(bs.step, ss.step);
                assert_eq!(bs.value.to_bits(), ss.value.to_bits());
                for (bx, sx) in bs.x.iter().zip(&ss.x) {
                    assert_eq!(bx.to_bits(), sx.to_bits());
                }
            }
        }
    }

    #[test]
    fn run_batch_empty_starts_is_empty() {
        use crate::FnBatchDifferentiable;
        let gd = GradientDescent::new(BoxSpace::unit(2), GdConfig::default());
        let mut obj = FnBatchDifferentiable::new(2, |xs: &[f64], _| {
            (vec![0.0; xs.len() / 2], vec![0.0; xs.len()])
        });
        assert!(gd.run_batch(&mut obj, &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "momentum")]
    fn bad_momentum_panics() {
        let _ = GradientDescent::new(
            BoxSpace::unit(1),
            GdConfig {
                momentum: 1.0,
                ..GdConfig::default()
            },
        );
    }
}
