use crate::random::perturb;
use crate::{BoxSpace, Objective, Trace};
use rand::Rng;
use rand::RngCore;

/// Configuration for [`SimulatedAnnealing`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealingConfig {
    /// Initial acceptance temperature, as a fraction of the first observed
    /// objective value (scale-free start).
    pub initial_temperature: f64,
    /// Multiplicative cooling factor applied every step.
    pub cooling: f64,
    /// Gaussian proposal standard deviation as a fraction of each
    /// dimension's width.
    pub step_sigma: f64,
    /// Restart from a fresh random point after this many consecutive
    /// rejections (0 disables restarts).
    pub restart_after: usize,
}

impl Default for AnnealingConfig {
    fn default() -> Self {
        AnnealingConfig {
            initial_temperature: 0.1,
            cooling: 0.97,
            step_sigma: 0.08,
            restart_after: 40,
        }
    }
}

/// Classic simulated annealing over a box: Gaussian proposals, Metropolis
/// acceptance with geometric cooling, optional stagnation restarts.
///
/// A third black-box engine alongside Bayesian optimization and the
/// evolutionary search — annealing is the traditional workhorse of
/// hardware design-space exploration (placement, binding, scheduling) and
/// makes a natural extra baseline on both the original and the VAESA
/// latent space.
///
/// # Examples
///
/// ```
/// use vaesa_dse::{BoxSpace, FnObjective, SimulatedAnnealing};
/// use rand::SeedableRng;
///
/// let space = BoxSpace::symmetric(2, 2.0);
/// let mut objective = FnObjective::new(2, |x: &[f64]| {
///     Some((x[0] - 1.0).powi(2) + (x[1] + 0.5).powi(2))
/// });
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let trace = SimulatedAnnealing::new(space).run(&mut objective, 300, &mut rng);
/// assert!(trace.best_value().unwrap() < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct SimulatedAnnealing {
    space: BoxSpace,
    config: AnnealingConfig,
}

impl SimulatedAnnealing {
    /// Creates an annealer with default configuration.
    pub fn new(space: BoxSpace) -> Self {
        SimulatedAnnealing {
            space,
            config: AnnealingConfig::default(),
        }
    }

    /// Creates an annealer with explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if the temperature or step size is not positive, or cooling
    /// is outside `(0, 1]`.
    pub fn with_config(space: BoxSpace, config: AnnealingConfig) -> Self {
        assert!(
            config.initial_temperature > 0.0,
            "temperature must be positive"
        );
        assert!(
            config.cooling > 0.0 && config.cooling <= 1.0,
            "cooling must be in (0, 1]"
        );
        assert!(config.step_sigma > 0.0, "step sigma must be positive");
        SimulatedAnnealing { space, config }
    }

    /// Runs annealing for `budget` objective evaluations. Invalid points
    /// consume budget and are always rejected.
    pub fn run(
        &self,
        objective: &mut dyn Objective,
        budget: usize,
        mut rng: &mut dyn RngCore,
    ) -> Trace {
        assert_eq!(objective.dim(), self.space.dim(), "dimension mismatch");
        let mut trace = Trace::new("annealing");
        if budget == 0 {
            return trace;
        }

        // Seed state: keep drawing until a valid point or budget runs out.
        let mut current: Option<(Vec<f64>, f64)> = None;
        let mut evaluated = 0usize;
        while evaluated < budget {
            let x = self.space.sample(&mut rng);
            let v = objective.evaluate(&x);
            trace.record(x.clone(), v);
            evaluated += 1;
            if let Some(v) = v {
                current = Some((x, v));
                break;
            }
        }
        let Some((mut x_cur, mut v_cur)) = current else {
            return trace;
        };

        let mut temperature = self.config.initial_temperature * v_cur.abs().max(1e-300);
        let mut rejections = 0usize;
        while evaluated < budget {
            let proposal =
                if self.config.restart_after > 0 && rejections >= self.config.restart_after {
                    rejections = 0;
                    self.space.sample(&mut rng)
                } else {
                    perturb(&self.space, &x_cur, self.config.step_sigma, &mut rng)
                };
            let value = objective.evaluate(&proposal);
            trace.record(proposal.clone(), value);
            evaluated += 1;

            match value {
                Some(v) => {
                    let accept = v <= v_cur || {
                        let p = ((v_cur - v) / temperature.max(1e-300)).exp();
                        rng.gen_bool(p.clamp(0.0, 1.0))
                    };
                    if accept {
                        x_cur = proposal;
                        v_cur = v;
                        rejections = 0;
                    } else {
                        rejections += 1;
                    }
                }
                None => rejections += 1,
            }
            temperature *= self.config.cooling;
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FnObjective, RandomSearch};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn bumpy() -> FnObjective<impl FnMut(&[f64]) -> Option<f64>> {
        FnObjective::new(2, |x: &[f64]| {
            Some(
                x.iter()
                    .map(|v| (v - 0.8) * (v - 0.8) + 0.3 * (5.0 * v).cos())
                    .sum::<f64>()
                    + 0.6,
            )
        })
    }

    #[test]
    fn converges_on_bumpy_function() {
        let space = BoxSpace::symmetric(2, 3.0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let trace = SimulatedAnnealing::new(space).run(&mut bumpy(), 400, &mut rng);
        assert_eq!(trace.len(), 400);
        // Global minimum is slightly below 0.6 - 0.6 + small; just demand a
        // good region.
        assert!(
            trace.best_value().unwrap() < 0.3,
            "best {:?}",
            trace.best_value()
        );
    }

    #[test]
    fn beats_random_on_most_seeds() {
        let space = BoxSpace::symmetric(3, 3.0);
        let objective = |x: &[f64]| Some(x.iter().map(|v| (v - 1.0).powi(2)).sum::<f64>());
        let mut wins = 0;
        for seed in 0..5 {
            let mut obj = FnObjective::new(3, objective);
            let sa = SimulatedAnnealing::new(space.clone()).run(
                &mut obj,
                200,
                &mut ChaCha8Rng::seed_from_u64(seed),
            );
            let mut obj = FnObjective::new(3, objective);
            let rs = RandomSearch::new(space.clone()).run(
                &mut obj,
                200,
                &mut ChaCha8Rng::seed_from_u64(seed),
            );
            if sa.best_value().unwrap() <= rs.best_value().unwrap() {
                wins += 1;
            }
        }
        assert!(wins >= 4, "annealing won only {wins}/5 seeds");
    }

    #[test]
    fn deterministic_per_seed() {
        let space = BoxSpace::unit(2);
        let run = |seed| {
            let mut obj = bumpy();
            SimulatedAnnealing::new(space.clone()).run(
                &mut obj,
                80,
                &mut ChaCha8Rng::seed_from_u64(seed),
            )
        };
        assert_eq!(run(3).samples(), run(3).samples());
    }

    #[test]
    fn survives_all_invalid_prefix() {
        let space = BoxSpace::unit(1);
        let mut first = true;
        let mut obj = FnObjective::new(1, move |x: &[f64]| {
            if first {
                first = false;
                None // poison the seed draw
            } else {
                Some(x[0])
            }
        });
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let trace = SimulatedAnnealing::new(space).run(&mut obj, 50, &mut rng);
        assert_eq!(trace.len(), 50);
        assert!(trace.best_value().is_some());
    }

    #[test]
    fn zero_budget_gives_empty_trace() {
        let space = BoxSpace::unit(1);
        let mut obj = FnObjective::new(1, |x: &[f64]| Some(x[0]));
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let trace = SimulatedAnnealing::new(space).run(&mut obj, 0, &mut rng);
        assert!(trace.is_empty());
    }

    #[test]
    #[should_panic(expected = "cooling")]
    fn bad_cooling_rejected() {
        let _ = SimulatedAnnealing::with_config(
            BoxSpace::unit(1),
            AnnealingConfig {
                cooling: 1.5,
                ..AnnealingConfig::default()
            },
        );
    }
}
