use crate::{BoxSpace, Objective, Trace};
use rand::Rng;

/// Uniform random search over a box — the paper's `random` baseline.
///
/// # Examples
///
/// ```
/// use vaesa_dse::{BoxSpace, FnObjective, RandomSearch};
/// use rand::SeedableRng;
///
/// let space = BoxSpace::unit(2);
/// let mut objective = FnObjective::new(2, |x: &[f64]| Some(x[0] + x[1]));
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let trace = RandomSearch::new(space).run(&mut objective, 50, &mut rng);
/// assert_eq!(trace.len(), 50);
/// assert!(trace.best_value().unwrap() < 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct RandomSearch {
    space: BoxSpace,
}

impl RandomSearch {
    /// Creates a random search over `space`.
    pub fn new(space: BoxSpace) -> Self {
        RandomSearch { space }
    }

    /// Evaluates `budget` uniform samples.
    pub fn run(
        &self,
        objective: &mut dyn Objective,
        budget: usize,
        mut rng: &mut dyn rand::RngCore,
    ) -> Trace {
        assert_eq!(objective.dim(), self.space.dim(), "dimension mismatch");
        let mut trace = Trace::new("random");
        for _ in 0..budget {
            let x = self.space.sample(&mut rng);
            let v = objective.evaluate(&x);
            trace.record(x, v);
        }
        trace
    }
}

/// Exhaustive evaluation of an even grid — the brute-force component of the
/// heuristic approaches in Table I, and the dataset-seeding strategy of
/// §III-B3.
#[derive(Debug, Clone)]
pub struct GridSearch {
    space: BoxSpace,
    per_axis: usize,
}

impl GridSearch {
    /// Creates a grid search with `per_axis` points per dimension.
    ///
    /// # Panics
    ///
    /// Panics if `per_axis < 2`.
    pub fn new(space: BoxSpace, per_axis: usize) -> Self {
        assert!(per_axis >= 2, "grid needs at least 2 points per axis");
        GridSearch { space, per_axis }
    }

    /// Number of grid points that will be evaluated.
    pub fn len(&self) -> usize {
        self.per_axis.pow(self.space.dim() as u32)
    }

    /// Returns `true` if the grid is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Evaluates every grid point in row-major order.
    pub fn run(&self, objective: &mut dyn Objective) -> Trace {
        assert_eq!(objective.dim(), self.space.dim(), "dimension mismatch");
        let mut trace = Trace::new("grid");
        for x in self.space.grid(self.per_axis) {
            let v = objective.evaluate(&x);
            trace.record(x, v);
        }
        trace
    }
}

/// Perturbs `x` with independent Gaussian noise of standard deviation
/// `sigma * width_d` per dimension, clamped into the space.
///
/// Used by Bayesian optimization to propose local candidates around the
/// incumbent best point.
pub fn perturb(space: &BoxSpace, x: &[f64], sigma: f64, rng: &mut impl Rng) -> Vec<f64> {
    let widths = space.widths();
    let mut out: Vec<f64> = x
        .iter()
        .zip(&widths)
        .map(|(&v, &w)| v + gaussian(rng) * sigma * w)
        .collect();
    space.clamp(&mut out);
    out
}

/// One standard-normal draw via Box–Muller.
fn gaussian(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnObjective;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn random_search_improves_with_budget() {
        let space = BoxSpace::symmetric(3, 2.0);
        let mut obj = FnObjective::new(3, |x: &[f64]| Some(x.iter().map(|v| v * v).sum()));
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let short = RandomSearch::new(space.clone()).run(&mut obj, 10, &mut rng);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let long = RandomSearch::new(space).run(&mut obj, 500, &mut rng);
        assert!(long.best_value().unwrap() <= short.best_value().unwrap());
    }

    #[test]
    fn random_search_deterministic_per_seed() {
        let space = BoxSpace::unit(2);
        let mut obj = FnObjective::new(2, |x: &[f64]| Some(x[0] * x[1]));
        let t1 =
            RandomSearch::new(space.clone()).run(&mut obj, 20, &mut ChaCha8Rng::seed_from_u64(5));
        let t2 = RandomSearch::new(space).run(&mut obj, 20, &mut ChaCha8Rng::seed_from_u64(5));
        assert_eq!(t1.samples(), t2.samples());
    }

    #[test]
    fn grid_search_hits_exact_optimum_on_grid() {
        let space = BoxSpace::new(vec![-1.0, -1.0], vec![1.0, 1.0]);
        let mut obj = FnObjective::new(2, |x: &[f64]| {
            Some((x[0] - 0.0).powi(2) + (x[1] - 0.0).powi(2))
        });
        let gs = GridSearch::new(space, 5);
        assert_eq!(gs.len(), 25);
        let trace = gs.run(&mut obj);
        assert_eq!(trace.len(), 25);
        assert_eq!(trace.best_value(), Some(0.0)); // (0,0) is a grid point
    }

    #[test]
    fn invalid_points_are_recorded_but_not_best() {
        let space = BoxSpace::unit(1);
        let mut obj = FnObjective::new(1, |x: &[f64]| if x[0] < 0.5 { None } else { Some(x[0]) });
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let trace = RandomSearch::new(space).run(&mut obj, 100, &mut rng);
        assert_eq!(trace.len(), 100);
        assert!(trace.best_value().unwrap() >= 0.5);
        assert!(trace.samples().iter().any(|s| s.value.is_none()));
    }

    #[test]
    fn perturb_stays_in_space_and_moves() {
        let space = BoxSpace::unit(4);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let x = vec![0.5; 4];
        let mut moved = false;
        for _ in 0..20 {
            let y = perturb(&space, &x, 0.1, &mut rng);
            assert!(space.contains(&y));
            if y != x {
                moved = true;
            }
        }
        assert!(moved);
    }
}
