//! The unified search-engine layer: every optimizer in this crate behind
//! one [`SearchEngine`] trait, driven by a [`SearchObjective`] that bundles
//! black-box scoring, optional batched scoring, and an optional
//! differentiable proxy surface.
//!
//! The trait splits the search problem the way the VAESA pipeline does:
//! the *engine* owns proposal logic (where to sample next) and exact
//! budget accounting, while the *objective* owns evaluation (snap /
//! decode / schedule in the hardware stack). Engines never see hardware
//! types; objectives never see proposal state. A caller picks a space
//! (the normalized input box or the VAE latent box), an engine, and a
//! budget, and gets back the same [`Trace`] record from every engine.

use crate::{
    AnnealingConfig, BatchDifferentiableObjective, BayesOpt, BayesOptConfig, BoxSpace,
    EvolutionConfig, EvolutionarySearch, GdConfig, GradientDescent, Objective, SimulatedAnnealing,
    Trace,
};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// The objective handed to a [`SearchEngine`]: a black-box [`Objective`]
/// plus optional batched scoring and an optional differentiable proxy.
///
/// `evaluate_batch` must be slot-equivalent to per-point `evaluate` —
/// engines rely on this to batch freely without changing their trace.
/// `proxy` exposes a gradient surface (e.g. the trained predictors) for
/// engines that descend instead of probing; black-box engines ignore it.
pub trait SearchObjective: Objective {
    /// Scores a batch of points; slot `i` must equal `evaluate(&xs[i])`.
    ///
    /// The default scores serially; implementations backed by expensive
    /// evaluators override this to fan out (e.g. across a thread pool) or
    /// to share one batched forward pass.
    fn evaluate_batch(&mut self, xs: &[Vec<f64>]) -> Vec<Option<f64>> {
        let mut out = Vec::with_capacity(xs.len());
        for x in xs {
            out.push(self.evaluate(x));
        }
        out
    }

    /// A differentiable proxy of the objective for gradient-based engines,
    /// or `None` if the caller provides no trained surrogate.
    fn proxy(&mut self) -> Option<&mut dyn BatchDifferentiableObjective> {
        None
    }
}

impl<F> SearchObjective for crate::FnObjective<F> where F: FnMut(&[f64]) -> Option<f64> {}

/// Bridges a [`SearchObjective`] to APIs that take `&mut dyn Objective`.
struct AsObjective<'a>(&'a mut dyn SearchObjective);

impl Objective for AsObjective<'_> {
    fn dim(&self) -> usize {
        self.0.dim()
    }

    fn evaluate(&mut self, x: &[f64]) -> Option<f64> {
        self.0.evaluate(x)
    }
}

/// A search strategy that spends exactly `budget` objective evaluations
/// over `space` and records every one of them in the returned [`Trace`].
///
/// Budget accounting is exact: the trace has `budget` samples, invalid
/// points included, and the objective is never evaluated more often. The
/// trace label is the engine's [`name`](SearchEngine::name).
pub trait SearchEngine {
    /// Short lower-case engine name used as the trace label
    /// (`"random"`, `"bo"`, `"evo"`, `"sa"`, `"cd"`, `"gd"`).
    fn name(&self) -> &'static str;

    /// Runs the search to exhaustion of `budget`.
    fn run(
        &self,
        space: &BoxSpace,
        objective: &mut dyn SearchObjective,
        budget: usize,
        rng: &mut dyn RngCore,
    ) -> Trace;
}

/// Summary record of one engine run, shared by every engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// The trace label (engine name, possibly mode-prefixed by a driver).
    pub label: String,
    /// Samples spent (equals the requested budget).
    pub budget: usize,
    /// Best valid objective value, if any sample was valid.
    pub best_value: Option<f64>,
    /// The point achieving `best_value`.
    pub best_point: Option<Vec<f64>>,
    /// Samples needed to come within 3% of the run's own best.
    pub samples_to_best_3pct: Option<usize>,
}

impl SearchOutcome {
    /// Summarizes a finished trace.
    pub fn of(trace: &Trace) -> Self {
        let best_value = trace.best_value();
        SearchOutcome {
            label: trace.label().to_string(),
            budget: trace.len(),
            best_value,
            best_point: trace.best_point().map(<[f64]>::to_vec),
            samples_to_best_3pct: best_value.and_then(|b| trace.samples_to_within(0.03, b)),
        }
    }
}

/// Uniform random search as a [`SearchEngine`].
///
/// All `budget` candidates are drawn from `rng` *before* scoring, then
/// scored through one `evaluate_batch` call — the same stream and order as
/// a draw-score-repeat loop (scoring consumes no randomness), so the trace
/// is bit-identical to the serial flow while the objective may fan the
/// batch out across threads.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomEngine;

impl SearchEngine for RandomEngine {
    fn name(&self) -> &'static str {
        "random"
    }

    fn run(
        &self,
        space: &BoxSpace,
        objective: &mut dyn SearchObjective,
        budget: usize,
        mut rng: &mut dyn RngCore,
    ) -> Trace {
        let candidates: Vec<Vec<f64>> = (0..budget).map(|_| space.sample(&mut rng)).collect();
        let scores = objective.evaluate_batch(&candidates);
        let mut trace = Trace::new(self.name());
        for (x, v) in candidates.into_iter().zip(scores) {
            trace.record(x, v);
        }
        trace
    }
}

/// Gaussian-process Bayesian optimization as a [`SearchEngine`].
#[derive(Debug, Clone, Default)]
pub struct BoEngine {
    /// GP and acquisition settings.
    pub config: BayesOptConfig,
}

impl SearchEngine for BoEngine {
    fn name(&self) -> &'static str {
        "bo"
    }

    fn run(
        &self,
        space: &BoxSpace,
        objective: &mut dyn SearchObjective,
        budget: usize,
        rng: &mut dyn RngCore,
    ) -> Trace {
        BayesOpt::with_config(space.clone(), self.config).run(
            &mut AsObjective(objective),
            budget,
            rng,
        )
    }
}

/// Tournament-selection evolutionary search as a [`SearchEngine`].
#[derive(Debug, Clone, Default)]
pub struct EvoEngine {
    /// Population and variation settings.
    pub config: EvolutionConfig,
}

impl SearchEngine for EvoEngine {
    fn name(&self) -> &'static str {
        "evo"
    }

    fn run(
        &self,
        space: &BoxSpace,
        objective: &mut dyn SearchObjective,
        budget: usize,
        rng: &mut dyn RngCore,
    ) -> Trace {
        let mut trace = EvolutionarySearch::with_config(space.clone(), self.config).run(
            &mut AsObjective(objective),
            budget,
            rng,
        );
        trace.set_label(self.name());
        trace
    }
}

/// Simulated annealing as a [`SearchEngine`].
#[derive(Debug, Clone, Default)]
pub struct SaEngine {
    /// Temperature schedule and step settings.
    pub config: AnnealingConfig,
}

impl SearchEngine for SaEngine {
    fn name(&self) -> &'static str {
        "sa"
    }

    fn run(
        &self,
        space: &BoxSpace,
        objective: &mut dyn SearchObjective,
        budget: usize,
        rng: &mut dyn RngCore,
    ) -> Trace {
        let mut trace = SimulatedAnnealing::with_config(space.clone(), self.config).run(
            &mut AsObjective(objective),
            budget,
            rng,
        );
        trace.set_label(self.name());
        trace
    }
}

/// Settings for [`CdEngine`] (pattern-search coordinate descent).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CdConfig {
    /// Initial probe step as a fraction of each axis width.
    pub initial_step: f64,
    /// Step multiplier applied when no axis probe improves.
    pub shrink: f64,
    /// Restart from a fresh random point once the step falls below this.
    pub min_step: f64,
}

impl Default for CdConfig {
    fn default() -> Self {
        CdConfig {
            initial_step: 0.25,
            shrink: 0.5,
            min_step: 0.02,
        }
    }
}

/// Greedy coordinate descent (compass / pattern search) as a
/// [`SearchEngine`] — the Table I "heuristics-driven" class, generalized
/// from the discrete design space to any box so it runs in latent space
/// too.
///
/// From a random start, probe `±step` along each axis, move to the best
/// improving probe, shrink the step when stuck, and restart from a fresh
/// random point when the step bottoms out. Probes that clamp back onto the
/// current point are skipped without spending budget.
#[derive(Debug, Clone, Copy, Default)]
pub struct CdEngine {
    /// Step schedule settings.
    pub config: CdConfig,
}

impl SearchEngine for CdEngine {
    fn name(&self) -> &'static str {
        "cd"
    }

    fn run(
        &self,
        space: &BoxSpace,
        objective: &mut dyn SearchObjective,
        budget: usize,
        mut rng: &mut dyn RngCore,
    ) -> Trace {
        let widths = space.widths();
        let mut trace = Trace::new(self.name());
        let mut evaluated = 0usize;

        'outer: while evaluated < budget {
            // Fresh random start.
            let mut current = space.sample(&mut rng);
            let v = objective.evaluate(&current);
            trace.record(current.clone(), v);
            evaluated += 1;
            let mut current_score = match v {
                Some(s) => s,
                None => continue 'outer,
            };
            let mut step = self.config.initial_step;
            while step >= self.config.min_step {
                let mut best_move: Option<(Vec<f64>, f64)> = None;
                let mut probed = false;
                for axis in 0..space.dim() {
                    for delta in [-1.0, 1.0] {
                        let mut candidate = current.clone();
                        candidate[axis] += delta * step * widths[axis];
                        space.clamp(&mut candidate);
                        if candidate == current {
                            continue; // clamped onto the incumbent: free skip
                        }
                        if evaluated >= budget {
                            break 'outer;
                        }
                        let v = objective.evaluate(&candidate);
                        trace.record(candidate.clone(), v);
                        evaluated += 1;
                        probed = true;
                        if let Some(score) = v {
                            if score < current_score
                                && best_move.as_ref().is_none_or(|(_, b)| score < *b)
                            {
                                best_move = Some((candidate, score));
                            }
                        }
                    }
                }
                match best_move {
                    Some((point, score)) => {
                        current = point;
                        current_score = score;
                    }
                    None => {
                        if !probed {
                            break; // degenerate box: nothing to probe, restart
                        }
                        step *= self.config.shrink;
                    }
                }
            }
        }
        trace
    }
}

/// Batched multi-start gradient descent as a [`SearchEngine`].
///
/// Each *sample* is one full descent of the objective's differentiable
/// [`proxy`](SearchObjective::proxy) from a random start; only the final
/// point of each descent is scored through the black-box objective, so a
/// sample costs one true evaluation exactly as in the paper. All starts
/// are drawn up front and advanced in lockstep
/// ([`GradientDescent::run_batch`]), and the finals are scored through one
/// `evaluate_batch` call — bit-identical to a serial per-start loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct GdEngine {
    /// Descent hyperparameters.
    pub config: GdConfig,
}

impl SearchEngine for GdEngine {
    fn name(&self) -> &'static str {
        "gd"
    }

    /// # Panics
    ///
    /// Panics if the objective provides no differentiable proxy.
    fn run(
        &self,
        space: &BoxSpace,
        objective: &mut dyn SearchObjective,
        budget: usize,
        mut rng: &mut dyn RngCore,
    ) -> Trace {
        let mut trace = Trace::new(self.name());
        if budget == 0 {
            return trace;
        }
        let starts: Vec<Vec<f64>> = (0..budget).map(|_| space.sample(&mut rng)).collect();
        let driver = GradientDescent::new(space.clone(), self.config);
        let finals: Vec<Vec<f64>> = {
            let proxy = objective
                .proxy()
                .expect("gd engine needs a differentiable proxy on the objective");
            driver
                .run_batch(proxy, &starts)
                .iter()
                .map(|p| p.final_point().to_vec())
                .collect()
        };
        let scores = objective.evaluate_batch(&finals);
        for (x, v) in finals.into_iter().zip(scores) {
            trace.record(x, v);
        }
        trace
    }
}

/// Looks an engine up by its [`name`](SearchEngine::name) with default
/// settings, for CLI-style dispatch. Returns `None` for unknown names.
pub fn engine_by_name(name: &str) -> Option<Box<dyn SearchEngine>> {
    match name {
        "random" => Some(Box::new(RandomEngine)),
        "bo" => Some(Box::<BoEngine>::default()),
        "evo" | "evolutionary" => Some(Box::<EvoEngine>::default()),
        "sa" | "annealing" => Some(Box::<SaEngine>::default()),
        "cd" => Some(Box::<CdEngine>::default()),
        "gd" => Some(Box::<GdEngine>::default()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FnBatchDifferentiable, FnObjective};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    type GradFn = fn(&[f64], usize) -> (Vec<f64>, Vec<f64>);

    /// Counts every true evaluation (scalar and batched) of a quadratic
    /// bowl, and offers its analytic gradient as the proxy.
    struct Counting {
        dim: usize,
        evals: usize,
        batch_calls: usize,
        proxy: FnBatchDifferentiable<GradFn>,
    }

    fn bowl_grad(xs: &[f64], batch: usize) -> (Vec<f64>, Vec<f64>) {
        let dim = xs.len() / batch;
        let mut values = Vec::with_capacity(batch);
        let mut grads = vec![0.0; xs.len()];
        for b in 0..batch {
            let row = &xs[b * dim..(b + 1) * dim];
            values.push(row.iter().map(|v| v * v).sum());
            for (d, &v) in row.iter().enumerate() {
                grads[b * dim + d] = 2.0 * v;
            }
        }
        (values, grads)
    }

    impl Counting {
        fn new(dim: usize) -> Self {
            Counting {
                dim,
                evals: 0,
                batch_calls: 0,
                proxy: FnBatchDifferentiable::new(dim, bowl_grad),
            }
        }
    }

    impl Objective for Counting {
        fn dim(&self) -> usize {
            self.dim
        }

        fn evaluate(&mut self, x: &[f64]) -> Option<f64> {
            self.evals += 1;
            // A pocket of invalid points exercises None-handling.
            if x[0] > 0.9 {
                return None;
            }
            Some(x.iter().map(|v| v * v).sum())
        }
    }

    impl SearchObjective for Counting {
        fn evaluate_batch(&mut self, xs: &[Vec<f64>]) -> Vec<Option<f64>> {
            self.batch_calls += 1;
            self.evals += xs.len();
            xs.iter()
                .map(|x| {
                    if x[0] > 0.9 {
                        None
                    } else {
                        Some(x.iter().map(|v| v * v).sum())
                    }
                })
                .collect()
        }

        fn proxy(&mut self) -> Option<&mut dyn BatchDifferentiableObjective> {
            Some(&mut self.proxy)
        }
    }

    fn all_engines() -> Vec<Box<dyn SearchEngine>> {
        ["random", "bo", "evo", "sa", "cd", "gd"]
            .iter()
            .map(|n| engine_by_name(n).expect("known engine"))
            .collect()
    }

    #[test]
    fn every_engine_spends_its_budget_exactly() {
        let space = BoxSpace::new(vec![-1.0, 0.0], vec![1.0, 2.0]);
        for engine in all_engines() {
            for budget in [1usize, 7, 23] {
                let mut obj = Counting::new(2);
                let mut rng = ChaCha8Rng::seed_from_u64(11);
                let trace = engine.run(&space, &mut obj, budget, &mut rng);
                assert_eq!(
                    trace.len(),
                    budget,
                    "{} trace length at budget {budget}",
                    engine.name()
                );
                assert_eq!(
                    obj.evals,
                    budget,
                    "{} objective calls at budget {budget}",
                    engine.name()
                );
                assert_eq!(trace.label(), engine.name());
            }
        }
    }

    #[test]
    fn engines_are_deterministic_per_seed() {
        let space = BoxSpace::symmetric(3, 1.5);
        for engine in all_engines() {
            let mut o1 = Counting::new(3);
            let mut o2 = Counting::new(3);
            let t1 = engine.run(&space, &mut o1, 15, &mut ChaCha8Rng::seed_from_u64(3));
            let t2 = engine.run(&space, &mut o2, 15, &mut ChaCha8Rng::seed_from_u64(3));
            assert_eq!(t1, t2, "{} not deterministic", engine.name());
        }
    }

    #[test]
    fn random_engine_scores_through_one_batch_call() {
        let space = BoxSpace::unit(2);
        let mut obj = Counting::new(2);
        let trace = RandomEngine.run(&space, &mut obj, 30, &mut ChaCha8Rng::seed_from_u64(7));
        assert_eq!(trace.len(), 30);
        assert_eq!(obj.batch_calls, 1);
    }

    #[test]
    fn cd_engine_improves_over_its_first_valid_sample() {
        let space = BoxSpace::symmetric(2, 2.0);
        let mut obj = Counting::new(2);
        let trace =
            CdEngine::default().run(&space, &mut obj, 80, &mut ChaCha8Rng::seed_from_u64(5));
        let first = trace
            .samples()
            .iter()
            .find_map(|s| s.value)
            .expect("a valid sample");
        assert!(trace.best_value().expect("valid best") <= first);
    }

    #[test]
    fn gd_engine_descends_the_proxy() {
        let space = BoxSpace::symmetric(2, 1.0);
        let mut obj = Counting::new(2);
        let trace = GdEngine::default().run(&space, &mut obj, 6, &mut ChaCha8Rng::seed_from_u64(9));
        // The bowl's minimum is at the origin; descended finals must be
        // far closer to it than uniform draws would be on average.
        assert!(trace.best_value().expect("valid best") < 0.05);
    }

    #[test]
    #[should_panic(expected = "differentiable proxy")]
    fn gd_engine_without_proxy_panics() {
        let space = BoxSpace::unit(1);
        let mut obj = FnObjective::new(1, |x: &[f64]| Some(x[0]));
        let _ = GdEngine::default().run(&space, &mut obj, 2, &mut ChaCha8Rng::seed_from_u64(1));
    }

    #[test]
    fn outcome_summarizes_a_trace() {
        let mut t = Trace::new("demo");
        t.record(vec![0.0], Some(5.0));
        t.record(vec![1.0], None);
        t.record(vec![2.0], Some(2.0));
        let o = SearchOutcome::of(&t);
        assert_eq!(o.label, "demo");
        assert_eq!(o.budget, 3);
        assert_eq!(o.best_value, Some(2.0));
        assert_eq!(o.best_point, Some(vec![2.0]));
        assert_eq!(o.samples_to_best_3pct, Some(3));
    }

    #[test]
    fn engine_by_name_covers_the_six_and_rejects_unknowns() {
        for name in ["random", "bo", "evo", "sa", "cd", "gd"] {
            assert_eq!(engine_by_name(name).expect("known").name(), name);
        }
        assert_eq!(engine_by_name("annealing").expect("alias").name(), "sa");
        assert!(engine_by_name("quantum").is_none());
    }
}
