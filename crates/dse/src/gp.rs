use crate::kernel::pack_points_f32;
use crate::{ArdKernel, Kernel, KernelKind};
use std::sync::{Arc, OnceLock};
use vaesa_linalg::triangular::{packed_row_offset, solve_lower_multi};
use vaesa_linalg::{Cholesky, LinalgError, Matrix, Precision};

/// Counts f32 kernel-matrix / cross-matrix fills, cached so the per-fill
/// increment is one relaxed atomic add after first use.
fn gp_f32_fills() -> &'static Arc<vaesa_obs::Counter> {
    static C: OnceLock<Arc<vaesa_obs::Counter>> = OnceLock::new();
    C.get_or_init(|| vaesa_obs::counter("dse.gp.f32.fills"))
}

/// Observation count below which GP fitting stays serial: thread fan-out
/// costs more than the O(n³) work it would hide on small problems, and the
/// BO loop refits small GPs every iteration.
const GP_PAR_MIN_N: usize = 64;

/// The GP's covariance function: isotropic or ARD.
#[derive(Debug, Clone)]
enum GpKernel {
    Iso(Kernel),
    Ard(ArdKernel),
}

impl GpKernel {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            GpKernel::Iso(k) => k.eval(a, b),
            GpKernel::Ard(k) => k.eval(a, b),
        }
    }

    fn kind(&self) -> KernelKind {
        match self {
            GpKernel::Iso(k) => k.kind,
            GpKernel::Ard(k) => k.kind,
        }
    }

    /// Fills `out[j] = k(x, pts[:, j])` on the SIMD f32 path; `pts_col` is
    /// the column-major packing from [`pack_points_f32`].
    fn eval_row_f32(&self, x: &[f32], pts_col: &[f32], out: &mut [f32]) {
        match self {
            GpKernel::Iso(k) => k.eval_row_f32(x, pts_col, out),
            GpKernel::Ard(k) => k.eval_row_f32(x, pts_col, out),
        }
    }
}

/// Gaussian-process regression with incremental updates.
///
/// The Bayesian-optimization loop adds one observation per iteration; a full
/// refit would cost O(n³) each time, so [`GpRegressor::add`] extends the
/// Cholesky factor in O(n²) and only [`GpRegressor::refit`] (called
/// periodically to retune the lengthscale) pays the cubic cost.
///
/// Targets are internally standardized (zero mean, unit variance) for
/// numerical stability; predictions are returned in the original units.
///
/// # Examples
///
/// ```
/// use vaesa_dse::GpRegressor;
///
/// let xs = vec![vec![0.0], vec![1.0], vec![2.0]];
/// let ys = vec![0.0, 1.0, 4.0];
/// let gp = GpRegressor::fit(&xs, &ys)?;
/// let (mean, var) = gp.predict(&[1.0]);
/// assert!((mean - 1.0).abs() < 0.2);
/// assert!(var >= 0.0);
/// # Ok::<(), vaesa_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GpRegressor {
    kernel: GpKernel,
    noise: f64,
    /// Captured from the global [`Precision`] at fit time: when `true`, the
    /// kernel matrix and prediction cross-matrices are filled with the SIMD
    /// f32 row kernels (the Cholesky factor, triangular solves, and the
    /// O(n²) incremental extension stay in f64).
    f32_mode: bool,
    xs: Vec<Vec<f64>>,
    ys: Vec<f64>,
    y_mean: f64,
    y_std: f64,
    /// Lower-triangular Cholesky factor of `K + noise·I`, stored as a
    /// packed row-major triangle: row `i` starts at `i(i+1)/2` and has
    /// `i + 1` entries. Packing keeps the factor contiguous, which both the
    /// incremental extension (append one row) and the multi-RHS batched
    /// solves want.
    l: Vec<f64>,
    /// `(K + noise·I)⁻¹ ỹ` for the standardized targets ỹ.
    alpha: Vec<f64>,
}

impl GpRegressor {
    /// Default observation-noise variance (relative to standardized targets).
    pub const DEFAULT_NOISE: f64 = 1e-6;

    /// Fits a GP with a lengthscale chosen by maximizing the log marginal
    /// likelihood over a coarse grid, using the Matérn-5/2 kernel.
    ///
    /// # Errors
    ///
    /// Returns an error if fewer than one observation is given or the
    /// kernel matrix cannot be factored.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64]) -> Result<Self, LinalgError> {
        Self::fit_with(xs, ys, KernelKind::Matern52, Self::DEFAULT_NOISE)
    }

    /// Fits a GP with an explicit kernel family and noise, tuning the
    /// lengthscale by log-marginal-likelihood grid search.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] when called with no data, or a
    /// factorization error if every candidate lengthscale fails.
    pub fn fit_with(
        xs: &[Vec<f64>],
        ys: &[f64],
        kind: KernelKind,
        noise: f64,
    ) -> Result<Self, LinalgError> {
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(LinalgError::Empty);
        }
        // One sample per hyperparameter-searched fit (the BO refit cadence);
        // the six candidate factorizations inside dominate the cost.
        let timer = std::time::Instant::now();
        let result = Self::fit_with_timed(xs, ys, kind, noise);
        vaesa_obs::histogram("dse.gp.fit_ns").record(timer.elapsed().as_nanos() as f64);
        vaesa_obs::counter("dse.gp.fits").incr();
        result
    }

    fn fit_with_timed(
        xs: &[Vec<f64>],
        ys: &[f64],
        kind: KernelKind,
        noise: f64,
    ) -> Result<Self, LinalgError> {
        // Candidate lengthscales relative to the data's coordinate spread.
        // Each candidate costs a full O(n³) factorization, so the grid fans
        // out across the pool; the reduction walks candidates in grid order,
        // reproducing the serial selection (first maximum wins, last error
        // reported) for any thread count.
        let spread = coordinate_spread(xs).max(1e-9);
        let grid = [0.05, 0.1, 0.2, 0.5, 1.0, 2.0];
        let fit_one = |&rel: &f64| {
            let kernel = Kernel::new(kind, rel * spread, 1.0);
            Self::fit_fixed(xs, ys, kernel, noise)
        };
        let candidates: Vec<Result<Self, LinalgError>> = if xs.len() >= GP_PAR_MIN_N {
            vaesa_par::par_map(&grid, fit_one)
        } else {
            grid.iter().map(fit_one).collect()
        };
        let mut best: Option<(f64, GpRegressor)> = None;
        let mut last_err = LinalgError::Empty;
        for candidate in candidates {
            match candidate {
                Ok(gp) => {
                    let lml = gp.log_marginal_likelihood();
                    if best.as_ref().is_none_or(|(b, _)| lml > *b) {
                        best = Some((lml, gp));
                    }
                }
                Err(e) => last_err = e,
            }
        }
        best.map(|(_, gp)| gp).ok_or(last_err)
    }

    /// Fits with a fully specified kernel (no hyperparameter search).
    ///
    /// # Errors
    ///
    /// Returns an error for empty data or a non-factorable kernel matrix.
    pub fn fit_fixed(
        xs: &[Vec<f64>],
        ys: &[f64],
        kernel: Kernel,
        noise: f64,
    ) -> Result<Self, LinalgError> {
        Self::fit_fixed_kernel(xs, ys, GpKernel::Iso(kernel), noise)
    }

    /// Fits with a fully specified ARD kernel (no hyperparameter search).
    ///
    /// # Errors
    ///
    /// Returns an error for empty data or a non-factorable kernel matrix.
    pub fn fit_fixed_ard(
        xs: &[Vec<f64>],
        ys: &[f64],
        kernel: ArdKernel,
        noise: f64,
    ) -> Result<Self, LinalgError> {
        Self::fit_fixed_kernel(xs, ys, GpKernel::Ard(kernel), noise)
    }

    /// Fits an ARD GP: starts from the best isotropic lengthscale, then
    /// coordinate-descends per-dimension lengthscales (two sweeps over
    /// ×½ / ×2 proposals), keeping changes that improve the log marginal
    /// likelihood. O(sweeps · dim · n³) — use for modest `n`.
    ///
    /// # Errors
    ///
    /// Same as [`GpRegressor::fit_with`].
    pub fn fit_ard(
        xs: &[Vec<f64>],
        ys: &[f64],
        kind: KernelKind,
        noise: f64,
    ) -> Result<Self, LinalgError> {
        let iso = Self::fit_with(xs, ys, kind, noise)?;
        let base = match &iso.kernel {
            GpKernel::Iso(k) => k.lengthscale,
            GpKernel::Ard(_) => unreachable!("fit_with builds isotropic kernels"),
        };
        let dim = xs[0].len();
        let mut scales = vec![base; dim];
        let mut best = iso;
        let mut best_lml = best.log_marginal_likelihood();
        for _sweep in 0..2 {
            for d in 0..dim {
                for factor in [0.5, 2.0] {
                    let mut trial = scales.clone();
                    trial[d] *= factor;
                    let kernel = ArdKernel::new(kind, trial.clone(), 1.0);
                    if let Ok(gp) = Self::fit_fixed_ard(xs, ys, kernel, noise) {
                        let lml = gp.log_marginal_likelihood();
                        if lml > best_lml {
                            best_lml = lml;
                            best = gp;
                            scales = trial;
                        }
                    }
                }
            }
        }
        Ok(best)
    }

    fn fit_fixed_kernel(
        xs: &[Vec<f64>],
        ys: &[f64],
        kernel: GpKernel,
        noise: f64,
    ) -> Result<Self, LinalgError> {
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(LinalgError::Empty);
        }
        let n = xs.len();
        let f32_mode = Precision::active().is_f32();
        let mut k = Matrix::zeros(n, n);
        if f32_mode {
            // SIMD f32 row fill. Symmetry stays bit-exact: (a-b)² == (b-a)²
            // in f32 too and the per-dimension accumulation order is the
            // same for rows i and j, so both triangles agree and the f64
            // Cholesky below sees an exactly symmetric matrix.
            gp_f32_fills().incr();
            let pts = pack_points_f32(xs);
            let fill_row = |i: usize, row: &mut [f64]| {
                let x32: Vec<f32> = xs[i].iter().map(|&v| v as f32).collect();
                let mut row32 = vec![0.0f32; n];
                kernel.eval_row_f32(&x32, &pts, &mut row32);
                for (slot, &v) in row.iter_mut().zip(&row32) {
                    *slot = f64::from(v);
                }
                row[i] += noise;
            };
            if n >= GP_PAR_MIN_N && vaesa_par::num_threads() > 1 {
                vaesa_par::par_chunks_mut(k.as_mut_slice(), n, |i, _, row| fill_row(i, row));
            } else {
                for i in 0..n {
                    fill_row(i, &mut k.as_mut_slice()[i * n..(i + 1) * n]);
                }
            }
        } else if n >= GP_PAR_MIN_N && vaesa_par::num_threads() > 1 {
            // One row per chunk; `eval` is exactly symmetric (the squared
            // differences negate bit-exactly), so filling both triangles
            // independently matches the mirrored serial fill.
            vaesa_par::par_chunks_mut(k.as_mut_slice(), n, |i, _, row| {
                for (j, slot) in row.iter_mut().enumerate() {
                    *slot = kernel.eval(&xs[i], &xs[j]);
                }
                row[i] += noise;
            });
        } else {
            for i in 0..n {
                for j in 0..=i {
                    let v = kernel.eval(&xs[i], &xs[j]);
                    k[(i, j)] = v;
                    k[(j, i)] = v;
                }
                k[(i, i)] += noise;
            }
        }
        let chol = Cholesky::new(&k)?;
        let mut l = Vec::with_capacity(n * (n + 1) / 2);
        for i in 0..n {
            for j in 0..=i {
                l.push(chol.factor()[(i, j)]);
            }
        }
        let mut gp = GpRegressor {
            kernel,
            noise,
            f32_mode,
            xs: xs.to_vec(),
            ys: ys.to_vec(),
            y_mean: 0.0,
            y_std: 1.0,
            l,
            alpha: Vec::new(),
        };
        gp.recompute_alpha();
        Ok(gp)
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Returns `true` if the GP holds no observations.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// The per-dimension lengthscales currently in use (an isotropic kernel
    /// reports its single lengthscale repeated across dimensions).
    pub fn lengthscales(&self) -> Vec<f64> {
        let dim = self.xs.first().map_or(0, Vec::len);
        match &self.kernel {
            GpKernel::Iso(k) => vec![k.lengthscale; dim],
            GpKernel::Ard(k) => k.lengthscales.clone(),
        }
    }

    /// Adds one observation, extending the Cholesky factor in O(n²).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] if the extended matrix
    /// loses positive definiteness (e.g. a duplicate point with conflicting
    /// targets and zero noise); callers should then [`GpRegressor::refit`].
    pub fn add(&mut self, x: Vec<f64>, y: f64) -> Result<(), LinalgError> {
        let n = self.len();
        // New column k_vec = K(X, x); solve L b = k_vec.
        let k_vec: Vec<f64> = self.xs.iter().map(|xi| self.kernel.eval(xi, &x)).collect();
        let b = self.solve_lower(&k_vec);
        let kxx = self.kernel.eval(&x, &x) + self.noise;
        let d2 = kxx - b.iter().map(|v| v * v).sum::<f64>();
        if d2 <= 0.0 || !d2.is_finite() {
            return Err(LinalgError::NotPositiveDefinite { max_jitter: 0.0 });
        }
        debug_assert_eq!(b.len(), n);
        self.l.extend_from_slice(&b);
        self.l.push(d2.sqrt());
        self.xs.push(x);
        self.ys.push(y);
        self.recompute_alpha();
        Ok(())
    }

    /// Refits from scratch, re-tuning the lengthscale.
    ///
    /// # Errors
    ///
    /// Same as [`GpRegressor::fit_with`].
    pub fn refit(&mut self) -> Result<(), LinalgError> {
        let refit = Self::fit_with(&self.xs, &self.ys, self.kernel.kind(), self.noise)?;
        *self = refit;
        Ok(())
    }

    /// Posterior mean and variance at `x`, in original target units.
    ///
    /// A GP fitted in f32 mode delegates to [`GpRegressor::predict_batch`]
    /// so single-point and batched predictions use the same f32 row fill
    /// (and therefore stay bit-identical to each other).
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        if self.f32_mode {
            return self.predict_batch(std::slice::from_ref(&x.to_vec()))[0];
        }
        let k_vec: Vec<f64> = self.xs.iter().map(|xi| self.kernel.eval(xi, x)).collect();
        let mean_std: f64 = k_vec.iter().zip(&self.alpha).map(|(a, b)| a * b).sum();
        let v = self.solve_lower(&k_vec);
        let var_std = (self.kernel.eval(x, x) - v.iter().map(|b| b * b).sum::<f64>()).max(0.0);
        (
            mean_std * self.y_std + self.y_mean,
            var_std * self.y_std * self.y_std,
        )
    }

    /// Posterior means and variances for a whole candidate batch, in
    /// original target units; slot `j` is bit-identical to
    /// `self.predict(&xs[j])` at any thread count.
    ///
    /// The kernel cross-matrix `K*` (`n x m`) is filled once (in parallel
    /// for large models), the mean reduction reuses it, and a single
    /// blocked multi-RHS forward substitution replaces the `m`
    /// per-candidate vector solves — no per-candidate `k_vec` allocation.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<(f64, f64)> {
        let n = self.len();
        let m = xs.len();
        if m == 0 {
            return Vec::new();
        }
        let mut kstar = Matrix::zeros(n, m);
        if self.f32_mode {
            gp_f32_fills().incr();
            let cand = pack_points_f32(xs);
            let fill_row = |i: usize, row: &mut [f64]| {
                let x32: Vec<f32> = self.xs[i].iter().map(|&v| v as f32).collect();
                let mut row32 = vec![0.0f32; m];
                self.kernel.eval_row_f32(&x32, &cand, &mut row32);
                for (slot, &v) in row.iter_mut().zip(&row32) {
                    *slot = f64::from(v);
                }
            };
            if n >= GP_PAR_MIN_N && vaesa_par::num_threads() > 1 {
                vaesa_par::par_chunks_mut(kstar.as_mut_slice(), m, |i, _, row| fill_row(i, row));
            } else {
                for i in 0..n {
                    fill_row(i, &mut kstar.as_mut_slice()[i * m..(i + 1) * m]);
                }
            }
        } else if n >= GP_PAR_MIN_N && vaesa_par::num_threads() > 1 {
            vaesa_par::par_chunks_mut(kstar.as_mut_slice(), m, |i, _, row| {
                for (slot, x) in row.iter_mut().zip(xs) {
                    *slot = self.kernel.eval(&self.xs[i], x);
                }
            });
        } else {
            for i in 0..n {
                let row = &mut kstar.as_mut_slice()[i * m..(i + 1) * m];
                for (slot, x) in row.iter_mut().zip(xs) {
                    *slot = self.kernel.eval(&self.xs[i], x);
                }
            }
        }
        // Means: accumulate K*ᵀ·α with the training index outermost — per
        // candidate this is the same left-to-right sum `predict` computes.
        let mut mean_std = vec![0.0; m];
        for i in 0..n {
            let a = self.alpha[i];
            let row = &kstar.as_slice()[i * m..(i + 1) * m];
            for (acc, &k) in mean_std.iter_mut().zip(row) {
                *acc += k * a;
            }
        }
        // One multi-RHS solve turns column j into v_j = L⁻¹ K*_j in place.
        solve_lower_multi(&self.l, n, &mut kstar);
        let mut v_sq = vec![0.0; m];
        for i in 0..n {
            let row = &kstar.as_slice()[i * m..(i + 1) * m];
            for (acc, &v) in v_sq.iter_mut().zip(row) {
                *acc += v * v;
            }
        }
        xs.iter()
            .zip(mean_std.iter().zip(&v_sq))
            .map(|(x, (&mean, &sq))| {
                let var = (self.kernel.eval(x, x) - sq).max(0.0);
                (
                    mean * self.y_std + self.y_mean,
                    var * self.y_std * self.y_std,
                )
            })
            .collect()
    }

    /// Log marginal likelihood of the standardized targets under the
    /// current kernel.
    pub fn log_marginal_likelihood(&self) -> f64 {
        let n = self.len() as f64;
        let ys_std: Vec<f64> = self
            .ys
            .iter()
            .map(|&y| (y - self.y_mean) / self.y_std)
            .collect();
        let data_fit: f64 = ys_std.iter().zip(&self.alpha).map(|(a, b)| a * b).sum();
        let log_det: f64 = (0..self.len())
            .map(|i| self.l[packed_row_offset(i) + i].ln())
            .sum();
        -0.5 * data_fit - log_det - 0.5 * n * (2.0 * std::f64::consts::PI).ln()
    }

    fn recompute_alpha(&mut self) {
        let n = self.len();
        let mean = self.ys.iter().sum::<f64>() / n as f64;
        let var = self.ys.iter().map(|y| (y - mean) * (y - mean)).sum::<f64>() / n as f64;
        self.y_mean = mean;
        self.y_std = if var > 1e-18 { var.sqrt() } else { 1.0 };
        let ys_std: Vec<f64> = self
            .ys
            .iter()
            .map(|&y| (y - self.y_mean) / self.y_std)
            .collect();
        let z = self.solve_lower(&ys_std);
        self.alpha = self.solve_upper(&z);
    }

    #[allow(clippy::needless_range_loop)] // triangular solves read clearest with indices
    fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let n = self.len();
        debug_assert_eq!(b.len(), n);
        let mut y = vec![0.0; n];
        for i in 0..n {
            let off = packed_row_offset(i);
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[off + k] * y[k];
            }
            y[i] = sum / self.l[off + i];
        }
        y
    }

    #[allow(clippy::needless_range_loop)] // triangular solves read clearest with indices
    fn solve_upper(&self, y: &[f64]) -> Vec<f64> {
        let n = self.len();
        debug_assert_eq!(y.len(), n);
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.l[packed_row_offset(k) + i] * x[k];
            }
            x[i] = sum / self.l[packed_row_offset(i) + i];
        }
        x
    }
}

/// Mean per-dimension spread (max - min) of the inputs, used to scale the
/// lengthscale search grid.
fn coordinate_spread(xs: &[Vec<f64>]) -> f64 {
    let d = xs[0].len();
    let mut total = 0.0;
    for j in 0..d {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for x in xs {
            lo = lo.min(x[j]);
            hi = hi.max(x[j]);
        }
        total += (hi - lo).max(0.0);
    }
    total / d as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn training_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64 / 2.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0]).sin() * 3.0 + 10.0).collect();
        (xs, ys)
    }

    #[test]
    fn interpolates_training_points() {
        let (xs, ys) = training_data();
        let gp = GpRegressor::fit(&xs, &ys).unwrap();
        for (x, &y) in xs.iter().zip(&ys) {
            let (m, v) = gp.predict(x);
            assert!((m - y).abs() < 0.05, "mean {m} vs target {y}");
            assert!(v < 0.1, "variance {v} too high at a training point");
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let (xs, ys) = training_data();
        let gp = GpRegressor::fit(&xs, &ys).unwrap();
        let (_, v_near) = gp.predict(&[2.0]);
        let (_, v_far) = gp.predict(&[30.0]);
        assert!(v_far > v_near * 10.0, "near {v_near}, far {v_far}");
    }

    #[test]
    fn incremental_add_matches_full_fit() {
        let (xs, ys) = training_data();
        let kernel = Kernel::new(KernelKind::Matern52, 1.0, 1.0);
        let full = GpRegressor::fit_fixed(&xs, &ys, kernel, 1e-6).unwrap();
        let mut inc = GpRegressor::fit_fixed(&xs[..4], &ys[..4], kernel, 1e-6).unwrap();
        for i in 4..xs.len() {
            inc.add(xs[i].clone(), ys[i]).unwrap();
        }
        for probe in [[0.7], [3.3], [8.0]] {
            let (mf, vf) = full.predict(&probe);
            let (mi, vi) = inc.predict(&probe);
            assert!((mf - mi).abs() < 1e-8, "means differ: {mf} vs {mi}");
            assert!((vf - vi).abs() < 1e-8, "variances differ: {vf} vs {vi}");
        }
    }

    #[test]
    fn add_rejects_exact_duplicate_with_zero_noise() {
        let xs = vec![vec![1.0]];
        let ys = vec![2.0];
        let kernel = Kernel::new(KernelKind::Rbf, 1.0, 1.0);
        let mut gp = GpRegressor::fit_fixed(&xs, &ys, kernel, 0.0).unwrap();
        // With zero noise a duplicate input makes the kernel matrix exactly
        // singular, so the incremental extension must fail loudly.
        let result = gp.add(vec![1.0], 5.0);
        assert!(result.is_err());
    }

    #[test]
    fn refit_preserves_observations() {
        let (xs, ys) = training_data();
        let mut gp = GpRegressor::fit(&xs[..6], &ys[..6]).unwrap();
        for i in 6..xs.len() {
            gp.add(xs[i].clone(), ys[i]).unwrap();
        }
        gp.refit().unwrap();
        assert_eq!(gp.len(), xs.len());
        let (m, _) = gp.predict(&xs[8]);
        assert!((m - ys[8]).abs() < 0.1);
    }

    #[test]
    fn lml_prefers_reasonable_lengthscales() {
        let (xs, ys) = training_data();
        let good = GpRegressor::fit(&xs, &ys).unwrap();
        let bad_kernel = Kernel::new(KernelKind::Matern52, 1e-3, 1.0);
        let bad = GpRegressor::fit_fixed(&xs, &ys, bad_kernel, 1e-6).unwrap();
        assert!(good.log_marginal_likelihood() > bad.log_marginal_likelihood());
    }

    #[test]
    fn empty_fit_rejected() {
        assert!(GpRegressor::fit(&[], &[]).is_err());
        assert!(GpRegressor::fit(&[vec![1.0]], &[]).is_err());
    }

    #[test]
    fn constant_targets_are_handled() {
        let xs: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64]).collect();
        let ys = vec![7.0; 5];
        let gp = GpRegressor::fit(&xs, &ys).unwrap();
        let (m, _) = gp.predict(&[2.5]);
        assert!((m - 7.0).abs() < 1e-6);
    }

    #[test]
    fn ard_fit_stretches_irrelevant_dimensions() {
        // y depends only on x0; x1 is noise. ARD should learn a larger
        // lengthscale for dim 1 than dim 0 and not fit worse than isotropic.
        let xs: Vec<Vec<f64>> = (0..30)
            .map(|i| {
                let t = i as f64 / 5.0;
                vec![t.sin() * 2.0, ((i * 7919) % 13) as f64 / 6.5 - 1.0]
            })
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x[0] + 1.0).collect();
        let iso = GpRegressor::fit(&xs, &ys).unwrap();
        let ard = GpRegressor::fit_ard(&xs, &ys, KernelKind::Matern52, 1e-6).unwrap();
        assert!(ard.log_marginal_likelihood() >= iso.log_marginal_likelihood() - 1e-9);
        let scales = ard.lengthscales();
        assert_eq!(scales.len(), 2);
        assert!(
            scales[1] >= scales[0],
            "irrelevant dim should not get the shorter lengthscale: {scales:?}"
        );
    }

    #[test]
    fn ard_predictions_remain_calibrated_at_training_points() {
        let xs: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64 / 2.0, 0.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0].cos()).collect();
        let gp = GpRegressor::fit_ard(&xs, &ys, KernelKind::Matern52, 1e-6).unwrap();
        for (x, &y) in xs.iter().zip(&ys) {
            let (m, v) = gp.predict(x);
            assert!((m - y).abs() < 0.05);
            assert!(v >= 0.0);
        }
    }

    #[test]
    fn lengthscales_accessor_reports_isotropic_repeat() {
        let xs = vec![vec![0.0, 1.0], vec![1.0, 0.0], vec![2.0, 2.0]];
        let ys = vec![0.0, 1.0, 2.0];
        let gp = GpRegressor::fit(&xs, &ys).unwrap();
        let s = gp.lengthscales();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0], s[1]);
    }

    #[test]
    fn large_fit_is_deterministic_across_thread_counts() {
        // Big enough to take the parallel kernel-build and grid-search
        // paths; results must be bit-identical at every thread count.
        let xs: Vec<Vec<f64>> = (0..80)
            .map(|i| vec![(i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x[0] - x[1]).collect();
        std::env::set_var("VAESA_THREADS", "1");
        let base = GpRegressor::fit(&xs, &ys).unwrap();
        for threads in ["2", "5"] {
            std::env::set_var("VAESA_THREADS", threads);
            let gp = GpRegressor::fit(&xs, &ys).unwrap();
            assert_eq!(
                base.log_marginal_likelihood().to_bits(),
                gp.log_marginal_likelihood().to_bits(),
                "threads = {threads}"
            );
            for probe in [[0.3, -0.2], [1.5, 0.9]] {
                let (m0, v0) = base.predict(&probe);
                let (m1, v1) = gp.predict(&probe);
                assert_eq!(m0.to_bits(), m1.to_bits());
                assert_eq!(v0.to_bits(), v1.to_bits());
            }
        }
        std::env::remove_var("VAESA_THREADS");
    }

    #[test]
    fn predict_batch_matches_predict_bitwise_across_threads() {
        // Small model: serial kernel fill. Large model: parallel fill and
        // the blocked multi-RHS solve. Both must match per-point `predict`
        // exactly (the ≤1e-12 equivalence bound holds with zero slack).
        let small: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64 / 2.0, -(i as f64)]).collect();
        let small_ys: Vec<f64> = small.iter().map(|x| x[0].sin() + 0.1 * x[1]).collect();
        let large: Vec<Vec<f64>> = (0..90)
            .map(|i| vec![(i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()])
            .collect();
        let large_ys: Vec<f64> = large.iter().map(|x| 2.0 * x[0] - x[1]).collect();
        let candidates: Vec<Vec<f64>> = (0..17)
            .map(|j| vec![(j as f64 * 0.61).cos() * 2.0, (j as f64 * 0.23).sin() * 2.0])
            .collect();
        for (xs, ys) in [(small, small_ys), (large, large_ys)] {
            let gp = GpRegressor::fit(&xs, &ys).unwrap();
            let serial: Vec<(f64, f64)> = candidates.iter().map(|x| gp.predict(x)).collect();
            for threads in ["1", "2", "5"] {
                std::env::set_var("VAESA_THREADS", threads);
                let batch = gp.predict_batch(&candidates);
                assert_eq!(batch.len(), serial.len());
                for (j, ((bm, bv), (sm, sv))) in batch.iter().zip(&serial).enumerate() {
                    assert!((bm - sm).abs() <= 1e-12 && (bv - sv).abs() <= 1e-12);
                    assert_eq!(bm.to_bits(), sm.to_bits(), "mean {j}, threads {threads}");
                    assert_eq!(bv.to_bits(), sv.to_bits(), "var {j}, threads {threads}");
                }
            }
            std::env::remove_var("VAESA_THREADS");
        }
    }

    #[test]
    fn predict_batch_after_incremental_adds() {
        let (xs, ys) = training_data();
        let kernel = Kernel::new(KernelKind::Matern52, 1.0, 1.0);
        let mut gp = GpRegressor::fit_fixed(&xs[..4], &ys[..4], kernel, 1e-6).unwrap();
        for i in 4..xs.len() {
            gp.add(xs[i].clone(), ys[i]).unwrap();
        }
        let probes = vec![vec![0.7], vec![3.3], vec![8.0]];
        let batch = gp.predict_batch(&probes);
        for (probe, &(bm, bv)) in probes.iter().zip(&batch) {
            let (sm, sv) = gp.predict(probe);
            assert_eq!(bm.to_bits(), sm.to_bits());
            assert_eq!(bv.to_bits(), sv.to_bits());
        }
    }

    #[test]
    fn predict_batch_empty_is_empty() {
        let (xs, ys) = training_data();
        let gp = GpRegressor::fit(&xs, &ys).unwrap();
        assert!(gp.predict_batch(&[]).is_empty());
    }

    #[test]
    fn multidimensional_inputs() {
        let xs: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![(i % 5) as f64, (i / 5) as f64])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] + 2.0 * x[1]).collect();
        let gp = GpRegressor::fit(&xs, &ys).unwrap();
        let (m, _) = gp.predict(&[2.0, 1.5]);
        assert!((m - 5.0).abs() < 0.5, "predicted {m}");
    }
}
