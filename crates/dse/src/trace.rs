use serde::{Deserialize, Serialize};

/// Records a finished search trace on the global observability registry:
///
/// - counter `dse.evals` — incremented by the trace length (every DSE flow
///   funnels through one driver call, so this totals the true-evaluation
///   budget actually spent);
/// - series `dse.<label>.best_edp` — the best-so-far trajectory, replaced
///   per run so a manifest keeps the most recent run's curve (invalid
///   samples before the first valid one render as `null`);
/// - gauge `dse.<label>.best` — the best value across *all* runs with this
///   label (running minimum).
pub fn record_trace(trace: &Trace) {
    vaesa_obs::counter("dse.evals").add(trace.len() as u64);
    let curve: Vec<f64> = trace
        .samples()
        .iter()
        .map(|s| s.best_so_far.unwrap_or(f64::NAN))
        .collect();
    vaesa_obs::series(&format!("dse.{}.best_edp", trace.label())).set(curve);
    if let Some(best) = trace.best_value() {
        vaesa_obs::gauge(&format!("dse.{}.best", trace.label())).set_min(best);
    }
}

/// One evaluated sample in a search run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Zero-based sample index.
    pub index: usize,
    /// The evaluated point.
    pub x: Vec<f64>,
    /// The objective value, or `None` for an invalid point.
    pub value: Option<f64>,
    /// Best (minimum) valid value observed up to and including this sample,
    /// or `None` if no valid sample has been seen yet.
    pub best_so_far: Option<f64>,
}

/// The full log of a search run: every sample plus derived metrics.
///
/// Traces are the unit of comparison in the paper's evaluation: Figure 11
/// plots `best_so_far` curves, Table V reports final best EDP (search
/// performance) and samples-to-within-3% (sample efficiency).
///
/// # Examples
///
/// ```
/// use vaesa_dse::Trace;
///
/// let mut t = Trace::new("demo");
/// t.record(vec![0.0], Some(5.0));
/// t.record(vec![1.0], None);        // invalid sample, budget still spent
/// t.record(vec![2.0], Some(2.0));
/// assert_eq!(t.best_value(), Some(2.0));
/// assert_eq!(t.len(), 3);
/// assert_eq!(t.samples_to_within(0.03, 2.0), Some(3));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    label: String,
    samples: Vec<Sample>,
}

impl Trace {
    /// Creates an empty trace labeled with the search method's name.
    pub fn new(label: impl Into<String>) -> Self {
        Trace {
            label: label.into(),
            samples: Vec::new(),
        }
    }

    /// The method label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Replaces the method label (e.g. a driver prefixing the space mode).
    pub fn set_label(&mut self, label: impl Into<String>) {
        self.label = label.into();
    }

    /// Records one sample.
    pub fn record(&mut self, x: Vec<f64>, value: Option<f64>) {
        let prev_best = self.best_value();
        let best_so_far = match (prev_best, value) {
            (Some(b), Some(v)) => Some(b.min(v)),
            (Some(b), None) => Some(b),
            (None, v) => v,
        };
        self.samples.push(Sample {
            index: self.samples.len(),
            x,
            value,
            best_so_far,
        });
    }

    /// Number of samples (valid and invalid).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// All samples, in evaluation order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Best (minimum) valid objective value, or `None` if every sample was
    /// invalid.
    pub fn best_value(&self) -> Option<f64> {
        self.samples.last().and_then(|s| s.best_so_far)
    }

    /// The point achieving [`Trace::best_value`].
    pub fn best_point(&self) -> Option<&[f64]> {
        let best = self.best_value()?;
        self.samples
            .iter()
            .find(|s| s.value == Some(best))
            .map(|s| s.x.as_slice())
    }

    /// The paper's sample-efficiency metric: the number of samples needed
    /// to reach within `frac` (e.g. `0.03`) of `reference` (the best known
    /// value for the workload). Returns `None` if never reached.
    pub fn samples_to_within(&self, frac: f64, reference: f64) -> Option<usize> {
        let threshold = reference * (1.0 + frac);
        self.samples
            .iter()
            .find(|s| s.best_so_far.is_some_and(|b| b <= threshold))
            .map(|s| s.index + 1)
    }

    /// Serializes the trace as CSV (`index,x...,value,best_so_far`);
    /// invalid samples leave the value column empty. Ready to write to a
    /// file or pipe into a plotting tool.
    pub fn to_csv(&self) -> String {
        let dim = self.samples.first().map_or(0, |s| s.x.len());
        let mut out = String::from("index");
        for d in 0..dim {
            out.push_str(&format!(",x{d}"));
        }
        out.push_str(",value,best_so_far\n");
        for s in &self.samples {
            out.push_str(&s.index.to_string());
            for v in &s.x {
                out.push_str(&format!(",{v:.6e}"));
            }
            match s.value {
                Some(v) => out.push_str(&format!(",{v:.6e}")),
                None => out.push(','),
            }
            match s.best_so_far {
                Some(b) => out.push_str(&format!(",{b:.6e}\n")),
                None => out.push_str(",\n"),
            }
        }
        out
    }

    /// The best-so-far curve, padded with the final value to `len` entries
    /// (so traces of different lengths can be averaged). Entries before the
    /// first valid sample hold `pad_value`.
    pub fn best_curve(&self, len: usize, pad_value: f64) -> Vec<f64> {
        let mut out: Vec<f64> = self
            .samples
            .iter()
            .take(len)
            .map(|s| s.best_so_far.unwrap_or(pad_value))
            .collect();
        let tail = out.last().copied().unwrap_or(pad_value);
        out.resize(len, tail);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Trace {
        let mut t = Trace::new("m");
        t.record(vec![0.0], Some(10.0));
        t.record(vec![1.0], Some(12.0)); // worse, best stays 10
        t.record(vec![2.0], None); // invalid
        t.record(vec![3.0], Some(4.0));
        t
    }

    #[test]
    fn best_so_far_is_monotone_nonincreasing() {
        let t = demo();
        let bests: Vec<f64> = t.samples().iter().filter_map(|s| s.best_so_far).collect();
        assert_eq!(bests, vec![10.0, 10.0, 10.0, 4.0]);
        assert_eq!(t.best_value(), Some(4.0));
        assert_eq!(t.best_point(), Some(&[3.0][..]));
    }

    #[test]
    fn invalid_samples_count_toward_budget() {
        let t = demo();
        assert_eq!(t.len(), 4);
        assert!(t.samples()[2].value.is_none());
        assert_eq!(t.samples()[2].best_so_far, Some(10.0));
    }

    #[test]
    fn all_invalid_trace_has_no_best() {
        let mut t = Trace::new("x");
        t.record(vec![0.0], None);
        assert_eq!(t.best_value(), None);
        assert_eq!(t.best_point(), None);
        assert_eq!(t.samples_to_within(0.03, 1.0), None);
    }

    #[test]
    fn samples_to_within_uses_relative_threshold() {
        let t = demo();
        // Within 3% of 4.0 => threshold 4.12, first reached at sample 4.
        assert_eq!(t.samples_to_within(0.03, 4.0), Some(4));
        // Within 200% of 4.0 => threshold 12: reached at first sample.
        assert_eq!(t.samples_to_within(2.0, 4.0), Some(1));
        // Unreachable reference.
        assert_eq!(t.samples_to_within(0.0, 1.0), None);
    }

    #[test]
    fn best_curve_pads_and_truncates() {
        let t = demo();
        assert_eq!(
            t.best_curve(6, f64::NAN),
            vec![10.0, 10.0, 10.0, 4.0, 4.0, 4.0]
        );
        assert_eq!(t.best_curve(2, 0.0), vec![10.0, 10.0]);
        let empty = Trace::new("e");
        assert_eq!(empty.best_curve(2, 7.0), vec![7.0, 7.0]);
    }

    #[test]
    fn label_is_kept() {
        assert_eq!(demo().label(), "m");
    }

    #[test]
    fn csv_includes_headers_values_and_blanks() {
        let csv = demo().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "index,x0,value,best_so_far");
        assert_eq!(lines.len(), 5); // header + 4 samples
        assert!(lines[1].starts_with("0,"));
        // The invalid third sample has an empty value column.
        let cols: Vec<&str> = lines[3].split(',').collect();
        assert_eq!(cols[2], "");
        assert!(cols[3].starts_with('1')); // best-so-far still 10
    }

    #[test]
    fn empty_trace_csv_is_header_only() {
        let csv = Trace::new("e").to_csv();
        assert_eq!(csv.lines().count(), 1);
    }
}
