//! Standard-normal density and CDF, used by the expected-improvement
//! acquisition function.

use std::f64::consts::PI;

/// Standard normal probability density φ(x).
pub fn pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * PI).sqrt()
}

/// Standard normal cumulative distribution Φ(x), via the complementary
/// error function (Abramowitz & Stegun 7.1.26, |ε| < 1.5e-7).
pub fn cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Error function approximation (Abramowitz & Stegun 7.1.26).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pdf_symmetry_and_peak() {
        assert!((pdf(0.0) - 0.3989422804).abs() < 1e-9);
        assert!((pdf(1.3) - pdf(-1.3)).abs() < 1e-12);
    }

    #[test]
    fn cdf_known_values() {
        assert!((cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((cdf(1.0) - 0.8413447).abs() < 1e-5);
        assert!((cdf(-1.0) - 0.1586553).abs() < 1e-5);
        assert!((cdf(1.96) - 0.9750021).abs() < 1e-5);
        assert!(cdf(8.0) > 0.999999);
        assert!(cdf(-8.0) < 1e-6);
    }

    #[test]
    fn erf_odd_function() {
        for x in [0.1, 0.7, 2.3] {
            assert!((erf(x) + erf(-x)).abs() < 1e-12);
        }
        assert!(erf(0.0).abs() < 1e-8);
    }

    #[test]
    fn cdf_is_monotone() {
        let mut prev = 0.0;
        for i in -40..=40 {
            let v = cdf(i as f64 / 10.0);
            assert!(v >= prev);
            prev = v;
        }
    }
}
