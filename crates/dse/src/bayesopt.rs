use crate::random::perturb;
use crate::{normal, BoxSpace, GpRegressor, Objective, Trace};
use rand::RngCore;

/// Configuration for [`BayesOpt`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BayesOptConfig {
    /// Random samples drawn before the GP model is first used.
    pub init_samples: usize,
    /// Random candidates scored by the acquisition function per iteration.
    pub random_candidates: usize,
    /// Candidates drawn by perturbing the incumbent best per iteration.
    pub local_candidates: usize,
    /// Relative standard deviation of local perturbations (fraction of each
    /// dimension's width).
    pub local_sigma: f64,
    /// Refit GP hyperparameters every this many observations (between
    /// refits the factor is extended incrementally).
    pub refit_every: usize,
    /// Cap on the number of observations kept in the GP. When exceeded,
    /// the model keeps the most recent observations plus the incumbent
    /// best; this bounds the per-iteration cost for long runs (the paper's
    /// runs reach 2000 samples).
    pub max_gp_points: usize,
}

impl Default for BayesOptConfig {
    fn default() -> Self {
        BayesOptConfig {
            init_samples: 10,
            random_candidates: 256,
            local_candidates: 64,
            local_sigma: 0.1,
            refit_every: 25,
            max_gp_points: 400,
        }
    }
}

/// Gaussian-process Bayesian optimization with the expected-improvement
/// acquisition function, for minimization.
///
/// This is the search engine behind both the paper's `bo` baseline (run on
/// the normalized input space) and `vae_bo` (run on the VAE latent space;
/// the objective decodes latent points to hardware configurations before
/// scoring them).
///
/// # Examples
///
/// ```
/// use vaesa_dse::{BayesOpt, BoxSpace, FnObjective};
/// use rand::SeedableRng;
///
/// let space = BoxSpace::symmetric(2, 2.0);
/// let mut objective = FnObjective::new(2, |x: &[f64]| {
///     Some((x[0] - 1.0).powi(2) + (x[1] + 0.5).powi(2))
/// });
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let trace = BayesOpt::new(space).run(&mut objective, 60, &mut rng);
/// assert!(trace.best_value().unwrap() < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct BayesOpt {
    space: BoxSpace,
    config: BayesOptConfig,
}

impl BayesOpt {
    /// Creates a Bayesian optimizer with default configuration.
    pub fn new(space: BoxSpace) -> Self {
        BayesOpt {
            space,
            config: BayesOptConfig::default(),
        }
    }

    /// Creates a Bayesian optimizer with explicit configuration.
    pub fn with_config(space: BoxSpace, config: BayesOptConfig) -> Self {
        assert!(config.init_samples >= 1, "need at least one initial sample");
        assert!(
            config.random_candidates + config.local_candidates >= 1,
            "need at least one candidate per iteration"
        );
        BayesOpt { space, config }
    }

    /// Runs the optimization for `budget` objective evaluations.
    ///
    /// Invalid samples (objective returns `None`) consume budget but are
    /// not added to the GP model.
    pub fn run(
        &self,
        objective: &mut dyn Objective,
        budget: usize,
        mut rng: &mut dyn RngCore,
    ) -> Trace {
        assert_eq!(objective.dim(), self.space.dim(), "dimension mismatch");
        let mut trace = Trace::new("bo");
        let mut xs: Vec<Vec<f64>> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        let mut gp: Option<GpRegressor> = None;
        let mut since_refit = 0usize;

        for _ in 0..budget {
            let x = match &gp {
                Some(model) if xs.len() >= self.config.init_samples => {
                    self.propose(model, &trace, &mut rng)
                }
                _ => self.space.sample(&mut rng),
            };
            let value = objective.evaluate(&x);
            trace.record(x.clone(), value);

            let Some(y) = value else { continue };
            xs.push(x.clone());
            ys.push(y);

            if xs.len() < self.config.init_samples {
                continue;
            }
            // Keep the GP bounded: retain the most recent window plus the
            // incumbent best observation.
            if xs.len() > self.config.max_gp_points {
                let best_idx = ys
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
                    .map(|(i, _)| i)
                    .expect("non-empty");
                let start = xs.len() - self.config.max_gp_points;
                let mut keep: Vec<usize> = (start..xs.len()).collect();
                if best_idx < start {
                    keep.push(best_idx);
                }
                xs = keep.iter().map(|&i| xs[i].clone()).collect();
                ys = keep.iter().map(|&i| ys[i]).collect();
                gp = None; // force refit on the pruned set
            }

            since_refit += 1;
            let needs_refit = gp.is_none() || since_refit >= self.config.refit_every;
            if needs_refit {
                gp = GpRegressor::fit(&xs, &ys).ok();
                since_refit = 0;
            } else if let Some(model) = gp.as_mut() {
                if model.add(x, y).is_err() {
                    // Duplicate or ill-conditioned extension: fall back to a
                    // full refit, dropping the model on persistent failure.
                    gp = GpRegressor::fit(&xs, &ys).ok();
                    since_refit = 0;
                }
            }
        }
        trace
    }

    /// Proposes the next point by maximizing expected improvement over a
    /// candidate pool of random and local samples.
    ///
    /// The whole pool is drawn from `rng` *before* any scoring — in the
    /// same order a draw-then-score loop would use, so the rng stream is
    /// unchanged — and then scored through one batched GP prediction
    /// ([`expected_improvement_batch`]). The first maximum wins, exactly as
    /// the per-candidate loop's strict `>` comparison selected it.
    fn propose(&self, gp: &GpRegressor, trace: &Trace, mut rng: &mut dyn RngCore) -> Vec<f64> {
        let best = trace.best_value().unwrap_or(f64::INFINITY);
        let incumbent: Vec<f64> = trace
            .best_point()
            .map(<[f64]>::to_vec)
            .unwrap_or_else(|| self.space.sample(&mut rng));

        let total = self.config.random_candidates + self.config.local_candidates;
        let mut pool = Vec::with_capacity(total);
        for i in 0..total {
            pool.push(if i < self.config.random_candidates {
                self.space.sample(&mut rng)
            } else {
                perturb(&self.space, &incumbent, self.config.local_sigma, &mut rng)
            });
        }
        let scores = expected_improvement_batch(gp, &pool, best);
        let mut best_idx = None;
        let mut best_ei = f64::NEG_INFINITY;
        for (i, &ei) in scores.iter().enumerate() {
            if ei > best_ei {
                best_ei = ei;
                best_idx = Some(i);
            }
        }
        match best_idx {
            Some(i) => pool.swap_remove(i),
            None => self.space.sample(&mut rng),
        }
    }
}

/// Expected improvement from a posterior `(mean, variance)` over the
/// incumbent `best`, for minimization.
fn ei_from_moments(mean: f64, var: f64, best: f64) -> f64 {
    let sigma = var.sqrt();
    if sigma < 1e-12 {
        return (best - mean).max(0.0);
    }
    let z = (best - mean) / sigma;
    (best - mean) * normal::cdf(z) + sigma * normal::pdf(z)
}

/// Expected improvement of a candidate over the incumbent `best`, for
/// minimization.
pub fn expected_improvement(gp: &GpRegressor, x: &[f64], best: f64) -> f64 {
    let (mean, var) = gp.predict(x);
    ei_from_moments(mean, var, best)
}

/// Expected improvement for a whole candidate pool in one batched GP
/// prediction; slot `j` is bit-identical to
/// `expected_improvement(gp, &xs[j], best)` at any thread count.
pub fn expected_improvement_batch(gp: &GpRegressor, xs: &[Vec<f64>], best: f64) -> Vec<f64> {
    gp.predict_batch(xs)
        .into_iter()
        .map(|(mean, var)| ei_from_moments(mean, var, best))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnObjective;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn quadratic() -> FnObjective<impl FnMut(&[f64]) -> Option<f64>> {
        FnObjective::new(2, |x: &[f64]| {
            Some((x[0] - 1.0).powi(2) + (x[1] + 0.5).powi(2))
        })
    }

    #[test]
    fn converges_on_smooth_quadratic() {
        let space = BoxSpace::symmetric(2, 2.0);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let trace = BayesOpt::new(space).run(&mut quadratic(), 60, &mut rng);
        assert_eq!(trace.len(), 60);
        assert!(
            trace.best_value().unwrap() < 0.05,
            "BO best {:?}",
            trace.best_value()
        );
    }

    #[test]
    fn beats_random_search_on_average() {
        let space = BoxSpace::symmetric(3, 3.0);
        let objective = |x: &[f64]| {
            Some(x.iter().map(|v| (v - 1.2).powi(2)).sum::<f64>() + (x[0] * 3.0).sin() * 0.3)
        };
        let budget = 50;
        let mut bo_wins = 0;
        for seed in 0..5 {
            let mut obj = FnObjective::new(3, objective);
            let bo = BayesOpt::new(space.clone()).run(
                &mut obj,
                budget,
                &mut ChaCha8Rng::seed_from_u64(seed),
            );
            let mut obj = FnObjective::new(3, objective);
            let rs = crate::RandomSearch::new(space.clone()).run(
                &mut obj,
                budget,
                &mut ChaCha8Rng::seed_from_u64(seed),
            );
            if bo.best_value().unwrap() <= rs.best_value().unwrap() {
                bo_wins += 1;
            }
        }
        assert!(bo_wins >= 4, "BO won only {bo_wins}/5 seeds");
    }

    #[test]
    fn deterministic_per_seed() {
        let space = BoxSpace::unit(2);
        let run = |seed| {
            let mut obj = quadratic();
            BayesOpt::new(space.clone()).run(&mut obj, 30, &mut ChaCha8Rng::seed_from_u64(seed))
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a.samples(), b.samples());
    }

    #[test]
    fn survives_invalid_regions() {
        let space = BoxSpace::symmetric(2, 2.0);
        let mut obj = FnObjective::new(2, |x: &[f64]| {
            if x[0] < 0.0 {
                None // half the space is invalid
            } else {
                Some((x[0] - 1.0).powi(2) + x[1] * x[1])
            }
        });
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let trace = BayesOpt::new(space).run(&mut obj, 60, &mut rng);
        assert_eq!(trace.len(), 60);
        assert!(trace.best_value().unwrap() < 0.3);
    }

    #[test]
    fn gp_window_caps_model_size() {
        let space = BoxSpace::unit(1);
        let config = BayesOptConfig {
            max_gp_points: 15,
            ..BayesOptConfig::default()
        };
        let mut obj = FnObjective::new(1, |x: &[f64]| Some((x[0] - 0.3).powi(2)));
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let trace = BayesOpt::with_config(space, config).run(&mut obj, 60, &mut rng);
        // Despite the window, optimization still works.
        assert!(trace.best_value().unwrap() < 0.01);
    }

    #[test]
    fn batch_ei_matches_scalar_ei_bitwise_across_threads() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let space = BoxSpace::symmetric(3, 2.0);
        let xs: Vec<Vec<f64>> = (0..80).map(|_| space.sample(&mut rng)).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| x.iter().map(|v| v * v).sum::<f64>())
            .collect();
        let gp = GpRegressor::fit(&xs, &ys).unwrap();
        let pool: Vec<Vec<f64>> = (0..33).map(|_| space.sample(&mut rng)).collect();
        let best = 0.4;
        let serial: Vec<f64> = pool
            .iter()
            .map(|x| expected_improvement(&gp, x, best))
            .collect();
        for threads in ["1", "2", "5"] {
            std::env::set_var("VAESA_THREADS", threads);
            let batch = expected_improvement_batch(&gp, &pool, best);
            std::env::remove_var("VAESA_THREADS");
            assert_eq!(batch.len(), serial.len());
            for (b, s) in batch.iter().zip(&serial) {
                assert_eq!(b.to_bits(), s.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn expected_improvement_is_zero_when_certainly_worse() {
        let xs: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0]).collect();
        let gp = GpRegressor::fit(&xs, &ys).unwrap();
        // At x = 5 the GP predicts ~5 with low variance; best = 0 means no
        // expected improvement.
        let ei = expected_improvement(&gp, &[5.0], 0.0);
        assert!(ei < 1e-3, "ei = {ei}");
        // Near the best observed point with best = large, improvement is big.
        let ei2 = expected_improvement(&gp, &[0.0], 10.0);
        assert!(ei2 > 5.0);
    }
}
