/// A black-box minimization objective over a continuous domain.
///
/// `evaluate` returns `None` for *invalid* points — e.g. a decoded hardware
/// configuration for which the scheduler finds no feasible mapping. Invalid
/// evaluations still consume a sample from the search budget, exactly as a
/// failed Timeloop run would in the paper's pipeline.
pub trait Objective {
    /// Dimensionality of the input.
    fn dim(&self) -> usize;

    /// Evaluates the objective, or `None` if the point is invalid.
    fn evaluate(&mut self, x: &[f64]) -> Option<f64>;
}

/// A [`Objective`] defined by a closure, for tests and simple harnesses.
///
/// # Examples
///
/// ```
/// use vaesa_dse::{FnObjective, Objective};
///
/// let mut sphere = FnObjective::new(2, |x| Some(x.iter().map(|v| v * v).sum()));
/// assert_eq!(sphere.evaluate(&[0.0, 0.0]), Some(0.0));
/// ```
pub struct FnObjective<F> {
    dim: usize,
    f: F,
}

impl<F> FnObjective<F>
where
    F: FnMut(&[f64]) -> Option<f64>,
{
    /// Wraps a closure as an objective of the given dimensionality.
    pub fn new(dim: usize, f: F) -> Self {
        FnObjective { dim, f }
    }
}

impl<F> Objective for FnObjective<F>
where
    F: FnMut(&[f64]) -> Option<f64>,
{
    fn dim(&self) -> usize {
        self.dim
    }

    fn evaluate(&mut self, x: &[f64]) -> Option<f64> {
        debug_assert_eq!(x.len(), self.dim, "objective dimension mismatch");
        (self.f)(x)
    }
}

impl<F> std::fmt::Debug for FnObjective<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnObjective")
            .field("dim", &self.dim)
            .finish()
    }
}

/// An objective with analytic gradients, used by the gradient-descent
/// driver (`vae_gd` differentiates the trained performance predictors).
pub trait DifferentiableObjective {
    /// Dimensionality of the input.
    fn dim(&self) -> usize;

    /// Returns `(value, gradient)` at `x`.
    fn evaluate_with_grad(&mut self, x: &[f64]) -> (f64, Vec<f64>);
}

/// A [`DifferentiableObjective`] defined by a closure.
pub struct FnDifferentiable<F> {
    dim: usize,
    f: F,
}

impl<F> FnDifferentiable<F>
where
    F: FnMut(&[f64]) -> (f64, Vec<f64>),
{
    /// Wraps a closure returning `(value, gradient)`.
    pub fn new(dim: usize, f: F) -> Self {
        FnDifferentiable { dim, f }
    }
}

impl<F> DifferentiableObjective for FnDifferentiable<F>
where
    F: FnMut(&[f64]) -> (f64, Vec<f64>),
{
    fn dim(&self) -> usize {
        self.dim
    }

    fn evaluate_with_grad(&mut self, x: &[f64]) -> (f64, Vec<f64>) {
        debug_assert_eq!(x.len(), self.dim, "objective dimension mismatch");
        (self.f)(x)
    }
}

impl<F> std::fmt::Debug for FnDifferentiable<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnDifferentiable")
            .field("dim", &self.dim)
            .finish()
    }
}

/// A differentiable objective evaluated over a whole batch of points at
/// once, used by [`GradientDescent::run_batch`](crate::GradientDescent::run_batch)
/// to advance every start of a multi-start descent with one forward and one
/// backward pass.
///
/// Row `r` of the batch must produce the same `(value, gradient)` as a
/// per-point [`DifferentiableObjective`] would on that row alone; the
/// batched descent driver relies on this to stay trace-identical to the
/// serial multi-start loop.
pub trait BatchDifferentiableObjective {
    /// Dimensionality of each point.
    fn dim(&self) -> usize;

    /// Evaluates `batch` points stored row-major in `xs`
    /// (`xs.len() == batch * self.dim()`).
    ///
    /// Returns `(values, gradients)` with `values.len() == batch` and
    /// `gradients.len() == xs.len()`, gradients stored row-major in the
    /// same layout as `xs`.
    fn evaluate_with_grad_batch(&mut self, xs: &[f64], batch: usize) -> (Vec<f64>, Vec<f64>);
}

/// A [`BatchDifferentiableObjective`] defined by a closure.
pub struct FnBatchDifferentiable<F> {
    dim: usize,
    f: F,
}

impl<F> FnBatchDifferentiable<F>
where
    F: FnMut(&[f64], usize) -> (Vec<f64>, Vec<f64>),
{
    /// Wraps a closure `(xs, batch) -> (values, gradients)`.
    pub fn new(dim: usize, f: F) -> Self {
        FnBatchDifferentiable { dim, f }
    }
}

impl<F> BatchDifferentiableObjective for FnBatchDifferentiable<F>
where
    F: FnMut(&[f64], usize) -> (Vec<f64>, Vec<f64>),
{
    fn dim(&self) -> usize {
        self.dim
    }

    fn evaluate_with_grad_batch(&mut self, xs: &[f64], batch: usize) -> (Vec<f64>, Vec<f64>) {
        debug_assert_eq!(xs.len(), batch * self.dim, "batch layout mismatch");
        (self.f)(xs, batch)
    }
}

impl<F> std::fmt::Debug for FnBatchDifferentiable<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnBatchDifferentiable")
            .field("dim", &self.dim)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_objective_counts_and_returns() {
        let mut calls = 0;
        {
            let mut o = FnObjective::new(1, |x: &[f64]| {
                calls += 1;
                if x[0] < 0.0 {
                    None
                } else {
                    Some(x[0])
                }
            });
            assert_eq!(o.dim(), 1);
            assert_eq!(o.evaluate(&[2.0]), Some(2.0));
            assert_eq!(o.evaluate(&[-1.0]), None);
        }
        assert_eq!(calls, 2);
    }

    #[test]
    fn differentiable_objective_returns_grad() {
        let mut o = FnDifferentiable::new(2, |x: &[f64]| {
            let v = x[0] * x[0] + x[1] * x[1];
            (v, vec![2.0 * x[0], 2.0 * x[1]])
        });
        let (v, g) = o.evaluate_with_grad(&[1.0, -2.0]);
        assert_eq!(v, 5.0);
        assert_eq!(g, vec![2.0, -4.0]);
    }

    #[test]
    fn debug_impls_are_nonempty() {
        let o = FnObjective::new(3, |_: &[f64]| Some(0.0));
        assert!(format!("{o:?}").contains('3'));
        let d = FnDifferentiable::new(2, |_: &[f64]| (0.0, vec![0.0, 0.0]));
        assert!(format!("{d:?}").contains('2'));
    }
}
