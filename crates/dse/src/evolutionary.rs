use crate::random::perturb;
use crate::{BoxSpace, Objective, Trace};
use rand::Rng;
use rand::RngCore;

/// Configuration for [`EvolutionarySearch`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvolutionConfig {
    /// Individuals per generation.
    pub population: usize,
    /// Individuals kept unchanged into the next generation.
    pub elites: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Per-dimension probability of taking the gene from the second parent.
    pub crossover_rate: f64,
    /// Gaussian mutation standard deviation, as a fraction of each
    /// dimension's width.
    pub mutation_sigma: f64,
}

impl Default for EvolutionConfig {
    fn default() -> Self {
        EvolutionConfig {
            population: 20,
            elites: 2,
            tournament: 3,
            crossover_rate: 0.4,
            mutation_sigma: 0.08,
        }
    }
}

/// A (μ+λ)-style evolutionary search with tournament selection, uniform
/// crossover, and Gaussian mutation.
///
/// This is the Table I "NAAS: Evolutionary" class of baseline: another
/// black-box optimizer that, like Bayesian optimization, can run either on
/// the original design space or on the VAESA latent space. Provided as an
/// extension beyond the paper's two featured search strategies.
///
/// # Examples
///
/// ```
/// use vaesa_dse::{BoxSpace, EvolutionarySearch, FnObjective};
/// use rand::SeedableRng;
///
/// let space = BoxSpace::symmetric(2, 2.0);
/// let mut objective = FnObjective::new(2, |x: &[f64]| {
///     Some((x[0] - 1.0).powi(2) + (x[1] + 0.5).powi(2))
/// });
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let trace = EvolutionarySearch::new(space).run(&mut objective, 200, &mut rng);
/// assert!(trace.best_value().unwrap() < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct EvolutionarySearch {
    space: BoxSpace,
    config: EvolutionConfig,
}

impl EvolutionarySearch {
    /// Creates a search with default configuration.
    pub fn new(space: BoxSpace) -> Self {
        EvolutionarySearch {
            space,
            config: EvolutionConfig::default(),
        }
    }

    /// Creates a search with explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if the population is empty, elites exceed the population, or
    /// the tournament size is zero.
    pub fn with_config(space: BoxSpace, config: EvolutionConfig) -> Self {
        assert!(config.population >= 1, "population must be non-empty");
        assert!(
            config.elites < config.population,
            "elites must leave room for offspring"
        );
        assert!(config.tournament >= 1, "tournament size must be positive");
        EvolutionarySearch { space, config }
    }

    /// Runs the search for `budget` objective evaluations (the final
    /// generation may be truncated). Invalid individuals (`None` fitness)
    /// consume budget and are treated as infinitely unfit.
    pub fn run(
        &self,
        objective: &mut dyn Objective,
        budget: usize,
        mut rng: &mut dyn RngCore,
    ) -> Trace {
        assert_eq!(objective.dim(), self.space.dim(), "dimension mismatch");
        let mut trace = Trace::new("evolutionary");
        let mut evaluated = 0usize;
        // (genome, fitness); invalid points get +inf.
        let mut population: Vec<(Vec<f64>, f64)> = Vec::new();

        let mut evaluate =
            |x: Vec<f64>, trace: &mut Trace, evaluated: &mut usize| -> (Vec<f64>, f64) {
                let v = objective.evaluate(&x);
                trace.record(x.clone(), v);
                *evaluated += 1;
                (x, v.unwrap_or(f64::INFINITY))
            };

        // Initial population.
        while population.len() < self.config.population && evaluated < budget {
            let x = self.space.sample(&mut rng);
            population.push(evaluate(x, &mut trace, &mut evaluated));
        }

        while evaluated < budget {
            population.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN fitness"));
            let mut next: Vec<(Vec<f64>, f64)> = population
                .iter()
                .take(self.config.elites)
                .cloned()
                .collect();
            while next.len() < self.config.population && evaluated < budget {
                let p1 = self.tournament_pick(&population, &mut rng);
                let p2 = self.tournament_pick(&population, &mut rng);
                let mut child: Vec<f64> = p1
                    .iter()
                    .zip(p2)
                    .map(|(&a, &b)| {
                        if rng.gen_bool(self.config.crossover_rate) {
                            b
                        } else {
                            a
                        }
                    })
                    .collect();
                child = perturb(&self.space, &child, self.config.mutation_sigma, &mut rng);
                next.push(evaluate(child, &mut trace, &mut evaluated));
            }
            population = next;
        }
        trace
    }

    fn tournament_pick<'a>(
        &self,
        population: &'a [(Vec<f64>, f64)],
        rng: &mut impl Rng,
    ) -> &'a [f64] {
        let mut best: Option<&(Vec<f64>, f64)> = None;
        for _ in 0..self.config.tournament {
            let cand = &population[rng.gen_range(0..population.len())];
            if best.is_none_or(|b| cand.1 < b.1) {
                best = Some(cand);
            }
        }
        &best.expect("population non-empty").0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FnObjective, RandomSearch};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rastrigin_ish() -> FnObjective<impl FnMut(&[f64]) -> Option<f64>> {
        FnObjective::new(2, |x: &[f64]| {
            Some(
                x.iter()
                    .map(|v| v * v - 2.0 * (3.0 * v).cos() + 2.0)
                    .sum::<f64>(),
            )
        })
    }

    #[test]
    fn converges_on_multimodal_function() {
        let space = BoxSpace::symmetric(2, 3.0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let trace = EvolutionarySearch::new(space).run(&mut rastrigin_ish(), 300, &mut rng);
        assert_eq!(trace.len(), 300);
        assert!(
            trace.best_value().unwrap() < 1.0,
            "best {:?}",
            trace.best_value()
        );
    }

    #[test]
    fn beats_random_search_most_seeds() {
        let space = BoxSpace::symmetric(3, 3.0);
        let objective = |x: &[f64]| Some(x.iter().map(|v| (v - 1.1).powi(2)).sum::<f64>());
        let mut wins = 0;
        for seed in 0..5 {
            let mut obj = FnObjective::new(3, objective);
            let evo = EvolutionarySearch::new(space.clone()).run(
                &mut obj,
                150,
                &mut ChaCha8Rng::seed_from_u64(seed),
            );
            let mut obj = FnObjective::new(3, objective);
            let rnd = RandomSearch::new(space.clone()).run(
                &mut obj,
                150,
                &mut ChaCha8Rng::seed_from_u64(seed),
            );
            if evo.best_value().unwrap() <= rnd.best_value().unwrap() {
                wins += 1;
            }
        }
        assert!(wins >= 4, "evolutionary won only {wins}/5 seeds");
    }

    #[test]
    fn deterministic_per_seed() {
        let space = BoxSpace::unit(2);
        let run = |seed| {
            let mut obj = rastrigin_ish();
            EvolutionarySearch::new(space.clone()).run(
                &mut obj,
                60,
                &mut ChaCha8Rng::seed_from_u64(seed),
            )
        };
        assert_eq!(run(9).samples(), run(9).samples());
    }

    #[test]
    fn tolerates_invalid_regions() {
        let space = BoxSpace::symmetric(2, 2.0);
        let mut obj = FnObjective::new(2, |x: &[f64]| {
            if x[0] + x[1] > 1.0 {
                None
            } else {
                Some(x[0].powi(2) + x[1].powi(2))
            }
        });
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let trace = EvolutionarySearch::new(space).run(&mut obj, 120, &mut rng);
        assert_eq!(trace.len(), 120);
        assert!(trace.best_value().unwrap() < 0.5);
    }

    #[test]
    #[should_panic(expected = "elites")]
    fn bad_config_rejected() {
        let _ = EvolutionarySearch::with_config(
            BoxSpace::unit(1),
            EvolutionConfig {
                population: 2,
                elites: 2,
                ..EvolutionConfig::default()
            },
        );
    }

    #[test]
    fn budget_smaller_than_population_still_works() {
        let space = BoxSpace::unit(2);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let trace = EvolutionarySearch::new(space).run(&mut rastrigin_ish(), 5, &mut rng);
        assert_eq!(trace.len(), 5);
    }
}
