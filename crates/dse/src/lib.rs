#![deny(missing_docs)]
//! Search algorithms for hardware design-space exploration: random search,
//! grid search, Gaussian-process Bayesian optimization, and a gradient-
//! descent driver.
//!
//! These are the search strategies the VAESA paper runs both on the original
//! design space (`bo`, `random`, `gd` baselines) and on the learned latent
//! space (`vae_bo`, `vae_gd`):
//!
//! - [`BoxSpace`]: the continuous search domain.
//! - [`Objective`] / [`DifferentiableObjective`]: black-box and
//!   gradient-capable objectives (invalid design points return `None` and
//!   consume budget).
//! - [`RandomSearch`], [`GridSearch`]: baselines and dataset seeding.
//! - [`GpRegressor`] + [`BayesOpt`]: Matérn-5/2 Gaussian process with
//!   incremental Cholesky updates and an expected-improvement acquisition.
//! - [`EvolutionarySearch`]: a tournament-selection genetic baseline (the
//!   Table I "NAAS: Evolutionary" class), usable on either space.
//! - [`SimulatedAnnealing`]: the traditional hardware-DSE workhorse, as a
//!   third black-box engine.
//! - [`GradientDescent`]: projected momentum descent for predictor-based
//!   search.
//! - [`SearchEngine`] + [`SearchObjective`]: the unified engine layer —
//!   every optimizer above behind one `run(space, objective, budget, rng)`
//!   trait with exact budget accounting ([`RandomEngine`], [`BoEngine`],
//!   [`EvoEngine`], [`SaEngine`], [`CdEngine`], [`GdEngine`]).
//! - [`Trace`] / [`SearchOutcome`]: per-sample logs and run summaries with
//!   the paper's metrics (best EDP, samples-to-within-3%).
//!
//! # Examples
//!
//! ```
//! use vaesa_dse::{BayesOpt, BoxSpace, FnObjective};
//! use rand::SeedableRng;
//!
//! // Minimize a bumpy 2-D function with 40 samples of BO.
//! let space = BoxSpace::symmetric(2, 2.0);
//! let mut objective = FnObjective::new(2, |x: &[f64]| {
//!     Some(x[0].powi(2) + x[1].powi(2) + (3.0 * x[0]).sin() * 0.2)
//! });
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let trace = BayesOpt::new(space).run(&mut objective, 40, &mut rng);
//! assert!(trace.best_value().unwrap() < 0.5);
//! ```

mod annealing;
mod bayesopt;
mod engine;
mod evolutionary;
mod gp;
mod gradient;
mod kernel;
pub mod normal;
mod objective;
mod random;
mod space;
mod trace;

pub use annealing::{AnnealingConfig, SimulatedAnnealing};
pub use bayesopt::{expected_improvement, expected_improvement_batch, BayesOpt, BayesOptConfig};
pub use engine::{
    engine_by_name, BoEngine, CdConfig, CdEngine, EvoEngine, GdEngine, RandomEngine, SaEngine,
    SearchEngine, SearchObjective, SearchOutcome,
};
pub use evolutionary::{EvolutionConfig, EvolutionarySearch};
pub use gp::GpRegressor;
pub use gradient::{GdConfig, GdPath, GdStep, GradientDescent};
pub use kernel::{kernel_row_f32, pack_points_f32, ArdKernel, Kernel, KernelKind};
pub use objective::{
    BatchDifferentiableObjective, DifferentiableObjective, FnBatchDifferentiable, FnDifferentiable,
    FnObjective, Objective,
};
pub use random::{perturb, GridSearch, RandomSearch};
pub use space::BoxSpace;
pub use trace::{record_trace, Sample, Trace};
