//! Property tests for the SIMD f32 kernel-row fill: for random point sets —
//! including empty, single-point, and odd-tail counts — the f32 row must
//! track the f64 kernel evaluation within a documented tolerance, for both
//! kernel families and both the isotropic and ARD parameterizations. A
//! serialized section checks that a GP fitted in f32 mode predicts within
//! tolerance of the f64 fit.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Mutex;
use vaesa_dse::{pack_points_f32, ArdKernel, GpRegressor, Kernel, KernelKind};
use vaesa_linalg::{set_precision, Precision};

/// Kernel values live in `(0, variance]`; the f32 fill's error comes from
/// the distance accumulation (≤ a few ulp per dimension, damped by the
/// exponential tail) and the f32 transcendentals (~1 ulp relative). A
/// variance-relative bound with a small absolute floor covers both.
fn row_tolerance(variance: f64) -> f64 {
    1e-4 * variance + 1e-6
}

fn random_points(n: usize, dim: usize, rng: &mut ChaCha8Rng) -> Vec<Vec<f64>> {
    (0..n)
        .map(|_| (0..dim).map(|_| rng.gen_range(-2.0..2.0)).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Isotropic RBF / Matérn-5/2 rows match per-pair `Kernel::eval` within
    /// tolerance across random point counts (0 = empty row, 1, odd tails
    /// past the 16-lane width) and lengthscales.
    #[test]
    fn iso_kernel_row_f32_tracks_f64(
        seed in 0u64..1000,
        n in 0usize..40,
        dim in 1usize..6,
        ls in 0.3f64..3.0,
        variance in 0.5f64..2.0,
        kind_idx in 0usize..2,
    ) {
        let kind = [KernelKind::Rbf, KernelKind::Matern52][kind_idx];
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let pts = random_points(n, dim, &mut rng);
        let x: Vec<f64> = (0..dim).map(|_| rng.gen_range(-2.0..2.0)).collect();

        let kernel = Kernel::new(kind, ls, variance);
        let packed = pack_points_f32(&pts);
        let x32: Vec<f32> = x.iter().map(|&v| v as f32).collect();
        let mut row = vec![0.0f32; n];
        kernel.eval_row_f32(&x32, &packed, &mut row);

        let tol = row_tolerance(variance);
        for (j, p) in pts.iter().enumerate() {
            let want = kernel.eval(&x, p);
            let got = f64::from(row[j]);
            prop_assert!(
                (got - want).abs() <= tol,
                "{kind:?} row[{j}] = {got} vs f64 {want} exceeds {tol}"
            );
        }
    }

    /// ARD rows (per-dimension lengthscales) satisfy the same bound.
    #[test]
    fn ard_kernel_row_f32_tracks_f64(
        seed in 0u64..1000,
        n in 0usize..40,
        dim in 1usize..6,
        variance in 0.5f64..2.0,
        kind_idx in 0usize..2,
    ) {
        let kind = [KernelKind::Rbf, KernelKind::Matern52][kind_idx];
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let lengthscales: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.3..3.0)).collect();
        let pts = random_points(n, dim, &mut rng);
        let x: Vec<f64> = (0..dim).map(|_| rng.gen_range(-2.0..2.0)).collect();

        let kernel = ArdKernel::new(kind, lengthscales, variance);
        let packed = pack_points_f32(&pts);
        let x32: Vec<f32> = x.iter().map(|&v| v as f32).collect();
        let mut row = vec![0.0f32; n];
        kernel.eval_row_f32(&x32, &packed, &mut row);

        let tol = row_tolerance(variance);
        for (j, p) in pts.iter().enumerate() {
            let want = kernel.eval(&x, p);
            let got = f64::from(row[j]);
            prop_assert!(
                (got - want).abs() <= tol,
                "ARD {kind:?} row[{j}] = {got} vs f64 {want} exceeds {tol}"
            );
        }
    }
}

/// Serializes the global-precision flip (see `vaesa_linalg::set_precision`);
/// restores f64 on drop, panic included.
static PRECISION_LOCK: Mutex<()> = Mutex::new(());

/// A GP fitted and queried in f32 mode stays within tolerance of the f64
/// fit: only the kernel-matrix and cross-matrix fills run in f32 (the
/// factorization and solves stay f64), so the prediction drift is bounded
/// by the row-fill tolerance amplified through the solve.
#[test]
fn gp_predictions_in_f32_mode_track_f64() {
    let lock = PRECISION_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            set_precision(Precision::F64);
        }
    }
    let _restore = Restore;
    let _lock = lock;

    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let xs = random_points(24, 3, &mut rng);
    let ys: Vec<f64> = xs
        .iter()
        .map(|p| (p[0] * 1.3).sin() + 0.5 * p[1] - 0.2 * p[2] * p[2])
        .collect();
    let queries = random_points(16, 3, &mut rng);

    set_precision(Precision::F64);
    let gp64 = GpRegressor::fit(&xs, &ys).expect("f64 fit");
    set_precision(Precision::F32);
    let gp32 = GpRegressor::fit(&xs, &ys).expect("f32 fit");

    for q in &queries {
        let (m64, s64) = gp64.predict(q);
        let (m32, s32) = gp32.predict(q);
        // Targets are standardized inside the GP, so an absolute tolerance
        // on the mean is effectively relative to the data scale.
        assert!(
            (m64 - m32).abs() <= 5e-3,
            "GP mean drift {m64} vs {m32} at {q:?}"
        );
        assert!(
            (s64 - s32).abs() <= 5e-3,
            "GP std drift {s64} vs {s32} at {q:?}"
        );
    }
}
