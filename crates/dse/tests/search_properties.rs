//! Property tests for the search algorithms.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vaesa_dse::{
    BayesOpt, BoxSpace, FnDifferentiable, FnObjective, GdConfig, GpRegressor, GradientDescent,
    RandomSearch,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every search consumes exactly its budget and its best value is the
    /// minimum of the recorded sample values.
    #[test]
    fn searches_respect_budget_and_best(seed in 0u64..500, budget in 1usize..40) {
        let space = BoxSpace::symmetric(2, 1.5);
        let objective = |x: &[f64]| Some(x[0] * x[0] + (x[1] - 0.5).powi(2));
        for style in 0..2 {
            let mut obj = FnObjective::new(2, objective);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let trace = if style == 0 {
                RandomSearch::new(space.clone()).run(&mut obj, budget, &mut rng)
            } else {
                BayesOpt::new(space.clone()).run(&mut obj, budget, &mut rng)
            };
            prop_assert_eq!(trace.len(), budget);
            let min = trace
                .samples()
                .iter()
                .filter_map(|s| s.value)
                .fold(f64::INFINITY, f64::min);
            prop_assert_eq!(trace.best_value().expect("valid samples"), min);
            // All sampled points stay in the box.
            for s in trace.samples() {
                prop_assert!(space.contains(&s.x));
            }
        }
    }

    /// GP posterior mean at a training input reproduces the target (small
    /// noise) and the posterior variance is non-negative everywhere.
    #[test]
    fn gp_posterior_sanity(
        ys in proptest::collection::vec(-100.0f64..100.0, 5),
        probe in -3.0f64..6.0,
    ) {
        let xs: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64]).collect();
        let gp = GpRegressor::fit(&xs, &ys).expect("fit");
        for (x, &y) in xs.iter().zip(&ys) {
            let (m, v) = gp.predict(x);
            let spread = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - ys.iter().cloned().fold(f64::INFINITY, f64::min);
            prop_assert!((m - y).abs() <= 0.05 * (1.0 + spread), "mean {m} vs {y}");
            prop_assert!(v >= 0.0);
        }
        let (_, v) = gp.predict(&[probe]);
        prop_assert!(v >= 0.0);
    }

    /// Gradient descent on a convex quadratic never ends above its start,
    /// for any start and any box.
    #[test]
    fn gd_never_ends_worse_on_convex(
        start in proptest::collection::vec(-4.0f64..4.0, 3),
        half in 0.5f64..5.0,
    ) {
        let space = BoxSpace::symmetric(3, half);
        let mut obj = FnDifferentiable::new(3, |x: &[f64]| {
            let v: f64 = x.iter().map(|v| (v - 0.3) * (v - 0.3)).sum();
            (v, x.iter().map(|v| 2.0 * (v - 0.3)).collect())
        });
        let gd = GradientDescent::new(space, GdConfig {
            learning_rate: 0.05,
            momentum: 0.0,
            steps: 60,
            clip: None,
        });
        let path = gd.run(&mut obj, &start);
        prop_assert!(path.final_value() <= path.steps[0].value + 1e-12);
    }
}
