//! End-to-end daemon test: boot the server on an ephemeral port with a
//! persistent evaluation cache, drive every endpoint over real TCP,
//! shut down cleanly, then boot a second daemon against the same cache
//! directory and prove the cache survived the restart (warm hits > 0).
//!
//! Kept to one `#[test]` because `VAESA_EVAL_CACHE` is process-global
//! state and the restart half depends on the first half's writes.

use serde::Value;
use std::time::{Duration, Instant};
use vaesa_serve::{http_request, CoreConfig, ServeConfig, Server};

fn tiny_config(addr: &str, seed: u64) -> ServeConfig {
    ServeConfig {
        addr: addr.to_string(),
        workers: 1,
        window: Duration::from_millis(10),
        job_capacity: 8,
        access_log: None,
        core: CoreConfig {
            n_configs: 24,
            epochs: 2,
            latent_dim: 3,
            n_layers: 2,
            seed,
            gp_cap: 32,
        },
    }
}

fn get(addr: &str, path: &str) -> (u16, String) {
    http_request(addr, "GET", path, None).expect("GET")
}

fn post(addr: &str, path: &str, body: &str) -> (u16, String) {
    http_request(addr, "POST", path, Some(body)).expect("POST")
}

fn json(body: &str) -> Value {
    serde_json::parse_value(body).unwrap_or_else(|e| panic!("bad JSON {body:?}: {e}"))
}

/// Reads one numeric metric out of a `/metrics?format=manifest` snapshot.
fn metric(manifest: &str, name: &str) -> Option<f64> {
    manifest.lines().find_map(|line| {
        let record = serde_json::parse_value(line).ok()?;
        match record.get("name") {
            Some(Value::Str(n)) if n == name => record.get("value")?.as_f64(),
            _ => None,
        }
    })
}

fn poll_job_done(addr: &str, id: u64) -> Value {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, body) = get(addr, &format!("/jobs/{id}"));
        assert_eq!(status, 200, "job poll failed: {body}");
        let job = json(&body);
        match job.get("status") {
            Some(Value::Str(s)) if s == "done" => return job,
            Some(Value::Str(s)) if s == "failed" => panic!("job failed: {body}"),
            _ => {}
        }
        assert!(Instant::now() < deadline, "job {id} did not finish");
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn daemon_serves_all_endpoints_and_cache_survives_restart() {
    let cache_dir = std::env::temp_dir().join(format!("vaesa-serve-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    std::env::set_var("VAESA_EVAL_CACHE", &cache_dir);

    // ---- First daemon: cold cache. ----
    let server = Server::start(tiny_config("127.0.0.1:0", 11)).expect("start");
    let addr = server.addr().to_string();

    let (status, body) = get(&addr, "/healthz");
    assert_eq!(status, 200, "{body}");
    let health = json(&body);
    assert_eq!(health.get("latent_dim").and_then(Value::as_u64), Some(3));
    assert_eq!(health.get("persistent_cache"), Some(&Value::Bool(true)));

    // Concurrent predicts from several clients; the admission queue must
    // route every caller its own row back.
    let predict_threads: Vec<_> = (0..4)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let scale = 1.0 + i as f64;
                let body = format!(
                    "{{\"points\":[[{},4.0,128.0,4096.0,8192.0,65536.0]]}}",
                    16.0 * scale
                );
                post(&addr, "/predict", &body)
            })
        })
        .collect();
    for t in predict_threads {
        let (status, body) = t.join().expect("predict thread");
        assert_eq!(status, 200, "{body}");
        let predictions = match json(&body).get("predictions") {
            Some(Value::Seq(rows)) => rows.clone(),
            other => panic!("bad predictions: {other:?}"),
        };
        assert_eq!(predictions.len(), 1);
        let row = &predictions[0];
        assert!(row.get("latency").and_then(Value::as_f64).unwrap() > 0.0);
        assert!(row.get("gp_log_edp_std").and_then(Value::as_f64).unwrap() >= 0.0);
    }

    let (status, body) = post(
        &addr,
        "/decode",
        "{\"points\":[[0.0,0.0,0.0],[0.3,-0.2,0.1]]}",
    );
    assert_eq!(status, 200, "{body}");
    match json(&body).get("designs") {
        Some(Value::Seq(designs)) => {
            assert_eq!(designs.len(), 2);
            assert!(designs[0]
                .get("arch")
                .and_then(|a| a.get("pe_count"))
                .and_then(Value::as_u64)
                .is_some());
        }
        other => panic!("bad designs: {other:?}"),
    }

    // Error paths: malformed JSON, wrong row width, bad engine, bad route.
    let (status, _) = post(&addr, "/predict", "{nope");
    assert_eq!(status, 400);
    let (status, _) = post(&addr, "/predict", "{\"points\":[[1.0,2.0]]}");
    assert_eq!(status, 400);
    let (status, _) = post(&addr, "/search", "{\"engine\":\"quantum\"}");
    assert_eq!(status, 400);
    let (status, _) = post(&addr, "/search", "{\"engine\":\"gd\",\"mode\":\"direct\"}");
    assert_eq!(status, 400);
    let (status, _) = get(&addr, "/nope");
    assert_eq!(status, 404);
    let (status, _) = post(&addr, "/healthz", "{}");
    assert_eq!(status, 405);

    // Async search: enqueue, poll to completion, check the summary.
    let (status, body) = post(
        &addr,
        "/search",
        "{\"engine\":\"random\",\"mode\":\"latent\",\"budget\":5,\"seed\":3}",
    );
    assert_eq!(status, 202, "{body}");
    let id = json(&body)
        .get("job")
        .and_then(Value::as_u64)
        .expect("job id");
    let job = poll_job_done(&addr, id);
    let result = job.get("result").expect("result");
    assert_eq!(result.get("label"), Some(&Value::Str("vae_random".into())));
    assert_eq!(result.get("evals").and_then(Value::as_u64), Some(5));

    // A second identical search replays the same evaluations: the shared
    // scheduler serves them from the (log-backed) cache.
    let (status, body) = post(
        &addr,
        "/search",
        "{\"engine\":\"random\",\"mode\":\"latent\",\"budget\":5,\"seed\":3}",
    );
    assert_eq!(status, 202, "{body}");
    let id2 = json(&body)
        .get("job")
        .and_then(Value::as_u64)
        .expect("job id");
    let job2 = poll_job_done(&addr, id2);
    assert_eq!(
        job2.get("result").and_then(|r| r.get("best_value")),
        job.get("result").and_then(|r| r.get("best_value")),
        "identical seeded searches must reproduce"
    );

    let (status, manifest) = get(&addr, "/metrics?format=manifest");
    assert_eq!(status, 200);
    assert!(
        metric(&manifest, "scheduler.persistent.appends").unwrap_or(0.0) > 0.0,
        "cold run must append evaluations to the persistent log"
    );
    assert!(
        metric(&manifest, "scheduler.persistent.hits").unwrap_or(0.0) > 0.0,
        "repeated search must hit log-backed cache entries"
    );
    assert!(metric(&manifest, "serve.coalesce.predict.submits").unwrap_or(0.0) >= 4.0);

    // Default /metrics is now Prometheus text exposition and must parse.
    let (status, prom) = get(&addr, "/metrics");
    assert_eq!(status, 200);
    assert!(prom.contains("# TYPE"), "missing TYPE lines: {prom}");
    let snap = vaesa_obs::parse_prometheus(&prom).expect("valid exposition");
    assert!(snap.value("serve_predict_latency_ns_count").unwrap_or(0.0) >= 4.0);
    assert!(snap
        .quantile("serve_predict_latency_ns", 0.99)
        .is_some_and(|p99| p99 > 0.0));
    let (status, _) = get(&addr, "/metrics?format=bogus");
    assert_eq!(status, 400);

    // Server-side manifest filter streams only the requested records.
    let (status, filtered) = get(&addr, "/metrics?format=manifest&name=serve.predict.rows");
    assert_eq!(status, 200);
    assert!(metric(&filtered, "serve.predict.rows").unwrap_or(0.0) >= 4.0);
    assert!(
        filtered.lines().count() <= 3,
        "filter must drop unrelated records:\n{filtered}"
    );

    // Request-scoped tracing: recent ids are listed and each span tree is
    // retrievable, with paths prefixed by the request id.
    let (status, recent) = get(&addr, "/metrics/requests");
    assert_eq!(status, 200, "{recent}");
    let ids = match json(&recent).get("requests") {
        Some(Value::Seq(rows)) => rows
            .iter()
            .filter_map(|r| match r.get("id") {
                Some(Value::Str(id)) => Some(id.clone()),
                _ => None,
            })
            .collect::<Vec<_>>(),
        other => panic!("bad recent requests: {other:?}"),
    };
    assert!(!ids.is_empty(), "no recent requests: {recent}");
    let (status, tree) = get(&addr, &format!("/metrics/requests/{}", ids[0]));
    assert_eq!(status, 200, "{tree}");
    let tree = json(&tree);
    assert_eq!(tree.get("id"), Some(&Value::Str(ids[0].clone())));
    match tree.get("spans") {
        Some(Value::Seq(spans)) => {
            assert!(!spans.is_empty());
            let prefix = format!("req/{}", ids[0]);
            for span in spans {
                match span.get("path") {
                    Some(Value::Str(p)) => assert!(p.starts_with(&prefix), "{p}"),
                    other => panic!("bad span: {other:?}"),
                }
            }
        }
        other => panic!("bad spans: {other:?}"),
    }
    let (status, _) = get(&addr, "/metrics/requests/r-unknown");
    assert_eq!(status, 404);

    let (status, _) = post(&addr, "/shutdown", "");
    assert_eq!(status, 200);
    server.join();

    // ---- Second daemon, same cache directory: must start warm. ----
    let server = Server::start(tiny_config("127.0.0.1:0", 11)).expect("restart");
    let addr = server.addr().to_string();
    let (status, manifest) = get(&addr, "/metrics?format=manifest");
    assert_eq!(status, 200);
    assert!(
        metric(&manifest, "scheduler.persistent.loaded").unwrap_or(0.0) > 0.0,
        "restart must load the previous run's log"
    );
    assert!(
        metric(&manifest, "scheduler.persistent.warm_hits").unwrap_or(0.0) > 0.0,
        "dataset rebuild must be served from the persisted cache"
    );
    let (status, _) = post(&addr, "/shutdown", "");
    assert_eq!(status, 200);
    server.join();

    std::env::remove_var("VAESA_EVAL_CACHE");
    let _ = std::fs::remove_dir_all(&cache_dir);
}
