//! Request coalescing: an admission queue that merges the items of
//! concurrent callers into one batched invocation of the underlying
//! compute path.
//!
//! The batched paths this daemon serves (`GpRegressor::predict_batch`, the
//! decoder forward pass, `score_batch`) amortize their fixed costs across
//! rows, so N concurrent one-row HTTP requests should cost one batch of N,
//! not N batches of one. [`Batcher::submit`] implements the classic
//! leader/follower scheme: the first caller into an accumulation window
//! becomes the leader, waits [`Batcher::window`] for followers to append
//! their rows, runs the compute closure once over the union, and hands each
//! caller back exactly the slice of results corresponding to its rows.
//!
//! Ordering within a batch follows submission order, and the compute
//! closure is required to be row-independent (row `i` of the output depends
//! only on row `i` of the input) — which every batched path in this
//! workspace guarantees — so coalescing is invisible to callers except in
//! latency and throughput.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use vaesa_obs::{Histogram, LatencyHistogram};

struct BatchState<T, R> {
    /// Rows accumulated for the batch currently forming.
    pending: Vec<T>,
    /// Callers that contributed to the forming batch (leader included).
    submitters: usize,
    /// Request ids of tagged contributors to the forming batch.
    tags: Vec<String>,
    /// Enqueue instants of the forming batch's contributors (one per
    /// submit call), drained at batch close to record queue-wait.
    enqueued: Vec<Instant>,
    /// Whether the forming batch already has a leader waiting the window.
    has_leader: bool,
    /// Id of the batch currently forming; completed ids index `results`.
    generation: u64,
    /// Completed batches awaiting pickup: generation → (results, readers
    /// still to collect). Entries are removed when the last reader leaves.
    results: HashMap<u64, (Vec<R>, usize)>,
    /// Total batches executed (for the coalescing stats).
    batches: u64,
    /// Total submit calls (for the coalescing stats).
    submits: u64,
}

impl<T, R> Default for BatchState<T, R> {
    fn default() -> Self {
        BatchState {
            pending: Vec::new(),
            submitters: 0,
            tags: Vec::new(),
            enqueued: Vec::new(),
            has_leader: false,
            generation: 0,
            results: HashMap::new(),
            batches: 0,
            submits: 0,
        }
    }
}

/// What a caller learns about the batch its submission rode in: identity
/// and size for the access log, plus (leader only) the tagged membership
/// recorded on the leader's span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchInfo {
    /// The batch generation: stable id shared by every rider.
    pub batch_id: u64,
    /// Total rows in the executed batch.
    pub size: usize,
    /// Whether this caller led the batch (ran the compute closure).
    pub leader: bool,
    /// Request ids of every tagged contributor (leader only; followers
    /// get an empty list — membership lives on the leader's record).
    pub members: Vec<String>,
}

/// Point-in-time coalescing counters: how many submit calls were served by
/// how many underlying batch executions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatcherStats {
    /// Calls to [`Batcher::submit`].
    pub submits: u64,
    /// Batch executions of the compute closure.
    pub batches: u64,
}

/// Coalesces concurrent submissions into single batched invocations of a
/// row-independent compute function. See the module docs.
pub struct Batcher<T, R> {
    state: Mutex<BatchState<T, R>>,
    wakeup: Condvar,
    window: Duration,
    /// Per-batch instruments (queue-wait latency, batch size), present
    /// only for named batchers — anonymous ones record nothing.
    instruments: Option<BatcherInstruments>,
    #[allow(clippy::type_complexity)]
    compute: Box<dyn Fn(Vec<T>) -> Vec<R> + Send + Sync>,
}

#[derive(Debug)]
struct BatcherInstruments {
    /// `serve.coalesce.<name>.queue_wait_ns`: time each submission spent
    /// in the accumulation window before its batch closed.
    queue_wait: Arc<LatencyHistogram>,
    /// `serve.coalesce.<name>.batch_size`: rows per executed batch.
    batch_size: Arc<Histogram>,
}

impl<T, R> std::fmt::Debug for Batcher<T, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Batcher")
            .field("window", &self.window)
            .finish()
    }
}

impl<T: Send, R: Send + Clone> Batcher<T, R> {
    /// Creates a batcher that waits `window` for followers before running
    /// `compute`. `compute` must return exactly one result per input row,
    /// with row `i` of the output a function of row `i` of the input only.
    pub fn new(
        window: Duration,
        compute: impl Fn(Vec<T>) -> Vec<R> + Send + Sync + 'static,
    ) -> Self {
        Batcher {
            state: Mutex::new(BatchState::default()),
            wakeup: Condvar::new(),
            window,
            instruments: None,
            compute: Box::new(compute),
        }
    }

    /// Like [`Batcher::new`], but records per-batch instruments into the
    /// global registry under `serve.coalesce.<name>.queue_wait_ns`
    /// (bucketed latency) and `serve.coalesce.<name>.batch_size`.
    pub fn named(
        window: Duration,
        name: &str,
        compute: impl Fn(Vec<T>) -> Vec<R> + Send + Sync + 'static,
    ) -> Self {
        let mut batcher = Self::new(window, compute);
        batcher.instruments = Some(BatcherInstruments {
            queue_wait: vaesa_obs::latency_histogram(&format!(
                "serve.coalesce.{name}.queue_wait_ns"
            )),
            batch_size: vaesa_obs::histogram(&format!("serve.coalesce.{name}.batch_size")),
        });
        batcher
    }

    /// Submits `items` and blocks until their results are available,
    /// returning exactly `items.len()` results in submission order. The
    /// caller may end up leading a batch (running the compute closure for
    /// everyone) or following one (sleeping until the leader finishes).
    ///
    /// # Panics
    ///
    /// Panics if the compute closure returns the wrong number of rows, or
    /// if a leader holding the batch panicked inside the closure (the
    /// mutex is then poisoned for all subsequent callers).
    pub fn submit(&self, items: Vec<T>) -> Vec<R> {
        self.submit_tagged(items, None).0
    }

    /// [`Batcher::submit`] with request attribution: `tag` (usually a
    /// request id) is recorded as batch membership, and the returned
    /// [`BatchInfo`] identifies the batch the rows rode in.
    ///
    /// # Panics
    ///
    /// Same contract as [`Batcher::submit`].
    pub fn submit_tagged(&self, items: Vec<T>, tag: Option<&str>) -> (Vec<R>, BatchInfo) {
        let n = items.len();
        if n == 0 {
            return (
                Vec::new(),
                BatchInfo {
                    batch_id: 0,
                    size: 0,
                    leader: false,
                    members: Vec::new(),
                },
            );
        }
        let mut state = self.state.lock().expect("batcher lock");
        state.submits += 1;
        let my_generation = state.generation;
        let offset = state.pending.len();
        state.pending.extend(items);
        state.submitters += 1;
        if let Some(tag) = tag {
            state.tags.push(tag.to_string());
        }
        if self.instruments.is_some() {
            state.enqueued.push(Instant::now());
        }

        if !state.has_leader {
            state.has_leader = true;
            // Leader: give followers the window to pile in, then close the
            // batch. Spurious wakeups re-check the deadline.
            let deadline = Instant::now() + self.window;
            loop {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (next, _) = self
                    .wakeup
                    .wait_timeout(state, deadline - now)
                    .expect("batcher lock");
                state = next;
            }
            let batch = std::mem::take(&mut state.pending);
            let members = std::mem::take(&mut state.tags);
            let enqueued = std::mem::take(&mut state.enqueued);
            let readers = state.submitters;
            state.submitters = 0;
            state.has_leader = false;
            state.generation += 1;
            state.batches += 1;
            drop(state);

            // Batch closed: record how long each rider queued, and how
            // large the executed batch was.
            if let Some(instruments) = &self.instruments {
                let close = Instant::now();
                for t in &enqueued {
                    instruments.queue_wait.record(close.duration_since(*t));
                }
                instruments.batch_size.record(batch.len() as f64);
            }

            let size = batch.len();
            let results = self.compute_checked(batch);
            let mine = results[offset..offset + n].to_vec();
            let mut state = self.state.lock().expect("batcher lock");
            if readers > 1 {
                state.results.insert(my_generation, (results, readers - 1));
            }
            drop(state);
            self.wakeup.notify_all();
            (
                mine,
                BatchInfo {
                    batch_id: my_generation,
                    size,
                    leader: true,
                    members,
                },
            )
        } else {
            // Follower: wait for our generation's results to be published.
            while !state.results.contains_key(&my_generation) {
                state = self.wakeup.wait(state).expect("batcher lock");
            }
            let (results, readers) = state
                .results
                .get_mut(&my_generation)
                .expect("checked in loop");
            let size = results.len();
            let mine = results[offset..offset + n].to_vec();
            *readers -= 1;
            if *readers == 0 {
                state.results.remove(&my_generation);
            }
            (
                mine,
                BatchInfo {
                    batch_id: my_generation,
                    size,
                    leader: false,
                    members: Vec::new(),
                },
            )
        }
    }

    /// Coalescing counters since construction.
    pub fn stats(&self) -> BatcherStats {
        let state = self.state.lock().expect("batcher lock");
        BatcherStats {
            submits: state.submits,
            batches: state.batches,
        }
    }
}

impl<T: Send, R: Send + Clone> Batcher<T, R> {
    /// Runs the compute closure, asserting the one-result-per-row contract.
    fn compute_checked(&self, batch: Vec<T>) -> Vec<R> {
        let expected = batch.len();
        let results = (self.compute)(batch);
        assert_eq!(
            results.len(),
            expected,
            "batch compute must return one result per input row"
        );
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Barrier};

    #[test]
    fn sequential_submissions_each_form_their_own_batch() {
        let calls = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&calls);
        let batcher = Batcher::new(Duration::from_millis(1), move |xs: Vec<i64>| {
            c.fetch_add(1, Ordering::SeqCst);
            xs.iter().map(|x| x * 10).collect()
        });
        assert_eq!(batcher.submit(vec![1, 2]), vec![10, 20]);
        assert_eq!(batcher.submit(vec![3]), vec![30]);
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        assert_eq!(
            batcher.stats(),
            BatcherStats {
                submits: 2,
                batches: 2
            }
        );
    }

    #[test]
    fn empty_submissions_cost_nothing() {
        let batcher = Batcher::new(Duration::from_millis(1), |xs: Vec<i64>| xs);
        assert!(batcher.submit(Vec::new()).is_empty());
        assert_eq!(batcher.stats().batches, 0);
    }

    #[test]
    fn concurrent_submissions_coalesce_and_route_results_correctly() {
        // A generous window plus a barrier makes all threads join the same
        // accumulation window deterministically enough to assert real
        // coalescing (strictly fewer batches than submitters).
        let threads = 8usize;
        let batcher = Arc::new(Batcher::new(
            Duration::from_millis(200),
            |xs: Vec<(usize, i64)>| xs.iter().map(|&(t, x)| (t, x * 2)).collect(),
        ));
        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let batcher = Arc::clone(&batcher);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    let items: Vec<(usize, i64)> =
                        (0..3).map(|i| (t, (t * 3 + i) as i64)).collect();
                    let out = batcher.submit(items.clone());
                    assert_eq!(out.len(), items.len());
                    for ((t_in, x), (t_out, y)) in items.iter().zip(&out) {
                        assert_eq!(t_in, t_out, "result routed to the wrong caller");
                        assert_eq!(*y, x * 2);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = batcher.stats();
        assert_eq!(stats.submits, threads as u64);
        assert!(
            stats.batches < threads as u64,
            "{} submitters ran {} batches — nothing coalesced",
            stats.submits,
            stats.batches
        );
    }

    #[test]
    fn tagged_submissions_report_batch_identity_and_membership() {
        let batcher = Batcher::new(Duration::from_millis(1), |xs: Vec<i64>| xs);
        let (out, info) = batcher.submit_tagged(vec![1, 2], Some("r1-0"));
        assert_eq!(out, vec![1, 2]);
        assert!(info.leader, "a lone submitter leads its own batch");
        assert_eq!(info.batch_id, 0);
        assert_eq!(info.size, 2);
        assert_eq!(info.members, vec!["r1-0".to_string()]);
        // The next batch gets the next generation id.
        let (_, info2) = batcher.submit_tagged(vec![3], Some("r1-1"));
        assert_eq!(info2.batch_id, 1);
        // Empty submissions ride no batch at all.
        let (out, info3) = batcher.submit_tagged(Vec::new(), Some("r1-2"));
        assert!(out.is_empty());
        assert_eq!(info3.size, 0);
    }

    #[test]
    fn coalesced_tagged_submissions_share_a_batch_and_the_leader_sees_members() {
        let threads = 4usize;
        let batcher = Arc::new(Batcher::named(
            Duration::from_millis(200),
            "test_tagged",
            |xs: Vec<i64>| xs,
        ));
        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let batcher = Arc::clone(&batcher);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    let tag = format!("r-{t}");
                    batcher.submit_tagged(vec![t as i64], Some(&tag))
                })
            })
            .collect();
        let infos: Vec<BatchInfo> = handles.into_iter().map(|h| h.join().unwrap().1).collect();
        let leaders: Vec<&BatchInfo> = infos.iter().filter(|i| i.leader).collect();
        assert!(!leaders.is_empty());
        // Every member tag recorded on some leader, exactly once overall.
        let mut members: Vec<String> = leaders.iter().flat_map(|l| l.members.clone()).collect();
        members.sort();
        assert_eq!(members.len(), threads);
        // Followers carry the shared batch id and size but no members.
        for info in infos.iter().filter(|i| !i.leader) {
            assert!(info.members.is_empty());
            assert!(info.size >= 1);
            assert!(leaders.iter().any(|l| l.batch_id == info.batch_id));
        }
        // The named batcher recorded per-batch instruments globally.
        assert!(vaesa_obs::histogram("serve.coalesce.test_tagged.batch_size").count() >= 1);
        assert!(
            vaesa_obs::latency_histogram("serve.coalesce.test_tagged.queue_wait_ns").count()
                >= threads as u64
        );
    }
}
