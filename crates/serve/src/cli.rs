//! Flag parsing and entry points for the `vaesa-cli serve` and
//! `vaesa-cli client` commands (the binary delegates here so the whole
//! serving stack lives in this crate).

use crate::{CoreConfig, ServeConfig, Server};
use std::time::Duration;

/// Parses `--key value` serve flags and runs the daemon in the
/// foreground until `POST /shutdown`.
///
/// Flags: `--addr` (default `127.0.0.1:8737`; port 0 picks a free port),
/// `--workers`, `--window-ms`, `--jobs` (table capacity), `--access-log`
/// (JSONL request log path), and the build sizing `--configs`,
/// `--epochs`, `--latent-dim`, `--layers`, `--seed`.
pub fn run_serve(args: &[String]) -> Result<(), String> {
    let mut config = ServeConfig::default();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {:?}", args[i]))?;
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("--{key} needs a value"))?;
        match key {
            "addr" => config.addr = value.clone(),
            "workers" => config.workers = parse(key, value)?,
            "window-ms" => config.window = Duration::from_millis(parse(key, value)?),
            "jobs" => config.job_capacity = parse(key, value)?,
            "access-log" => config.access_log = Some(std::path::PathBuf::from(value)),
            "configs" => config.core.n_configs = parse(key, value)?,
            "epochs" => config.core.epochs = parse(key, value)?,
            "latent-dim" => config.core.latent_dim = parse(key, value)?,
            "layers" => config.core.n_layers = parse(key, value)?,
            "seed" => config.core.seed = parse(key, value)?,
            other => return Err(format!("unknown serve flag --{other}")),
        }
        i += 2;
    }
    validate(&config.core)?;
    if config.workers == 0 || config.job_capacity == 0 {
        return Err("--workers and --jobs must be positive".to_string());
    }

    eprintln!(
        "vaesa-serve: building core (configs={}, epochs={}, dz={}, layers={})...",
        config.core.n_configs, config.core.epochs, config.core.latent_dim, config.core.n_layers
    );
    let server = Server::start(config).map_err(|e| format!("failed to start server: {e}"))?;
    // The bound address goes to stdout so scripts can capture it even with
    // `--addr 127.0.0.1:0`.
    println!("listening on {}", server.addr());
    server.join();
    Ok(())
}

/// Runs a client subcommand: `client [--addr host:port] <command> ...`.
pub fn run_client_command(args: &[String]) -> Result<(), String> {
    let mut addr = "127.0.0.1:8737".to_string();
    let mut rest = args;
    if rest.first().is_some_and(|a| a == "--addr") {
        addr = rest.get(1).ok_or("--addr needs a value")?.clone();
        rest = &rest[2..];
    }
    crate::client::run_client(&addr, rest)
}

fn parse<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String> {
    value
        .parse::<T>()
        .map_err(|_| format!("--{key} got unparseable value {value:?}"))
}

fn validate(core: &CoreConfig) -> Result<(), String> {
    if core.n_configs < 8 {
        return Err("--configs must be at least 8 (dataset must support a GP fit)".to_string());
    }
    if core.latent_dim == 0 || core.n_layers == 0 || core.epochs == 0 {
        return Err("--latent-dim, --layers, and --epochs must be positive".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn serve_flags_reject_unknown_and_degenerate_values() {
        assert!(run_serve(&args(&["--nope", "1"]))
            .unwrap_err()
            .contains("--nope"));
        assert!(run_serve(&args(&["--configs", "2"]))
            .unwrap_err()
            .contains("at least 8"));
        assert!(run_serve(&args(&["--workers", "0"]))
            .unwrap_err()
            .contains("positive"));
        assert!(run_serve(&args(&["--epochs"]))
            .unwrap_err()
            .contains("needs a value"));
        assert!(run_serve(&args(&["--epochs", "x"]))
            .unwrap_err()
            .contains("unparseable"));
    }

    #[test]
    fn client_requires_a_command() {
        assert!(run_client_command(&[]).is_err());
        assert!(run_client_command(&args(&["--addr"]))
            .unwrap_err()
            .contains("needs a value"));
    }
}
