//! `vaesa-serve`: DSE-as-a-service over the trained VAESA latent space.
//!
//! A dependency-free daemon on [`std::net::TcpListener`] speaking just
//! enough HTTP/1.1 ([`http`]) to serve JSON endpoints:
//!
//! | Endpoint          | Method | Purpose                                          |
//! |-------------------|--------|--------------------------------------------------|
//! | `/healthz`        | GET    | Liveness + served dimensions                     |
//! | `/metrics`        | GET    | Prometheus text (default) or `?format=manifest`  |
//! | `/metrics/requests` | GET  | Recently finished request ids                    |
//! | `/metrics/requests/<id>` | GET | Span tree for one finished request          |
//! | `/predict`        | POST   | Head + GP batch prediction for raw hardware rows |
//! | `/decode`         | POST   | Latent rows → snapped designs + true EDP         |
//! | `/search`         | POST   | Enqueue an async [`DseDriver`] search job        |
//! | `/jobs/<id>`      | GET    | Poll a search job                                |
//! | `/shutdown`       | POST   | Graceful stop (flushes the persistent cache)     |
//!
//! Concurrent `/predict` and `/decode` requests are coalesced by the
//! admission queue ([`coalesce::Batcher`]) into single batched-model
//! invocations; `/search` jobs run on a bounded worker pool ([`jobs`]).
//! All true evaluations funnel through one [`CachedScheduler`], so with
//! `VAESA_EVAL_CACHE` set, every schedule computed for any tenant lands in
//! the persistent cross-run evaluation cache and is served from disk after
//! a restart.
//!
//! Every connection is traced through a [`Telemetry`] hub: deterministic
//! request ids (echoed as `X-Request-Id`), per-endpoint latency
//! histograms and 60 s sliding windows, status-code counters, a JSONL
//! access log, and bounded span-tree retention — see `DESIGN.md` §2.13.
//!
//! [`DseDriver`]: vaesa::DseDriver
//! [`CachedScheduler`]: vaesa_cosa::CachedScheduler

pub mod cli;
pub mod client;
mod coalesce;
mod core;
pub mod http;
mod jobs;
pub mod telemetry;
pub mod top;

pub use coalesce::{BatchInfo, Batcher, BatcherStats};
pub use core::{CoreConfig, Decoded, Prediction, ServeCore};
pub use jobs::{Job, JobStatus, JobTable, SearchSpec, SearchSummary, WorkerPool};
pub use telemetry::Telemetry;

use http::{read_request, Request, Response};
use serde::Value;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use vaesa_obs::RequestCtx;

/// Daemon configuration: bind address, concurrency, and the startup build
/// sizing ([`CoreConfig`]).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (reported by [`Server::addr`]).
    pub addr: String,
    /// Search worker threads.
    pub workers: usize,
    /// Coalescing window for `/predict` and `/decode` admission.
    pub window: Duration,
    /// Maximum jobs tracked at once (running + finished history).
    pub job_capacity: usize,
    /// JSONL access-log path (`None` disables access logging).
    pub access_log: Option<PathBuf>,
    /// Model/dataset build sizing.
    pub core: CoreConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8737".to_string(),
            workers: 2,
            window: Duration::from_millis(5),
            job_capacity: 64,
            access_log: None,
            core: CoreConfig::default(),
        }
    }
}

/// Everything a connection handler needs, shared behind one `Arc`.
struct ServeState {
    core: Arc<ServeCore>,
    predict: Batcher<Vec<f64>, Prediction>,
    decode: Batcher<Vec<f64>, Decoded>,
    jobs: Arc<JobTable>,
    pool: WorkerPool,
    telemetry: Telemetry,
    stop: AtomicBool,
}

impl ServeState {
    fn new(core: Arc<ServeCore>, config: &ServeConfig) -> io::Result<Self> {
        let jobs = Arc::new(JobTable::new(config.job_capacity));
        let predict_core = Arc::clone(&core);
        let decode_core = Arc::clone(&core);
        let worker_core = Arc::clone(&core);
        let worker_jobs = Arc::clone(&jobs);
        // Request ids reuse the core seed, so a daemon restarted with the
        // same configuration mints the same id sequence.
        let telemetry = Telemetry::new(config.core.seed, config.access_log.as_deref())?;
        Ok(ServeState {
            predict: Batcher::named(config.window, "predict", move |rows| {
                predict_core.predict(rows)
            }),
            decode: Batcher::named(config.window, "decode", move |rows| {
                decode_core.decode(rows)
            }),
            pool: WorkerPool::spawn(config.workers, move |id| {
                let Some(job) = worker_jobs.get(id) else {
                    return; // evicted before pickup
                };
                worker_jobs.mark_running(id);
                let span = vaesa_obs::global().span("serve/job");
                let status = match worker_core.run_search(&job.spec) {
                    Ok(summary) => JobStatus::Done(summary),
                    Err(message) => JobStatus::Failed(message),
                };
                span.finish();
                worker_jobs.finish(id, status);
            }),
            core,
            jobs,
            telemetry,
            stop: AtomicBool::new(false),
        })
    }
}

/// A running daemon: the accept loop on its own thread, handlers on
/// per-connection threads.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    handle: Option<JoinHandle<()>>,
}

impl Server {
    /// Builds the served state (dataset, model, GP — the slow part), binds
    /// the listener, and starts accepting.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let core = Arc::new(ServeCore::build(&config.core));
        Self::start_with_core(config, core)
    }

    /// Starts a server around an already-built core (lets tests reuse one
    /// build across restart cycles).
    pub fn start_with_core(config: ServeConfig, core: Arc<ServeCore>) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        // Nonblocking accept lets the loop observe the stop flag promptly
        // without a wakeup connection.
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServeState::new(core, &config)?);
        // Periodic sampler: refreshes point-in-time gauges (peak RSS,
        // in-flight, windowed rate/p99) so scrapes see fresh readings.
        // The Weak handle keeps the sampler from pinning the state alive
        // past shutdown.
        let sampler_state = Arc::downgrade(&state);
        std::thread::Builder::new()
            .name("vaesa-serve-sampler".to_string())
            .spawn(move || loop {
                std::thread::sleep(Duration::from_millis(250));
                let Some(state) = sampler_state.upgrade() else {
                    break;
                };
                if state.stop.load(Ordering::SeqCst) {
                    break;
                }
                state.telemetry.sample();
            })?;
        let handle = std::thread::Builder::new()
            .name("vaesa-serve-accept".to_string())
            .spawn(move || accept_loop(listener, state))?;
        Ok(Server {
            addr,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the daemon stops (via `POST /shutdown`).
    pub fn join(mut self) {
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: TcpListener, state: Arc<ServeState>) {
    vaesa_obs::progress!("serve: listening");
    while !state.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                vaesa_obs::counter("serve.connections").incr();
                let state = Arc::clone(&state);
                // One thread per connection: handlers must run concurrently
                // for the admission queue to have anything to coalesce.
                let spawned = std::thread::Builder::new()
                    .name("vaesa-serve-conn".to_string())
                    .spawn(move || handle_connection(stream, &state));
                if let Err(e) = spawned {
                    eprintln!("vaesa-serve: failed to spawn handler: {e}");
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => {
                eprintln!("vaesa-serve: accept error: {e}");
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
    // Graceful stop: finish queued searches, then persist what they learned.
    let mut state = state;
    loop {
        match Arc::try_unwrap(state) {
            Ok(mut owned) => {
                owned.pool.shutdown();
                if let Err(e) = owned.core.scheduler().flush_persistent() {
                    eprintln!("vaesa-serve: persistent cache flush failed: {e}");
                }
                owned.telemetry.flush();
                break;
            }
            Err(shared) => {
                // In-flight connection handlers still hold clones; give
                // them a beat to finish writing their responses.
                state = shared;
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    vaesa_obs::progress!("serve: stopped");
}

fn handle_connection(mut stream: TcpStream, state: &ServeState) {
    // Blocking I/O (inherited nonblocking flags vary by platform) with a
    // timeout so a stalled client cannot pin a handler thread forever.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let ctx = state.telemetry.begin();
    let (response, method) = match read_request(&mut stream) {
        Ok(request) => {
            let response = route(&request, state, &ctx);
            (response, request.method)
        }
        Err(error) => match error.into_response() {
            Some(response) => (response, "-".to_string()),
            None => {
                // Connection-level I/O error: nothing to say to the peer,
                // but the request still closes out of the telemetry (499 —
                // the de-facto "client closed" status).
                state.telemetry.finish(ctx, "-", 499);
                return;
            }
        },
    };
    let status = response.status;
    let response = response.with_header("X-Request-Id", ctx.id());
    if let Err(e) = response.write_to(&mut stream) {
        eprintln!("vaesa-serve: response write failed: {e}");
    }
    state.telemetry.finish(ctx, &method, status);
}

fn route(request: &Request, state: &ServeState, ctx: &RequestCtx<'static>) -> Response {
    let path = request.path_only();
    let endpoint = telemetry::endpoint_for_path(path);
    ctx.set_endpoint(endpoint);
    let span = ctx.span(&format!("serve/{endpoint}"));
    let response = match (request.method.as_str(), path) {
        ("GET", "/healthz") => handle_healthz(state),
        ("GET", "/metrics") => handle_metrics(request, state),
        ("GET", "/metrics/requests") => {
            Response::json(200, state.telemetry.recent_requests_json(32))
        }
        ("GET", path) if path.starts_with("/metrics/requests/") => {
            let id = &path["/metrics/requests/".len()..];
            match state.telemetry.request_tree_json(id) {
                Some(body) => Response::json(200, body),
                None => Response::error(404, "no such request (it may have been evicted)"),
            }
        }
        ("POST", "/predict") => handle_predict(request, state, ctx),
        ("POST", "/decode") => handle_decode(request, state, ctx),
        ("POST", "/search") => handle_search(request, state),
        ("GET", path) if path.starts_with("/jobs/") => handle_job(path, state),
        ("POST", "/shutdown") => {
            state.stop.store(true, Ordering::SeqCst);
            Response::json(200, "{\"status\":\"stopping\"}")
        }
        (_, "/healthz" | "/metrics" | "/predict" | "/decode" | "/search" | "/shutdown") => {
            Response::error(405, "method not allowed for this path")
        }
        _ => Response::error(404, "no such endpoint"),
    };
    span.finish();
    response
}

fn handle_healthz(state: &ServeState) -> Response {
    Response::json(
        200,
        format!(
            "{{\"status\":\"ok\",\"latent_dim\":{},\"layers\":{},\"persistent_cache\":{}}}",
            state.core.latent_dim(),
            state.core.layers().len(),
            state.core.scheduler().persistence_dir().is_some(),
        ),
    )
}

fn handle_metrics(request: &Request, state: &ServeState) -> Response {
    let registry = vaesa_obs::global();
    state.core.scheduler().publish_stats(registry, "scheduler");
    let predict = state.predict.stats();
    let decode = state.decode.stats();
    registry
        .gauge("serve.coalesce.predict.submits")
        .set(predict.submits as f64);
    registry
        .gauge("serve.coalesce.predict.batches")
        .set(predict.batches as f64);
    registry
        .gauge("serve.coalesce.decode.submits")
        .set(decode.submits as f64);
    registry
        .gauge("serve.coalesce.decode.batches")
        .set(decode.batches as f64);
    registry
        .gauge("serve.jobs.tracked")
        .set(state.jobs.len() as f64);
    state.telemetry.sample();
    match request.query_param("format").unwrap_or("prometheus") {
        "prometheus" | "prom" => Response::text(200, vaesa_obs::prometheus_string(registry)),
        "manifest" => {
            let manifest = vaesa_obs::manifest_string(registry);
            match request.query_param("name") {
                // Server-side filter: stream only the matching records (plus
                // the run header) instead of the full snapshot.
                Some(name) => {
                    let needle = format!("\"name\":{}", telemetry::json_str(name));
                    let filtered: String = manifest
                        .lines()
                        .filter(|line| {
                            line.contains("\"record\":\"run\"") || line.contains(&needle)
                        })
                        .flat_map(|line| [line, "\n"])
                        .collect();
                    Response::text(200, filtered)
                }
                None => Response::text(200, manifest),
            }
        }
        other => Response::error(400, &format!("unknown metrics format {other:?}")),
    }
}

/// Extracts `"points": [[f64, ...], ...]` rows of exactly `width` columns.
fn parse_points(body: &str, width: usize) -> Result<Vec<Vec<f64>>, String> {
    let value: Value =
        serde_json::parse_value(body).map_err(|e| format!("malformed JSON body: {e}"))?;
    let points = value
        .get("points")
        .ok_or_else(|| "missing \"points\" field".to_string())?;
    let Value::Seq(rows) = points else {
        return Err("\"points\" must be an array of rows".to_string());
    };
    if rows.is_empty() {
        return Err("\"points\" is empty".to_string());
    }
    rows.iter()
        .enumerate()
        .map(|(i, row)| {
            let Value::Seq(cells) = row else {
                return Err(format!("points[{i}] is not an array"));
            };
            if cells.len() != width {
                return Err(format!(
                    "points[{i}] has {} values, expected {width}",
                    cells.len()
                ));
            }
            cells
                .iter()
                .enumerate()
                .map(|(j, cell)| {
                    cell.as_f64()
                        .filter(|v| v.is_finite())
                        .ok_or_else(|| format!("points[{i}][{j}] is not a finite number"))
                })
                .collect()
        })
        .collect()
}

/// Attaches a coalesced batch's identity to the submitting request: the
/// leader's record carries the full membership (follower request ids),
/// followers carry just the batch id and size.
fn note_batch(ctx: &RequestCtx<'static>, info: &BatchInfo) {
    ctx.note("batch.id", info.batch_id);
    ctx.note("batch.size", info.size);
    ctx.note("batch.leader", info.leader);
    if info.leader && !info.members.is_empty() {
        ctx.note("batch.members", info.members.join(","));
    }
}

fn handle_predict(request: &Request, state: &ServeState, ctx: &RequestCtx<'static>) -> Response {
    let rows = match parse_points(&request.body, vaesa::HW_FEATURES) {
        Ok(rows) => rows,
        Err(message) => return Response::error(400, &message),
    };
    // The normalizer is log-space: zero or negative features are outside
    // the model's domain and would panic inside the batch.
    if let Some(bad) = rows.iter().position(|r| r.iter().any(|&v| v <= 0.0)) {
        return Response::error(400, &format!("points[{bad}] has a non-positive feature"));
    }
    vaesa_obs::counter("serve.predict.rows").add(rows.len() as u64);
    ctx.note("rows", rows.len());
    let submit_span = ctx.span("serve/predict/submit");
    let (predictions, batch) = state.predict.submit_tagged(rows, Some(ctx.id()));
    submit_span.finish();
    note_batch(ctx, &batch);
    match serde_json::to_string(&predictions) {
        Ok(body) => Response::json(200, format!("{{\"predictions\":{body}}}")),
        Err(e) => Response::error(500, &format!("serialization failed: {e}")),
    }
}

fn handle_decode(request: &Request, state: &ServeState, ctx: &RequestCtx<'static>) -> Response {
    let rows = match parse_points(&request.body, state.core.latent_dim()) {
        Ok(rows) => rows,
        Err(message) => return Response::error(400, &message),
    };
    vaesa_obs::counter("serve.decode.rows").add(rows.len() as u64);
    ctx.note("rows", rows.len());
    let hits_before = state.core.scheduler().cache_stats().hits;
    let submit_span = ctx.span("serve/decode/submit");
    let (designs, batch) = state.decode.submit_tagged(rows, Some(ctx.id()));
    submit_span.finish();
    note_batch(ctx, &batch);
    // Scheduler-cache hits observed while this request's batch ran; an
    // approximation under concurrency, but exact for the common
    // single-tenant case.
    let hits_after = state.core.scheduler().cache_stats().hits;
    ctx.note("cache.hits_delta", hits_after.saturating_sub(hits_before));
    match serde_json::to_string(&designs) {
        Ok(body) => Response::json(200, format!("{{\"designs\":{body}}}")),
        Err(e) => Response::error(500, &format!("serialization failed: {e}")),
    }
}

fn handle_search(request: &Request, state: &ServeState) -> Response {
    let value: Value = match serde_json::parse_value(&request.body) {
        Ok(value) => value,
        Err(e) => return Response::error(400, &format!("malformed JSON body: {e}")),
    };
    let engine = match value.get("engine") {
        Some(Value::Str(s)) => s.clone(),
        Some(_) => return Response::error(400, "\"engine\" must be a string"),
        None => return Response::error(400, "missing \"engine\" field"),
    };
    let mode = match value.get("mode") {
        Some(Value::Str(s)) => s.clone(),
        Some(_) => return Response::error(400, "\"mode\" must be a string"),
        None => "latent".to_string(),
    };
    let budget = match value.get("budget") {
        Some(v) => match v.as_u64() {
            Some(b) => b as usize,
            None => return Response::error(400, "\"budget\" must be a non-negative integer"),
        },
        None => 24,
    };
    let seed = match value.get("seed") {
        Some(v) => match v.as_u64() {
            Some(s) => s,
            None => return Response::error(400, "\"seed\" must be a non-negative integer"),
        },
        None => 0,
    };
    let spec = SearchSpec {
        engine,
        mode,
        budget,
        seed,
    };
    if let Err(message) = state.core.validate_spec(&spec) {
        return Response::error(400, &message);
    }
    match state.jobs.submit(spec) {
        Ok(id) => {
            state.pool.enqueue(id);
            Response::json(202, format!("{{\"job\":{id},\"status\":\"queued\"}}"))
        }
        Err(message) => Response::error(429, &message),
    }
}

fn handle_job(path: &str, state: &ServeState) -> Response {
    let id = match path["/jobs/".len()..].parse::<u64>() {
        Ok(id) => id,
        Err(_) => return Response::error(400, "job id must be an integer"),
    };
    let Some(job) = state.jobs.get(id) else {
        return Response::error(404, "no such job (it may have been evicted)");
    };
    let mut body = format!(
        "{{\"job\":{},\"status\":\"{}\",\"engine\":\"{}\",\"mode\":\"{}\",\"budget\":{},\"seed\":{}",
        job.id,
        job.status.name(),
        job.spec.engine,
        job.spec.mode,
        job.spec.budget,
        job.spec.seed
    );
    match &job.status {
        JobStatus::Done(summary) => match serde_json::to_string(summary) {
            Ok(json) => body.push_str(&format!(",\"result\":{json}")),
            Err(e) => return Response::error(500, &format!("serialization failed: {e}")),
        },
        JobStatus::Failed(message) => match serde_json::to_string(message) {
            Ok(json) => body.push_str(&format!(",\"error\":{json}")),
            Err(e) => return Response::error(500, &format!("serialization failed: {e}")),
        },
        JobStatus::Queued | JobStatus::Running => {}
    }
    body.push('}');
    Response::json(200, body)
}

// Re-exported so integration tests and the CLI share the request helper.
pub use http::http_request;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_points_validates_shape_and_values() {
        assert_eq!(
            parse_points("{\"points\":[[1.0,2.0],[3,4]]}", 2).unwrap(),
            vec![vec![1.0, 2.0], vec![3.0, 4.0]]
        );
        assert!(parse_points("not json", 2)
            .unwrap_err()
            .contains("malformed"));
        assert!(parse_points("{\"rows\":[[1,2]]}", 2)
            .unwrap_err()
            .contains("points"));
        assert!(parse_points("{\"points\":[]}", 2)
            .unwrap_err()
            .contains("empty"));
        assert!(parse_points("{\"points\":[[1]]}", 2)
            .unwrap_err()
            .contains("expected 2"));
        assert!(parse_points("{\"points\":[[1,\"x\"]]}", 2)
            .unwrap_err()
            .contains("finite"));
        assert!(parse_points("{\"points\":[5]}", 2)
            .unwrap_err()
            .contains("not an array"));
    }
}
