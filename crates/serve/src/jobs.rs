//! Asynchronous search jobs: a bounded job table plus a fixed pool of
//! worker threads draining a submission queue.
//!
//! `POST /search` enqueues; `GET /jobs/<id>` polls. The table holds at most
//! its capacity in jobs — when full, terminal jobs (done/failed) are
//! evicted oldest-first to make room, and if every slot is still queued or
//! running the submission is rejected (HTTP 429) rather than queued
//! unboundedly. Workers are plain OS threads: each search already fans its
//! candidate evaluation out across the `vaesa-par` pool internally, so the
//! worker count only bounds how many *searches* run concurrently, not how
//! parallel each one is.

use serde::Serialize;
use std::collections::HashMap;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use vaesa_accel::ArchDescription;

/// A search request as validated at submission time.
#[derive(Debug, Clone)]
pub struct SearchSpec {
    /// Engine name (`random`, `bo`, `evo`, `sa`, `cd`, `gd`).
    pub engine: String,
    /// `latent` (the served default) or `direct`.
    pub mode: String,
    /// True-evaluation budget.
    pub budget: usize,
    /// RNG seed; identical specs reproduce identical results.
    pub seed: u64,
}

/// The summary of a finished search, shaped for the JSON response.
#[derive(Debug, Clone, Serialize)]
pub struct SearchSummary {
    /// Trace label (`vae_bo`, `random`, ...).
    pub label: String,
    /// Samples actually spent.
    pub evals: u64,
    /// Best objective value found (EDP), if any sample was valid.
    pub best_value: Option<f64>,
    /// The best point in the searched space (latent or normalized input).
    pub best_point: Option<Vec<f64>>,
    /// The decoded/snap-rounded hardware design achieving `best_value`.
    pub best_arch: Option<ArchDescription>,
}

/// Lifecycle of one job.
#[derive(Debug, Clone)]
pub enum JobStatus {
    /// Accepted, not yet picked up by a worker.
    Queued,
    /// A worker is running the search.
    Running,
    /// Finished successfully.
    Done(SearchSummary),
    /// The search failed (e.g. invalid engine/mode combination).
    Failed(String),
}

impl JobStatus {
    /// The status label used in JSON responses.
    pub fn name(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done(_) => "done",
            JobStatus::Failed(_) => "failed",
        }
    }

    fn is_terminal(&self) -> bool {
        matches!(self, JobStatus::Done(_) | JobStatus::Failed(_))
    }
}

/// One tracked job.
#[derive(Debug, Clone)]
pub struct Job {
    /// The id `GET /jobs/<id>` polls.
    pub id: u64,
    /// The spec as submitted.
    pub spec: SearchSpec,
    /// Current lifecycle state.
    pub status: JobStatus,
}

#[derive(Debug, Default)]
struct TableState {
    jobs: HashMap<u64, Job>,
    /// Submission order, for oldest-first eviction of terminal jobs.
    order: Vec<u64>,
    next_id: u64,
}

/// The bounded job table. Thread-safe; shared between the HTTP handlers
/// and the worker pool.
#[derive(Debug)]
pub struct JobTable {
    state: Mutex<TableState>,
    changed: Condvar,
    capacity: usize,
}

impl JobTable {
    /// Creates a table holding at most `capacity` jobs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "job table capacity must be at least 1");
        JobTable {
            state: Mutex::new(TableState::default()),
            changed: Condvar::new(),
            capacity,
        }
    }

    /// Admits a job, evicting the oldest terminal job if the table is
    /// full. Returns the new job id, or `Err` (→ HTTP 429) when every slot
    /// is still queued or running.
    pub fn submit(&self, spec: SearchSpec) -> Result<u64, String> {
        let mut state = self.state.lock().expect("job table lock");
        if state.jobs.len() >= self.capacity {
            let evict = state
                .order
                .iter()
                .copied()
                .find(|id| state.jobs.get(id).is_some_and(|j| j.status.is_terminal()));
            match evict {
                Some(id) => {
                    state.jobs.remove(&id);
                    state.order.retain(|&o| o != id);
                    vaesa_obs::counter("serve.jobs.evicted").incr();
                }
                None => {
                    return Err(format!(
                        "job table full: {} jobs queued or running",
                        self.capacity
                    ))
                }
            }
        }
        let id = state.next_id;
        state.next_id += 1;
        state.jobs.insert(
            id,
            Job {
                id,
                spec,
                status: JobStatus::Queued,
            },
        );
        state.order.push(id);
        vaesa_obs::counter("serve.jobs.submitted").incr();
        Ok(id)
    }

    /// A snapshot of one job.
    pub fn get(&self, id: u64) -> Option<Job> {
        self.state
            .lock()
            .expect("job table lock")
            .jobs
            .get(&id)
            .cloned()
    }

    /// Number of jobs currently tracked (any status).
    pub fn len(&self) -> usize {
        self.state.lock().expect("job table lock").jobs.len()
    }

    /// True when no jobs are tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Marks a job running (worker pickup).
    pub fn mark_running(&self, id: u64) {
        self.set_status(id, JobStatus::Running);
    }

    /// Records a job's terminal status and wakes any waiters.
    pub fn finish(&self, id: u64, status: JobStatus) {
        debug_assert!(status.is_terminal());
        self.set_status(id, status);
    }

    fn set_status(&self, id: u64, status: JobStatus) {
        let mut state = self.state.lock().expect("job table lock");
        if let Some(job) = state.jobs.get_mut(&id) {
            job.status = status;
        }
        drop(state);
        self.changed.notify_all();
    }

    /// Blocks until job `id` reaches a terminal state (used by tests and
    /// graceful shutdown; HTTP clients poll instead).
    pub fn wait_terminal(&self, id: u64) -> Option<Job> {
        let mut state = self.state.lock().expect("job table lock");
        loop {
            match state.jobs.get(&id) {
                None => return None,
                Some(job) if job.status.is_terminal() => return Some(job.clone()),
                Some(_) => state = self.changed.wait(state).expect("job table lock"),
            }
        }
    }
}

/// The worker pool: a queue of job ids drained by OS threads that run the
/// provided executor for each job.
#[derive(Debug)]
pub struct WorkerPool {
    sender: Option<Sender<u64>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads running `execute` for every queued job id.
    /// The executor owns marking the job running and finishing it.
    pub fn spawn<F>(workers: usize, execute: F) -> Self
    where
        F: Fn(u64) + Send + Sync + 'static,
    {
        let (sender, receiver) = mpsc::channel::<u64>();
        let receiver = Arc::new(Mutex::new(receiver));
        let execute = Arc::new(execute);
        let handles = (0..workers.max(1))
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let execute = Arc::clone(&execute);
                std::thread::Builder::new()
                    .name(format!("vaesa-serve-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the receiver lock only for the dequeue; a
                        // long-running search must not serialize the pool.
                        let next = {
                            let rx: &Receiver<u64> = &receiver.lock().expect("worker queue");
                            rx.recv()
                        };
                        match next {
                            Ok(id) => execute(id),
                            Err(_) => break, // queue closed: shutdown
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            handles,
        }
    }

    /// Queues a job id for execution.
    ///
    /// # Panics
    ///
    /// Panics if called after [`WorkerPool::shutdown`].
    pub fn enqueue(&self, id: u64) {
        self.sender
            .as_ref()
            .expect("pool is running")
            .send(id)
            .expect("workers alive");
    }

    /// Closes the queue and joins every worker, letting in-flight jobs
    /// finish first.
    pub fn shutdown(&mut self) {
        self.sender.take(); // closing the channel stops the workers
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SearchSpec {
        SearchSpec {
            engine: "random".to_string(),
            mode: "latent".to_string(),
            budget: 4,
            seed: 1,
        }
    }

    #[test]
    fn submit_get_and_finish_round_trip() {
        let table = JobTable::new(4);
        let id = table.submit(spec()).unwrap();
        assert!(matches!(table.get(id).unwrap().status, JobStatus::Queued));
        table.mark_running(id);
        assert!(matches!(table.get(id).unwrap().status, JobStatus::Running));
        table.finish(id, JobStatus::Failed("nope".to_string()));
        let job = table.wait_terminal(id).unwrap();
        assert_eq!(job.status.name(), "failed");
        assert!(table.get(9999).is_none());
    }

    #[test]
    fn full_table_evicts_terminal_jobs_oldest_first_and_rejects_otherwise() {
        let table = JobTable::new(2);
        let a = table.submit(spec()).unwrap();
        let b = table.submit(spec()).unwrap();
        // Both active: a third submission has nowhere to go.
        assert!(table.submit(spec()).is_err());
        table.finish(
            b,
            JobStatus::Done(SearchSummary {
                label: "random".to_string(),
                evals: 4,
                best_value: None,
                best_point: None,
                best_arch: None,
            }),
        );
        table.finish(a, JobStatus::Failed("x".to_string()));
        // Now `a` (older) is evicted to admit the new job; `b` survives.
        let c = table.submit(spec()).unwrap();
        assert!(table.get(a).is_none());
        assert!(table.get(b).is_some());
        assert!(table.get(c).is_some());
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn worker_pool_executes_queued_jobs_and_shuts_down() {
        let table = Arc::new(JobTable::new(8));
        let exec_table = Arc::clone(&table);
        let mut pool = WorkerPool::spawn(2, move |id| {
            exec_table.mark_running(id);
            exec_table.finish(id, JobStatus::Failed(format!("job {id} executed")));
        });
        let ids: Vec<u64> = (0..5).map(|_| table.submit(spec()).unwrap()).collect();
        for &id in &ids {
            pool.enqueue(id);
        }
        for &id in &ids {
            let job = table.wait_terminal(id).unwrap();
            match job.status {
                JobStatus::Failed(msg) => assert!(msg.contains("executed")),
                other => panic!("unexpected status {other:?}"),
            }
        }
        pool.shutdown();
    }
}
