//! `vaesa-cli serve-top`: a polling terminal dashboard over a live
//! daemon's `GET /metrics` Prometheus exposition.
//!
//! Each tick scrapes the endpoint, parses the text format back into a
//! [`PromSnapshot`], and renders a per-endpoint table (request count,
//! trailing-window rate, p50/p99 latency) with a Unicode sparkline of the
//! rate history. `--snapshot-svg PATH` additionally writes the final
//! frame as an SVG [`Dashboard`] panel — the artifact CI uploads from the
//! serve smoke job.

use crate::http::http_request;
use crate::telemetry::ENDPOINTS;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Duration;
use vaesa_obs::{parse_prometheus, sanitize_metric_name, PromSnapshot};
use vaesa_plot::{text_sparkline, Dashboard};

/// How many rate samples each endpoint's sparkline retains.
const HISTORY: usize = 60;

/// `serve-top` configuration, parsed from CLI flags.
#[derive(Debug, Clone)]
pub struct TopConfig {
    /// Daemon address (`host:port`).
    pub addr: String,
    /// Delay between scrapes.
    pub interval: Duration,
    /// Scrapes before exiting; `0` polls until interrupted.
    pub samples: usize,
    /// Where to write the final frame as an SVG dashboard panel.
    pub snapshot_svg: Option<PathBuf>,
}

/// Parses `serve-top` flags and runs the dashboard loop.
///
/// # Errors
///
/// Returns a message on unknown flags, a missing `--addr`, scrape
/// failures, or an unwritable `--snapshot-svg` path.
pub fn run_top(args: &[String]) -> Result<(), String> {
    let mut config = TopConfig {
        addr: String::new(),
        interval: Duration::from_millis(1000),
        samples: 0,
        snapshot_svg: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .map(|s| s.to_string())
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--interval-ms" => {
                let ms: u64 = value("--interval-ms")?
                    .parse()
                    .map_err(|_| "--interval-ms must be an integer".to_string())?;
                config.interval = Duration::from_millis(ms.max(1));
            }
            "--samples" => {
                config.samples = value("--samples")?
                    .parse()
                    .map_err(|_| "--samples must be an integer".to_string())?;
            }
            "--snapshot-svg" => config.snapshot_svg = Some(PathBuf::from(value("--snapshot-svg")?)),
            other => return Err(format!("unknown serve-top flag: {other}")),
        }
    }
    if config.addr.is_empty() {
        return Err("serve-top requires --addr <host:port>".to_string());
    }
    run(&config)
}

fn run(config: &TopConfig) -> Result<(), String> {
    let mut history: BTreeMap<&'static str, Vec<f64>> =
        ENDPOINTS.iter().map(|&e| (e, Vec::new())).collect();
    let mut taken = 0usize;
    loop {
        let (status, body) = http_request(&config.addr, "GET", "/metrics", None)
            .map_err(|e| format!("scrape of {} failed: {e}", config.addr))?;
        if status != 200 {
            return Err(format!("scrape of {} returned {status}", config.addr));
        }
        let snap = parse_prometheus(&body)?;
        for (&endpoint, rates) in history.iter_mut() {
            let rate = snap
                .value(&sanitize_metric_name(&format!(
                    "serve.window.{endpoint}.rate"
                )))
                .unwrap_or(0.0);
            rates.push(rate);
            if rates.len() > HISTORY {
                rates.remove(0);
            }
        }
        taken += 1;
        println!("{}", render_frame(&config.addr, &snap, &history));
        if config.samples != 0 && taken >= config.samples {
            if let Some(path) = &config.snapshot_svg {
                let svg = render_svg(&config.addr, &snap, &history);
                std::fs::write(path, svg)
                    .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
                println!("serve-top: wrote {}", path.display());
            }
            return Ok(());
        }
        std::thread::sleep(config.interval);
    }
}

/// Stats shown for one endpoint row, scraped out of a [`PromSnapshot`].
struct Row {
    count: f64,
    rate: f64,
    p50_ns: Option<f64>,
    p99_ns: Option<f64>,
}

fn endpoint_row(snap: &PromSnapshot, endpoint: &str, history: &[f64]) -> Row {
    let base = sanitize_metric_name(&format!("serve.{endpoint}.latency_ns"));
    Row {
        count: snap.value(&format!("{base}_count")).unwrap_or(0.0),
        rate: history.last().copied().unwrap_or(0.0),
        p50_ns: snap.quantile(&base, 0.5),
        p99_ns: snap.quantile(&base, 0.99),
    }
}

fn render_frame(
    addr: &str,
    snap: &PromSnapshot,
    history: &BTreeMap<&'static str, Vec<f64>>,
) -> String {
    let inflight = snap.value("serve_http_inflight").unwrap_or(0.0);
    let error_rate = snap.value("serve_http_error_rate").unwrap_or(0.0);
    let rss = snap.value("process_peak_rss_bytes").unwrap_or(0.0);
    let mut out = format!(
        "vaesa-serve @ {addr} — inflight {inflight:.0} · 5xx {:.2}% · peak rss {}\n",
        error_rate * 100.0,
        fmt_bytes(rss)
    );
    out.push_str(&format!(
        "{:<10} {:>8} {:>8} {:>9} {:>9}  {}\n",
        "ENDPOINT", "COUNT", "RATE/S", "P50", "P99", "TREND"
    ));
    for &endpoint in ENDPOINTS.iter() {
        let rates = &history[endpoint];
        let row = endpoint_row(snap, endpoint, rates);
        if row.count == 0.0 {
            continue; // never hit: keep the frame compact
        }
        out.push_str(&format!(
            "{:<10} {:>8} {:>8.2} {:>9} {:>9}  {}\n",
            endpoint,
            row.count,
            row.rate,
            fmt_ns(row.p50_ns),
            fmt_ns(row.p99_ns),
            text_sparkline(rates),
        ));
    }
    out
}

fn render_svg(
    addr: &str,
    snap: &PromSnapshot,
    history: &BTreeMap<&'static str, Vec<f64>>,
) -> String {
    let mut dash = Dashboard::new(format!(
        "vaesa-serve @ {addr} — inflight {:.0} · 5xx {:.2}%",
        snap.value("serve_http_inflight").unwrap_or(0.0),
        snap.value("serve_http_error_rate").unwrap_or(0.0) * 100.0,
    ));
    for &endpoint in ENDPOINTS.iter() {
        let rates = &history[endpoint];
        let row = endpoint_row(snap, endpoint, rates);
        if row.count == 0.0 {
            continue;
        }
        dash.row(
            endpoint,
            rates.clone(),
            format!(
                "n={} · {:.2}/s · p50 {} · p99 {}",
                row.count,
                row.rate,
                fmt_ns(row.p50_ns),
                fmt_ns(row.p99_ns)
            ),
        );
    }
    dash.render()
}

/// Formats an optional nanosecond reading with an adaptive unit.
fn fmt_ns(ns: Option<f64>) -> String {
    let Some(ns) = ns else {
        return "-".to_string();
    };
    if ns < 1_000.0 {
        format!("{ns:.0}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1}us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.1}ms", ns / 1_000_000.0)
    } else {
        format!("{:.2}s", ns / 1_000_000_000.0)
    }
}

fn fmt_bytes(bytes: f64) -> String {
    if bytes >= 1024.0 * 1024.0 * 1024.0 {
        format!("{:.2}GiB", bytes / (1024.0 * 1024.0 * 1024.0))
    } else if bytes >= 1024.0 * 1024.0 {
        format!("{:.1}MiB", bytes / (1024.0 * 1024.0))
    } else {
        format!("{bytes:.0}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_snapshot() -> PromSnapshot {
        parse_prometheus(concat!(
            "# TYPE serve_http_inflight gauge\n",
            "serve_http_inflight 2\n",
            "serve_http_error_rate 0.5\n",
            "process_peak_rss_bytes 1048576\n",
            "# TYPE serve_predict_latency_ns histogram\n",
            "serve_predict_latency_ns_bucket{le=\"1000\"} 3\n",
            "serve_predict_latency_ns_bucket{le=\"+Inf\"} 4\n",
            "serve_predict_latency_ns_sum 5000\n",
            "serve_predict_latency_ns_count 4\n",
            "serve_window_predict_rate 2.5\n",
        ))
        .expect("fixture parses")
    }

    #[test]
    fn frames_show_only_active_endpoints() {
        let snap = fake_snapshot();
        let mut history: BTreeMap<&'static str, Vec<f64>> =
            ENDPOINTS.iter().map(|&e| (e, Vec::new())).collect();
        history.get_mut("predict").unwrap().extend([1.0, 2.5]);
        let frame = render_frame("127.0.0.1:1", &snap, &history);
        assert!(frame.contains("predict"), "{frame}");
        assert!(!frame.contains("decode"), "{frame}");
        assert!(frame.contains("inflight 2"), "{frame}");
        assert!(frame.contains("5xx 50.00%"), "{frame}");
        assert!(frame.contains("1.0MiB"), "{frame}");

        let svg = render_svg("127.0.0.1:1", &snap, &history);
        assert!(svg.starts_with("<svg"), "{svg}");
        assert!(svg.contains("predict"), "{svg}");
    }

    #[test]
    fn nanosecond_formatting_picks_sane_units() {
        assert_eq!(fmt_ns(None), "-");
        assert_eq!(fmt_ns(Some(512.0)), "512ns");
        assert_eq!(fmt_ns(Some(2_500.0)), "2.5us");
        assert_eq!(fmt_ns(Some(3_400_000.0)), "3.4ms");
        assert_eq!(fmt_ns(Some(2_000_000_000.0)), "2.00s");
    }

    #[test]
    fn flag_parsing_requires_an_addr() {
        let err = run_top(&[]).unwrap_err();
        assert!(err.contains("--addr"), "{err}");
        let err = run_top(&["--bogus".to_string()]).unwrap_err();
        assert!(err.contains("unknown"), "{err}");
        let err = run_top(&["--samples".to_string()]).unwrap_err();
        assert!(err.contains("requires a value"), "{err}");
    }
}
