//! Minimal HTTP/1.1 for the daemon: just enough of the wire protocol for
//! JSON request/response exchanges over `std::net`, with no external
//! dependencies (the workspace's offline `shims/` policy).
//!
//! Supported shape: one request per connection (`Connection: close`),
//! `Content-Length`-framed bodies (no chunked encoding), UTF-8 bodies.
//! Parsing is defensive — partial reads are reassembled, oversized headers
//! and bodies are rejected with the proper status instead of buffering
//! unboundedly, and malformed input produces a 400, never a panic.

use std::io::{self, Read, Write};

/// Upper bound on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Upper bound on a request body. Predict/decode batches are a few KB of
/// JSON; anything near this limit is a client bug or abuse.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// A parsed HTTP request: method, path, and the full (decoded) body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// The request path, query string included, e.g. `/jobs/3`.
    pub path: String,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: String,
}

/// Why a request could not be parsed, mapped to the response status the
/// server should answer with.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, headers, or body → 400.
    BadRequest(String),
    /// Declared body larger than [`MAX_BODY_BYTES`] → 413.
    TooLarge(String),
    /// The connection failed mid-exchange; nothing can be answered.
    Io(io::Error),
}

impl HttpError {
    /// The error as a ready-to-send response, if one can be sent.
    pub fn into_response(self) -> Option<Response> {
        match self {
            HttpError::BadRequest(msg) => Some(Response::error(400, &msg)),
            HttpError::TooLarge(msg) => Some(Response::error(413, &msg)),
            HttpError::Io(_) => None,
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Reads and parses one request from `stream`, reassembling partial reads
/// until the head terminator and the full declared body have arrived.
///
/// # Errors
///
/// [`HttpError::BadRequest`] for malformed framing, [`HttpError::TooLarge`]
/// for bodies over [`MAX_BODY_BYTES`], [`HttpError::Io`] if the peer hangs
/// up mid-request.
pub fn read_request(stream: &mut impl Read) -> Result<Request, HttpError> {
    // Accumulate until we have seen the blank line ending the head.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::BadRequest(format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        let mut chunk = [0u8; 1024];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::BadRequest(
                "connection closed before end of request head".to_string(),
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::BadRequest("request head is not UTF-8".to_string()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m, p, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line `{request_line}`"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "unsupported protocol `{version}`"
        )));
    }

    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    HttpError::BadRequest(format!("bad content-length `{}`", value.trim()))
                })?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        )));
    }

    // The body: whatever followed the head in the buffer, plus more reads.
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let mut chunk = vec![0u8; (content_length - body.len()).min(16 * 1024)];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::BadRequest(format!(
                "connection closed with {} of {content_length} body bytes read",
                body.len()
            )));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    let body = String::from_utf8(body)
        .map_err(|_| HttpError::BadRequest("request body is not UTF-8".to_string()))?;

    Ok(Request {
        method: method.to_ascii_uppercase(),
        path: path.to_string(),
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// An HTTP response ready to serialize onto the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code (200, 400, ...).
    pub status: u16,
    /// The `Content-Type` header value.
    pub content_type: &'static str,
    /// The response body.
    pub body: String,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
        }
    }

    /// A plain-text response (used by `/metrics`, which returns JSONL).
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
        }
    }

    /// A JSON error envelope: `{"error": "<message>"}`.
    pub fn error(status: u16, message: &str) -> Self {
        #[derive(serde::Serialize)]
        struct ErrorBody {
            error: String,
        }
        let body = serde_json::to_string(&ErrorBody {
            error: message.to_string(),
        })
        .expect("error body serialization is infallible");
        Response::json(status, body)
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            _ => "Internal Server Error",
        }
    }

    /// Serializes the response (status line, headers, body) onto `w`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying stream.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        )?;
        w.write_all(self.body.as_bytes())?;
        w.flush()
    }
}

/// Performs one HTTP exchange against `addr` and returns `(status, body)`.
/// This is the client half of the protocol subset the server speaks; the
/// CLI `client` subcommand and the smoke tests are built on it.
///
/// # Errors
///
/// I/O errors connecting or exchanging, or a response too malformed to
/// split into head and body.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, String)> {
    let mut stream = std::net::TcpStream::connect(addr)?;
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let (head, payload) = text.split_once("\r\n\r\n").ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            "response without head terminator",
        )
    })?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "response without status"))?;
    Ok((status, payload.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Yields the wrapped bytes one at a time, exercising reassembly of
    /// partial reads.
    struct Trickle<'a> {
        data: &'a [u8],
        pos: usize,
    }

    impl Read for Trickle<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos >= self.data.len() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut Trickle { data: raw, pos: 0 })
    }

    #[test]
    fn parses_post_with_body_from_partial_reads() {
        let raw = b"POST /predict HTTP/1.1\r\nHost: x\r\nContent-Length: 13\r\n\r\n{\"points\":[]}";
        let req = parse(raw).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/predict");
        assert_eq!(req.body, "{\"points\":[]}");
    }

    #[test]
    fn parses_get_without_content_length() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn oversized_body_is_rejected_not_buffered() {
        let raw = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        match parse(raw.as_bytes()) {
            Err(HttpError::TooLarge(_)) => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn oversized_head_is_rejected() {
        let mut raw = b"GET /x HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat(b'a').take(MAX_HEAD_BYTES + 8));
        match parse(&raw) {
            Err(HttpError::BadRequest(msg)) => assert!(msg.contains("head"), "{msg}"),
            other => panic!("expected BadRequest, got {other:?}"),
        }
    }

    #[test]
    fn malformed_request_lines_are_bad_requests() {
        for raw in [
            &b"\r\n\r\n"[..],
            &b"GET\r\n\r\n"[..],
            &b"GET /x SPDY/9\r\n\r\n"[..],
            &b"POST /x HTTP/1.1\r\nContent-Length: frog\r\n\r\n"[..],
        ] {
            match parse(raw) {
                Err(HttpError::BadRequest(_)) => {}
                other => panic!("{:?} should be BadRequest, got {other:?}", raw),
            }
        }
    }

    #[test]
    fn truncated_body_is_a_bad_request() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort";
        match parse(raw) {
            Err(HttpError::BadRequest(msg)) => assert!(msg.contains("body bytes"), "{msg}"),
            other => panic!("expected BadRequest, got {other:?}"),
        }
    }

    #[test]
    fn responses_serialize_with_exact_framing() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
        let mut out = Vec::new();
        Response::error(404, "no such job")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.ends_with("{\"error\":\"no such job\"}"));
    }
}
