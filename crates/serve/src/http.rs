//! Minimal HTTP/1.1 for the daemon: just enough of the wire protocol for
//! JSON request/response exchanges over `std::net`, with no external
//! dependencies (the workspace's offline `shims/` policy).
//!
//! Supported shape: one request per connection (`Connection: close`),
//! `Content-Length`-framed bodies (no chunked encoding), UTF-8 bodies.
//! Parsing is defensive — partial reads are reassembled, oversized headers
//! and bodies are rejected with the proper status instead of buffering
//! unboundedly, and malformed input produces a 400, never a panic.

use std::io::{self, Read, Write};

/// Upper bound on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Upper bound on a request body. Predict/decode batches are a few KB of
/// JSON; anything near this limit is a client bug or abuse.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// A parsed HTTP request: method, path, and the full (decoded) body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// The request path, query string included, e.g. `/jobs/3`.
    pub path: String,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: String,
}

impl Request {
    /// The path with any query string stripped: `/metrics?format=x` →
    /// `/metrics`.
    pub fn path_only(&self) -> &str {
        self.path.split('?').next().unwrap_or(&self.path)
    }

    /// The value of query parameter `key`, if present (`?a=1&b=2`;
    /// no percent-decoding — the served parameters are plain tokens).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        let (_, query) = self.path.split_once('?')?;
        query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == key).then_some(v)
        })
    }
}

/// Why a request could not be parsed, mapped to the response status the
/// server should answer with.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, headers, or body → 400.
    BadRequest(String),
    /// Declared body larger than [`MAX_BODY_BYTES`] → 413.
    TooLarge(String),
    /// The connection failed mid-exchange; nothing can be answered.
    Io(io::Error),
}

impl HttpError {
    /// The error as a ready-to-send response, if one can be sent.
    pub fn into_response(self) -> Option<Response> {
        match self {
            HttpError::BadRequest(msg) => Some(Response::error(400, &msg)),
            HttpError::TooLarge(msg) => Some(Response::error(413, &msg)),
            HttpError::Io(_) => None,
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Reads and parses one request from `stream`, reassembling partial reads
/// until the head terminator and the full declared body have arrived.
///
/// # Errors
///
/// [`HttpError::BadRequest`] for malformed framing, [`HttpError::TooLarge`]
/// for bodies over [`MAX_BODY_BYTES`], [`HttpError::Io`] if the peer hangs
/// up mid-request.
pub fn read_request(stream: &mut impl Read) -> Result<Request, HttpError> {
    // Accumulate until we have seen the blank line ending the head.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::BadRequest(format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        let mut chunk = [0u8; 1024];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::BadRequest(
                "connection closed before end of request head".to_string(),
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::BadRequest("request head is not UTF-8".to_string()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m, p, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line `{request_line}`"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "unsupported protocol `{version}`"
        )));
    }

    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    HttpError::BadRequest(format!("bad content-length `{}`", value.trim()))
                })?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        )));
    }

    // The body: whatever followed the head in the buffer, plus more reads.
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let mut chunk = vec![0u8; (content_length - body.len()).min(16 * 1024)];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::BadRequest(format!(
                "connection closed with {} of {content_length} body bytes read",
                body.len()
            )));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    let body = String::from_utf8(body)
        .map_err(|_| HttpError::BadRequest("request body is not UTF-8".to_string()))?;

    Ok(Request {
        method: method.to_ascii_uppercase(),
        path: path.to_string(),
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// An HTTP response ready to serialize onto the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code (200, 400, ...).
    pub status: u16,
    /// The `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra response headers (e.g. `X-Request-Id`), emitted in order.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: String,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A plain-text response (used by `/metrics`, which returns JSONL).
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Returns the response with an extra header appended.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// A JSON error envelope: `{"error": "<message>"}`.
    pub fn error(status: u16, message: &str) -> Self {
        #[derive(serde::Serialize)]
        struct ErrorBody {
            error: String,
        }
        let body = serde_json::to_string(&ErrorBody {
            error: message.to_string(),
        })
        .expect("error body serialization is infallible");
        Response::json(status, body)
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            _ => "Internal Server Error",
        }
    }

    /// Serializes the response (status line, headers, body) onto `w`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying stream.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        )?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        w.write_all(b"\r\n")?;
        w.write_all(self.body.as_bytes())?;
        w.flush()
    }
}

/// Performs one HTTP exchange against `addr` and returns `(status, body)`.
/// This is the client half of the protocol subset the server speaks; the
/// CLI `client` subcommand and the smoke tests are built on it.
///
/// # Errors
///
/// I/O errors connecting or exchanging, or a response too malformed to
/// split into head and body.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, String)> {
    let mut stream = std::net::TcpStream::connect(addr)?;
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let (head, payload) = text.split_once("\r\n\r\n").ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            "response without head terminator",
        )
    })?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "response without status"))?;
    Ok((status, payload.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Yields the wrapped bytes one at a time, exercising reassembly of
    /// partial reads.
    struct Trickle<'a> {
        data: &'a [u8],
        pos: usize,
    }

    impl Read for Trickle<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos >= self.data.len() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut Trickle { data: raw, pos: 0 })
    }

    #[test]
    fn parses_post_with_body_from_partial_reads() {
        let raw = b"POST /predict HTTP/1.1\r\nHost: x\r\nContent-Length: 13\r\n\r\n{\"points\":[]}";
        let req = parse(raw).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/predict");
        assert_eq!(req.body, "{\"points\":[]}");
    }

    #[test]
    fn parses_get_without_content_length() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn oversized_body_is_rejected_not_buffered() {
        let raw = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        match parse(raw.as_bytes()) {
            Err(HttpError::TooLarge(_)) => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn oversized_head_is_rejected() {
        let mut raw = b"GET /x HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat(b'a').take(MAX_HEAD_BYTES + 8));
        match parse(&raw) {
            Err(HttpError::BadRequest(msg)) => assert!(msg.contains("head"), "{msg}"),
            other => panic!("expected BadRequest, got {other:?}"),
        }
    }

    #[test]
    fn malformed_request_lines_are_bad_requests() {
        for raw in [
            &b"\r\n\r\n"[..],
            &b"GET\r\n\r\n"[..],
            &b"GET /x SPDY/9\r\n\r\n"[..],
            &b"POST /x HTTP/1.1\r\nContent-Length: frog\r\n\r\n"[..],
        ] {
            match parse(raw) {
                Err(HttpError::BadRequest(_)) => {}
                other => panic!("{:?} should be BadRequest, got {other:?}", raw),
            }
        }
    }

    /// Yields the wrapped bytes in caller-chosen chunk sizes, exercising
    /// specific read-boundary placements.
    struct Chunked<'a> {
        data: &'a [u8],
        sizes: Vec<usize>,
        pos: usize,
        call: usize,
    }

    impl Read for Chunked<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos >= self.data.len() || buf.is_empty() {
                return Ok(0);
            }
            let want = self.sizes.get(self.call).copied().unwrap_or(usize::MAX);
            self.call += 1;
            let n = want.min(buf.len()).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn split_reads_across_the_content_length_boundary_reassemble() {
        let raw = b"POST /predict HTTP/1.1\r\nContent-Length: 13\r\n\r\n{\"points\":[]}";
        let head_len = raw.len() - 13;
        // Split exactly at the head/body boundary, one byte past it, and
        // mid-body: the parser must reassemble all three identically.
        for sizes in [
            vec![head_len, 13],
            vec![head_len + 1, 12],
            vec![head_len - 2, 2, 6, 7],
        ] {
            let req = read_request(&mut Chunked {
                data: raw,
                sizes: sizes.clone(),
                pos: 0,
                call: 0,
            })
            .unwrap_or_else(|e| panic!("sizes {sizes:?}: {e:?}"));
            assert_eq!(req.body, "{\"points\":[]}", "sizes {sizes:?}");
        }
    }

    #[test]
    fn pipelined_second_request_does_not_corrupt_the_first() {
        // One-request-per-connection: bytes past the first request's body
        // (a pipelined second request) are ignored, not parsed into the
        // first request's body.
        let raw =
            b"POST /predict HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}GET /healthz HTTP/1.1\r\n\r\n";
        let req = parse(raw).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/predict");
        assert_eq!(req.body, "{}");
    }

    #[test]
    fn oversized_header_block_is_rejected_even_with_a_valid_request_line() {
        // Many individually small headers that together blow the head cap.
        let mut raw = b"GET /healthz HTTP/1.1\r\n".to_vec();
        for i in 0..2048 {
            raw.extend_from_slice(format!("X-Pad-{i}: {:064}\r\n", i).as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        assert!(raw.len() > MAX_HEAD_BYTES);
        match parse(&raw) {
            Err(HttpError::BadRequest(msg)) => assert!(msg.contains("head"), "{msg}"),
            other => panic!("expected BadRequest, got {other:?}"),
        }
    }

    #[test]
    fn more_malformed_request_lines_are_bad_requests() {
        for raw in [
            &b"GET /x\r\n\r\n"[..],                     // missing version
            &b"  \r\n\r\n"[..],                         // whitespace only
            &b"\xff\xfe /x HTTP/1.1\r\n\r\n"[..],       // non-UTF-8 head
            &b"GET /x HTTP/1.1 extra junk\r\n\r\n"[..], // trailing tokens are tolerated...
        ] {
            match parse(raw) {
                Err(HttpError::BadRequest(_)) => {}
                // ...the last case parses (extra tokens ignored); anything
                // else must fail closed.
                Ok(req) => assert_eq!(req.path, "/x", "{raw:?}"),
                other => panic!("{raw:?}: got {other:?}"),
            }
        }
    }

    #[test]
    fn path_helpers_split_query_strings() {
        let req = Request {
            method: "GET".to_string(),
            path: "/metrics?format=manifest&name=a.b".to_string(),
            body: String::new(),
        };
        assert_eq!(req.path_only(), "/metrics");
        assert_eq!(req.query_param("format"), Some("manifest"));
        assert_eq!(req.query_param("name"), Some("a.b"));
        assert_eq!(req.query_param("nope"), None);
        let bare = Request {
            method: "GET".to_string(),
            path: "/healthz".to_string(),
            body: String::new(),
        };
        assert_eq!(bare.path_only(), "/healthz");
        assert_eq!(bare.query_param("format"), None);
    }

    #[test]
    fn extra_headers_serialize_before_the_blank_line() {
        let mut out = Vec::new();
        Response::json(200, "{}")
            .with_header("X-Request-Id", "r7-0")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\r\nX-Request-Id: r7-0\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn truncated_body_is_a_bad_request() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort";
        match parse(raw) {
            Err(HttpError::BadRequest(msg)) => assert!(msg.contains("body bytes"), "{msg}"),
            other => panic!("expected BadRequest, got {other:?}"),
        }
    }

    #[test]
    fn responses_serialize_with_exact_framing() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
        let mut out = Vec::new();
        Response::error(404, "no such job")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.ends_with("{\"error\":\"no such job\"}"));
    }
}
