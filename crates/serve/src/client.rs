//! A tiny command-line client for the daemon, used by the CI smoke jobs
//! and for interactive poking. Each subcommand maps to one endpoint;
//! `metrics --name` extracts a single metric value so shell scripts can
//! assert on it without a JSON parser.

use crate::http::http_request;
use serde::Value;
use std::time::Duration;

/// Runs one client subcommand against the daemon at `addr`
/// (`host:port`). Prints the response body (or the extracted value) to
/// stdout and returns `Err` with a message on any failure, including
/// non-2xx responses.
pub fn run_client(addr: &str, args: &[String]) -> Result<(), String> {
    let mut args = args.iter();
    let command = args.next().ok_or_else(usage)?.as_str();
    let flags = parse_flags(args.as_slice())?;
    match command {
        "healthz" => print_response(addr, "GET", "/healthz", None),
        "metrics" => match flags.get("name") {
            Some(name) => metric_value(addr, name),
            None => match flags.get("format").map(String::as_str) {
                None | Some("prometheus") | Some("prom") => {
                    print_response(addr, "GET", "/metrics", None)
                }
                Some("manifest") => print_response(addr, "GET", "/metrics?format=manifest", None),
                Some(other) => Err(format!("unknown metrics format {other:?}")),
            },
        },
        "requests" => print_response(addr, "GET", "/metrics/requests", None),
        "request" => {
            let id = flags.get("id").ok_or("request needs --id")?;
            print_response(addr, "GET", &format!("/metrics/requests/{id}"), None)
        }
        "predict" => {
            let body = points_body(flags.get("points").ok_or("predict needs --points")?)?;
            print_response(addr, "POST", "/predict", Some(&body))
        }
        "decode" => {
            let body = points_body(flags.get("points").ok_or("decode needs --points")?)?;
            print_response(addr, "POST", "/decode", Some(&body))
        }
        "search" => {
            let engine = flags.get("engine").ok_or("search needs --engine")?;
            let mode = flags.get("mode").map_or("latent", String::as_str);
            let budget = parse_u64(&flags, "budget", 24)?;
            let seed = parse_u64(&flags, "seed", 0)?;
            let body = format!(
                "{{\"engine\":\"{engine}\",\"mode\":\"{mode}\",\"budget\":{budget},\"seed\":{seed}}}"
            );
            let response = expect_2xx(addr, "POST", "/search", Some(&body))?;
            if flags.contains_key("wait") {
                let id = parse_value(&response)?
                    .get("job")
                    .and_then(Value::as_u64)
                    .ok_or("search response carried no job id")?;
                wait_for_job(addr, id)
            } else {
                println!("{response}");
                Ok(())
            }
        }
        "job" => {
            let id = parse_u64(&flags, "id", u64::MAX)?;
            if id == u64::MAX {
                return Err("job needs --id".to_string());
            }
            print_response(addr, "GET", &format!("/jobs/{id}"), None)
        }
        "shutdown" => print_response(addr, "POST", "/shutdown", None),
        other => Err(format!("unknown client command {other:?}\n{}", usage())),
    }
}

fn usage() -> String {
    "client commands:\n  \
     healthz\n  \
     metrics [--name <metric>] [--format prometheus|manifest]\n  \
     requests\n  \
     request --id <request-id>\n  \
     predict --points <v1,..,v6[;v1,..,v6]...>\n  \
     decode  --points <z1,..,zd[;...]>\n  \
     search  --engine <name> [--mode latent|direct] [--budget N] [--seed N] [--wait]\n  \
     job     --id <id>\n  \
     shutdown"
        .to_string()
}

/// `--key value` pairs; bare trailing flags (`--wait`) map to empty values.
fn parse_flags(args: &[String]) -> Result<std::collections::HashMap<String, String>, String> {
    let mut flags = std::collections::HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {:?}", args[i]))?;
        let takes_value = key != "wait";
        if takes_value {
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("--{key} needs a value"))?;
            flags.insert(key.to_string(), value.clone());
            i += 2;
        } else {
            flags.insert(key.to_string(), String::new());
            i += 1;
        }
    }
    Ok(flags)
}

fn parse_u64(
    flags: &std::collections::HashMap<String, String>,
    key: &str,
    default: u64,
) -> Result<u64, String> {
    match flags.get(key) {
        Some(raw) => raw
            .parse::<u64>()
            .map_err(|_| format!("--{key} must be a non-negative integer, got {raw:?}")),
        None => Ok(default),
    }
}

/// `"1,2,3;4,5,6"` → `{"points":[[1,2,3],[4,5,6]]}`.
fn points_body(spec: &str) -> Result<String, String> {
    let rows: Result<Vec<String>, String> = spec
        .split(';')
        .map(|row| {
            let cells: Result<Vec<String>, String> = row
                .split(',')
                .map(|cell| {
                    cell.trim()
                        .parse::<f64>()
                        .map(|v| format!("{v:?}"))
                        .map_err(|_| format!("not a number: {cell:?}"))
                })
                .collect();
            Ok(format!("[{}]", cells?.join(",")))
        })
        .collect();
    Ok(format!("{{\"points\":[{}]}}", rows?.join(",")))
}

fn parse_value(body: &str) -> Result<Value, String> {
    serde_json::parse_value(body).map_err(|e| format!("unparseable response {body:?}: {e}"))
}

fn expect_2xx(addr: &str, method: &str, path: &str, body: Option<&str>) -> Result<String, String> {
    let (status, response) = http_request(addr, method, path, body)
        .map_err(|e| format!("{method} {path} failed: {e}"))?;
    if (200..300).contains(&status) {
        Ok(response)
    } else {
        Err(format!("{method} {path} returned {status}: {response}"))
    }
}

fn print_response(addr: &str, method: &str, path: &str, body: Option<&str>) -> Result<(), String> {
    let response = expect_2xx(addr, method, path, body)?;
    println!("{response}");
    Ok(())
}

/// Fetches the server-side filtered manifest slice and prints the bare
/// value of one record, so shell asserts read
/// `[ "$(client metrics --name X)" -gt 0 ]`.
fn metric_value(addr: &str, name: &str) -> Result<(), String> {
    let manifest = expect_2xx(
        addr,
        "GET",
        &format!("/metrics?format=manifest&name={name}"),
        None,
    )?;
    for line in manifest.lines() {
        let Ok(record) = serde_json::parse_value(line) else {
            continue;
        };
        let matches = record.get("name").is_some_and(|n| match n {
            Value::Str(s) => s == name,
            _ => false,
        });
        if !matches {
            continue;
        }
        let value = record
            .get("value")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("metric {name:?} has no numeric value: {line}"))?;
        if value.fract() == 0.0 && value.abs() < 9e15 {
            println!("{}", value as i64);
        } else {
            println!("{value}");
        }
        return Ok(());
    }
    Err(format!("metric {name:?} not found in /metrics"))
}

/// Polls `/jobs/<id>` until the job is terminal, then prints it.
fn wait_for_job(addr: &str, id: u64) -> Result<(), String> {
    let path = format!("/jobs/{id}");
    loop {
        let response = expect_2xx(addr, "GET", &path, None)?;
        let status = parse_value(&response)?
            .get("status")
            .and_then(|s| match s {
                Value::Str(s) => Some(s.clone()),
                _ => None,
            })
            .ok_or_else(|| format!("job response carried no status: {response}"))?;
        match status.as_str() {
            "done" => {
                println!("{response}");
                return Ok(());
            }
            "failed" => {
                println!("{response}");
                return Err(format!("job {id} failed"));
            }
            _ => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_body_builds_row_major_json() {
        assert_eq!(
            points_body("1,2;3.5,4").unwrap(),
            "{\"points\":[[1.0,2.0],[3.5,4.0]]}"
        );
        assert!(points_body("1,x").unwrap_err().contains("not a number"));
    }

    #[test]
    fn flags_parse_pairs_and_bare_wait() {
        let args: Vec<String> = ["--engine", "bo", "--wait", "--budget", "9"]
            .iter()
            .map(ToString::to_string)
            .collect();
        let flags = parse_flags(&args).unwrap();
        assert_eq!(flags.get("engine").unwrap(), "bo");
        assert_eq!(flags.get("budget").unwrap(), "9");
        assert!(flags.contains_key("wait"));
        assert!(parse_flags(&["oops".to_string()]).is_err());
    }
}
