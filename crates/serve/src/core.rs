//! The served model state: everything `vaesa-serve` builds once at startup
//! and then shares (immutably, except for the scheduler's interior caches)
//! across every connection handler and search worker.
//!
//! Startup mirrors the experiment pipeline: sample a labeled dataset
//! through the cached scheduler (hitting the persistent evaluation cache
//! when `VAESA_EVAL_CACHE` points at a warm directory), train the VAE +
//! predictor heads, and fit a GP surrogate over encoded latent points so
//! `/predict` can report both the head's latency/energy estimates and the
//! GP's EDP posterior. Handlers construct the borrowing
//! [`HardwareEvaluator`] per call — it is a few pointers, while its
//! referents live in [`ServeCore`] for the daemon's lifetime.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vaesa::flows::{decode_to_configs, HardwareEvaluator};
use vaesa::{
    Dataset, DatasetBuilder, DseDriver, SpaceMode, TrainConfig, Trainer, VaesaConfig, VaesaModel,
};
use vaesa_accel::{workloads, ArchDescription, DesignSpace, LayerShape};
use vaesa_cosa::CachedScheduler;
use vaesa_dse::{engine_by_name, GpRegressor};
use vaesa_nn::Tensor;

use crate::jobs::{SearchSpec, SearchSummary};

/// Sizing knobs for the startup build. The defaults are sized for an
/// interactive daemon (seconds of startup); CI smoke runs shrink them
/// further via CLI flags.
#[derive(Debug, Clone)]
pub struct CoreConfig {
    /// Random design points in the training dataset (plus a 2-per-axis
    /// grid sweep, as in the experiment harness).
    pub n_configs: usize,
    /// VAE training epochs.
    pub epochs: usize,
    /// Latent dimensionality.
    pub latent_dim: usize,
    /// Number of workload layers served (prefix of the paper's training
    /// set; also the workload every search job optimizes).
    pub n_layers: usize,
    /// Seed for dataset sampling and training.
    pub seed: u64,
    /// Cap on GP training points (kernel solves are cubic).
    pub gp_cap: usize,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            n_configs: 300,
            epochs: 30,
            latent_dim: 4,
            n_layers: 4,
            seed: 7,
            gp_cap: 256,
        }
    }
}

/// One `/predict` result row.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Prediction {
    /// Predictor-head latency estimate (cycles, reference layer units).
    pub latency: f64,
    /// Predictor-head energy estimate (pJ).
    pub energy: f64,
    /// Head latency × energy.
    pub edp: f64,
    /// GP posterior mean of ln(EDP) at the encoded latent point.
    pub gp_log_edp_mean: f64,
    /// GP posterior standard deviation of ln(EDP).
    pub gp_log_edp_std: f64,
}

/// One `/decode` result row: the snapped design plus its true workload EDP
/// under the served layers (when the schedule is feasible).
#[derive(Debug, Clone, serde::Serialize)]
pub struct Decoded {
    /// The concrete hardware design.
    pub arch: ArchDescription,
    /// True (scheduler + cost model) workload EDP, if feasible.
    pub edp: Option<f64>,
}

/// The shared daemon state. See the module docs.
#[derive(Debug)]
pub struct ServeCore {
    space: DesignSpace,
    scheduler: CachedScheduler,
    layers: Vec<LayerShape>,
    dataset: Dataset,
    model: VaesaModel,
    gp: GpRegressor,
    /// The reference layer for `/predict` and gradient-engine proxies.
    gd_layer: LayerShape,
    /// The reference layer's normalized features, for the predictor head.
    layer_row: Vec<f64>,
}

impl ServeCore {
    /// Builds the full served state: dataset → VAE training → GP fit.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero configs/layers) or
    /// the GP fit fails — both indicate an unusable daemon, so failing
    /// loudly at startup beats serving errors forever.
    pub fn build(config: &CoreConfig) -> Self {
        let span = vaesa_obs::global().span("serve/build");
        let space = DesignSpace::paper();
        let scheduler = CachedScheduler::from_env();
        let mut layers = workloads::training_layers();
        layers.truncate(config.n_layers.max(1));

        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let dataset = DatasetBuilder::new(&space, layers.clone())
            .random_configs(config.n_configs)
            .grid_per_axis(2)
            .build(&scheduler, &mut rng);

        let vaesa_config = VaesaConfig::paper().with_latent_dim(config.latent_dim);
        let mut model = VaesaModel::new(vaesa_config, &mut rng);
        let trainer = Trainer::new(TrainConfig {
            epochs: config.epochs,
            batch_size: 64,
            learning_rate: 1e-3,
        });
        trainer.train_vae(&mut model, &dataset, &mut rng);

        let gd_layer = layers[0].clone();
        let layer_row = dataset.layer_norm.transform_row(&gd_layer.features());

        let gp = fit_latent_gp(&model, &dataset, &gd_layer, config.gp_cap);
        span.finish();
        vaesa_obs::gauge("serve.core.dataset_len").set(dataset.len() as f64);
        vaesa_obs::gauge("serve.core.gp_points").set(gp.len() as f64);

        ServeCore {
            space,
            scheduler,
            layers,
            dataset,
            model,
            gp,
            gd_layer,
            layer_row,
        }
    }

    /// The VAE's latent dimensionality (row width for `/decode` and
    /// `/search` best points in latent mode).
    pub fn latent_dim(&self) -> usize {
        self.model.latent_dim()
    }

    /// The served workload layers.
    pub fn layers(&self) -> &[LayerShape] {
        &self.layers
    }

    /// The shared scheduler, for stats publication and persistence flush.
    pub fn scheduler(&self) -> &CachedScheduler {
        &self.scheduler
    }

    /// Batched `/predict`: raw Table-II hardware rows → head latency /
    /// energy (reference-layer units) + GP ln(EDP) posterior.
    ///
    /// # Panics
    ///
    /// Panics if any row is not six strictly positive values (the handler
    /// validates before submitting).
    pub fn predict(&self, hw_raw: Vec<Vec<f64>>) -> Vec<Prediction> {
        if hw_raw.is_empty() {
            return Vec::new();
        }
        let hw = self.dataset.hw_norm.transform_tensor(&hw_raw);
        let z = self.model.encode_mean(&hw);
        let layer_rows: Vec<&[f64]> = (0..z.rows()).map(|_| self.layer_row.as_slice()).collect();
        let layer = Tensor::from_rows(&layer_rows);
        let (lat_n, en_n) = self.model.predict(&z, &layer);

        let zs: Vec<Vec<f64>> = (0..z.rows()).map(|r| z.row(r).to_vec()).collect();
        let gp_out = self.gp.predict_batch(&zs);

        (0..z.rows())
            .map(|r| {
                let latency = self.dataset.latency_norm.inverse_row(&[lat_n.get(r, 0)])[0];
                let energy = self.dataset.energy_norm.inverse_row(&[en_n.get(r, 0)])[0];
                let (gp_mean, gp_std) = gp_out[r];
                Prediction {
                    latency,
                    energy,
                    edp: latency * energy,
                    gp_log_edp_mean: gp_mean,
                    gp_log_edp_std: gp_std,
                }
            })
            .collect()
    }

    /// Batched `/decode`: latent rows → snapped designs + true workload EDP.
    ///
    /// # Panics
    ///
    /// Panics if any row's width differs from [`ServeCore::latent_dim`]
    /// (the handler validates before submitting).
    pub fn decode(&self, zs: Vec<Vec<f64>>) -> Vec<Decoded> {
        if zs.is_empty() {
            return Vec::new();
        }
        let evaluator = HardwareEvaluator::new(&self.space, &self.scheduler, &self.layers);
        let configs = decode_to_configs(&self.model, &zs, &self.dataset.hw_norm, &evaluator);
        configs
            .into_iter()
            .map(|config| Decoded {
                edp: evaluator.edp_of_config(&config),
                arch: self.space.describe(&config),
            })
            .collect()
    }

    /// Validates a search spec at admission time so `/search` can reject
    /// bad requests with a 400 instead of failing the job later.
    pub fn validate_spec(&self, spec: &SearchSpec) -> Result<(), String> {
        if engine_by_name(&spec.engine).is_none() {
            return Err(format!(
                "unknown engine {:?} (expected random|bo|evo|sa|cd|gd)",
                spec.engine
            ));
        }
        match spec.mode.as_str() {
            "latent" => {}
            "direct" => {
                // Gradient engines need a differentiable proxy; the daemon
                // only configures the latent-space one.
                if spec.engine == "gd" {
                    return Err(
                        "engine \"gd\" requires mode \"latent\" (no input-space predictors are served)"
                            .to_string(),
                    );
                }
            }
            other => return Err(format!("unknown mode {other:?} (expected latent|direct)")),
        }
        if spec.budget == 0 {
            return Err("budget must be positive".to_string());
        }
        Ok(())
    }

    /// Runs one validated search job to completion and summarizes it.
    pub fn run_search(&self, spec: &SearchSpec) -> Result<SearchSummary, String> {
        self.validate_spec(spec)?;
        let engine = engine_by_name(&spec.engine).expect("validated above");
        let mode = match spec.mode.as_str() {
            "direct" => SpaceMode::Direct,
            _ => SpaceMode::Latent,
        };
        let evaluator = HardwareEvaluator::new(&self.space, &self.scheduler, &self.layers);
        let driver = DseDriver::new(&evaluator, &self.dataset)
            .with_model(&self.model)
            .with_gd_layer(&self.gd_layer);
        let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
        let trace = driver.run(engine.as_ref(), mode, spec.budget, &mut rng);

        let best_point = trace.best_point().map(<[f64]>::to_vec);
        let best_arch = best_point.as_deref().map(|point| {
            let config = match mode {
                SpaceMode::Latent => decode_to_configs(
                    &self.model,
                    &[point.to_vec()],
                    &self.dataset.hw_norm,
                    &evaluator,
                )
                .remove(0),
                SpaceMode::Direct => evaluator.snap(point, &self.dataset.hw_norm),
            };
            self.space.describe(&config)
        });
        Ok(SearchSummary {
            label: trace.label().to_string(),
            evals: trace.len() as u64,
            best_value: trace.best_value(),
            best_point,
            best_arch,
        })
    }
}

/// Fits the `/predict` GP: encoded latent means of up to `cap` unique
/// designs (reference layer only, so EDP is single-layer) against ln(EDP).
fn fit_latent_gp(
    model: &VaesaModel,
    dataset: &Dataset,
    reference: &LayerShape,
    cap: usize,
) -> GpRegressor {
    let ref_features = reference.features();
    let mut seen = std::collections::HashSet::new();
    let mut rows: Vec<&[f64]> = Vec::new();
    let mut ys = Vec::new();
    for (i, record) in dataset.records.iter().enumerate() {
        if record.layer_raw != ref_features {
            continue;
        }
        // One point per unique design: duplicate inputs make the kernel
        // matrix singular.
        if !seen.insert(record.config.indices()) {
            continue;
        }
        rows.push(dataset.hw.row(i));
        ys.push((record.latency * record.energy).ln());
        if rows.len() >= cap {
            break;
        }
    }
    assert!(
        rows.len() >= 2,
        "GP needs at least two unique reference-layer samples, got {}",
        rows.len()
    );
    let hw = Tensor::from_rows(&rows);
    let z = model.encode_mean(&hw);
    let xs: Vec<Vec<f64>> = (0..z.rows()).map(|r| z.row(r).to_vec()).collect();
    GpRegressor::fit(&xs, &ys).expect("latent GP fit on unique designs")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The smallest build that still exercises every path; shared by the
    /// unit tests here and reused (via `test_config`) by the e2e test.
    pub fn test_config() -> CoreConfig {
        CoreConfig {
            n_configs: 24,
            epochs: 2,
            latent_dim: 3,
            n_layers: 2,
            seed: 11,
            gp_cap: 32,
        }
    }

    #[test]
    fn build_predict_decode_and_search_work_end_to_end() {
        let core = ServeCore::build(&test_config());
        assert_eq!(core.latent_dim(), 3);
        assert_eq!(core.layers().len(), 2);

        let preds = core.predict(vec![
            vec![64.0, 4.0, 128.0, 4096.0, 8192.0, 65536.0],
            vec![128.0, 2.0, 256.0, 2048.0, 4096.0, 131072.0],
        ]);
        assert_eq!(preds.len(), 2);
        for p in &preds {
            assert!(p.latency > 0.0 && p.energy > 0.0, "head outputs raw units");
            assert!(p.gp_log_edp_std >= 0.0);
            assert!(p.edp.is_finite());
        }

        let decoded = core.decode(vec![vec![0.0; 3], vec![0.25; 3]]);
        assert_eq!(decoded.len(), 2);
        assert!(decoded[0].arch.pe_count >= 1);

        let spec = SearchSpec {
            engine: "random".to_string(),
            mode: "latent".to_string(),
            budget: 6,
            seed: 3,
        };
        let summary = core.run_search(&spec).unwrap();
        assert_eq!(summary.label, "vae_random");
        assert_eq!(summary.evals, 6);
        assert!(summary.best_arch.is_some());

        // Identical specs reproduce identical results (seeded RNG).
        let again = core.run_search(&spec).unwrap();
        assert_eq!(summary.best_value, again.best_value);
    }

    #[test]
    fn invalid_specs_are_rejected_at_admission() {
        let core = ServeCore::build(&test_config());
        let base = SearchSpec {
            engine: "random".to_string(),
            mode: "latent".to_string(),
            budget: 4,
            seed: 0,
        };
        let bad_engine = SearchSpec {
            engine: "quantum".to_string(),
            ..base.clone()
        };
        assert!(core
            .validate_spec(&bad_engine)
            .unwrap_err()
            .contains("unknown engine"));
        let bad_mode = SearchSpec {
            mode: "sideways".to_string(),
            ..base.clone()
        };
        assert!(core
            .validate_spec(&bad_mode)
            .unwrap_err()
            .contains("unknown mode"));
        let gd_direct = SearchSpec {
            engine: "gd".to_string(),
            mode: "direct".to_string(),
            ..base.clone()
        };
        assert!(core
            .validate_spec(&gd_direct)
            .unwrap_err()
            .contains("latent"));
        let no_budget = SearchSpec { budget: 0, ..base };
        assert!(core
            .validate_spec(&no_budget)
            .unwrap_err()
            .contains("budget"));
    }
}
