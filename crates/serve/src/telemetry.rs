//! Live-service telemetry for the daemon: per-endpoint windowed
//! instruments, request-scoped tracing, and the structured access log.
//!
//! Every connection gets a [`RequestCtx`] with a deterministic id
//! (seeded counter — no wall-clock, so two daemons booted with the same
//! seed mint the same id sequence). Handlers label the context with its
//! endpoint and open spans through it; on finish the request is folded
//! into constant-memory instruments ([`LatencyHistogram`] per endpoint,
//! [`SlidingWindow`] for trailing rate/p99), appended to the JSONL access
//! log, and retained in a bounded [`RequestTracker`] so its span tree
//! stays retrievable via `GET /metrics/requests/<id>`.
//!
//! Everything here is designed for week-long uptimes: no per-request
//! allocation survives the request except its bounded tracker slot, and
//! no instrument grows with traffic volume.

use std::collections::{BTreeMap, HashMap};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use vaesa_obs::{
    Counter, Gauge, LatencyHistogram, RequestCtx, RequestIdGen, RequestRecord, RequestTracker,
    SlidingWindow,
};

/// Every endpoint label the daemon attributes requests to. Bounding the
/// set keeps the per-endpoint instrument count constant no matter what
/// paths clients probe.
pub const ENDPOINTS: [&str; 9] = [
    "root", "healthz", "metrics", "predict", "decode", "search", "jobs", "shutdown", "other",
];

/// Trailing window the rate/p99 gauges cover, seconds.
const WINDOW_SECS: usize = 60;

/// Finished requests retained for span-tree retrieval.
const TRACKER_CAPACITY: usize = 256;

/// The endpoint label for a query-stripped request path.
pub fn endpoint_for_path(path_only: &str) -> &'static str {
    let first = path_only.split('/').nth(1).unwrap_or_default();
    if first.is_empty() {
        return "root";
    }
    ENDPOINTS
        .iter()
        .copied()
        .find(|e| *e == first)
        .unwrap_or("other")
}

/// The daemon's telemetry hub; one per [`Server`](crate::Server).
pub struct Telemetry {
    ids: RequestIdGen,
    tracker: RequestTracker,
    /// Monotonic origin for window second-indices and access-log
    /// timestamps (no wall-clock anywhere on the request path).
    epoch: Instant,
    latency: BTreeMap<&'static str, Arc<LatencyHistogram>>,
    windows: BTreeMap<&'static str, SlidingWindow>,
    access_log: Mutex<Option<BufWriter<File>>>,
    inflight: AtomicU64,
    responses: AtomicU64,
    responses_5xx: AtomicU64,
    // The hot-path registry handles, resolved once: going through the
    // global registry's name map on every request costs a lock plus a
    // string-keyed lookup, which is what the ≤2% overhead budget of the
    // serve/predict_b16 bench pays for.
    requests_total: Arc<Counter>,
    classes: [Arc<Counter>; 6],
    error_gauge: Arc<Gauge>,
    status_counters: Mutex<HashMap<u32, Arc<Counter>>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("tracked", &self.tracker.len())
            .finish()
    }
}

impl Telemetry {
    /// Builds the hub: id generator seeded with `seed`, optional JSONL
    /// access log at `access_log`.
    ///
    /// # Errors
    ///
    /// Fails if the access-log file cannot be created.
    pub fn new(seed: u64, access_log: Option<&Path>) -> io::Result<Self> {
        let writer = match access_log {
            Some(path) => {
                if let Some(parent) = path.parent() {
                    if !parent.as_os_str().is_empty() {
                        std::fs::create_dir_all(parent)?;
                    }
                }
                Some(BufWriter::new(File::create(path)?))
            }
            None => None,
        };
        Ok(Telemetry {
            ids: RequestIdGen::new(seed),
            tracker: RequestTracker::new(TRACKER_CAPACITY),
            epoch: Instant::now(),
            latency: ENDPOINTS
                .iter()
                .map(|&e| {
                    (
                        e,
                        vaesa_obs::latency_histogram(&format!("serve.{e}.latency_ns")),
                    )
                })
                .collect(),
            windows: ENDPOINTS
                .iter()
                .map(|&e| (e, SlidingWindow::new(WINDOW_SECS)))
                .collect(),
            access_log: Mutex::new(writer),
            inflight: AtomicU64::new(0),
            responses: AtomicU64::new(0),
            responses_5xx: AtomicU64::new(0),
            requests_total: vaesa_obs::counter("serve.http.requests"),
            classes: std::array::from_fn(|class| {
                vaesa_obs::counter(&format!("serve.http.responses_{class}xx"))
            }),
            error_gauge: vaesa_obs::gauge("serve.http.error_rate"),
            status_counters: Mutex::new(HashMap::new()),
        })
    }

    /// Opens the request context for a new connection: mints the next id
    /// and marks the request in flight.
    pub fn begin(&self) -> RequestCtx<'static> {
        self.inflight.fetch_add(1, Ordering::Relaxed);
        RequestCtx::new(vaesa_obs::global(), self.ids.next_id())
    }

    /// Closes a request: records latency into the endpoint's bucketed
    /// histogram and sliding window, bumps status counters, refreshes the
    /// error-rate gauge, appends the access-log line, and retains the
    /// span tree in the tracker.
    pub fn finish(&self, ctx: RequestCtx<'static>, method: &str, status: u16) {
        let record = ctx.finish(status);
        let endpoint = ENDPOINTS
            .iter()
            .copied()
            .find(|e| *e == record.endpoint)
            .unwrap_or("other");
        self.latency[endpoint].record_ns(record.wall_ns);
        self.windows[endpoint].record_at(self.now_sec(), record.wall_ns);

        self.requests_total.incr();
        self.classes[usize::from(status / 100).min(5)].incr();
        self.status_counter(endpoint, status).incr();
        self.responses.fetch_add(1, Ordering::Relaxed);
        if status >= 500 {
            self.responses_5xx.fetch_add(1, Ordering::Relaxed);
        }
        self.error_gauge.set(self.error_rate());
        self.inflight.fetch_sub(1, Ordering::Relaxed);

        self.log_access(&record, method);
        self.tracker.publish(record);
    }

    /// Requests currently being handled.
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed)
    }

    /// The `serve.<endpoint>.status.<code>` counter, cached under an
    /// integer key so repeat statuses skip the registry's string map.
    fn status_counter(&self, endpoint: &'static str, status: u16) -> Arc<Counter> {
        let index = ENDPOINTS.iter().position(|e| *e == endpoint).unwrap_or(0) as u32;
        let key = index * 1000 + u32::from(status.min(999));
        let mut cache = self.status_counters.lock().expect("status counter lock");
        Arc::clone(
            cache.entry(key).or_insert_with(|| {
                vaesa_obs::counter(&format!("serve.{endpoint}.status.{status}"))
            }),
        )
    }

    /// Fraction of finished requests that returned a 5xx status
    /// (0.0 before any request finishes).
    pub fn error_rate(&self) -> f64 {
        let total = self.responses.load(Ordering::Relaxed);
        if total == 0 {
            return 0.0;
        }
        self.responses_5xx.load(Ordering::Relaxed) as f64 / total as f64
    }

    /// Seconds since the hub was built (monotonic).
    fn now_sec(&self) -> u64 {
        self.epoch.elapsed().as_secs()
    }

    /// Nanoseconds since the hub was built (monotonic; the access-log
    /// timestamp base).
    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// The periodic sampler body: refreshes process- and window-level
    /// gauges that only make sense as point-in-time readings.
    pub fn sample(&self) {
        if let Some(rss) = vaesa_obs::peak_rss_bytes() {
            vaesa_obs::gauge("process.peak_rss_bytes").set(rss as f64);
        }
        vaesa_obs::gauge("serve.http.inflight").set(self.inflight() as f64);
        let now = self.now_sec();
        for endpoint in ENDPOINTS {
            let window = &self.windows[endpoint];
            if window.count(now) == 0 {
                continue; // quiet endpoint: no stale gauges
            }
            vaesa_obs::gauge(&format!("serve.window.{endpoint}.rate")).set(window.rate(now));
            if let Some(p99) = window.quantile_ns(now, 0.99) {
                vaesa_obs::gauge(&format!("serve.window.{endpoint}.p99_ns")).set(p99 as f64);
            }
        }
    }

    /// JSON for `GET /metrics/requests`: ids of recently finished
    /// requests, newest first.
    pub fn recent_requests_json(&self, n: usize) -> String {
        let rows: Vec<String> = self
            .tracker
            .recent(n)
            .into_iter()
            .map(|(id, endpoint, status)| {
                format!(
                    "{{\"id\":{},\"endpoint\":{},\"status\":{status}}}",
                    json_str(&id),
                    json_str(&endpoint)
                )
            })
            .collect();
        format!("{{\"requests\":[{}]}}", rows.join(","))
    }

    /// JSON span tree for `GET /metrics/requests/<id>`, or `None` when
    /// the request is unknown or already evicted from the ring.
    pub fn request_tree_json(&self, id: &str) -> Option<String> {
        let record = self.tracker.get(id)?;
        Some(render_request(&record))
    }

    /// Flushes the access log (called on graceful shutdown).
    pub fn flush(&self) {
        if let Some(w) = self.access_log.lock().expect("access log lock").as_mut() {
            let _ = w.flush();
        }
    }

    fn log_access(&self, record: &RequestRecord, method: &str) {
        let mut guard = self.access_log.lock().expect("access log lock");
        let Some(w) = guard.as_mut() else {
            return;
        };
        let mut line = format!(
            "{{\"ts_ns\":{},\"id\":{},\"endpoint\":{},\"method\":{},\"status\":{},\"dur_ns\":{}",
            self.now_ns(),
            json_str(&record.id),
            json_str(&record.endpoint),
            json_str(method),
            record.status,
            record.wall_ns
        );
        for (key, value) in &record.notes {
            line.push_str(&format!(",{}:{}", json_str(key), json_str(value)));
        }
        line.push('}');
        // One flushed line per request: the log must be complete even if
        // the process is killed before a graceful shutdown.
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    }
}

/// Renders a finished request as the span-tree JSON document.
fn render_request(record: &RequestRecord) -> String {
    let spans: Vec<String> = record
        .spans
        .iter()
        .map(|s| {
            format!(
                "{{\"path\":{},\"begin_ns\":{},\"wall_ns\":{}}}",
                json_str(&s.path),
                s.begin_ns,
                s.wall_ns
            )
        })
        .collect();
    let notes: Vec<String> = record
        .notes
        .iter()
        .map(|(k, v)| format!("{}:{}", json_str(k), json_str(v)))
        .collect();
    format!(
        "{{\"id\":{},\"endpoint\":{},\"status\":{},\"dur_ns\":{},\"spans\":[{}],\"notes\":{{{}}}}}",
        json_str(&record.id),
        json_str(&record.endpoint),
        record.status,
        record.wall_ns,
        spans.join(","),
        notes.join(",")
    )
}

/// Minimal JSON string escaping for the hand-built telemetry documents.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_labels_are_bounded() {
        assert_eq!(endpoint_for_path("/"), "root");
        assert_eq!(endpoint_for_path("/healthz"), "healthz");
        assert_eq!(endpoint_for_path("/metrics"), "metrics");
        assert_eq!(endpoint_for_path("/metrics/requests/r1-0"), "metrics");
        assert_eq!(endpoint_for_path("/jobs/17"), "jobs");
        assert_eq!(endpoint_for_path("/../../etc/passwd"), "other");
        assert_eq!(endpoint_for_path("/totally-unknown"), "other");
    }

    #[test]
    fn finished_requests_land_in_instruments_log_and_tracker() {
        let dir = std::env::temp_dir().join(format!("vaesa-telemetry-{}", std::process::id()));
        let log_path = dir.join("access.jsonl");
        let telemetry = Telemetry::new(0xbeef, Some(&log_path)).expect("log");

        let ctx = telemetry.begin();
        assert_eq!(telemetry.inflight(), 1);
        let id = ctx.id().to_string();
        assert_eq!(id, "rbeef-0");
        ctx.set_endpoint("predict");
        {
            let _span = ctx.span("serve/predict");
        }
        ctx.note("batch.id", 3);
        telemetry.finish(ctx, "POST", 200);
        assert_eq!(telemetry.inflight(), 0);

        // Span tree retrievable by id, with req/<id>/ prefixed paths.
        let tree = telemetry.request_tree_json(&id).expect("tracked");
        assert!(tree.contains("\"req/rbeef-0/serve/predict\""), "{tree}");
        assert!(tree.contains("\"batch.id\":\"3\""), "{tree}");
        assert!(telemetry.request_tree_json("r-unknown").is_none());
        let recent = telemetry.recent_requests_json(10);
        assert!(recent.contains("\"id\":\"rbeef-0\""), "{recent}");

        // The access log got one flushed JSONL line.
        telemetry.flush();
        let log = std::fs::read_to_string(&log_path).expect("log file");
        let line = log.lines().next().expect("one line");
        assert!(line.contains("\"endpoint\":\"predict\""), "{line}");
        assert!(line.contains("\"status\":200"), "{line}");
        assert!(line.contains("\"method\":\"POST\""), "{line}");

        // Endpoint instruments recorded (global registry).
        assert!(vaesa_obs::latency_histogram("serve.predict.latency_ns").count() >= 1);
        telemetry.sample();
        assert!(vaesa_obs::gauge("serve.window.predict.rate").get() > 0.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn error_rate_gauge_tracks_5xx_fraction() {
        let telemetry = Telemetry::new(1, None).expect("no log");
        for status in [200u16, 200, 500, 404] {
            let ctx = telemetry.begin();
            ctx.set_endpoint("other");
            telemetry.finish(ctx, "GET", status);
        }
        let rate = telemetry.error_rate();
        assert!((rate - 0.25).abs() < 1e-12, "{rate}");
    }

    #[test]
    fn json_strings_escape_control_and_quote_characters() {
        assert_eq!(json_str("plain"), "\"plain\"");
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }
}
