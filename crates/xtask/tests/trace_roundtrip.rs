//! Round-trip: the Chrome trace JSON `vaesa-obs` exports must parse,
//! validate, and fold cleanly with the `vaesa-xtask` reader — the same
//! pairing CI exercises via figure smokes + `xtask trace-check`.

use vaesa_obs::Registry;
use vaesa_xtask::trace::ChromeTrace;

#[test]
fn obs_export_validates_and_folds_in_xtask() {
    let reg = Registry::new();
    reg.enable_tracing();
    {
        let span = reg.span("dse/run");
        {
            let _fit = span.child("fit");
        }
        let _score = span.child("score");
    }
    {
        let _epoch = reg.span("train/epoch");
    }

    let json = vaesa_obs::chrome_trace_string(&reg);
    let trace = ChromeTrace::parse(&json).expect("obs export parses");
    let report = trace.validate().expect("obs export validates");
    assert!(report.contains("4 timed span(s)"), "{report}");

    let folded = trace.fold();
    assert!(folded.contains_key("dse/run"));
    assert!(folded.contains_key("dse/run/fit"));
    assert!(folded.contains_key("dse/run/score"));
    assert!(folded.contains_key("train/epoch"));

    // Folded children never exceed their enclosing span.
    assert!(folded["dse/run/fit"] + folded["dse/run/score"] <= folded["dse/run"]);
}

#[test]
fn obs_export_with_dropped_events_still_validates() {
    let reg = Registry::new();
    reg.enable_tracing_with_capacity(2);
    for i in 0..5 {
        let _s = reg.span(if i % 2 == 0 { "a" } else { "b" });
    }
    assert!(reg.trace_dropped() > 0);
    let trace = ChromeTrace::parse(&vaesa_obs::chrome_trace_string(&reg)).unwrap();
    trace.validate().unwrap();
    assert_eq!(trace.fold().len(), 2);
}
