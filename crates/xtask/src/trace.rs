//! Parser, validator, and flamegraph fold for Chrome `trace_event` JSON —
//! the `trace.json` files the obs layer exports next to each run's
//! `manifest.jsonl`.
//!
//! Accepts the JSON-object form of the format: a top-level object with a
//! `traceEvents` array of event objects. Timing comes either as complete
//! events (`"ph":"X"` with `ts` + `dur`) — what `vaesa-obs` writes — or
//! as paired `"ph":"B"`/`"ph":"E"` begin/end events; metadata (`"M"`)
//! events are allowed and ignored. [`ChromeTrace::validate`] asserts the
//! structural invariants CI gates on (non-negative monotonic timestamps,
//! balanced B/E stacks, at least one timing event), and
//! [`ChromeTrace::fold`] reduces the timeline to total wall nanoseconds
//! per span path — the input shape `vaesa_plot::FlameGraph` renders.

use serde::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// One parsed trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeTraceEvent {
    /// Event name (the span path for `vaesa-obs` exports).
    pub name: String,
    /// Phase: `X` (complete), `B`/`E` (duration pair), or `M` (metadata).
    pub ph: String,
    /// Timestamp, microseconds (0 for metadata events).
    pub ts_us: f64,
    /// Duration, microseconds (complete events only; 0 otherwise).
    pub dur_us: f64,
    /// Thread id.
    pub tid: u64,
}

/// A parsed `trace.json`.
#[derive(Debug, Default)]
pub struct ChromeTrace {
    /// Events in file order.
    pub events: Vec<ChromeTraceEvent>,
}

fn f64_or_zero(v: &Value, key: &str) -> Option<f64> {
    match v.get(key) {
        None => Some(0.0),
        Some(x) => x.as_f64(),
    }
}

impl ChromeTrace {
    /// Parses trace-event JSON text.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON, a missing `traceEvents`
    /// array, or events without a string `name`/`ph` or numeric fields.
    pub fn parse(text: &str) -> Result<Self, String> {
        let root = serde_json::parse_value(text).map_err(|e| format!("invalid JSON: {e}"))?;
        let Some(Value::Seq(items)) = root.get("traceEvents") else {
            return Err("missing `traceEvents` array".to_string());
        };
        let mut events = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let at = format!("traceEvents[{i}]");
            let Some(Value::Str(name)) = item.get("name") else {
                return Err(format!("{at}: missing string field `name`"));
            };
            let Some(Value::Str(ph)) = item.get("ph") else {
                return Err(format!("{at}: missing string field `ph`"));
            };
            let ts_us = f64_or_zero(item, "ts").ok_or_else(|| format!("{at}: non-numeric `ts`"))?;
            let dur_us =
                f64_or_zero(item, "dur").ok_or_else(|| format!("{at}: non-numeric `dur`"))?;
            let tid = match item.get("tid") {
                None => 0,
                Some(t) => t
                    .as_u64()
                    .ok_or_else(|| format!("{at}: non-integer `tid`"))?,
            };
            events.push(ChromeTraceEvent {
                name: name.clone(),
                ph: ph.clone(),
                ts_us,
                dur_us,
                tid,
            });
        }
        Ok(ChromeTrace { events })
    }

    /// Loads and parses a `trace.json` file.
    ///
    /// # Errors
    ///
    /// Propagates read failures and [`ChromeTrace::parse`] errors,
    /// prefixed with the path.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Checks the structural invariants CI gates on:
    ///
    /// - every phase is one of `X`, `B`, `E`, `M`;
    /// - every timestamp and duration is finite and non-negative;
    /// - `B`/`E` events nest properly per thread (each `E` closes the
    ///   most recent open `B` of the same name, and nothing stays open);
    /// - at least one timing event (`X` or a `B`/`E` pair) is present.
    ///
    /// # Errors
    ///
    /// Returns the full list of violations.
    pub fn validate(&self) -> Result<String, String> {
        let mut failures = String::new();
        let mut timing_events = 0usize;
        let mut open: BTreeMap<u64, Vec<&str>> = BTreeMap::new();
        for (i, e) in self.events.iter().enumerate() {
            if !e.ts_us.is_finite() || e.ts_us < 0.0 {
                let _ = writeln!(failures, "event {i} ({}): bad ts {}", e.name, e.ts_us);
            }
            if !e.dur_us.is_finite() || e.dur_us < 0.0 {
                let _ = writeln!(failures, "event {i} ({}): bad dur {}", e.name, e.dur_us);
            }
            match e.ph.as_str() {
                "X" => timing_events += 1,
                "B" => {
                    open.entry(e.tid).or_default().push(&e.name);
                }
                "E" => match open.entry(e.tid).or_default().pop() {
                    Some(begun) if begun == e.name => timing_events += 1,
                    Some(begun) => {
                        let _ = writeln!(
                            failures,
                            "event {i}: E `{}` closes B `{begun}` on tid {}",
                            e.name, e.tid
                        );
                    }
                    None => {
                        let _ = writeln!(
                            failures,
                            "event {i}: E `{}` without open B on tid {}",
                            e.name, e.tid
                        );
                    }
                },
                "M" => {}
                other => {
                    let _ = writeln!(failures, "event {i} ({}): unknown phase `{other}`", e.name);
                }
            }
        }
        for (tid, stack) in &open {
            if !stack.is_empty() {
                let _ = writeln!(failures, "tid {tid}: {} unclosed B event(s)", stack.len());
            }
        }
        if timing_events == 0 {
            let _ = writeln!(failures, "no timing events (X or B/E pairs)");
        }
        if failures.is_empty() {
            Ok(format!(
                "{} events, {timing_events} timed span(s)\n",
                self.events.len()
            ))
        } else {
            Err(failures)
        }
    }

    /// Folds the timeline into total wall nanoseconds per span path:
    /// complete events contribute `dur`, `B`/`E` pairs contribute their
    /// distance. Metadata and malformed pairs contribute nothing.
    pub fn fold(&self) -> BTreeMap<String, u64> {
        let mut folded: BTreeMap<String, u64> = BTreeMap::new();
        let mut open: BTreeMap<u64, Vec<(&str, f64)>> = BTreeMap::new();
        for e in &self.events {
            match e.ph.as_str() {
                "X" => {
                    *folded.entry(e.name.clone()).or_default() +=
                        (e.dur_us * 1_000.0).round().max(0.0) as u64;
                }
                "B" => open.entry(e.tid).or_default().push((&e.name, e.ts_us)),
                "E" => {
                    if let Some((name, begun)) = open.entry(e.tid).or_default().pop() {
                        if name == e.name {
                            *folded.entry(e.name.clone()).or_default() +=
                                ((e.ts_us - begun) * 1_000.0).round().max(0.0) as u64;
                        }
                    }
                }
                _ => {}
            }
        }
        folded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{"displayTimeUnit":"ms","traceEvents":[
        {"name":"process_name","ph":"M","pid":1,"args":{"name":"vaesa"}},
        {"name":"dse/run","cat":"span","ph":"X","ts":10.5,"dur":100,"pid":1,"tid":1},
        {"name":"dse/run/fit","cat":"span","ph":"X","ts":20,"dur":30,"pid":1,"tid":1}
    ]}"#;

    #[test]
    fn parses_and_validates_complete_events() {
        let trace = ChromeTrace::parse(GOOD).unwrap();
        assert_eq!(trace.events.len(), 3);
        let report = trace.validate().unwrap();
        assert!(report.contains("2 timed span(s)"), "{report}");
        let folded = trace.fold();
        assert_eq!(folded["dse/run"], 100_000);
        assert_eq!(folded["dse/run/fit"], 30_000);
    }

    #[test]
    fn validates_and_folds_begin_end_pairs() {
        let trace = ChromeTrace::parse(
            r#"{"traceEvents":[
                {"name":"a","ph":"B","ts":0,"tid":1},
                {"name":"a/b","ph":"B","ts":10,"tid":1},
                {"name":"a/b","ph":"E","ts":40,"tid":1},
                {"name":"a","ph":"E","ts":100,"tid":1}
            ]}"#,
        )
        .unwrap();
        trace.validate().unwrap();
        let folded = trace.fold();
        assert_eq!(folded["a"], 100_000);
        assert_eq!(folded["a/b"], 30_000);
    }

    #[test]
    fn rejects_negative_timestamps_unknown_phases_and_unbalanced_pairs() {
        let trace = ChromeTrace::parse(
            r#"{"traceEvents":[
                {"name":"a","ph":"X","ts":-1,"dur":5,"tid":1},
                {"name":"b","ph":"Q","ts":0,"tid":1},
                {"name":"c","ph":"B","ts":0,"tid":2}
            ]}"#,
        )
        .unwrap();
        let err = trace.validate().unwrap_err();
        assert!(err.contains("bad ts"), "{err}");
        assert!(err.contains("unknown phase `Q`"), "{err}");
        assert!(err.contains("unclosed B"), "{err}");
    }

    #[test]
    fn rejects_empty_timelines_and_mismatched_pairs() {
        let empty = ChromeTrace::parse(r#"{"traceEvents":[]}"#).unwrap();
        assert!(empty.validate().unwrap_err().contains("no timing events"));
        let crossed = ChromeTrace::parse(
            r#"{"traceEvents":[
                {"name":"a","ph":"B","ts":0,"tid":1},
                {"name":"z","ph":"E","ts":1,"tid":1}
            ]}"#,
        )
        .unwrap();
        let err = crossed.validate().unwrap_err();
        assert!(err.contains("closes B"), "{err}");
    }

    #[test]
    fn rejects_structurally_broken_files() {
        assert!(ChromeTrace::parse("not json").is_err());
        assert!(ChromeTrace::parse("{}")
            .unwrap_err()
            .contains("traceEvents"));
        let err = ChromeTrace::parse(r#"{"traceEvents":[{"ph":"X"}]}"#).unwrap_err();
        assert!(err.contains("name"), "{err}");
    }
}
