//! Human-readable summaries and diffs of run manifests, shared by the
//! `xtask` binary and the `vaesa-cli obs-report` subcommand.

use crate::manifest::Manifest;
use std::fmt::Write as _;

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// One manifest as a readable report: run context, then each metric
/// family in the writer's order.
pub fn summarize(m: &Manifest) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "run:");
    for (k, v) in &m.meta {
        let _ = writeln!(out, "  {k} = {v}");
    }
    if !m.counters.is_empty() {
        let _ = writeln!(out, "counters:");
        for (name, value) in &m.counters {
            let _ = writeln!(out, "  {name:<40} {value}");
        }
    }
    if !m.gauges.is_empty() {
        let _ = writeln!(out, "gauges:");
        for (name, value) in &m.gauges {
            let _ = writeln!(out, "  {name:<40} {value}");
        }
    }
    if !m.histograms.is_empty() {
        let _ = writeln!(out, "histograms (ns unless named otherwise):");
        for (name, h) in &m.histograms {
            let _ = writeln!(
                out,
                "  {name:<40} n={} mean={:.0} p50={:.0} p99={:.0} max={:.0}",
                h.count, h.mean, h.p50, h.p99, h.max
            );
        }
    }
    if !m.series.is_empty() {
        let _ = writeln!(out, "series:");
        for (name, values) in &m.series {
            match values.last() {
                Some(last) => {
                    let _ = writeln!(out, "  {name:<40} {} values, last {last}", values.len());
                }
                None => {
                    let _ = writeln!(out, "  {name:<40} empty");
                }
            }
        }
    }
    if !m.spans.is_empty() {
        let _ = writeln!(out, "spans:");
        for (path, s) in &m.spans {
            let _ = writeln!(
                out,
                "  {path:<40} n={} wall={:.1}ms cpu={:.1}ms",
                s.count,
                ms(s.wall_ns_total),
                ms(s.cpu_ns_total)
            );
        }
    }
    let _ = writeln!(out, "events: {}", m.events.len());
    out
}

fn diff_family<T: PartialEq, F: Fn(&T, &T) -> String>(
    out: &mut String,
    family: &str,
    a: &std::collections::BTreeMap<String, T>,
    b: &std::collections::BTreeMap<String, T>,
    show: F,
) {
    let mut lines = String::new();
    for (name, va) in a {
        match b.get(name) {
            None => {
                let _ = writeln!(lines, "  - {name} (missing in right)");
            }
            Some(vb) if va != vb => {
                let _ = writeln!(lines, "  ~ {name}: {}", show(va, vb));
            }
            Some(_) => {}
        }
    }
    for name in b.keys().filter(|n| !a.contains_key(*n)) {
        let _ = writeln!(lines, "  + {name} (missing in left)");
    }
    if !lines.is_empty() {
        let _ = writeln!(out, "{family}:");
        out.push_str(&lines);
    }
}

/// Diffs two manifests; returns `None` when nothing differs.
///
/// Histogram and span *statistics* are timing-dependent, so only their
/// presence and sample counts are compared, not their values.
pub fn diff(a: &Manifest, b: &Manifest) -> Option<String> {
    let mut out = String::new();
    diff_family(&mut out, "meta", &a.meta, &b.meta, |x, y| {
        format!("{x} -> {y}")
    });
    diff_family(&mut out, "counters", &a.counters, &b.counters, |x, y| {
        format!("{x} -> {y}")
    });
    diff_family(&mut out, "gauges", &a.gauges, &b.gauges, |x, y| {
        format!("{x} -> {y}")
    });
    let hist_counts = |m: &Manifest| -> std::collections::BTreeMap<String, u64> {
        m.histograms
            .iter()
            .map(|(k, h)| (k.clone(), h.count))
            .collect()
    };
    diff_family(
        &mut out,
        "histograms (sample counts)",
        &hist_counts(a),
        &hist_counts(b),
        |x, y| format!("n={x} -> n={y}"),
    );
    diff_family(&mut out, "series", &a.series, &b.series, |x, y| {
        format!("{} values -> {} values", x.len(), y.len())
    });
    let span_counts = |m: &Manifest| -> std::collections::BTreeMap<String, u64> {
        m.spans.iter().map(|(k, s)| (k.clone(), s.count)).collect()
    };
    diff_family(
        &mut out,
        "spans (completion counts)",
        &span_counts(a),
        &span_counts(b),
        |x, y| format!("n={x} -> n={y}"),
    );
    if a.events.len() != b.events.len() {
        let _ = writeln!(out, "events: {} -> {}", a.events.len(), b.events.len());
    }
    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest(evals: u64) -> Manifest {
        Manifest::parse(&format!(
            "{{\"record\":\"run\",\"meta\":{{\"bin\":\"demo\"}}}}\n\
             {{\"record\":\"counter\",\"name\":\"dse.evals\",\"value\":{evals}}}\n\
             {{\"record\":\"series\",\"name\":\"dse.bo.best_edp\",\"values\":[3,2]}}\n"
        ))
        .unwrap()
    }

    #[test]
    fn summarize_names_every_family_present() {
        let text = summarize(&manifest(288));
        assert!(text.contains("bin = demo"));
        assert!(text.contains("dse.evals"));
        assert!(text.contains("2 values, last 2"));
    }

    #[test]
    fn diff_reports_changes_and_is_none_when_identical() {
        assert!(diff(&manifest(288), &manifest(288)).is_none());
        let d = diff(&manifest(288), &manifest(287)).unwrap();
        assert!(d.contains("dse.evals: 288 -> 287"), "{d}");
    }

    #[test]
    fn diff_names_the_side_a_metric_is_missing_from() {
        let mut a = manifest(288);
        let mut b = manifest(288);
        a.counters.insert("left.only".to_string(), 1);
        b.gauges.insert("right.only".to_string(), 2.0);
        let d = diff(&a, &b).unwrap();
        assert!(d.contains("- left.only (missing in right)"), "{d}");
        assert!(d.contains("+ right.only (missing in left)"), "{d}");
    }
}
