//! `xtask` — CI gate checker for the vaesa workspace.
//!
//! ```text
//! xtask metrics-gate <manifest.jsonl>
//! xtask perf-gate --current <capture.json> --baseline <BENCH.json>... [--tolerance 0.25]
//! xtask determinism <dir-a> <dir-b>
//! ```
//!
//! Exit status 0 on pass, 1 on gate failure, 2 on usage errors. Reports
//! go to stdout (pass) or stderr (fail).

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use vaesa_xtask::gates;

const USAGE: &str = "\
usage: xtask <gate> [args]

gates:
  metrics-gate <manifest.jsonl>
      assert budget accounting, scheduler warmth, and non-empty
      best-EDP trajectories on one figure-run manifest

  perf-gate --current <capture.json> --baseline <BENCH.json>...
            [--tolerance 0.25]
      fail if any benchmark median regresses past the tolerance vs the
      merged baselines (pass BENCH_pr*.json oldest-first; later files
      override earlier ids)

  determinism <dir-a> <dir-b>
      byte-compare result files and the deterministic manifest slice of
      the same figure run at two VAESA_THREADS settings";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((gate, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let outcome = match gate.as_str() {
        "metrics-gate" => match rest {
            [manifest] => gates::metrics_gate(Path::new(manifest)),
            _ => return usage_error("metrics-gate takes exactly one manifest path"),
        },
        "perf-gate" => match parse_perf_args(rest) {
            Ok((current, baselines, tolerance)) => {
                gates::perf_gate(&current, &baselines, tolerance)
            }
            Err(e) => return usage_error(&e),
        },
        "determinism" => match rest {
            [a, b] => gates::determinism(Path::new(a), Path::new(b)),
            _ => return usage_error("determinism takes exactly two directories"),
        },
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => return usage_error(&format!("unknown gate `{other}`")),
    };
    match outcome {
        Ok(report) => {
            println!("{gate}: PASS");
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(report) => {
            eprintln!("{gate}: FAIL");
            eprint!("{report}");
            ExitCode::FAILURE
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n{USAGE}");
    ExitCode::from(2)
}

fn parse_perf_args(args: &[String]) -> Result<(PathBuf, Vec<PathBuf>, f64), String> {
    let mut current = None;
    let mut baselines = Vec::new();
    let mut tolerance = 0.25;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--current" => {
                current = Some(PathBuf::from(it.next().ok_or("--current needs a path")?));
            }
            "--baseline" => {
                // Consumes every following non-flag token, so shell globs
                // like `--baseline BENCH_pr*.json` work unquoted.
                baselines.push(PathBuf::from(
                    it.next().ok_or("--baseline needs at least one path")?,
                ));
                let remaining = it.as_slice();
                let extra = remaining
                    .iter()
                    .take_while(|a| !a.starts_with("--"))
                    .count();
                for path in &remaining[..extra] {
                    baselines.push(PathBuf::from(path));
                }
                it = remaining[extra..].iter();
            }
            "--tolerance" => {
                tolerance = it
                    .next()
                    .ok_or("--tolerance needs a number")?
                    .parse()
                    .map_err(|_| "invalid --tolerance value".to_string())?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let current = current.ok_or("perf-gate needs --current")?;
    if baselines.is_empty() {
        return Err("perf-gate needs at least one --baseline".into());
    }
    Ok((current, baselines, tolerance))
}
