//! `xtask` — CI gate checker and telemetry tool for the vaesa workspace.
//!
//! ```text
//! xtask metrics-gate <manifest.jsonl>
//! xtask perf-gate --current <capture.json> --baseline <BENCH.json>... [--tolerance 0.25]
//! xtask determinism <dir-a> <dir-b>
//! xtask trace-check <trace.json>
//! xtask summarize <manifest.jsonl>
//! xtask diff <manifest-a> <manifest-b>
//! xtask ingest <manifest.jsonl> [--history <history.jsonl>]
//! xtask trend [--history <history.jsonl>] [--out <dir>]
//! xtask trend-gate [--history <history.jsonl>] [--tolerance 0.25]
//! xtask precision-gate <f64-manifest> <f32-manifest> [--tolerance 0.0]
//! xtask prom-check <snapshot.prom>
//! xtask slo-gate <snapshot.prom> --slo <thresholds.txt>
//! ```
//!
//! Exit status 0 on pass, 1 on gate failure, 2 on usage errors. Reports
//! go to stdout (pass) or stderr (fail).

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use vaesa_xtask::trace::ChromeTrace;
use vaesa_xtask::{gates, manifest::Manifest, report, telemetry};

/// Where CI keeps the cross-run telemetry history.
const DEFAULT_HISTORY: &str = "results/telemetry/history.jsonl";

const USAGE: &str = "\
usage: xtask <command> [args]

gates:
  metrics-gate <manifest.jsonl>
      assert budget accounting, scheduler warmth, and non-empty
      best-EDP trajectories on one figure-run manifest

  perf-gate --current <capture.json> --baseline <BENCH.json>...
            [--tolerance 0.25]
      fail if any benchmark median regresses past the tolerance vs the
      merged baselines (pass BENCH_pr*.json oldest-first; later files
      override earlier ids)

  determinism <dir-a> <dir-b>
      byte-compare result files and the deterministic manifest slice of
      the same figure run at two VAESA_THREADS settings

  trace-check <trace.json>
      validate a Chrome trace_event export: known phases, non-negative
      timestamps, balanced B/E pairs, at least one timed span

  trend-gate [--history <history.jsonl>] [--tolerance 0.25]
      fail when a gated span's wall-time in the latest record of any
      (run_id, threads, cpu_features) group exceeds the trailing median
      of its prior records by more than the tolerance; spans with fewer
      than 3 prior records are skipped with a notice

  precision-gate <f64-manifest> <f32-manifest> [--tolerance 0.0]
      fail when the f32-precision run is slower than the f64 run on any
      gated span (the f32 SIMD backend must not lose)

  prom-check <snapshot.prom>
      validate a scraped Prometheus snapshot: every sample under a
      declared # TYPE family, cumulative histogram buckets ending at
      +Inf, quantile labels inside [0, 1]

  slo-gate <snapshot.prom> --slo <thresholds.txt>
      fail when the snapshot violates any `metric[:pNN] <op> <value>`
      threshold line (absent metrics fail, they do not skip)

telemetry:
  summarize <manifest.jsonl>
      print one run manifest as a readable report

  diff <manifest-a> <manifest-b>
      diff two run manifests (exit 1 when they differ)

  ingest <manifest.jsonl> [--history <history.jsonl>]
      append a compact per-run record to the history; idempotent per
      run_id@git_rev

  trend [--history <history.jsonl>] [--out <dir>]
      render per-metric SVG trend charts over the history
      (default out dir: results/telemetry)

default history file: results/telemetry/history.jsonl";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((gate, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let outcome =
        match gate.as_str() {
            "metrics-gate" => match rest {
                [manifest] => gates::metrics_gate(Path::new(manifest)),
                _ => return usage_error("metrics-gate takes exactly one manifest path"),
            },
            "perf-gate" => match parse_perf_args(rest) {
                Ok((current, baselines, tolerance)) => {
                    gates::perf_gate(&current, &baselines, tolerance)
                }
                Err(e) => return usage_error(&e),
            },
            "determinism" => match rest {
                [a, b] => gates::determinism(Path::new(a), Path::new(b)),
                _ => return usage_error("determinism takes exactly two directories"),
            },
            "trace-check" => match rest {
                [trace] => ChromeTrace::load(Path::new(trace)).and_then(|t| t.validate()),
                _ => return usage_error("trace-check takes exactly one trace.json path"),
            },
            "summarize" => match rest {
                [manifest] => Manifest::load(Path::new(manifest)).map(|m| report::summarize(&m)),
                _ => return usage_error("summarize takes exactly one manifest path"),
            },
            "diff" => match rest {
                [a, b] => match (Manifest::load(Path::new(a)), Manifest::load(Path::new(b))) {
                    (Ok(ma), Ok(mb)) => match report::diff(&ma, &mb) {
                        None => Ok("manifests are identical\n".to_string()),
                        Some(d) => Err(d),
                    },
                    (Err(e), _) | (_, Err(e)) => Err(e),
                },
                _ => return usage_error("diff takes exactly two manifest paths"),
            },
            "ingest" => match parse_history_args(rest, &["--history"]) {
                Ok((positional, flags)) => match positional.as_slice() {
                    [manifest] => {
                        let history = history_path(&flags);
                        telemetry::ingest(Path::new(manifest), &history)
                    }
                    _ => return usage_error("ingest takes exactly one manifest path"),
                },
                Err(e) => return usage_error(&e),
            },
            "trend" => match parse_history_args(rest, &["--history", "--out"]) {
                Ok((positional, flags)) if positional.is_empty() => {
                    let history = history_path(&flags);
                    let out = flags
                        .get("--out")
                        .map(PathBuf::from)
                        .unwrap_or_else(|| PathBuf::from("results/telemetry"));
                    telemetry::render_trends(&history, &out)
                }
                Ok(_) => return usage_error("trend takes no positional arguments"),
                Err(e) => return usage_error(&e),
            },
            "trend-gate" => match parse_history_args(rest, &["--history", "--tolerance"]) {
                Ok((positional, flags)) if positional.is_empty() => {
                    let history = history_path(&flags);
                    let tolerance = match flags.get("--tolerance") {
                        None => telemetry::DEFAULT_TREND_TOLERANCE,
                        Some(raw) => match raw.parse() {
                            Ok(t) => t,
                            Err(_) => return usage_error("invalid --tolerance value"),
                        },
                    };
                    telemetry::trend_gate(&history, tolerance)
                }
                Ok(_) => return usage_error("trend-gate takes no positional arguments"),
                Err(e) => return usage_error(&e),
            },
            "precision-gate" => match parse_history_args(rest, &["--tolerance"]) {
                Ok((positional, flags)) => match positional.as_slice() {
                    [f64_manifest, f32_manifest] => {
                        let tolerance = match flags.get("--tolerance") {
                            None => 0.0,
                            Some(raw) => match raw.parse() {
                                Ok(t) => t,
                                Err(_) => return usage_error("invalid --tolerance value"),
                            },
                        };
                        gates::precision_gate(
                            Path::new(f64_manifest),
                            Path::new(f32_manifest),
                            tolerance,
                        )
                    }
                    _ => return usage_error(
                        "precision-gate takes exactly two manifest paths (f64 first, f32 second)",
                    ),
                },
                Err(e) => return usage_error(&e),
            },
            "prom-check" => match rest {
                [snapshot] => vaesa_xtask::prom::prom_check(Path::new(snapshot)),
                _ => return usage_error("prom-check takes exactly one snapshot path"),
            },
            "slo-gate" => match parse_history_args(rest, &["--slo"]) {
                Ok((positional, flags)) => match (positional.as_slice(), flags.get("--slo")) {
                    ([snapshot], Some(slo)) => {
                        vaesa_xtask::prom::slo_gate(Path::new(snapshot), Path::new(slo))
                    }
                    _ => return usage_error("slo-gate takes one snapshot path and --slo <file>"),
                },
                Err(e) => return usage_error(&e),
            },
            "--help" | "-h" | "help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown gate `{other}`")),
        };
    match outcome {
        Ok(report) => {
            println!("{gate}: PASS");
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(report) => {
            eprintln!("{gate}: FAIL");
            eprint!("{report}");
            ExitCode::FAILURE
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n{USAGE}");
    ExitCode::from(2)
}

fn history_path(flags: &std::collections::BTreeMap<String, String>) -> PathBuf {
    flags
        .get("--history")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(DEFAULT_HISTORY))
}

/// Splits `args` into positional arguments and `--flag value` pairs,
/// accepting only the listed flags.
fn parse_history_args(
    args: &[String],
    allowed: &[&str],
) -> Result<(Vec<String>, std::collections::BTreeMap<String, String>), String> {
    let mut positional = Vec::new();
    let mut flags = std::collections::BTreeMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(flag) = allowed.iter().find(|f| *f == arg) {
            let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
            flags.insert(flag.to_string(), value.clone());
        } else if arg.starts_with("--") {
            return Err(format!("unknown flag `{arg}`"));
        } else {
            positional.push(arg.clone());
        }
    }
    Ok((positional, flags))
}

fn parse_perf_args(args: &[String]) -> Result<(PathBuf, Vec<PathBuf>, f64), String> {
    let mut current = None;
    let mut baselines = Vec::new();
    let mut tolerance = 0.25;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--current" => {
                current = Some(PathBuf::from(it.next().ok_or("--current needs a path")?));
            }
            "--baseline" => {
                // Consumes every following non-flag token, so shell globs
                // like `--baseline BENCH_pr*.json` work unquoted.
                baselines.push(PathBuf::from(
                    it.next().ok_or("--baseline needs at least one path")?,
                ));
                let remaining = it.as_slice();
                let extra = remaining
                    .iter()
                    .take_while(|a| !a.starts_with("--"))
                    .count();
                for path in &remaining[..extra] {
                    baselines.push(PathBuf::from(path));
                }
                it = remaining[extra..].iter();
            }
            "--tolerance" => {
                tolerance = it
                    .next()
                    .ok_or("--tolerance needs a number")?
                    .parse()
                    .map_err(|_| "invalid --tolerance value".to_string())?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let current = current.ok_or("perf-gate needs --current")?;
    if baselines.is_empty() {
        return Err("perf-gate needs at least one --baseline".into());
    }
    Ok((current, baselines, tolerance))
}
