//! Reader for the `vaesa-obs` JSON-lines run manifest.
//!
//! Mirrors the record shapes documented in `crates/obs/src/manifest.rs`:
//! one self-describing JSON object per line, tagged by `"record"`. Unknown
//! record types are rejected (a typo in a gate is a bug, not data), but
//! unknown *fields* inside a known record are ignored so the format can
//! grow without breaking old checkers.

use serde::Value;
use std::collections::BTreeMap;
use std::path::Path;

/// Summary statistics of one histogram record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramRecord {
    /// Number of samples recorded.
    pub count: u64,
    /// Arithmetic mean of the samples.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 90th percentile (nearest-rank).
    pub p90: f64,
    /// 99th percentile (nearest-rank).
    pub p99: f64,
}

/// Aggregated statistics of one span record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanRecord {
    /// How many times the span path completed.
    pub count: u64,
    /// Total wall-clock time across completions, nanoseconds.
    pub wall_ns_total: u64,
    /// Total process-CPU time across completions, nanoseconds.
    pub cpu_ns_total: u64,
}

/// One parsed `manifest.jsonl`, keyed the same way the writer sorts it.
#[derive(Debug, Default)]
pub struct Manifest {
    /// Run-context key/value pairs from the `run` record.
    pub meta: BTreeMap<String, String>,
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Gauge name → value (`null` in the JSON parses as NaN).
    pub gauges: BTreeMap<String, f64>,
    /// Histogram name → summary.
    pub histograms: BTreeMap<String, HistogramRecord>,
    /// Series name → ordered values.
    pub series: BTreeMap<String, Vec<f64>>,
    /// Span path → aggregated stats.
    pub spans: BTreeMap<String, SpanRecord>,
    /// Event messages in emission order.
    pub events: Vec<String>,
}

fn field<'a>(v: &'a Value, key: &str, line: usize) -> Result<&'a Value, String> {
    v.get(key)
        .ok_or_else(|| format!("line {line}: missing field `{key}`"))
}

fn str_field(v: &Value, key: &str, line: usize) -> Result<String, String> {
    match field(v, key, line)? {
        Value::Str(s) => Ok(s.clone()),
        _ => Err(format!("line {line}: field `{key}` is not a string")),
    }
}

fn u64_field(v: &Value, key: &str, line: usize) -> Result<u64, String> {
    field(v, key, line)?
        .as_u64()
        .ok_or_else(|| format!("line {line}: field `{key}` is not a u64"))
}

/// Reads a float field, decoding the writer's `null` (non-finite) as NaN.
fn f64_field(v: &Value, key: &str, line: usize) -> Result<f64, String> {
    match field(v, key, line)? {
        Value::Null => Ok(f64::NAN),
        other => other
            .as_f64()
            .ok_or_else(|| format!("line {line}: field `{key}` is not a number")),
    }
}

impl Manifest {
    /// Parses manifest text (one JSON object per non-empty line).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on malformed JSON,
    /// unknown record types, or missing/mistyped fields.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut m = Manifest::default();
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            if raw.trim().is_empty() {
                continue;
            }
            let v = serde_json::parse_value(raw)
                .map_err(|e| format!("line {line}: invalid JSON: {e}"))?;
            let record = str_field(&v, "record", line)?;
            match record.as_str() {
                "run" => {
                    let Some(Value::Map(entries)) = v.get("meta") else {
                        return Err(format!("line {line}: run record without meta object"));
                    };
                    for (k, val) in entries {
                        let Value::Str(s) = val else {
                            return Err(format!("line {line}: meta `{k}` is not a string"));
                        };
                        m.meta.insert(k.clone(), s.clone());
                    }
                }
                "counter" => {
                    m.counters
                        .insert(str_field(&v, "name", line)?, u64_field(&v, "value", line)?);
                }
                "gauge" => {
                    m.gauges
                        .insert(str_field(&v, "name", line)?, f64_field(&v, "value", line)?);
                }
                "histogram" => {
                    m.histograms.insert(
                        str_field(&v, "name", line)?,
                        HistogramRecord {
                            count: u64_field(&v, "count", line)?,
                            mean: f64_field(&v, "mean", line)?,
                            min: f64_field(&v, "min", line)?,
                            max: f64_field(&v, "max", line)?,
                            p50: f64_field(&v, "p50", line)?,
                            p90: f64_field(&v, "p90", line)?,
                            p99: f64_field(&v, "p99", line)?,
                        },
                    );
                }
                "series" => {
                    let name = str_field(&v, "name", line)?;
                    let Some(Value::Seq(items)) = v.get("values") else {
                        return Err(format!("line {line}: series without values array"));
                    };
                    let mut values = Vec::with_capacity(items.len());
                    for item in items {
                        values.push(match item {
                            Value::Null => f64::NAN,
                            other => other
                                .as_f64()
                                .ok_or_else(|| format!("line {line}: non-numeric series value"))?,
                        });
                    }
                    m.series.insert(name, values);
                }
                "span" => {
                    m.spans.insert(
                        str_field(&v, "path", line)?,
                        SpanRecord {
                            count: u64_field(&v, "count", line)?,
                            wall_ns_total: u64_field(&v, "wall_ns_total", line)?,
                            cpu_ns_total: u64_field(&v, "cpu_ns_total", line)?,
                        },
                    );
                }
                "event" => m.events.push(str_field(&v, "message", line)?),
                other => return Err(format!("line {line}: unknown record type `{other}`")),
            }
        }
        Ok(m)
    }

    /// Loads and parses a manifest file.
    ///
    /// # Errors
    ///
    /// Propagates read failures and [`Manifest::parse`] errors, prefixed
    /// with the path.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// A counter's value, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// A gauge's value, if recorded.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// A meta entry parsed as `u64`, if present and numeric.
    pub fn meta_u64(&self, key: &str) -> Option<u64> {
        self.meta.get(key)?.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{"record":"run","meta":{"bin":"demo","seed":"7"}}
{"record":"counter","name":"dse.evals","value":288}
{"record":"gauge","name":"scheduler.hit_rate","value":0.25}
{"record":"gauge","name":"nan.gauge","value":null}
{"record":"histogram","name":"fit_ns","count":2,"mean":20,"min":10,"max":30,"p50":10,"p90":30,"p99":30}
{"record":"series","name":"dse.bo.best_edp","values":[3.5,2,null]}
{"record":"span","path":"dse/run","count":3,"wall_ns_total":900,"wall_ns_min":100,"wall_ns_max":500,"cpu_ns_total":1200}
{"record":"event","index":0,"message":"wrote out.csv"}
"#;

    #[test]
    fn parses_every_record_type() {
        let m = Manifest::parse(SAMPLE).unwrap();
        assert_eq!(m.meta["bin"], "demo");
        assert_eq!(m.meta_u64("seed"), Some(7));
        assert_eq!(m.counter("dse.evals"), Some(288));
        assert_eq!(m.gauge("scheduler.hit_rate"), Some(0.25));
        assert!(m.gauge("nan.gauge").unwrap().is_nan());
        assert_eq!(m.histograms["fit_ns"].count, 2);
        let s = &m.series["dse.bo.best_edp"];
        assert_eq!(&s[..2], &[3.5, 2.0]);
        assert!(s[2].is_nan());
        assert_eq!(m.spans["dse/run"].count, 3);
        assert_eq!(m.events, vec!["wrote out.csv"]);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let m = Manifest::parse("\n{\"record\":\"run\",\"meta\":{}}\n\n").unwrap();
        assert!(m.counters.is_empty());
    }

    #[test]
    fn rejects_unknown_record_types_with_line_numbers() {
        let err = Manifest::parse("{\"record\":\"bogus\"}").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        assert!(err.contains("bogus"), "{err}");
    }

    #[test]
    fn rejects_missing_fields() {
        let err = Manifest::parse("{\"record\":\"counter\",\"name\":\"x\"}").unwrap_err();
        assert!(err.contains("value"), "{err}");
    }
}
