//! CI gate checkers and manifest tooling for the vaesa workspace.
//!
//! The `xtask` binary wraps three CI gates plus the parsing layer behind
//! the `vaesa-cli obs-report` subcommand:
//!
//! - [`gates::metrics_gate`] — asserts structural invariants on one run
//!   manifest (exact budget accounting, warm scheduler cache, non-empty
//!   best-EDP trajectories);
//! - [`gates::perf_gate`] — compares a fresh `VAESA_BENCH_JSON` capture
//!   against the checked-in `BENCH_pr*.json` baselines;
//! - [`gates::determinism`] — diffs two runs of the same figure binary at
//!   different `VAESA_THREADS`, byte-comparing result files and comparing
//!   the deterministic slice of their manifests.
//!
//! Live-service checks ride alongside: [`prom::prom_check`] validates a
//! scraped Prometheus snapshot's structure, and [`prom::slo_gate`]
//! enforces declarative latency/error-rate thresholds against it
//! (`xtask prom-check` / `xtask slo-gate`).
//!
//! On top of the gates sit the tracing/telemetry readers: [`trace`]
//! parses, validates, and folds the Chrome `trace_event` JSON the obs
//! layer exports (`xtask trace-check`, `vaesa-cli obs-flame`), and
//! [`telemetry`] maintains the append-only cross-run history behind
//! `xtask ingest` / `trend` / `trend-gate`.
//!
//! Everything here is a *reader* of `vaesa-obs` output; the obs crate
//! itself stays write-only (and dependency-free).

pub mod bench;
pub mod gates;
pub mod manifest;
pub mod prom;
pub mod report;
pub mod telemetry;
pub mod trace;
