//! The three CI gates: metrics, perf-regression, and determinism.
//!
//! Each gate returns `Ok(report)` with a human-readable pass summary or
//! `Err(report)` describing every violation found (gates keep checking
//! after the first failure so CI logs show the full picture).

use crate::bench;
use crate::manifest::Manifest;
use std::fmt::Write as _;
use std::path::Path;

/// Metric-name prefixes whose counters/gauges/series are required to be
/// identical across `VAESA_THREADS` settings.
///
/// Scheduler cache metrics (`scheduler.*`) are deliberately absent:
/// concurrent misses on the same key may double-compute, so hit/miss
/// totals vary with thread count even though every *returned value* is
/// bit-identical. Histograms and spans carry timings and are never
/// compared; events carry formatted progress text (including cache-stats
/// strings) and are skipped for the same reason.
pub const DETERMINISTIC_PREFIXES: &[&str] = &["dse.", "train.", "accel.", "nn.", "plot."];

fn deterministic(name: &str) -> bool {
    DETERMINISTIC_PREFIXES.iter().any(|p| name.starts_with(p))
}

/// Checks the structural invariants of one figure-run manifest.
///
/// Invariants: the `dse.evals` counter equals the `dse.expected_evals`
/// meta entry the binary declared up front (exact budget accounting —
/// every search funnels through `DseDriver::run`); the scheduler cache
/// saw at least one hit; and every recorded `dse.<label>.best_edp`
/// trajectory is non-empty (with at least one present).
///
/// # Errors
///
/// Returns the full list of violated invariants.
pub fn metrics_gate(path: &Path) -> Result<String, String> {
    let m = Manifest::load(path)?;
    let mut report = String::new();
    let mut failures = String::new();

    match (m.counter("dse.evals"), m.meta_u64("dse.expected_evals")) {
        (Some(got), Some(want)) if got == want => {
            let _ = writeln!(report, "dse.evals = {got} (matches dse.expected_evals)");
        }
        (got, want) => {
            let _ = writeln!(
                failures,
                "budget accounting broken: counter dse.evals = {got:?}, \
                 meta dse.expected_evals = {want:?}"
            );
        }
    }

    match m.gauge("scheduler.hit_rate") {
        Some(rate) if rate > 0.0 => {
            let _ = writeln!(report, "scheduler.hit_rate = {rate:.4} (> 0)");
        }
        other => {
            let _ = writeln!(
                failures,
                "scheduler cache never hit: scheduler.hit_rate = {other:?}"
            );
        }
    }

    let trajectories: Vec<_> = m
        .series
        .iter()
        .filter(|(name, _)| name.starts_with("dse.") && name.ends_with(".best_edp"))
        .collect();
    if trajectories.is_empty() {
        let _ = writeln!(failures, "no dse.<label>.best_edp trajectory recorded");
    }
    for (name, values) in &trajectories {
        if values.is_empty() {
            let _ = writeln!(failures, "trajectory {name} is empty");
        } else {
            let _ = writeln!(report, "{name}: {} samples", values.len());
        }
    }

    if failures.is_empty() {
        Ok(report)
    } else {
        Err(failures)
    }
}

/// Compares a fresh bench capture against merged baselines.
///
/// `baseline_paths` are loaded in order with later files overriding
/// earlier ids (pass `BENCH_pr*.json` oldest-first). A benchmark fails
/// when its median exceeds baseline × (1 + `tolerance`).
///
/// # Errors
///
/// Returns the list of regressed benchmarks, or a parse/IO failure.
pub fn perf_gate(
    current_path: &Path,
    baseline_paths: &[impl AsRef<Path>],
    tolerance: f64,
) -> Result<String, String> {
    let baseline = bench::load_baselines(baseline_paths)?;
    let text = std::fs::read_to_string(current_path)
        .map_err(|e| format!("cannot read {}: {e}", current_path.display()))?;
    let current =
        bench::parse_capture(&text).map_err(|e| format!("{}: {e}", current_path.display()))?;
    if current.is_empty() {
        return Err(format!(
            "{}: no benchmarks captured",
            current_path.display()
        ));
    }

    let comparisons = bench::compare(&baseline, &current);
    let mut report = String::new();
    let mut failures = String::new();
    for c in &comparisons {
        let verdict = if c.regressed(tolerance) { "FAIL" } else { "ok" };
        let line = format!(
            "{verdict:>4}  {:<50} {:>12.1} -> {:>12.1} ns/iter ({:+.1}%)",
            c.id,
            c.baseline_ns,
            c.current_ns,
            c.delta * 100.0
        );
        let _ = writeln!(report, "{line}");
        if c.regressed(tolerance) {
            let _ = writeln!(failures, "{line}");
        }
    }
    for id in current.keys().filter(|id| !baseline.contains_key(*id)) {
        let _ = writeln!(report, " new  {id:<50} (no baseline)");
    }

    if failures.is_empty() {
        Ok(report)
    } else {
        Err(format!(
            "{} benchmark(s) regressed more than {:.0}%:\n{failures}\nfull comparison:\n{report}",
            failures.lines().count(),
            tolerance * 100.0
        ))
    }
}

/// Compares the gated span wall-times of an f64-precision run manifest
/// against its f32 counterpart (same binary, seed, scale, budget).
///
/// The f32 SIMD backend exists to be faster, so the gate fails whenever
/// f32 wall-time exceeds f64 × (1 + `tolerance`) on any
/// [`crate::telemetry::GATED_SPANS`] span present in both manifests
/// (tolerance 0.0 means f32 must win or tie outright). When the
/// manifests carry a `precision` meta entry, mismatched labels fail
/// immediately — that means the two runs were launched the wrong way
/// around. Finding no gated span in both manifests is also a failure
/// rather than a silent pass.
///
/// # Errors
///
/// Returns load failures, a precision-label mismatch, or the list of
/// spans where f32 lost.
pub fn precision_gate(f64_path: &Path, f32_path: &Path, tolerance: f64) -> Result<String, String> {
    let m64 = Manifest::load(f64_path)?;
    let m32 = Manifest::load(f32_path)?;
    for (m, path, want) in [(&m64, f64_path, "f64"), (&m32, f32_path, "f32")] {
        if let Some(label) = m.meta.get("precision") {
            if label != want {
                return Err(format!(
                    "{} declares precision `{label}`, expected `{want}` — \
                     check the argument order",
                    path.display()
                ));
            }
        }
    }
    let mut report = String::new();
    let mut failures = String::new();
    let mut compared = 0usize;
    for span in crate::telemetry::GATED_SPANS {
        match (m64.spans.get(*span), m32.spans.get(*span)) {
            (Some(a), Some(b)) => {
                compared += 1;
                let ratio = b.wall_ns_total as f64 / (a.wall_ns_total.max(1)) as f64;
                let line = format!(
                    "{span}: f64 {:.1}ms -> f32 {:.1}ms ({:.2}x)",
                    a.wall_ns_total as f64 / 1e6,
                    b.wall_ns_total as f64 / 1e6,
                    1.0 / ratio.max(f64::MIN_POSITIVE)
                );
                if ratio > 1.0 + tolerance {
                    let _ = writeln!(
                        failures,
                        "{line} — f32 slower than f64 (tolerance {:.0}%)",
                        tolerance * 100.0
                    );
                } else {
                    let _ = writeln!(report, "{line}");
                }
            }
            (None, None) => {}
            (a, _) => {
                let _ = writeln!(
                    report,
                    "{span}: present only in the {} run, not compared",
                    if a.is_some() { "f64" } else { "f32" }
                );
            }
        }
    }
    if compared == 0 {
        return Err("no gated span present in both manifests — nothing was compared".to_string());
    }
    if failures.is_empty() {
        Ok(report)
    } else {
        Err(format!("{failures}\nfull comparison:\n{report}"))
    }
}

/// Files in a run's output directory that carry wall-clock timings and
/// therefore legitimately differ between otherwise identical runs. The
/// determinism gate skips them entirely, like `scheduler.*` metrics.
const TIMING_FILES: &[&str] = &["trace.json", "flame.svg"];

fn sorted_files(dir: &Path) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if TIMING_FILES.contains(&name.as_str()) {
            continue;
        }
        if entry
            .file_type()
            .map_err(|e| format!("cannot stat {}: {e}", entry.path().display()))?
            .is_file()
        {
            names.push(name);
        }
    }
    names.sort();
    Ok(names)
}

/// Diffs two output directories of the same figure run at different
/// thread counts.
///
/// Every non-manifest file (CSV, SVG, ...) must be byte-identical — the
/// workspace's parallel runtime promises bit-identical results. The
/// manifests are compared only on the [`DETERMINISTIC_PREFIXES`] slice of
/// counters, gauges (bit-exact), and series. Timing-bearing trace
/// artifacts (`trace.json`, `flame.svg`) are excluded from both the
/// file-set and the byte comparison — one side running with
/// `VAESA_TRACE=1` must not fail the gate.
///
/// # Errors
///
/// Returns every differing file or metric.
pub fn determinism(dir_a: &Path, dir_b: &Path) -> Result<String, String> {
    let names_a = sorted_files(dir_a)?;
    let names_b = sorted_files(dir_b)?;
    let mut report = String::new();
    let mut failures = String::new();

    if names_a != names_b {
        let _ = writeln!(
            failures,
            "file sets differ: {dir_a:?} has {names_a:?}, {dir_b:?} has {names_b:?}"
        );
    }

    for name in names_a.iter().filter(|n| names_b.contains(n)) {
        let path_a = dir_a.join(name);
        let path_b = dir_b.join(name);
        if name == "manifest.jsonl" {
            match (Manifest::load(&path_a), Manifest::load(&path_b)) {
                (Ok(a), Ok(b)) => diff_manifests(&a, &b, &mut report, &mut failures),
                (Err(e), _) | (_, Err(e)) => {
                    let _ = writeln!(failures, "{e}");
                }
            }
            continue;
        }
        let bytes_a =
            std::fs::read(&path_a).map_err(|e| format!("cannot read {}: {e}", path_a.display()))?;
        let bytes_b =
            std::fs::read(&path_b).map_err(|e| format!("cannot read {}: {e}", path_b.display()))?;
        if bytes_a == bytes_b {
            let _ = writeln!(report, "{name}: identical ({} bytes)", bytes_a.len());
        } else {
            let _ = writeln!(failures, "{name}: byte contents differ");
        }
    }

    if failures.is_empty() {
        Ok(report)
    } else {
        Err(failures)
    }
}

fn diff_manifests(a: &Manifest, b: &Manifest, report: &mut String, failures: &mut String) {
    let mut compared = 0usize;

    let counters_a: Vec<_> = a
        .counters
        .iter()
        .filter(|(n, _)| deterministic(n))
        .collect();
    let counters_b: Vec<_> = b
        .counters
        .iter()
        .filter(|(n, _)| deterministic(n))
        .collect();
    if counters_a != counters_b {
        let _ = writeln!(
            failures,
            "deterministic counters differ: {counters_a:?} vs {counters_b:?}"
        );
    }
    compared += counters_a.len();

    let gauges_a: Vec<_> = a
        .gauges
        .iter()
        .filter(|(n, _)| deterministic(n))
        .map(|(n, v)| (n, v.to_bits()))
        .collect();
    let gauges_b: Vec<_> = b
        .gauges
        .iter()
        .filter(|(n, _)| deterministic(n))
        .map(|(n, v)| (n, v.to_bits()))
        .collect();
    if gauges_a != gauges_b {
        let _ = writeln!(
            failures,
            "deterministic gauges differ (bit-exact compare): {gauges_a:?} vs {gauges_b:?}"
        );
    }
    compared += gauges_a.len();

    let series_a: Vec<_> = a
        .series
        .iter()
        .filter(|(n, _)| deterministic(n))
        .map(|(n, v)| (n, v.iter().map(|x| x.to_bits()).collect::<Vec<_>>()))
        .collect();
    let series_b: Vec<_> = b
        .series
        .iter()
        .filter(|(n, _)| deterministic(n))
        .map(|(n, v)| (n, v.iter().map(|x| x.to_bits()).collect::<Vec<_>>()))
        .collect();
    for ((name_a, va), (name_b, vb)) in series_a.iter().zip(&series_b) {
        if name_a != name_b || va != vb {
            let _ = writeln!(
                failures,
                "deterministic series differ: {name_a} vs {name_b}"
            );
        }
    }
    if series_a.len() != series_b.len() {
        let _ = writeln!(
            failures,
            "deterministic series sets differ: {} vs {} series",
            series_a.len(),
            series_b.len()
        );
    }
    compared += series_a.len();

    let _ = writeln!(
        report,
        "manifest.jsonl: {compared} deterministic metrics compared \
         (prefixes {DETERMINISTIC_PREFIXES:?})"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "vaesa_xtask_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    const GOOD_MANIFEST: &str = r#"{"record":"run","meta":{"dse.expected_evals":"288"}}
{"record":"counter","name":"dse.evals","value":288}
{"record":"gauge","name":"scheduler.hit_rate","value":0.12}
{"record":"series","name":"dse.bo.best_edp","values":[3,2,1]}
"#;

    #[test]
    fn metrics_gate_accepts_consistent_manifest() {
        let dir = temp_dir("mg_ok");
        let path = dir.join("manifest.jsonl");
        std::fs::write(&path, GOOD_MANIFEST).unwrap();
        let report = metrics_gate(&path).unwrap();
        assert!(report.contains("dse.evals = 288"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_gate_rejects_budget_mismatch_and_cold_cache() {
        let dir = temp_dir("mg_bad");
        let path = dir.join("manifest.jsonl");
        let bad = GOOD_MANIFEST
            .replace("\"value\":288", "\"value\":287")
            .replace("0.12", "0.0");
        std::fs::write(&path, bad).unwrap();
        let err = metrics_gate(&path).unwrap_err();
        assert!(err.contains("budget accounting broken"), "{err}");
        assert!(err.contains("scheduler cache never hit"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_gate_requires_a_trajectory() {
        let dir = temp_dir("mg_traj");
        let path = dir.join("manifest.jsonl");
        let no_series: String = GOOD_MANIFEST
            .lines()
            .filter(|l| !l.contains("series"))
            .collect::<Vec<_>>()
            .join("\n");
        std::fs::write(&path, no_series).unwrap();
        let err = metrics_gate(&path).unwrap_err();
        assert!(err.contains("no dse.<label>.best_edp"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn perf_gate_passes_within_tolerance_and_fails_past_it() {
        let dir = temp_dir("pg");
        let baseline = dir.join("BENCH_pr1.json");
        let current = dir.join("current.json");
        std::fs::write(&baseline, "{\"id\":\"g/a\",\"ns_per_iter\":100}\n").unwrap();
        std::fs::write(&current, "{\"id\":\"g/a\",\"ns_per_iter\":120}\n").unwrap();
        assert!(perf_gate(&current, &[&baseline], 0.25).is_ok());
        std::fs::write(&current, "{\"id\":\"g/a\",\"ns_per_iter\":130}\n").unwrap();
        let err = perf_gate(&current, &[&baseline], 0.25).unwrap_err();
        assert!(err.contains("g/a"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn precision_manifest(dir: &Path, name: &str, precision: &str, train_ns: u64) -> PathBuf {
        let path = dir.join(name);
        std::fs::write(
            &path,
            format!(
                "{{\"record\":\"run\",\"meta\":{{\"precision\":\"{precision}\"}}}}\n\
                 {{\"record\":\"span\",\"path\":\"bench/train\",\"count\":1,\
                   \"wall_ns_total\":{train_ns},\"cpu_ns_total\":0}}\n"
            ),
        )
        .unwrap();
        path
    }

    #[test]
    fn precision_gate_requires_f32_to_win() {
        let dir = temp_dir("prec");
        let f64m = precision_manifest(&dir, "f64.jsonl", "f64", 10_000_000);
        let fast = precision_manifest(&dir, "f32_fast.jsonl", "f32", 4_000_000);
        let report = precision_gate(&f64m, &fast, 0.0).unwrap();
        assert!(report.contains("bench/train"), "{report}");
        assert!(report.contains("2.50x"), "{report}");

        let slow = precision_manifest(&dir, "f32_slow.jsonl", "f32", 12_000_000);
        let err = precision_gate(&f64m, &slow, 0.0).unwrap_err();
        assert!(err.contains("f32 slower than f64"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn precision_gate_rejects_swapped_or_empty_inputs() {
        let dir = temp_dir("prec_bad");
        let f64m = precision_manifest(&dir, "f64.jsonl", "f64", 10_000_000);
        let f32m = precision_manifest(&dir, "f32.jsonl", "f32", 4_000_000);
        let err = precision_gate(&f32m, &f64m, 0.0).unwrap_err();
        assert!(err.contains("argument order"), "{err}");

        // A manifest with no gated spans must fail, not silently pass.
        let empty = dir.join("empty.jsonl");
        std::fs::write(&empty, "{\"record\":\"run\",\"meta\":{}}\n").unwrap();
        let err = precision_gate(&empty, &empty, 0.0).unwrap_err();
        assert!(err.contains("nothing was compared"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn write_run(dir: &Path, csv: &str, evals: u64, hits: f64) {
        std::fs::write(dir.join("fig.csv"), csv).unwrap();
        std::fs::write(
            dir.join("manifest.jsonl"),
            format!(
                "{{\"record\":\"run\",\"meta\":{{}}}}\n\
                 {{\"record\":\"counter\",\"name\":\"dse.evals\",\"value\":{evals}}}\n\
                 {{\"record\":\"gauge\",\"name\":\"scheduler.hits\",\"value\":{hits}}}\n\
                 {{\"record\":\"series\",\"name\":\"dse.bo.best_edp\",\"values\":[3,2]}}\n"
            ),
        )
        .unwrap();
    }

    #[test]
    fn determinism_ignores_scheduler_metrics_but_not_dse_metrics() {
        let a = temp_dir("det_a");
        let b = temp_dir("det_b");
        // Same results, different scheduler cache behaviour: passes.
        write_run(&a, "1,2\n", 288, 10.0);
        write_run(&b, "1,2\n", 288, 99.0);
        determinism(&a, &b).unwrap();
        // A deterministic counter differs: fails.
        write_run(&b, "1,2\n", 287, 10.0);
        let err = determinism(&a, &b).unwrap_err();
        assert!(err.contains("deterministic counters differ"), "{err}");
        let _ = std::fs::remove_dir_all(&a);
        let _ = std::fs::remove_dir_all(&b);
    }

    #[test]
    fn determinism_ignores_timing_bearing_trace_artifacts() {
        let a = temp_dir("det_trace_a");
        let b = temp_dir("det_trace_b");
        write_run(&a, "1,2\n", 288, 10.0);
        write_run(&b, "1,2\n", 288, 10.0);
        // Only one side was traced, and its timeline is unique — both
        // facts must be invisible to the gate.
        std::fs::write(a.join("trace.json"), "{\"traceEvents\":[]}").unwrap();
        std::fs::write(a.join("flame.svg"), "<svg/>").unwrap();
        determinism(&a, &b).unwrap();
        std::fs::write(b.join("trace.json"), "{\"traceEvents\":[{}]}").unwrap();
        std::fs::write(b.join("flame.svg"), "<svg></svg>").unwrap();
        determinism(&a, &b).unwrap();
        let _ = std::fs::remove_dir_all(&a);
        let _ = std::fs::remove_dir_all(&b);
    }

    #[test]
    fn determinism_byte_compares_result_files() {
        let a = temp_dir("det_csv_a");
        let b = temp_dir("det_csv_b");
        write_run(&a, "1,2\n", 288, 10.0);
        write_run(&b, "1,3\n", 288, 10.0);
        let err = determinism(&a, &b).unwrap_err();
        assert!(err.contains("fig.csv: byte contents differ"), "{err}");
        let _ = std::fs::remove_dir_all(&a);
        let _ = std::fs::remove_dir_all(&b);
    }
}
