//! Reader for the criterion shim's `VAESA_BENCH_JSON` capture format:
//! one `{"id":"...","ns_per_iter":...}` line per benchmark.
//!
//! Baselines are the checked-in `BENCH_pr*.json` files. Loading several
//! in PR order upserts by id, so a later PR's re-measurement of the same
//! benchmark supersedes the earlier baseline — the same replace-don't-
//! accumulate rule the shim applies within one file.

use std::collections::BTreeMap;
use std::path::Path;

/// Parses one capture file into id → median ns/iter.
///
/// # Errors
///
/// Returns a message naming the offending line on malformed entries.
pub fn parse_capture(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut map = BTreeMap::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let v = serde_json::parse_value(raw).map_err(|e| format!("line {line}: {e}"))?;
        let Some(serde::Value::Str(id)) = v.get("id") else {
            return Err(format!("line {line}: missing string field `id`"));
        };
        let ns = v
            .get("ns_per_iter")
            .and_then(serde::Value::as_f64)
            .ok_or_else(|| format!("line {line}: missing numeric field `ns_per_iter`"))?;
        map.insert(id.clone(), ns);
    }
    Ok(map)
}

/// Loads baseline files in order, later files overriding earlier ids.
///
/// # Errors
///
/// Propagates read and parse failures, prefixed with the path.
pub fn load_baselines(paths: &[impl AsRef<Path>]) -> Result<BTreeMap<String, f64>, String> {
    let mut merged = BTreeMap::new();
    for path in paths {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let one = parse_capture(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        merged.extend(one);
    }
    Ok(merged)
}

/// One benchmark's baseline-vs-current comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Benchmark id (`group/name`).
    pub id: String,
    /// Baseline median ns/iter.
    pub baseline_ns: f64,
    /// Freshly measured median ns/iter.
    pub current_ns: f64,
    /// `current / baseline - 1`; positive means slower.
    pub delta: f64,
}

impl Comparison {
    /// Whether this benchmark regressed past `tolerance` (e.g. `0.25`).
    pub fn regressed(&self, tolerance: f64) -> bool {
        self.delta > tolerance
    }
}

/// Compares every current benchmark that has a baseline, sorted by id.
///
/// Ids present only in `current` are new benchmarks (no baseline yet) and
/// are skipped; the caller reports them separately.
pub fn compare(
    baseline: &BTreeMap<String, f64>,
    current: &BTreeMap<String, f64>,
) -> Vec<Comparison> {
    current
        .iter()
        .filter_map(|(id, &current_ns)| {
            let &baseline_ns = baseline.get(id)?;
            Some(Comparison {
                id: id.clone(),
                baseline_ns,
                current_ns,
                delta: current_ns / baseline_ns - 1.0,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_shim_capture_lines() {
        let map = parse_capture(
            "{\"id\":\"vae_gd/b16\",\"ns_per_iter\":1823572.3}\n\
             {\"id\":\"nn/matmul\",\"ns_per_iter\":100.0}\n",
        )
        .unwrap();
        assert_eq!(map["vae_gd/b16"], 1823572.3);
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn later_baselines_override_earlier_ids() {
        let a: BTreeMap<_, _> = parse_capture("{\"id\":\"x\",\"ns_per_iter\":100}").unwrap();
        let b: BTreeMap<_, _> = parse_capture("{\"id\":\"x\",\"ns_per_iter\":80}").unwrap();
        let mut merged = a;
        merged.extend(b);
        assert_eq!(merged["x"], 80.0);
    }

    #[test]
    fn compare_flags_only_regressions_past_tolerance() {
        let baseline: BTreeMap<_, _> = [("x".to_string(), 100.0), ("y".to_string(), 100.0)]
            .into_iter()
            .collect();
        let current: BTreeMap<_, _> = [
            ("x".to_string(), 120.0),
            ("y".to_string(), 130.0),
            ("z".to_string(), 1.0), // no baseline: skipped
        ]
        .into_iter()
        .collect();
        let cmps = compare(&baseline, &current);
        assert_eq!(cmps.len(), 2);
        assert!(!cmps[0].regressed(0.25), "20% slower is within 25%");
        assert!(cmps[1].regressed(0.25), "30% slower breaches 25%");
    }
}
