//! Cross-run telemetry: an append-only history of per-run metric
//! records, trend charts over that history, and a regression gate on
//! gated span wall-times.
//!
//! Every figure run already writes a `manifest.jsonl`; [`ingest`]
//! compacts one manifest into a single [`HistoryRecord`] JSON line
//! appended to `results/telemetry/history.jsonl`. Records are keyed by
//! `run_id@git_rev`, so re-ingesting the same run is a no-op (CI can
//! call `ingest` unconditionally) while history still grows one record
//! per commit per figure. [`render_trends`] draws per-metric SVG charts
//! over the history, and [`trend_gate`] fails when a gated span's
//! wall-time regresses more than a tolerance past the trailing median
//! of its prior runs with the same `(run_id, threads, cpu_features)`
//! shape (SIMD feature sets change absolute wall-times, so histories
//! from different machines never gate each other).

use crate::manifest::Manifest;
use serde::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;
use vaesa_plot::{LineChart, Series};

/// Counters worth tracking across runs.
pub const KEY_COUNTERS: &[&str] = &[
    "dse.evals",
    "nn.adam.steps",
    "accel.snaps",
    "plot.charts_rendered",
    "flow.cache.hits",
    "flow.cache.misses",
];

/// Gauges worth tracking across runs.
pub const KEY_GAUGES: &[&str] = &["scheduler.hit_rate", "process.peak_rss_bytes"];

/// Span paths whose wall-time regressions fail [`trend_gate`].
pub const GATED_SPANS: &[&str] = &["bench/dataset", "bench/train", "dse/run", "train/epoch"];

/// Default regression tolerance: latest wall-time may exceed the
/// trailing median of prior runs by at most this fraction.
pub const DEFAULT_TREND_TOLERANCE: f64 = 0.25;

/// Minimum prior records a gated span needs before the trend gate judges
/// it: a median over one or two points is dominated by noise, so shorter
/// histories are skipped with a logged notice instead of being gated.
pub const MIN_TREND_HISTORY: usize = 3;

/// One compact per-run record of the history file.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryRecord {
    /// Dedupe key: `run_id@git_rev`.
    pub key: String,
    /// The run id from the manifest meta (`{bin}-seed{S}-scale{C}`).
    pub run_id: String,
    /// Figure binary name.
    pub bin: String,
    /// Git revision the run was built from.
    pub git_rev: String,
    /// `VAESA_THREADS` shape of the run.
    pub threads: u64,
    /// RNG seed of the run.
    pub seed: u64,
    /// Detected CPU SIMD features of the machine that produced the run
    /// (e.g. `avx2+avx512f+fma`); `unknown` for records ingested before
    /// the field existed. Wall-times from different feature sets are not
    /// comparable, so trend groups include this.
    pub cpu_features: String,
    /// Tracked counter values ([`KEY_COUNTERS`] ∩ manifest).
    pub counters: BTreeMap<String, u64>,
    /// Tracked gauge values ([`KEY_GAUGES`] ∩ manifest).
    pub gauges: BTreeMap<String, f64>,
    /// Total wall nanoseconds of *every* span in the manifest.
    pub span_wall_ns: BTreeMap<String, u64>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl HistoryRecord {
    /// Builds a record from a parsed manifest.
    ///
    /// # Errors
    ///
    /// Returns a message when the manifest's `run` meta lacks any of
    /// `run_id`, `bin`, `git_rev`, `threads`, or `seed`.
    pub fn from_manifest(m: &Manifest) -> Result<Self, String> {
        let meta_str = |key: &str| -> Result<String, String> {
            m.meta
                .get(key)
                .cloned()
                .ok_or_else(|| format!("manifest meta lacks `{key}`"))
        };
        let meta_u64 = |key: &str| -> Result<u64, String> {
            m.meta_u64(key)
                .ok_or_else(|| format!("manifest meta lacks numeric `{key}`"))
        };
        let run_id = meta_str("run_id")?;
        let git_rev = meta_str("git_rev")?;
        let mut counters = BTreeMap::new();
        for name in KEY_COUNTERS {
            if let Some(v) = m.counter(name) {
                counters.insert(name.to_string(), v);
            }
        }
        let mut gauges = BTreeMap::new();
        for name in KEY_GAUGES {
            if let Some(v) = m.gauge(name) {
                if v.is_finite() {
                    gauges.insert(name.to_string(), v);
                }
            }
        }
        let span_wall_ns = m
            .spans
            .iter()
            .map(|(path, s)| (path.clone(), s.wall_ns_total))
            .collect();
        Ok(HistoryRecord {
            key: format!("{run_id}@{git_rev}"),
            run_id,
            bin: meta_str("bin")?,
            git_rev,
            threads: meta_u64("threads")?,
            seed: meta_u64("seed")?,
            cpu_features: m
                .meta
                .get("cpu_features")
                .cloned()
                .unwrap_or_else(|| "unknown".to_string()),
            counters,
            gauges,
            span_wall_ns,
        })
    }

    /// Serializes the record as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"key\":\"{}\",\"run_id\":\"{}\",\"bin\":\"{}\",\"git_rev\":\"{}\",\"threads\":{},\"seed\":{},\"cpu_features\":\"{}\"",
            json_escape(&self.key),
            json_escape(&self.run_id),
            json_escape(&self.bin),
            json_escape(&self.git_rev),
            self.threads,
            self.seed,
            json_escape(&self.cpu_features),
        );
        out.push_str(",\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", json_escape(name));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", json_escape(name));
        }
        out.push_str("},\"span_wall_ns\":{");
        for (i, (path, v)) in self.span_wall_ns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", json_escape(path));
        }
        out.push_str("}}");
        out
    }

    fn parse(v: &Value, line: usize) -> Result<Self, String> {
        let str_field = |key: &str| -> Result<String, String> {
            match v.get(key) {
                Some(Value::Str(s)) => Ok(s.clone()),
                _ => Err(format!("line {line}: missing string field `{key}`")),
            }
        };
        let u64_field = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("line {line}: missing u64 field `{key}`"))
        };
        let u64_map = |key: &str| -> Result<BTreeMap<String, u64>, String> {
            let Some(Value::Map(entries)) = v.get(key) else {
                return Err(format!("line {line}: missing object field `{key}`"));
            };
            entries
                .iter()
                .map(|(k, val)| {
                    val.as_u64()
                        .map(|n| (k.clone(), n))
                        .ok_or_else(|| format!("line {line}: `{key}.{k}` is not a u64"))
                })
                .collect()
        };
        let gauges = {
            let Some(Value::Map(entries)) = v.get("gauges") else {
                return Err(format!("line {line}: missing object field `gauges`"));
            };
            entries
                .iter()
                .map(|(k, val)| {
                    val.as_f64()
                        .map(|n| (k.clone(), n))
                        .ok_or_else(|| format!("line {line}: `gauges.{k}` is not a number"))
                })
                .collect::<Result<BTreeMap<_, _>, _>>()?
        };
        Ok(HistoryRecord {
            key: str_field("key")?,
            run_id: str_field("run_id")?,
            bin: str_field("bin")?,
            git_rev: str_field("git_rev")?,
            threads: u64_field("threads")?,
            seed: u64_field("seed")?,
            // Optional: history lines written before the field existed
            // parse as "unknown" rather than failing the whole file.
            cpu_features: match v.get("cpu_features") {
                Some(Value::Str(s)) => s.clone(),
                _ => "unknown".to_string(),
            },
            counters: u64_map("counters")?,
            gauges,
            span_wall_ns: u64_map("span_wall_ns")?,
        })
    }
}

/// Loads the history file, oldest record first. A missing file is an
/// empty history, not an error.
///
/// # Errors
///
/// Returns a message naming the offending line on malformed records.
pub fn load_history(path: &Path) -> Result<Vec<HistoryRecord>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
    };
    let mut records = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let v = serde_json::parse_value(raw)
            .map_err(|e| format!("{}: line {line}: invalid JSON: {e}", path.display()))?;
        records
            .push(HistoryRecord::parse(&v, line).map_err(|e| format!("{}: {e}", path.display()))?);
    }
    Ok(records)
}

/// Appends the manifest at `manifest_path` to the history at
/// `history_path` as one compact record. Idempotent: if a record with
/// the same `run_id@git_rev` key already exists, nothing is written.
///
/// # Errors
///
/// Propagates manifest/history load failures and write failures.
pub fn ingest(manifest_path: &Path, history_path: &Path) -> Result<String, String> {
    let manifest = Manifest::load(manifest_path)?;
    let record = HistoryRecord::from_manifest(&manifest)?;
    let history = load_history(history_path)?;
    if history.iter().any(|r| r.key == record.key) {
        return Ok(format!(
            "{} already ingested (key {}), history unchanged at {} record(s)\n",
            manifest_path.display(),
            record.key,
            history.len()
        ));
    }
    if let Some(parent) = history_path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
    }
    let mut text = String::new();
    for r in &history {
        text.push_str(&r.to_json_line());
        text.push('\n');
    }
    text.push_str(&record.to_json_line());
    text.push('\n');
    std::fs::write(history_path, text)
        .map_err(|e| format!("cannot write {}: {e}", history_path.display()))?;
    Ok(format!(
        "ingested {} as {} ({} record(s) total)\n",
        manifest_path.display(),
        record.key,
        history.len() + 1
    ))
}

fn median(sorted: &mut [u64]) -> u64 {
    sorted.sort_unstable();
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2
    }
}

/// Runs the trend gate over in-memory records: within each
/// `(run_id, threads, cpu_features)` group, the latest record's gated
/// span wall-times must not exceed the trailing median of all prior
/// records by more than `tolerance` (fractional). Spans with fewer than
/// [`MIN_TREND_HISTORY`] prior measurements are skipped with a logged
/// notice — too little history for a meaningful median.
///
/// # Errors
///
/// Returns the list of regressions when any gated span fails.
pub fn trend_gate_records(records: &[HistoryRecord], tolerance: f64) -> Result<String, String> {
    let mut groups: BTreeMap<(String, u64, String), Vec<&HistoryRecord>> = BTreeMap::new();
    for r in records {
        groups
            .entry((r.run_id.clone(), r.threads, r.cpu_features.clone()))
            .or_default()
            .push(r);
    }
    let mut report = String::new();
    let mut failures = String::new();
    for ((run_id, threads, cpu), group) in &groups {
        let (latest, priors) = group.split_last().expect("groups are non-empty");
        if priors.is_empty() {
            let _ = writeln!(
                report,
                "{run_id} (threads={threads}, cpu={cpu}): first record, nothing to compare"
            );
            continue;
        }
        for span in GATED_SPANS {
            let Some(&current) = latest.span_wall_ns.get(*span) else {
                continue;
            };
            let mut prior: Vec<u64> = priors
                .iter()
                .filter_map(|r| r.span_wall_ns.get(*span).copied())
                .collect();
            if prior.is_empty() {
                continue;
            }
            if prior.len() < MIN_TREND_HISTORY {
                let _ = writeln!(
                    report,
                    "{run_id} (threads={threads}, cpu={cpu}) {span}: skipped, only {} prior \
                     record(s) (need {MIN_TREND_HISTORY} for a stable median)",
                    prior.len()
                );
                continue;
            }
            let baseline = median(&mut prior);
            let ratio = current as f64 / baseline.max(1) as f64;
            let line = format!(
                "{run_id} (threads={threads}, cpu={cpu}) {span}: {:.1}ms vs median {:.1}ms ({:+.1}%)",
                current as f64 / 1e6,
                baseline as f64 / 1e6,
                (ratio - 1.0) * 100.0
            );
            if ratio > 1.0 + tolerance {
                let _ = writeln!(
                    failures,
                    "{line} exceeds tolerance {:.0}%",
                    tolerance * 100.0
                );
            } else {
                let _ = writeln!(report, "{line}");
            }
        }
    }
    if records.is_empty() {
        let _ = writeln!(report, "history is empty, nothing to gate");
    }
    if failures.is_empty() {
        Ok(report)
    } else {
        Err(failures)
    }
}

/// Loads the history file and runs [`trend_gate_records`] over it.
///
/// # Errors
///
/// Propagates load failures and gate failures.
pub fn trend_gate(history_path: &Path, tolerance: f64) -> Result<String, String> {
    let records = load_history(history_path)?;
    trend_gate_records(&records, tolerance)
}

fn metric_file_name(metric: &str) -> String {
    let slug: String = metric
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    format!("trend_{slug}.svg")
}

/// Renders one SVG trend chart per tracked metric (gated span
/// wall-times in milliseconds, then [`KEY_GAUGES`]) into `out_dir`, one
/// series per `(run_id, threads, cpu_features)` group, x = record index
/// within the group. Metrics absent from every record are skipped. Returns a
/// report naming each chart written.
///
/// # Errors
///
/// Propagates history load failures and write failures.
pub fn render_trends(history_path: &Path, out_dir: &Path) -> Result<String, String> {
    let records = load_history(history_path)?;
    if records.is_empty() {
        return Ok("history is empty, no trend charts written\n".to_string());
    }
    let mut groups: BTreeMap<(String, u64, String), Vec<&HistoryRecord>> = BTreeMap::new();
    for r in &records {
        groups
            .entry((r.run_id.clone(), r.threads, r.cpu_features.clone()))
            .or_default()
            .push(r);
    }
    std::fs::create_dir_all(out_dir)
        .map_err(|e| format!("cannot create {}: {e}", out_dir.display()))?;
    let mut report = String::new();

    fn span_values(r: &HistoryRecord, metric: &str) -> Option<f64> {
        r.span_wall_ns.get(metric).map(|&ns| ns as f64 / 1e6)
    }
    fn gauge_values(r: &HistoryRecord, metric: &str) -> Option<f64> {
        r.gauges.get(metric).copied()
    }
    type Extract = fn(&HistoryRecord, &str) -> Option<f64>;

    let families: [(&[&str], &str, Extract); 2] = [
        (GATED_SPANS, "wall ms", span_values),
        (KEY_GAUGES, "value", gauge_values),
    ];
    for (metrics, y_label, extract) in families {
        for metric in metrics {
            let mut chart = LineChart::new(format!("{metric} across runs"), "run", y_label);
            let mut any = false;
            for ((run_id, threads, cpu), group) in &groups {
                let points: Vec<(f64, f64)> = group
                    .iter()
                    .enumerate()
                    .filter_map(|(i, r)| extract(r, metric).map(|v| (i as f64, v)))
                    .collect();
                if points.is_empty() {
                    continue;
                }
                any = true;
                chart.series(Series::new(format!("{run_id} t{threads} {cpu}"), points));
            }
            if !any {
                continue;
            }
            let path = out_dir.join(metric_file_name(metric));
            std::fs::write(&path, chart.render())
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            let _ = writeln!(report, "wrote {}", path.display());
        }
    }
    if report.is_empty() {
        report.push_str("no tracked metrics present in history, nothing written\n");
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest_text(run_id: &str, git_rev: &str, dse_run_ns: u64) -> String {
        format!(
            "{{\"record\":\"run\",\"meta\":{{\"bin\":\"fig11\",\"run_id\":\"{run_id}\",\"git_rev\":\"{git_rev}\",\"threads\":\"2\",\"seed\":\"7\"}}}}\n\
             {{\"record\":\"counter\",\"name\":\"dse.evals\",\"value\":288}}\n\
             {{\"record\":\"counter\",\"name\":\"untracked.counter\",\"value\":5}}\n\
             {{\"record\":\"gauge\",\"name\":\"scheduler.hit_rate\",\"value\":0.5}}\n\
             {{\"record\":\"span\",\"path\":\"dse/run\",\"count\":3,\"wall_ns_total\":{dse_run_ns},\"cpu_ns_total\":0}}\n"
        )
    }

    fn record(run_id: &str, git_rev: &str, dse_run_ns: u64) -> HistoryRecord {
        let m = Manifest::parse(&manifest_text(run_id, git_rev, dse_run_ns)).unwrap();
        HistoryRecord::from_manifest(&m).unwrap()
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("vaesa_telemetry_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn record_compacts_manifest_and_round_trips_through_json() {
        let r = record("fig11-seed7-scale1", "abc123", 900);
        assert_eq!(r.key, "fig11-seed7-scale1@abc123");
        assert_eq!(r.counters["dse.evals"], 288);
        assert!(!r.counters.contains_key("untracked.counter"));
        assert_eq!(r.gauges["scheduler.hit_rate"], 0.5);
        assert_eq!(r.span_wall_ns["dse/run"], 900);

        let line = r.to_json_line();
        let v = serde_json::parse_value(&line).unwrap();
        let parsed = HistoryRecord::parse(&v, 1).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn cpu_features_default_and_grouping() {
        // Manifests (and old history lines) without cpu_features parse as
        // "unknown" and still round-trip.
        let r = record("fig11-seed7-scale1", "abc", 900);
        assert_eq!(r.cpu_features, "unknown");

        // A manifest that carries the meta key keeps it, and runs from
        // different feature sets land in different trend groups: four
        // "unknown" priors plus a slow "avx2" record must not fail the
        // gate (the avx2 group is a first record).
        let mut text = manifest_text("fig11-seed7-scale1", "zzz", 9_000_000);
        text = text.replace(
            "\"seed\":\"7\"",
            "\"seed\":\"7\",\"cpu_features\":\"avx2+fma\"",
        );
        let m = Manifest::parse(&text).unwrap();
        let avx = HistoryRecord::from_manifest(&m).unwrap();
        assert_eq!(avx.cpu_features, "avx2+fma");
        let v = serde_json::parse_value(&avx.to_json_line()).unwrap();
        assert_eq!(HistoryRecord::parse(&v, 1).unwrap(), avx);

        let id = "fig11-seed7-scale1";
        let mut records = vec![
            record(id, "r1", 1_000_000),
            record(id, "r2", 1_000_000),
            record(id, "r3", 1_000_000),
            record(id, "r4", 1_000_000),
        ];
        records.push(avx);
        let report = trend_gate_records(&records, DEFAULT_TREND_TOLERANCE).unwrap();
        assert!(report.contains("cpu=avx2+fma): first record"), "{report}");
    }

    #[test]
    fn ingest_is_idempotent_per_run_and_rev() {
        let dir = temp_dir("ingest");
        let manifest = dir.join("manifest.jsonl");
        let history = dir.join("telemetry/history.jsonl");
        std::fs::write(&manifest, manifest_text("fig11-seed7-scale1", "abc", 900)).unwrap();

        ingest(&manifest, &history).unwrap();
        let again = ingest(&manifest, &history).unwrap();
        assert!(again.contains("already ingested"), "{again}");
        assert_eq!(load_history(&history).unwrap().len(), 1);

        // Same run id at a new revision is a new record.
        std::fs::write(&manifest, manifest_text("fig11-seed7-scale1", "def", 950)).unwrap();
        ingest(&manifest, &history).unwrap();
        assert_eq!(load_history(&history).unwrap().len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trend_gate_passes_steady_history_and_fails_regressions() {
        let id = "fig11-seed7-scale1";
        let steady = vec![
            record(id, "r1", 1_000_000),
            record(id, "r2", 1_100_000),
            record(id, "r3", 1_050_000),
            record(id, "r4", 1_020_000),
        ];
        let report = trend_gate_records(&steady, DEFAULT_TREND_TOLERANCE).unwrap();
        assert!(report.contains("dse/run"), "{report}");
        assert!(!report.contains("skipped"), "{report}");

        let mut regressed = steady.clone();
        regressed.push(record(id, "r5", 2_000_000));
        let err = trend_gate_records(&regressed, DEFAULT_TREND_TOLERANCE).unwrap_err();
        assert!(err.contains("dse/run"), "{err}");
        assert!(err.contains("exceeds tolerance"), "{err}");
    }

    #[test]
    fn trend_gate_skips_spans_with_short_history_loudly() {
        // Three records = two priors: below MIN_TREND_HISTORY, so even a
        // gross regression must be skipped — but with a notice, not
        // silently.
        let id = "fig11-seed7-scale1";
        let short = vec![
            record(id, "r1", 1_000_000),
            record(id, "r2", 1_100_000),
            record(id, "r3", 9_000_000),
        ];
        let report = trend_gate_records(&short, DEFAULT_TREND_TOLERANCE).unwrap();
        assert!(report.contains("skipped, only 2 prior"), "{report}");
        assert!(report.contains("dse/run"), "{report}");
    }

    #[test]
    fn trend_gate_tolerates_first_records_and_empty_history() {
        let first = vec![record("fig11-seed7-scale1", "r1", 1_000_000)];
        let report = trend_gate_records(&first, DEFAULT_TREND_TOLERANCE).unwrap();
        assert!(report.contains("first record"), "{report}");
        let empty = trend_gate_records(&[], DEFAULT_TREND_TOLERANCE).unwrap();
        assert!(empty.contains("empty"), "{empty}");
        assert!(load_history(Path::new("/nonexistent/history.jsonl"))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn render_trends_writes_one_chart_per_present_metric() {
        let dir = temp_dir("trends");
        let history = dir.join("history.jsonl");
        let mut text = String::new();
        for (rev, ns) in [("r1", 1_000_000u64), ("r2", 1_200_000)] {
            text.push_str(&record("fig11-seed7-scale1", rev, ns).to_json_line());
            text.push('\n');
        }
        std::fs::write(&history, text).unwrap();
        let report = render_trends(&history, &dir).unwrap();
        assert!(report.contains("trend_dse_run.svg"), "{report}");
        let svg = std::fs::read_to_string(dir.join("trend_dse_run.svg")).unwrap();
        assert!(svg.starts_with("<svg"));
        assert!(!dir.join(metric_file_name("bench/train")).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
