//! `xtask prom-check` and `xtask slo-gate`: validators for the daemon's
//! Prometheus exposition and a declarative SLO threshold gate.
//!
//! `prom-check` proves a scraped snapshot is well-formed beyond merely
//! parsing: every sample belongs to a declared `# TYPE` family (modulo
//! the `_sum`/`_count`/`_bucket` suffixes), histogram bucket counts are
//! cumulative-monotone and end at `+Inf`, and summary `quantile` labels
//! are probabilities.
//!
//! `slo-gate` reads a thresholds file of lines
//!
//! ```text
//! # comment
//! serve_predict_latency_ns:p99 <= 250000000
//! serve_http_error_rate        <= 0.05
//! serve_http_inflight          <  64
//! ```
//!
//! and fails when any live value violates its bound (or is missing —
//! an absent SLO metric is a failure, not a skip).

use std::path::Path;
use vaesa_obs::{parse_prometheus, PromSnapshot};

/// Validates a Prometheus text snapshot file.
///
/// # Errors
///
/// Returns the accumulated violation list (parse errors, samples outside
/// any declared family, broken histogram invariants, bad quantile
/// labels).
pub fn prom_check(path: &Path) -> Result<String, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}\n", path.display()))?;
    let snap = parse_prometheus(&text).map_err(|e| format!("{}: {e}\n", path.display()))?;
    let mut failures = Vec::new();

    if snap.samples.is_empty() {
        failures.push("snapshot carries no samples".to_string());
    }
    for sample in &snap.samples {
        if family_of(&snap, &sample.name).is_none() {
            failures.push(format!("sample {} has no # TYPE declaration", sample.name));
        }
    }
    for (family, kind) in &snap.types {
        match kind.as_str() {
            "histogram" => check_histogram(&snap, family, &mut failures),
            "summary" => check_summary(&snap, family, &mut failures),
            "counter" | "gauge" => {}
            other => failures.push(format!("family {family} has unknown type {other:?}")),
        }
    }

    if failures.is_empty() {
        Ok(format!(
            "{} samples across {} families, all well-formed\n",
            snap.samples.len(),
            snap.types.len()
        ))
    } else {
        Err(failures.join("\n") + "\n")
    }
}

/// The declared family a sample belongs to, accounting for the
/// `_sum`/`_count`/`_bucket` suffixes of histogram and summary families.
fn family_of<'a>(snap: &'a PromSnapshot, sample: &str) -> Option<&'a str> {
    if snap.types.contains_key(sample) {
        return snap.types.get_key_value(sample).map(|(k, _)| k.as_str());
    }
    for suffix in ["_sum", "_count", "_bucket"] {
        if let Some(base) = sample.strip_suffix(suffix) {
            if let Some((k, _)) = snap.types.get_key_value(base) {
                return Some(k.as_str());
            }
        }
    }
    None
}

fn check_histogram(snap: &PromSnapshot, family: &str, failures: &mut Vec<String>) {
    let bucket_name = format!("{family}_bucket");
    let mut buckets: Vec<(f64, f64)> = snap
        .samples_named(&bucket_name)
        .filter_map(|s| {
            let le = s.label("le")?;
            let bound = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse().ok()?
            };
            Some((bound, s.value))
        })
        .collect();
    if buckets.is_empty() {
        failures.push(format!("histogram {family} has no buckets"));
        return;
    }
    buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
    if buckets.last().is_some_and(|(b, _)| b.is_finite()) {
        failures.push(format!("histogram {family} is missing the +Inf bucket"));
    }
    for pair in buckets.windows(2) {
        if pair[1].1 < pair[0].1 {
            failures.push(format!(
                "histogram {family} bucket counts are not cumulative at le={}",
                pair[1].0
            ));
        }
    }
    let count = snap.value(&format!("{family}_count"));
    match (count, buckets.last()) {
        (Some(count), Some((_, inf))) if count != *inf => failures.push(format!(
            "histogram {family}: +Inf bucket {inf} != _count {count}"
        )),
        (None, _) => failures.push(format!("histogram {family} is missing _count")),
        _ => {}
    }
    if snap.value(&format!("{family}_sum")).is_none() {
        failures.push(format!("histogram {family} is missing _sum"));
    }
}

fn check_summary(snap: &PromSnapshot, family: &str, failures: &mut Vec<String>) {
    for sample in snap.samples_named(family) {
        match sample.label("quantile").map(str::parse::<f64>) {
            Some(Ok(q)) if (0.0..=1.0).contains(&q) => {}
            Some(_) => failures.push(format!(
                "summary {family} has a quantile label outside [0, 1]"
            )),
            None => failures.push(format!(
                "summary {family} has a sample without a quantile label"
            )),
        }
    }
}

/// One parsed SLO threshold: `metric[:pNN] <op> <value>`.
#[derive(Debug, Clone, PartialEq)]
pub struct SloRule {
    /// Metric name (Prometheus-sanitized) the rule reads.
    pub metric: String,
    /// Quantile to resolve on a histogram/summary family, if any.
    pub quantile: Option<f64>,
    /// Comparison operator: `<=`, `<`, `>=`, or `>`.
    pub op: String,
    /// The bound the live value is compared against.
    pub bound: f64,
}

impl SloRule {
    fn holds(&self, value: f64) -> bool {
        match self.op.as_str() {
            "<=" => value <= self.bound,
            "<" => value < self.bound,
            ">=" => value >= self.bound,
            ">" => value > self.bound,
            _ => false,
        }
    }

    fn target(&self) -> String {
        match self.quantile {
            Some(q) => format!("{}:p{:.0}", self.metric, q * 100.0),
            None => self.metric.clone(),
        }
    }
}

/// Parses an SLO thresholds file (one rule per line; `#` comments and
/// blank lines ignored).
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn parse_slo_file(text: &str) -> Result<Vec<SloRule>, String> {
    let mut rules = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        let [target, op, bound] = parts.as_slice() else {
            return Err(format!(
                "line {}: expected `<metric>[:pNN] <op> <value>`, got {line:?}",
                lineno + 1
            ));
        };
        if !matches!(*op, "<=" | "<" | ">=" | ">") {
            return Err(format!("line {}: unknown operator {op:?}", lineno + 1));
        }
        let bound: f64 = bound
            .parse()
            .map_err(|_| format!("line {}: unparseable bound {bound:?}", lineno + 1))?;
        let (metric, quantile) = match target.split_once(":p") {
            Some((base, pct)) => {
                let pct: f64 = pct
                    .parse()
                    .map_err(|_| format!("line {}: unparseable quantile {target:?}", lineno + 1))?;
                if !(0.0..=100.0).contains(&pct) {
                    return Err(format!("line {}: quantile outside [0, 100]", lineno + 1));
                }
                (base.to_string(), Some(pct / 100.0))
            }
            None => (target.to_string(), None),
        };
        rules.push(SloRule {
            metric,
            quantile,
            op: op.to_string(),
            bound,
        });
    }
    Ok(rules)
}

/// Gates a scraped Prometheus snapshot against an SLO thresholds file.
///
/// # Errors
///
/// Returns the list of violated (or unresolvable) rules.
pub fn slo_gate(snapshot: &Path, slo: &Path) -> Result<String, String> {
    let text = std::fs::read_to_string(snapshot)
        .map_err(|e| format!("cannot read {}: {e}\n", snapshot.display()))?;
    let snap = parse_prometheus(&text).map_err(|e| format!("{}: {e}\n", snapshot.display()))?;
    let rules_text = std::fs::read_to_string(slo)
        .map_err(|e| format!("cannot read {}: {e}\n", slo.display()))?;
    let rules = parse_slo_file(&rules_text).map_err(|e| e + "\n")?;
    if rules.is_empty() {
        return Err(format!("{} declares no SLO rules\n", slo.display()));
    }

    let mut report = String::new();
    let mut failures = Vec::new();
    for rule in &rules {
        let value = match rule.quantile {
            Some(q) => snap.quantile(&rule.metric, q),
            None => snap.value(&rule.metric),
        };
        match value {
            Some(value) if rule.holds(value) => {
                report.push_str(&format!(
                    "  ok   {} = {value} {} {}\n",
                    rule.target(),
                    rule.op,
                    rule.bound
                ));
            }
            Some(value) => failures.push(format!(
                "  FAIL {} = {value}, want {} {}",
                rule.target(),
                rule.op,
                rule.bound
            )),
            None => failures.push(format!(
                "  FAIL {} is absent from the snapshot",
                rule.target()
            )),
        }
    }
    if failures.is_empty() {
        Ok(format!("{} rules satisfied\n{report}", rules.len()))
    } else {
        Err(failures.join("\n") + "\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    const SNAPSHOT: &str = concat!(
        "# TYPE serve_http_requests counter\n",
        "serve_http_requests 12\n",
        "# TYPE serve_http_error_rate gauge\n",
        "serve_http_error_rate 0.0\n",
        "# TYPE serve_predict_latency_ns histogram\n",
        "serve_predict_latency_ns_bucket{le=\"1000000\"} 10\n",
        "serve_predict_latency_ns_bucket{le=\"+Inf\"} 12\n",
        "serve_predict_latency_ns_sum 9000000\n",
        "serve_predict_latency_ns_count 12\n",
    );

    fn temp_file(name: &str, contents: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!("vaesa-prom-{}-{name}", std::process::id()));
        std::fs::write(&path, contents).expect("write fixture");
        path
    }

    #[test]
    fn prom_check_accepts_a_wellformed_snapshot() {
        let path = temp_file("ok.prom", SNAPSHOT);
        let report = prom_check(&path).expect("valid snapshot");
        assert!(report.contains("well-formed"), "{report}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn prom_check_catches_structural_violations() {
        let path = temp_file(
            "bad.prom",
            concat!(
                "undeclared_metric 1\n",
                "# TYPE broken histogram\n",
                "broken_bucket{le=\"10\"} 5\n",
                "broken_bucket{le=\"20\"} 3\n",
            ),
        );
        let err = prom_check(&path).unwrap_err();
        assert!(err.contains("no # TYPE declaration"), "{err}");
        assert!(err.contains("not cumulative"), "{err}");
        assert!(err.contains("missing the +Inf bucket"), "{err}");
        assert!(err.contains("missing _count"), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn slo_rules_parse_quantiles_and_operators() {
        let rules = parse_slo_file(concat!(
            "# latency\n",
            "serve_predict_latency_ns:p99 <= 250000000\n",
            "\n",
            "serve_http_error_rate <= 0.05\n",
        ))
        .expect("parses");
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].quantile, Some(0.99));
        assert_eq!(rules[0].metric, "serve_predict_latency_ns");
        assert!(parse_slo_file("a b c d").is_err());
        assert!(parse_slo_file("a == 1").is_err());
        assert!(parse_slo_file("a:pxx <= 1").is_err());
    }

    #[test]
    fn slo_gate_passes_and_fails_on_the_same_snapshot() {
        let snapshot = temp_file("gate.prom", SNAPSHOT);
        let good = temp_file(
            "good.slo",
            "serve_predict_latency_ns:p99 <= 2000000000\nserve_http_error_rate <= 0.05\n",
        );
        let report = slo_gate(&snapshot, &good).expect("slo holds");
        assert!(report.contains("2 rules satisfied"), "{report}");

        let bad = temp_file(
            "bad.slo",
            "serve_predict_latency_ns:p99 <= 1\nno_such_metric >= 1\n",
        );
        let err = slo_gate(&snapshot, &bad).unwrap_err();
        assert!(err.contains("FAIL serve_predict_latency_ns:p99"), "{err}");
        assert!(err.contains("absent"), "{err}");
        for p in [snapshot, good, bad] {
            let _ = std::fs::remove_file(p);
        }
    }
}
