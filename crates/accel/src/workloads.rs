//! The DNN workloads of Tables III and IV.
//!
//! Table III lists the four networks whose unique layers train the VAE and
//! drive the Bayesian-optimization study: AlexNet (8 unique layers),
//! ResNet-50 (24), ResNeXt-50-32x4d (25), and DeepBench OCR/Face (9).
//! Table IV lists the 12 unseen layers used in the gradient-descent study.
//!
//! Layer dimensions follow the standard torchvision definitions (unique
//! shapes only, as the paper counts them); DeepBench layers follow the Baidu
//! DeepBench convolution suite. Grouped convolutions in ResNeXt are modeled
//! as dense convolutions of the same outer shape, which preserves tensor
//! sizes (the cost model has no grouping concept; this is the same
//! abstraction Timeloop's default workload format applies).

use crate::LayerShape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier for the four training/BO workloads of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Network {
    /// AlexNet (8 unique layers).
    AlexNet,
    /// ResNet-50 (24 unique layers).
    ResNet50,
    /// ResNeXt-50 32x4d (25 unique layers).
    ResNext50,
    /// DeepBench OCR + face-recognition kernels (9 layers).
    DeepBench,
}

impl Network {
    /// All four networks in paper order.
    pub const ALL: [Network; 4] = [
        Network::AlexNet,
        Network::ResNet50,
        Network::ResNext50,
        Network::DeepBench,
    ];

    /// Human-readable name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Network::AlexNet => "AlexNet",
            Network::ResNet50 => "ResNet-50",
            Network::ResNext50 => "ResNeXt-50",
            Network::DeepBench => "DeepBench",
        }
    }

    /// The network's unique layers.
    pub fn layers(self) -> Vec<LayerShape> {
        match self {
            Network::AlexNet => alexnet(),
            Network::ResNet50 => resnet50(),
            Network::ResNext50 => resnext50(),
            Network::DeepBench => deepbench(),
        }
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// AlexNet's 8 unique layers (5 conv + 3 FC).
pub fn alexnet() -> Vec<LayerShape> {
    vec![
        LayerShape::new("conv1", 11, 11, 55, 55, 3, 64, 4, 4),
        LayerShape::new("conv2", 5, 5, 27, 27, 64, 192, 1, 1),
        LayerShape::new("conv3", 3, 3, 13, 13, 192, 384, 1, 1),
        LayerShape::new("conv4", 3, 3, 13, 13, 384, 256, 1, 1),
        LayerShape::new("conv5", 3, 3, 13, 13, 256, 256, 1, 1),
        LayerShape::fully_connected("fc6", 9216, 4096),
        LayerShape::fully_connected("fc7", 4096, 4096),
        LayerShape::fully_connected("fc8", 4096, 1000),
    ]
}

/// ResNet-50's 24 unique layer shapes.
///
/// Shape-identical layers are listed once (e.g. the stage-1 downsample
/// projection 1×1 64→256 coincides with the block's expansion conv), which
/// is how the paper arrives at 24.
pub fn resnet50() -> Vec<LayerShape> {
    vec![
        LayerShape::new("conv1", 7, 7, 112, 112, 3, 64, 2, 2),
        // Stage 1 (56x56): bottleneck width 64, expansion 256.
        LayerShape::new("s1_reduce", 1, 1, 56, 56, 64, 64, 1, 1),
        LayerShape::new("s1_conv3", 3, 3, 56, 56, 64, 64, 1, 1),
        LayerShape::new("s1_expand", 1, 1, 56, 56, 64, 256, 1, 1),
        LayerShape::new("s1_reduce_b", 1, 1, 56, 56, 256, 64, 1, 1),
        // Stage 2 (28x28): width 128, expansion 512.
        LayerShape::new("s2_reduce", 1, 1, 56, 56, 256, 128, 1, 1),
        LayerShape::new("s2_conv3_s2", 3, 3, 28, 28, 128, 128, 2, 2),
        LayerShape::new("s2_expand", 1, 1, 28, 28, 128, 512, 1, 1),
        LayerShape::new("s2_down", 1, 1, 28, 28, 256, 512, 2, 2),
        LayerShape::new("s2_reduce_b", 1, 1, 28, 28, 512, 128, 1, 1),
        LayerShape::new("s2_conv3", 3, 3, 28, 28, 128, 128, 1, 1),
        // Stage 3 (14x14): width 256, expansion 1024.
        LayerShape::new("s3_reduce", 1, 1, 28, 28, 512, 256, 1, 1),
        LayerShape::new("s3_conv3_s2", 3, 3, 14, 14, 256, 256, 2, 2),
        LayerShape::new("s3_expand", 1, 1, 14, 14, 256, 1024, 1, 1),
        LayerShape::new("s3_down", 1, 1, 14, 14, 512, 1024, 2, 2),
        LayerShape::new("s3_reduce_b", 1, 1, 14, 14, 1024, 256, 1, 1),
        LayerShape::new("s3_conv3", 3, 3, 14, 14, 256, 256, 1, 1),
        // Stage 4 (7x7): width 512, expansion 2048.
        LayerShape::new("s4_reduce", 1, 1, 14, 14, 1024, 512, 1, 1),
        LayerShape::new("s4_conv3_s2", 3, 3, 7, 7, 512, 512, 2, 2),
        LayerShape::new("s4_expand", 1, 1, 7, 7, 512, 2048, 1, 1),
        LayerShape::new("s4_down", 1, 1, 7, 7, 1024, 2048, 2, 2),
        LayerShape::new("s4_reduce_b", 1, 1, 7, 7, 2048, 512, 1, 1),
        LayerShape::new("s4_conv3", 3, 3, 7, 7, 512, 512, 1, 1),
        LayerShape::fully_connected("fc", 2048, 1000),
    ]
}

/// ResNeXt-50 32x4d's 25 unique layer shapes (grouped 3×3 convolutions
/// modeled as dense convolutions of the same outer shape).
pub fn resnext50() -> Vec<LayerShape> {
    vec![
        LayerShape::new("conv1", 7, 7, 112, 112, 3, 64, 2, 2),
        // Stage 1 (56x56): internal width 128, expansion 256.
        LayerShape::new("s1_reduce", 1, 1, 56, 56, 64, 128, 1, 1),
        LayerShape::new("s1_conv3", 3, 3, 56, 56, 128, 128, 1, 1),
        LayerShape::new("s1_expand", 1, 1, 56, 56, 128, 256, 1, 1),
        LayerShape::new("s1_down", 1, 1, 56, 56, 64, 256, 1, 1),
        LayerShape::new("s1_reduce_b", 1, 1, 56, 56, 256, 128, 1, 1),
        // Stage 2 (28x28): width 256, expansion 512.
        LayerShape::new("s2_reduce", 1, 1, 56, 56, 256, 256, 1, 1),
        LayerShape::new("s2_conv3_s2", 3, 3, 28, 28, 256, 256, 2, 2),
        LayerShape::new("s2_expand", 1, 1, 28, 28, 256, 512, 1, 1),
        LayerShape::new("s2_down", 1, 1, 28, 28, 256, 512, 2, 2),
        LayerShape::new("s2_reduce_b", 1, 1, 28, 28, 512, 256, 1, 1),
        LayerShape::new("s2_conv3", 3, 3, 28, 28, 256, 256, 1, 1),
        // Stage 3 (14x14): width 512, expansion 1024.
        LayerShape::new("s3_reduce", 1, 1, 28, 28, 512, 512, 1, 1),
        LayerShape::new("s3_conv3_s2", 3, 3, 14, 14, 512, 512, 2, 2),
        LayerShape::new("s3_expand", 1, 1, 14, 14, 512, 1024, 1, 1),
        LayerShape::new("s3_down", 1, 1, 14, 14, 512, 1024, 2, 2),
        LayerShape::new("s3_reduce_b", 1, 1, 14, 14, 1024, 512, 1, 1),
        LayerShape::new("s3_conv3", 3, 3, 14, 14, 512, 512, 1, 1),
        // Stage 4 (7x7): width 1024, expansion 2048.
        LayerShape::new("s4_reduce", 1, 1, 14, 14, 1024, 1024, 1, 1),
        LayerShape::new("s4_conv3_s2", 3, 3, 7, 7, 1024, 1024, 2, 2),
        LayerShape::new("s4_expand", 1, 1, 7, 7, 1024, 2048, 1, 1),
        LayerShape::new("s4_down", 1, 1, 7, 7, 1024, 2048, 2, 2),
        LayerShape::new("s4_reduce_b", 1, 1, 7, 7, 2048, 1024, 1, 1),
        LayerShape::new("s4_conv3", 3, 3, 7, 7, 1024, 1024, 1, 1),
        LayerShape::fully_connected("fc", 2048, 1000),
    ]
}

/// DeepBench's 9 OCR and face-recognition convolution kernels
/// (server-inference subset of the Baidu DeepBench suite).
pub fn deepbench() -> Vec<LayerShape> {
    vec![
        LayerShape::new("ocr1", 5, 5, 341, 79, 1, 32, 2, 2),
        LayerShape::new("ocr2", 5, 5, 166, 38, 32, 32, 2, 2),
        LayerShape::new("speech1", 3, 3, 480, 48, 1, 16, 1, 1),
        LayerShape::new("speech2", 3, 3, 240, 24, 16, 32, 1, 1),
        LayerShape::new("speech3", 3, 3, 120, 12, 32, 64, 1, 1),
        LayerShape::new("speech4", 3, 3, 60, 6, 64, 128, 1, 1),
        LayerShape::new("face1", 3, 3, 54, 54, 3, 64, 2, 2),
        LayerShape::new("face2", 3, 3, 27, 27, 64, 128, 1, 1),
        LayerShape::new("face3", 3, 3, 14, 14, 128, 128, 1, 1),
    ]
}

/// VGG-16's 12 unique layer shapes (extension beyond the paper's Table III
/// workloads; the classic heavyweight CNN is a common DSE stress test).
pub fn vgg16() -> Vec<LayerShape> {
    vec![
        LayerShape::new("conv1_1", 3, 3, 224, 224, 3, 64, 1, 1),
        LayerShape::new("conv1_2", 3, 3, 224, 224, 64, 64, 1, 1),
        LayerShape::new("conv2_1", 3, 3, 112, 112, 64, 128, 1, 1),
        LayerShape::new("conv2_2", 3, 3, 112, 112, 128, 128, 1, 1),
        LayerShape::new("conv3_1", 3, 3, 56, 56, 128, 256, 1, 1),
        LayerShape::new("conv3_x", 3, 3, 56, 56, 256, 256, 1, 1),
        LayerShape::new("conv4_1", 3, 3, 28, 28, 256, 512, 1, 1),
        LayerShape::new("conv4_x", 3, 3, 28, 28, 512, 512, 1, 1),
        LayerShape::new("conv5_x", 3, 3, 14, 14, 512, 512, 1, 1),
        LayerShape::fully_connected("fc6", 25088, 4096),
        LayerShape::fully_connected("fc7", 4096, 4096),
        LayerShape::fully_connected("fc8", 4096, 1000),
    ]
}

/// MobileNetV1's unique layer shapes (extension).
///
/// Depthwise 3×3 convolutions are modeled as `(R=3, S=3, C=1, K=channels)`
/// — one filter per output channel — which preserves the exact MAC count
/// and tensor sizes of a depthwise layer under a cost model that has no
/// grouping concept.
pub fn mobilenet_v1() -> Vec<LayerShape> {
    vec![
        LayerShape::new("conv1", 3, 3, 112, 112, 3, 32, 2, 2),
        LayerShape::new("dw2", 3, 3, 112, 112, 1, 32, 1, 1),
        LayerShape::new("pw2", 1, 1, 112, 112, 32, 64, 1, 1),
        LayerShape::new("dw3", 3, 3, 56, 56, 1, 64, 2, 2),
        LayerShape::new("pw3", 1, 1, 56, 56, 64, 128, 1, 1),
        LayerShape::new("dw4", 3, 3, 56, 56, 1, 128, 1, 1),
        LayerShape::new("pw4", 1, 1, 56, 56, 128, 128, 1, 1),
        LayerShape::new("dw5", 3, 3, 28, 28, 1, 128, 2, 2),
        LayerShape::new("pw5", 1, 1, 28, 28, 128, 256, 1, 1),
        LayerShape::new("dw6", 3, 3, 28, 28, 1, 256, 1, 1),
        LayerShape::new("pw6", 1, 1, 28, 28, 256, 256, 1, 1),
        LayerShape::new("dw7", 3, 3, 14, 14, 1, 256, 2, 2),
        LayerShape::new("pw7", 1, 1, 14, 14, 256, 512, 1, 1),
        LayerShape::new("dw8", 3, 3, 14, 14, 1, 512, 1, 1),
        LayerShape::new("pw8", 1, 1, 14, 14, 512, 512, 1, 1),
        LayerShape::new("dw13", 3, 3, 7, 7, 1, 512, 2, 2),
        LayerShape::new("pw13", 1, 1, 7, 7, 512, 1024, 1, 1),
        LayerShape::new("dw14", 3, 3, 7, 7, 1, 1024, 1, 1),
        LayerShape::new("pw14", 1, 1, 7, 7, 1024, 1024, 1, 1),
        LayerShape::fully_connected("fc", 1024, 1000),
    ]
}

/// BERT-base's unique encoder GEMMs at sequence length 128 (extension).
///
/// Token-parallel matrix multiplies are expressed as 1×1 convolutions with
/// the sequence on the output-width axis (`P = 128`), which makes them
/// exact GEMM workloads for the cost model.
pub fn bert_base_gemms() -> Vec<LayerShape> {
    vec![
        LayerShape::new("qkv_proj", 1, 1, 128, 1, 768, 2304, 1, 1),
        LayerShape::new("attn_out", 1, 1, 128, 1, 768, 768, 1, 1),
        LayerShape::new("ffn_up", 1, 1, 128, 1, 768, 3072, 1, 1),
        LayerShape::new("ffn_down", 1, 1, 128, 1, 3072, 768, 1, 1),
    ]
}

/// The 12 unseen test layers of Table IV, used in the gradient-descent
/// study (§IV-D). Dimensions are reproduced verbatim from the paper.
pub fn gd_test_layers() -> Vec<LayerShape> {
    vec![
        LayerShape::new("t01", 1, 1, 1, 1, 2208, 1000, 1, 1),
        LayerShape::new("t02", 1, 1, 1, 1, 512, 256, 1, 1),
        LayerShape::new("t03", 1, 1, 28, 28, 512, 512, 1, 1),
        LayerShape::new("t04", 3, 3, 14, 14, 192, 48, 1, 1),
        LayerShape::new("t05", 3, 3, 14, 14, 512, 512, 1, 1),
        LayerShape::new("t06", 3, 3, 28, 28, 192, 48, 1, 1),
        LayerShape::new("t07", 3, 3, 28, 28, 512, 512, 1, 1),
        LayerShape::new("t08", 3, 3, 350, 80, 64, 64, 1, 1),
        LayerShape::new("t09", 3, 3, 56, 56, 192, 48, 1, 1),
        LayerShape::new("t10", 3, 3, 56, 56, 256, 256, 1, 1),
        LayerShape::new("t11", 3, 3, 7, 7, 192, 48, 1, 1),
        LayerShape::new("t12", 5, 5, 700, 161, 1, 64, 2, 2),
    ]
}

/// All unique layers across the four Table III networks — the VAE training
/// workload set (§III-B3).
pub fn training_layers() -> Vec<LayerShape> {
    let mut out = Vec::new();
    for net in Network::ALL {
        for layer in net.layers() {
            let mut l = layer.clone();
            // Prefix the network so names stay unique across the pool.
            l = LayerShape::new(
                format!("{}/{}", net.name(), l.name()),
                l.r,
                l.s,
                l.p,
                l.q,
                l.c,
                l.k,
                l.stride_w,
                l.stride_h,
            );
            out.push(l);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn layer_counts_match_table_iii() {
        assert_eq!(alexnet().len(), 8);
        assert_eq!(resnet50().len(), 24);
        assert_eq!(resnext50().len(), 25);
        assert_eq!(deepbench().len(), 9);
    }

    #[test]
    fn gd_layer_count_and_values_match_table_iv() {
        let layers = gd_test_layers();
        assert_eq!(layers.len(), 12);
        // Spot-check rows 1, 8, and 12 against the paper's table.
        assert_eq!(
            layers[0].features(),
            [1.0, 1.0, 1.0, 1.0, 2208.0, 1000.0, 1.0, 1.0]
        );
        assert_eq!(
            layers[7].features(),
            [3.0, 3.0, 350.0, 80.0, 64.0, 64.0, 1.0, 1.0]
        );
        assert_eq!(
            layers[11].features(),
            [5.0, 5.0, 700.0, 161.0, 1.0, 64.0, 2.0, 2.0]
        );
    }

    #[test]
    fn layers_within_networks_are_unique_shapes() {
        for net in Network::ALL {
            let layers = net.layers();
            let shapes: HashSet<[u64; 8]> = layers
                .iter()
                .map(|l| [l.r, l.s, l.p, l.q, l.c, l.k, l.stride_w, l.stride_h])
                .collect();
            assert_eq!(
                shapes.len(),
                layers.len(),
                "{net} has duplicate layer shapes"
            );
        }
    }

    #[test]
    fn layer_names_unique_within_network() {
        for net in Network::ALL {
            let names: HashSet<String> =
                net.layers().iter().map(|l| l.name().to_string()).collect();
            assert_eq!(names.len(), net.layers().len(), "{net} has duplicate names");
        }
    }

    #[test]
    fn training_pool_spans_all_networks() {
        let pool = training_layers();
        assert_eq!(pool.len(), 8 + 24 + 25 + 9);
        let names: HashSet<&str> = pool.iter().map(LayerShape::name).collect();
        assert_eq!(names.len(), pool.len());
        assert!(names.iter().any(|n| n.starts_with("AlexNet/")));
        assert!(names.iter().any(|n| n.starts_with("DeepBench/")));
    }

    #[test]
    fn gd_test_layers_are_mostly_unseen() {
        // Table IV layers come from networks outside Table III; a couple of
        // shapes still coincide with training layers by accident (1x1 convs
        // over common widths), as unavoidable in any 8-dim shape universe.
        let train: HashSet<[u64; 8]> = training_layers()
            .iter()
            .map(|l| [l.r, l.s, l.p, l.q, l.c, l.k, l.stride_w, l.stride_h])
            .collect();
        let unseen = gd_test_layers()
            .iter()
            .filter(|l| !train.contains(&[l.r, l.s, l.p, l.q, l.c, l.k, l.stride_w, l.stride_h]))
            .count();
        assert!(unseen >= 10, "only {unseen}/12 GD test layers are unseen");
    }

    #[test]
    fn extended_workloads_have_expected_shapes() {
        assert_eq!(vgg16().len(), 12);
        assert_eq!(mobilenet_v1().len(), 20);
        assert_eq!(bert_base_gemms().len(), 4);
        // VGG-16's unique-layer MACs dwarf AlexNet's.
        let vgg: u64 = vgg16().iter().map(LayerShape::macs).sum();
        let alex: u64 = alexnet().iter().map(LayerShape::macs).sum();
        assert!(vgg > 5 * alex);
        // Depthwise modeling: MAC count of dw8 matches 3*3*14*14*512.
        let dw8 = &mobilenet_v1()[13];
        assert_eq!(dw8.macs(), 3 * 3 * 14 * 14 * 512);
        // BERT GEMMs: qkv is a 128x768 by 768x2304 matmul.
        let qkv = &bert_base_gemms()[0];
        assert_eq!(qkv.macs(), 128 * 768 * 2304);
    }

    #[test]
    fn extended_workloads_have_unique_names_and_shapes() {
        for layers in [vgg16(), mobilenet_v1(), bert_base_gemms()] {
            let names: HashSet<&str> = layers.iter().map(LayerShape::name).collect();
            assert_eq!(names.len(), layers.len());
            let shapes: HashSet<[u64; 8]> = layers
                .iter()
                .map(|l| [l.r, l.s, l.p, l.q, l.c, l.k, l.stride_w, l.stride_h])
                .collect();
            assert_eq!(shapes.len(), layers.len());
        }
    }

    #[test]
    fn resnet_macs_are_plausible() {
        // ResNet-50's single-pass unique-layer MACs are within the right
        // order of magnitude (full network ~4 GMACs; unique layers are a
        // subset counted once).
        let total: u64 = resnet50().iter().map(LayerShape::macs).sum();
        assert!(total > 500_000_000, "total {total}");
        assert!(total < 4_000_000_000, "total {total}");
    }
}
