use crate::AccelError;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Counts raw-value → nearest-legal-design snaps (the "reconstructible"
/// step every decoded candidate passes through). Cached so the per-snap
/// cost is one relaxed atomic add; the count is exact under parallel
/// scoring and depends only on how many candidates were decoded, never on
/// the thread count.
fn snap_counter() -> &'static Arc<vaesa_obs::Counter> {
    static C: OnceLock<Arc<vaesa_obs::Counter>> = OnceLock::new();
    C.get_or_init(|| vaesa_obs::counter("accel.snaps"))
}

/// The six architectural parameters of the Simba-like accelerator template
/// (Table II of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArchParam {
    /// Number of processing elements (PEs).
    PeCount,
    /// Number of MAC units per PE.
    MacsPerPe,
    /// Accumulation buffer capacity per PE, in bytes.
    AccumBufBytes,
    /// Weight buffer capacity per PE, in bytes.
    WeightBufBytes,
    /// Input buffer capacity per PE, in bytes.
    InputBufBytes,
    /// Shared global buffer capacity, in bytes.
    GlobalBufBytes,
}

impl ArchParam {
    /// All six parameters in canonical feature order.
    pub const ALL: [ArchParam; 6] = [
        ArchParam::PeCount,
        ArchParam::MacsPerPe,
        ArchParam::AccumBufBytes,
        ArchParam::WeightBufBytes,
        ArchParam::InputBufBytes,
        ArchParam::GlobalBufBytes,
    ];

    /// Short snake_case name used in CSV headers.
    pub fn name(self) -> &'static str {
        match self {
            ArchParam::PeCount => "pe_count",
            ArchParam::MacsPerPe => "macs_per_pe",
            ArchParam::AccumBufBytes => "accum_buf_bytes",
            ArchParam::WeightBufBytes => "weight_buf_bytes",
            ArchParam::InputBufBytes => "input_buf_bytes",
            ArchParam::GlobalBufBytes => "global_buf_bytes",
        }
    }
}

impl fmt::Display for ArchParam {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The discrete hardware design space of Table II.
///
/// | parameter          | max    | # values |
/// |--------------------|--------|----------|
/// | No. of PEs         | 64     | 5        |
/// | No. of MAC units   | 4096   | 64       |
/// | Accum. buffer size | 96 KB  | 128      |
/// | Weight buffer size | 8 MB   | 32768    |
/// | Input buffer size  | 256 KB | 2048     |
/// | Global buffer size | 256 KB | 131072   |
///
/// The total space size is 5·64·128·32768·2048·131072 ≈ 3.6 × 10¹⁷,
/// matching the paper. Values are evenly spaced multiples of each
/// parameter's granularity (PEs are powers of two).
///
/// # Examples
///
/// ```
/// use vaesa_accel::DesignSpace;
///
/// let space = DesignSpace::paper();
/// assert_eq!(space.cardinality(), 360_287_970_189_639_680);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DesignSpace {
    values: [Vec<u64>; 6],
}

impl DesignSpace {
    /// Builds the exact design space used in the paper (Table II).
    pub fn paper() -> Self {
        let pe: Vec<u64> = vec![4, 8, 16, 32, 64];
        let macs: Vec<u64> = (1..=64).map(|i| i * 64).collect(); // 64..4096
        let accum: Vec<u64> = (1..=128).map(|i| i * 768).collect(); // ..96 KiB
        let weight: Vec<u64> = (1..=32768).map(|i| i * 256).collect(); // ..8 MiB
        let input: Vec<u64> = (1..=2048).map(|i| i * 128).collect(); // ..256 KiB
        let global: Vec<u64> = (1..=131072).map(|i| i * 2).collect(); // ..256 KiB
        DesignSpace {
            values: [pe, macs, accum, weight, input, global],
        }
    }

    /// Builds a coarsened variant with at most `max_values` choices per
    /// parameter (evenly subsampled, always keeping the largest value).
    ///
    /// Used by tests and fast experiments; the paper's space is [`DesignSpace::paper`].
    pub fn coarse(max_values: usize) -> Self {
        assert!(max_values >= 2, "need at least two values per parameter");
        let full = Self::paper();
        let values = full.values.map(|vals| {
            if vals.len() <= max_values {
                vals
            } else {
                let stride = vals.len() as f64 / max_values as f64;
                let mut picked: Vec<u64> = (0..max_values)
                    .map(|i| vals[((i as f64 + 1.0) * stride).ceil() as usize - 1])
                    .collect();
                picked.dedup();
                if picked.last() != vals.last() {
                    picked.push(*vals.last().expect("non-empty"));
                }
                picked
            }
        });
        DesignSpace { values }
    }

    /// The ordered list of legal values for a parameter.
    pub fn values(&self, param: ArchParam) -> &[u64] {
        &self.values[Self::axis(param)]
    }

    /// Number of legal values for a parameter.
    pub fn num_values(&self, param: ArchParam) -> usize {
        self.values(param).len()
    }

    /// Total number of design points in the space.
    pub fn cardinality(&self) -> u64 {
        self.values.iter().map(|v| v.len() as u64).product()
    }

    fn axis(param: ArchParam) -> usize {
        ArchParam::ALL
            .iter()
            .position(|&p| p == param)
            .expect("param is one of ALL")
    }

    /// Draws a uniformly random design point.
    pub fn random(&self, rng: &mut impl Rng) -> ArchConfig {
        let indices = std::array::from_fn(|axis| rng.gen_range(0..self.values[axis].len()));
        ArchConfig { indices }
    }

    /// Builds a configuration from per-parameter value indices.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::IndexOutOfRange`] if any index exceeds the
    /// parameter's value count.
    pub fn config_from_indices(&self, indices: [usize; 6]) -> Result<ArchConfig, AccelError> {
        for (axis, &idx) in indices.iter().enumerate() {
            if idx >= self.values[axis].len() {
                return Err(AccelError::IndexOutOfRange {
                    param: ArchParam::ALL[axis],
                    index: idx,
                    len: self.values[axis].len(),
                });
            }
        }
        Ok(ArchConfig { indices })
    }

    /// Builds a configuration from raw parameter values, snapping each to
    /// the nearest legal value.
    ///
    /// This is how decoded VAE outputs are reconstructed into valid
    /// hardware configurations (the "reconstructible" half of the paper's
    /// title): the decoder emits six real numbers, and each is rounded to
    /// the closest entry of the corresponding value list.
    pub fn config_from_raw_nearest(&self, raw: &[f64; 6]) -> ArchConfig {
        snap_counter().incr();
        let indices = std::array::from_fn(|axis| {
            Self::nearest_index(&self.values[axis], raw[axis], |v| v as f64)
        });
        ArchConfig { indices }
    }

    /// Binary-search nearest neighbor in a sorted value list under the
    /// monotone key `key` (the lists are ascending, so any monotone
    /// transform preserves order). O(log n) — the global-buffer axis has
    /// 131 072 values, so this matters inside search loops.
    fn nearest_index(vals: &[u64], target: f64, key: impl Fn(u64) -> f64) -> usize {
        let split = vals.partition_point(|&v| key(v) < target);
        match (split.checked_sub(1), vals.get(split)) {
            (None, _) => 0,
            (Some(lo), None) => lo,
            (Some(lo), Some(&hi)) => {
                if (key(vals[lo]) - target).abs() <= (key(hi) - target).abs() {
                    lo
                } else {
                    split
                }
            }
        }
    }

    /// Like [`DesignSpace::config_from_raw_nearest`] but snapping in
    /// log-space, which matches the log/min-max normalization used for
    /// training features (§IV-A4): the nearest legal value is the one whose
    /// logarithm is closest.
    pub fn config_from_log_nearest(&self, raw_log: &[f64; 6]) -> ArchConfig {
        snap_counter().incr();
        let indices = std::array::from_fn(|axis| {
            Self::nearest_index(&self.values[axis], raw_log[axis], |v| (v as f64).ln())
        });
        ArchConfig { indices }
    }

    /// Raw value of `config` for `param`.
    pub fn value_of(&self, config: &ArchConfig, param: ArchParam) -> u64 {
        self.values[Self::axis(param)][config.indices[Self::axis(param)]]
    }

    /// The six raw parameter values of a configuration in canonical order.
    pub fn raw_features(&self, config: &ArchConfig) -> [f64; 6] {
        std::array::from_fn(|axis| self.values[axis][config.indices[axis]] as f64)
    }

    /// Natural logs of the six raw values (the representation fed to the
    /// VAE after min-max scaling).
    pub fn log_features(&self, config: &ArchConfig) -> [f64; 6] {
        self.raw_features(config).map(f64::ln)
    }

    /// Expands a configuration into the concrete hardware description used
    /// by the cost model.
    pub fn describe(&self, config: &ArchConfig) -> ArchDescription {
        ArchDescription {
            pe_count: self.value_of(config, ArchParam::PeCount),
            macs_per_pe: self.value_of(config, ArchParam::MacsPerPe),
            accum_buf_bytes: self.value_of(config, ArchParam::AccumBufBytes),
            weight_buf_bytes: self.value_of(config, ArchParam::WeightBufBytes),
            input_buf_bytes: self.value_of(config, ArchParam::InputBufBytes),
            global_buf_bytes: self.value_of(config, ArchParam::GlobalBufBytes),
        }
    }

    /// Iterates over a coarse grid of the space with roughly
    /// `per_axis` points per parameter (used for dataset seeding).
    pub fn grid(&self, per_axis: usize) -> Vec<ArchConfig> {
        assert!(per_axis >= 1, "grid needs at least one point per axis");
        let picks: Vec<Vec<usize>> = self
            .values
            .iter()
            .map(|vals| {
                let n = vals.len();
                if n <= per_axis {
                    (0..n).collect()
                } else {
                    (0..per_axis)
                        .map(|i| ((i as f64 + 0.5) * n as f64 / per_axis as f64) as usize)
                        .collect()
                }
            })
            .collect();
        let mut out = Vec::new();
        let mut stack = [0usize; 6];
        loop {
            let indices = std::array::from_fn(|a| picks[a][stack[a]]);
            out.push(ArchConfig { indices });
            // Odometer increment.
            let mut axis = 0;
            loop {
                stack[axis] += 1;
                if stack[axis] < picks[axis].len() {
                    break;
                }
                stack[axis] = 0;
                axis += 1;
                if axis == 6 {
                    return out;
                }
            }
        }
    }
}

/// A single design point: one index per parameter into a [`DesignSpace`].
///
/// `ArchConfig` is deliberately just indices — interpreting it requires the
/// space that produced it, which prevents mixing configurations across
/// differently coarsened spaces by accident (values would disagree loudly in
/// tests rather than silently).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArchConfig {
    indices: [usize; 6],
}

impl ArchConfig {
    /// The per-parameter value indices in canonical order.
    pub fn indices(&self) -> [usize; 6] {
        self.indices
    }
}

/// Concrete hardware description: the raw values of all six parameters.
///
/// This is the form the scheduler and cost model consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArchDescription {
    /// Number of processing elements.
    pub pe_count: u64,
    /// Number of MAC units per PE.
    pub macs_per_pe: u64,
    /// Accumulation buffer bytes (per PE).
    pub accum_buf_bytes: u64,
    /// Weight buffer bytes (per PE).
    pub weight_buf_bytes: u64,
    /// Input buffer bytes (per PE).
    pub input_buf_bytes: u64,
    /// Global buffer bytes (shared).
    pub global_buf_bytes: u64,
}

impl ArchDescription {
    /// Total MAC units across all PEs.
    pub fn total_macs(&self) -> u64 {
        self.pe_count * self.macs_per_pe
    }

    /// Total on-chip SRAM bytes.
    pub fn total_buffer_bytes(&self) -> u64 {
        self.pe_count * (self.accum_buf_bytes + self.weight_buf_bytes + self.input_buf_bytes)
            + self.global_buf_bytes
    }
}

impl fmt::Display for ArchDescription {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pe={} macs/pe={} accum={}B weight={}B input={}B global={}B",
            self.pe_count,
            self.macs_per_pe,
            self.accum_buf_bytes,
            self.weight_buf_bytes,
            self.input_buf_bytes,
            self.global_buf_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn paper_space_matches_table_ii() {
        let s = DesignSpace::paper();
        assert_eq!(s.num_values(ArchParam::PeCount), 5);
        assert_eq!(s.num_values(ArchParam::MacsPerPe), 64);
        assert_eq!(s.num_values(ArchParam::AccumBufBytes), 128);
        assert_eq!(s.num_values(ArchParam::WeightBufBytes), 32768);
        assert_eq!(s.num_values(ArchParam::InputBufBytes), 2048);
        assert_eq!(s.num_values(ArchParam::GlobalBufBytes), 131072);

        assert_eq!(*s.values(ArchParam::PeCount).last().unwrap(), 64);
        assert_eq!(*s.values(ArchParam::MacsPerPe).last().unwrap(), 4096);
        assert_eq!(
            *s.values(ArchParam::AccumBufBytes).last().unwrap(),
            96 * 1024
        );
        assert_eq!(
            *s.values(ArchParam::WeightBufBytes).last().unwrap(),
            8 * 1024 * 1024
        );
        assert_eq!(
            *s.values(ArchParam::InputBufBytes).last().unwrap(),
            256 * 1024
        );
        assert_eq!(
            *s.values(ArchParam::GlobalBufBytes).last().unwrap(),
            256 * 1024
        );
    }

    #[test]
    fn cardinality_is_3_6e17() {
        let c = DesignSpace::paper().cardinality() as f64;
        assert!((c / 3.6e17 - 1.0).abs() < 0.01, "cardinality {c:e}");
    }

    #[test]
    fn random_configs_are_valid_and_deterministic() {
        let s = DesignSpace::paper();
        let mut a = ChaCha8Rng::seed_from_u64(11);
        let mut b = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..100 {
            let ca = s.random(&mut a);
            let cb = s.random(&mut b);
            assert_eq!(ca, cb);
            assert!(s.config_from_indices(ca.indices()).is_ok());
        }
    }

    #[test]
    fn config_from_indices_validates() {
        let s = DesignSpace::paper();
        assert!(s.config_from_indices([0; 6]).is_ok());
        let err = s.config_from_indices([5, 0, 0, 0, 0, 0]).unwrap_err();
        assert!(err.to_string().contains("pe_count"));
    }

    #[test]
    fn nearest_snapping_recovers_exact_values() {
        let s = DesignSpace::paper();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..50 {
            let c = s.random(&mut rng);
            let raw = s.raw_features(&c);
            assert_eq!(s.config_from_raw_nearest(&raw), c);
            let logf = s.log_features(&c);
            assert_eq!(s.config_from_log_nearest(&logf), c);
        }
    }

    #[test]
    fn nearest_snapping_clamps_out_of_range() {
        let s = DesignSpace::paper();
        let low = s.config_from_raw_nearest(&[0.0; 6]);
        assert_eq!(low.indices(), [0; 6]);
        let high = s.config_from_raw_nearest(&[1e12; 6]);
        let d = s.describe(&high);
        assert_eq!(d.pe_count, 64);
        assert_eq!(d.weight_buf_bytes, 8 * 1024 * 1024);
    }

    #[test]
    fn describe_round_trips_values() {
        let s = DesignSpace::paper();
        let c = s
            .config_from_indices([4, 63, 127, 32767, 2047, 131071])
            .unwrap();
        let d = s.describe(&c);
        assert_eq!(d.pe_count, 64);
        assert_eq!(d.macs_per_pe, 4096);
        assert_eq!(d.total_macs(), 64 * 4096);
        assert!(d.total_buffer_bytes() > 8 * 1024 * 1024);
    }

    #[test]
    fn coarse_space_is_smaller_but_keeps_maxima() {
        let s = DesignSpace::coarse(8);
        for p in ArchParam::ALL {
            assert!(s.num_values(p) <= 9, "{p} has {} values", s.num_values(p));
            assert_eq!(
                s.values(p).last(),
                DesignSpace::paper().values(p).last(),
                "{p} lost its maximum"
            );
        }
        assert!(s.cardinality() < DesignSpace::paper().cardinality());
    }

    #[test]
    fn grid_covers_requested_density() {
        let s = DesignSpace::coarse(4);
        let g = s.grid(2);
        assert_eq!(g.len(), 64); // 2^6
                                 // All grid points valid.
        for c in &g {
            assert!(s.config_from_indices(c.indices()).is_ok());
        }
    }

    #[test]
    fn binary_nearest_matches_linear_scan() {
        let s = DesignSpace::paper();
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        for _ in 0..200 {
            // Random targets across and beyond each axis's range.
            let raw: [f64; 6] = std::array::from_fn(|axis| {
                let vals = s.values(ArchParam::ALL[axis]);
                let max = *vals.last().unwrap() as f64;
                rand::Rng::gen_range(&mut rng, -0.5 * max..1.5 * max)
            });
            let got = s.config_from_raw_nearest(&raw);
            // Linear reference.
            let want: [usize; 6] = std::array::from_fn(|axis| {
                let vals = s.values(ArchParam::ALL[axis]);
                let mut best = 0;
                let mut dist = f64::INFINITY;
                for (i, &v) in vals.iter().enumerate() {
                    let d = (v as f64 - raw[axis]).abs();
                    if d < dist {
                        dist = d;
                        best = i;
                    }
                }
                best
            });
            // Ties may resolve to either neighbor; accept equal distance.
            for axis in 0..6 {
                let vals = s.values(ArchParam::ALL[axis]);
                let dg = (vals[got.indices()[axis]] as f64 - raw[axis]).abs();
                let dw = (vals[want[axis]] as f64 - raw[axis]).abs();
                assert!(
                    (dg - dw).abs() < 1e-9,
                    "axis {axis}: got idx {} (d={dg}), want idx {} (d={dw})",
                    got.indices()[axis],
                    want[axis]
                );
            }
        }
    }

    #[test]
    fn values_are_sorted_ascending() {
        let s = DesignSpace::paper();
        for p in ArchParam::ALL {
            let v = s.values(p);
            assert!(v.windows(2).all(|w| w[0] < w[1]), "{p} not sorted");
        }
    }
}
