use crate::ArchParam;
use std::error::Error;
use std::fmt;

/// Errors produced when constructing design points.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AccelError {
    /// A value index exceeded the number of legal values for a parameter.
    IndexOutOfRange {
        /// The offending parameter.
        param: ArchParam,
        /// The requested index.
        index: usize,
        /// Number of legal values.
        len: usize,
    },
}

impl fmt::Display for AccelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccelError::IndexOutOfRange { param, index, len } => write!(
                f,
                "index {index} out of range for {param} (has {len} values)"
            ),
        }
    }
}

impl Error for AccelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_param() {
        let e = AccelError::IndexOutOfRange {
            param: ArchParam::PeCount,
            index: 9,
            len: 5,
        };
        assert!(e.to_string().contains("pe_count"));
        assert!(e.to_string().contains('9'));
    }
}
