use serde::{Deserialize, Serialize};
use std::fmt;

/// A convolutional or fully connected DNN layer, in the 8-column format of
/// Table IV of the paper:
///
/// `(weight width R, weight height S, output width P, output height Q,
///   input channels C, output channels K, stride width, stride height)`
///
/// Fully connected layers are expressed as 1×1 convolutions over a 1×1
/// output, which is exactly how Timeloop and CoSA treat them.
///
/// # Examples
///
/// ```
/// use vaesa_accel::LayerShape;
///
/// // ResNet-50's first layer: 7x7 conv, 3 -> 64 channels, stride 2.
/// let l = LayerShape::new("conv1", 7, 7, 112, 112, 3, 64, 2, 2);
/// assert_eq!(l.macs(), 7 * 7 * 112 * 112 * 3 * 64);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LayerShape {
    name: String,
    /// Weight (filter) width R.
    pub r: u64,
    /// Weight (filter) height S.
    pub s: u64,
    /// Output width P.
    pub p: u64,
    /// Output height Q.
    pub q: u64,
    /// Input channels C.
    pub c: u64,
    /// Output channels K.
    pub k: u64,
    /// Stride along the width.
    pub stride_w: u64,
    /// Stride along the height.
    pub stride_h: u64,
}

impl LayerShape {
    /// Creates a layer from Table-IV-style dimensions.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        r: u64,
        s: u64,
        p: u64,
        q: u64,
        c: u64,
        k: u64,
        stride_w: u64,
        stride_h: u64,
    ) -> Self {
        let layer = LayerShape {
            name: name.into(),
            r,
            s,
            p,
            q,
            c,
            k,
            stride_w,
            stride_h,
        };
        assert!(
            [r, s, p, q, c, k, stride_w, stride_h]
                .iter()
                .all(|&d| d > 0),
            "all layer dimensions must be positive: {layer:?}"
        );
        layer
    }

    /// Creates a fully connected layer `in_features -> out_features`
    /// (a 1×1 convolution over a 1×1 output).
    pub fn fully_connected(name: impl Into<String>, in_features: u64, out_features: u64) -> Self {
        LayerShape::new(name, 1, 1, 1, 1, in_features, out_features, 1, 1)
    }

    /// The layer's name (unique within a workload).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total multiply-accumulate operations for batch size 1.
    pub fn macs(&self) -> u64 {
        self.r * self.s * self.p * self.q * self.c * self.k
    }

    /// Input activation width W = (P-1)·stride_w + R.
    pub fn input_width(&self) -> u64 {
        (self.p - 1) * self.stride_w + self.r
    }

    /// Input activation height H = (Q-1)·stride_h + S.
    pub fn input_height(&self) -> u64 {
        (self.q - 1) * self.stride_h + self.s
    }

    /// Number of weight elements (R·S·C·K).
    pub fn weight_elems(&self) -> u64 {
        self.r * self.s * self.c * self.k
    }

    /// Number of input activation elements (W·H·C).
    pub fn input_elems(&self) -> u64 {
        self.input_width() * self.input_height() * self.c
    }

    /// Number of output activation elements (P·Q·K).
    pub fn output_elems(&self) -> u64 {
        self.p * self.q * self.k
    }

    /// Returns `true` for layers expressible as matrix multiply
    /// (1×1 kernel, unit stride).
    pub fn is_fully_connected(&self) -> bool {
        self.r == 1 && self.s == 1 && self.p == 1 && self.q == 1
    }

    /// The 8-feature vector used as the DNN-layer conditioning input of the
    /// performance predictors, in Table-IV column order.
    pub fn features(&self) -> [f64; 8] {
        [
            self.r as f64,
            self.s as f64,
            self.p as f64,
            self.q as f64,
            self.c as f64,
            self.k as f64,
            self.stride_w as f64,
            self.stride_h as f64,
        ]
    }

    /// Natural logs of [`LayerShape::features`] (all dimensions are ≥ 1, so
    /// this is well defined); the representation used for training after
    /// min-max scaling.
    pub fn log_features(&self) -> [f64; 8] {
        self.features().map(f64::ln)
    }
}

impl fmt::Display for LayerShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}x{} conv, {}x{} out, {}->{} ch, stride {}x{}",
            self.name, self.r, self.s, self.p, self.q, self.c, self.k, self.stride_w, self.stride_h
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_layer_geometry() {
        let l = LayerShape::new("l", 3, 3, 14, 14, 512, 512, 1, 1);
        assert_eq!(l.macs(), 3 * 3 * 14 * 14 * 512 * 512);
        assert_eq!(l.input_width(), 16);
        assert_eq!(l.input_height(), 16);
        assert_eq!(l.weight_elems(), 3 * 3 * 512 * 512);
        assert_eq!(l.input_elems(), 16 * 16 * 512);
        assert_eq!(l.output_elems(), 14 * 14 * 512);
        assert!(!l.is_fully_connected());
    }

    #[test]
    fn strided_layer_input_size() {
        let l = LayerShape::new("ocr", 5, 5, 700, 161, 1, 64, 2, 2);
        assert_eq!(l.input_width(), (700 - 1) * 2 + 5);
        assert_eq!(l.input_height(), (161 - 1) * 2 + 5);
    }

    #[test]
    fn fully_connected_constructor() {
        let l = LayerShape::fully_connected("fc", 2208, 1000);
        assert!(l.is_fully_connected());
        assert_eq!(l.macs(), 2208 * 1000);
        assert_eq!(l.input_elems(), 2208);
        assert_eq!(l.output_elems(), 1000);
    }

    #[test]
    fn features_match_table_iv_order() {
        let l = LayerShape::new("t", 3, 3, 28, 28, 192, 48, 1, 1);
        assert_eq!(l.features(), [3.0, 3.0, 28.0, 28.0, 192.0, 48.0, 1.0, 1.0]);
        let logs = l.log_features();
        assert!((logs[4] - (192f64).ln()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_panics() {
        let _ = LayerShape::new("bad", 0, 1, 1, 1, 1, 1, 1, 1);
    }
}
