#![deny(missing_docs)]
//! The Simba-like accelerator design space and DNN workload definitions
//! for the VAESA reproduction (Tables II–IV of the paper).
//!
//! - [`DesignSpace`] / [`ArchConfig`] / [`ArchDescription`]: the six-parameter
//!   discrete hardware design space (≈ 3.6 × 10¹⁷ points), with conversions
//!   between index, raw-value, and log-value representations and nearest-value
//!   snapping for reconstructing decoder outputs.
//! - [`LayerShape`]: convolutional / fully connected layer descriptors in
//!   Table IV's 8-column format.
//! - [`workloads`]: AlexNet, ResNet-50, ResNeXt-50, and DeepBench layer
//!   tables (Table III), plus the 12 unseen gradient-descent test layers
//!   (Table IV).
//!
//! # Examples
//!
//! ```
//! use vaesa_accel::{DesignSpace, workloads};
//! use rand::SeedableRng;
//!
//! let space = DesignSpace::paper();
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let config = space.random(&mut rng);
//! let arch = space.describe(&config);
//! assert!(arch.total_macs() >= 4 * 64);
//! assert_eq!(workloads::gd_test_layers().len(), 12);
//! ```

mod design_space;
mod error;
mod layer;
pub mod workloads;

pub use design_space::{ArchConfig, ArchDescription, ArchParam, DesignSpace};
pub use error::AccelError;
pub use layer::LayerShape;
pub use workloads::Network;
