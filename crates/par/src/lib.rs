#![deny(missing_docs)]
//! A small deterministic parallel runtime for the VAESA hot paths.
//!
//! Every primitive here is built on scoped `std::thread` workers — no
//! external dependencies — and obeys one hard rule: **the output is
//! byte-identical regardless of thread count**. Work may be *scheduled*
//! dynamically, but results are always written back in input order and no
//! primitive ever changes the arithmetic it was asked to perform. Callers
//! that need reproducible randomness draw their RNG streams *before* fanning
//! out, so the worker pool never observes an RNG.
//!
//! The pool size defaults to [`std::thread::available_parallelism`] and can
//! be overridden with the `VAESA_THREADS` environment variable (a positive
//! integer; `1` forces fully serial execution).
//!
//! # Examples
//!
//! ```
//! let squares = vaesa_par::par_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Pool-usage counters on the global observability registry. Cached in
/// statics so the hot entry points pay one atomic increment per *call*
/// (never per element) after first use. Call counts depend only on the
/// call sites, never on the pool size, so they stay thread-count-invariant
/// under the determinism policy.
fn par_map_calls() -> &'static Arc<vaesa_obs::Counter> {
    static C: OnceLock<Arc<vaesa_obs::Counter>> = OnceLock::new();
    C.get_or_init(|| vaesa_obs::counter("par.par_map_calls"))
}

fn par_chunks_calls() -> &'static Arc<vaesa_obs::Counter> {
    static C: OnceLock<Arc<vaesa_obs::Counter>> = OnceLock::new();
    C.get_or_init(|| vaesa_obs::counter("par.par_chunks_calls"))
}

/// Parses a thread-count override string (the `VAESA_THREADS` format).
///
/// Returns `None` for anything that is not a positive integer.
fn parse_threads(s: &str) -> Option<usize> {
    s.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// The worker-pool size used by [`par_map`] and [`par_chunks_mut`]:
/// the `VAESA_THREADS` environment variable if set to a positive integer,
/// otherwise [`std::thread::available_parallelism`] (1 if unknown).
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("VAESA_THREADS") {
        if let Some(n) = parse_threads(&v) {
            return n;
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Index-preserving parallel map over a slice with the default pool size.
///
/// Semantically identical to `items.iter().map(f).collect()`: element `i` of
/// the result is `f(&items[i])`, in order, for any thread count. Work items
/// are claimed dynamically (an atomic cursor), so uneven per-item cost —
/// e.g. scheduler queries that hit or miss the mapping cache — balances
/// across workers.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_threads(items, num_threads(), f)
}

/// [`par_map`] with an explicit worker count (`threads >= 1`).
///
/// `threads == 1` runs serially on the calling thread with no pool at all,
/// which property tests use as the reference implementation.
///
/// # Panics
///
/// Panics if `threads` is zero or if a worker panics.
pub fn par_map_threads<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    assert!(threads >= 1, "need at least one thread");
    par_map_calls().incr();
    let threads = threads.min(items.len()).max(1);
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("par_map worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index claimed exactly once"))
        .collect()
}

/// Splits `data` into contiguous chunks of `chunk_len` elements and runs
/// `f(chunk_index, start_offset, chunk)` on each, in parallel, using the
/// default pool size.
///
/// Chunks are disjoint `&mut` borrows, so each invocation owns its slice
/// exclusively; determinism follows because chunk boundaries depend only on
/// `chunk_len`, never on the thread count. Chunk assignment is static
/// round-robin — appropriate for uniform work like matmul row blocks.
///
/// # Panics
///
/// Panics if `chunk_len` is zero or a worker panics.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, usize, &mut [T]) + Sync,
{
    par_chunks_mut_threads(data, chunk_len, num_threads(), f)
}

/// [`par_chunks_mut`] with an explicit worker count.
///
/// # Panics
///
/// Panics if `chunk_len` or `threads` is zero, or if a worker panics.
pub fn par_chunks_mut_threads<T, F>(data: &mut [T], chunk_len: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, usize, &mut [T]) + Sync,
{
    assert!(chunk_len >= 1, "chunk_len must be positive");
    assert!(threads >= 1, "need at least one thread");
    par_chunks_calls().incr();
    let n_chunks = data.len().div_ceil(chunk_len);
    let threads = threads.min(n_chunks).max(1);
    if threads == 1 {
        for (ci, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(ci, ci * chunk_len, chunk);
        }
        return;
    }
    // Distribute chunks round-robin: worker w gets chunks w, w+T, w+2T, ...
    let mut buckets: Vec<Vec<(usize, &mut [T])>> = (0..threads).map(|_| Vec::new()).collect();
    for (ci, chunk) in data.chunks_mut(chunk_len).enumerate() {
        buckets[ci % threads].push((ci, chunk));
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                scope.spawn(|| {
                    for (ci, chunk) in bucket {
                        f(ci, ci * chunk_len, chunk);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("par_chunks worker panicked");
        }
    });
}

/// Splits `0..n` into at most `parts` contiguous ranges of near-equal
/// length, in order. Used by callers that want one range per worker.
///
/// Returns an empty vector when `n == 0`.
///
/// # Panics
///
/// Panics if `parts` is zero.
pub fn split_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    assert!(parts >= 1, "parts must be positive");
    if n == 0 {
        return Vec::new();
    }
    let parts = parts.min(n);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        for threads in [1, 2, 3, 8] {
            let out = par_map_threads(&items, threads, |&x| x * 2 + 1);
            let expected: Vec<usize> = items.iter().map(|&x| x * 2 + 1).collect();
            assert_eq!(out, expected, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_threads(&empty, 4, |&x| x).is_empty());
        assert_eq!(par_map_threads(&[7u32], 4, |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_balances_uneven_work() {
        // Items with wildly uneven cost still land in their slots.
        let items: Vec<u64> = (0..64)
            .map(|i| if i % 7 == 0 { 200_000 } else { 10 })
            .collect();
        let spin = |&n: &u64| -> u64 { (0..n).fold(0, |acc, v| acc.wrapping_add(v ^ acc)) };
        let serial: Vec<u64> = items.iter().map(spin).collect();
        assert_eq!(par_map_threads(&items, 4, spin), serial);
    }

    #[test]
    fn par_chunks_mut_matches_serial_across_thread_counts() {
        let reference = {
            let mut data: Vec<f64> = (0..997).map(|i| i as f64).collect();
            for (ci, offset, chunk) in chunk_iter(&mut data, 10) {
                for (j, v) in chunk.iter_mut().enumerate() {
                    *v = *v * 2.0 + (ci + offset + j) as f64;
                }
            }
            data
        };
        for threads in [1, 2, 5, 16] {
            let mut data: Vec<f64> = (0..997).map(|i| i as f64).collect();
            par_chunks_mut_threads(&mut data, 10, threads, |ci, offset, chunk| {
                for (j, v) in chunk.iter_mut().enumerate() {
                    *v = *v * 2.0 + (ci + offset + j) as f64;
                }
            });
            assert_eq!(data, reference, "threads = {threads}");
        }
    }

    /// Serial reference for the chunk traversal (index, offset, chunk).
    fn chunk_iter(data: &mut [f64], chunk_len: usize) -> Vec<(usize, usize, &mut [f64])> {
        data.chunks_mut(chunk_len)
            .enumerate()
            .map(|(ci, c)| (ci, ci * chunk_len, c))
            .collect()
    }

    #[test]
    fn split_ranges_covers_exactly() {
        for (n, parts) in [(0, 3), (1, 4), (7, 3), (12, 4), (13, 4), (100, 7)] {
            let ranges = split_ranges(n, parts);
            let mut covered = 0;
            let mut prev_end = 0;
            for r in &ranges {
                assert_eq!(r.start, prev_end, "ranges must be contiguous");
                assert!(!r.is_empty(), "no empty ranges");
                covered += r.len();
                prev_end = r.end;
            }
            assert_eq!(covered, n, "n={n} parts={parts}");
            assert!(ranges.len() <= parts);
            // Near-equal: lengths differ by at most one.
            if let (Some(min), Some(max)) = (
                ranges.iter().map(Range::len).min(),
                ranges.iter().map(Range::len).max(),
            ) {
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads(" 2 "), Some(2));
        assert_eq!(parse_threads("1"), Some(1));
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads("-3"), None);
        assert_eq!(parse_threads("abc"), None);
        assert_eq!(parse_threads(""), None);
    }

    #[test]
    fn num_threads_is_at_least_one() {
        assert!(num_threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = par_map_threads(&[1, 2, 3], 0, |&x: &i32| x);
    }

    proptest! {
        /// The satellite-task property test: `par_map` matches the serial
        /// map element-for-element for arbitrary inputs and thread counts.
        #[test]
        fn par_map_matches_serial_map(
            items in proptest::collection::vec(-1e12f64..1e12, 0..200),
            threads in 1usize..9,
        ) {
            let f = |&x: &f64| (x * 1.5 - 7.0, x.to_bits());
            let serial: Vec<_> = items.iter().map(f).collect();
            let parallel = par_map_threads(&items, threads, f);
            prop_assert_eq!(parallel, serial);
        }

        #[test]
        fn split_ranges_partitions(n in 0usize..5000, parts in 1usize..17) {
            let ranges = split_ranges(n, parts);
            let total: usize = ranges.iter().map(Range::len).sum();
            prop_assert_eq!(total, n);
        }
    }
}
