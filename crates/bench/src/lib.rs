#![deny(missing_docs)]
//! Shared harness for the experiment binaries that regenerate every figure
//! and table of the VAESA paper.
//!
//! Each binary in `src/bin/` reproduces one artifact (see the experiment
//! index in `DESIGN.md`): it builds the dataset, trains the models, runs the
//! searches, prints a paper-shaped summary to stdout, and writes CSV series
//! into `results/` for plotting.
//!
//! The harness keeps every run deterministic (seeded `ChaCha8Rng`
//! everywhere) and scales sample counts with the `--fast`/`--full` flags so
//! the whole suite finishes on a laptop while preserving the paper's
//! qualitative shapes.

pub mod pipelines;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use vaesa::flows::HardwareEvaluator;
use vaesa::{
    Dataset, DatasetBuilder, DseDriver, History, TrainConfig, Trainer, VaesaConfig, VaesaModel,
};
use vaesa_accel::{workloads, DesignSpace, LayerShape};
use vaesa_cosa::CachedScheduler;

/// Command-line arguments shared by all experiment binaries.
///
/// Recognized flags: `--seed <u64>`, `--budget <n>`, `--fast`, `--full`,
/// `--out <dir>`. Unknown or malformed flags are parse errors; binaries
/// print them with [`USAGE`] and exit 2 at the call site.
#[derive(Debug, Clone, PartialEq)]
pub struct Args {
    /// Base RNG seed (default 0; multi-seed experiments offset from it).
    pub seed: u64,
    /// Search budget override (per-experiment default when `None`).
    pub budget: Option<usize>,
    /// Scale factor: 0 = fast (CI-sized), 1 = default, 2 = full.
    pub scale: u8,
    /// Output directory for CSV artifacts.
    pub out_dir: PathBuf,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            seed: 0,
            budget: None,
            scale: 1,
            out_dir: PathBuf::from("results"),
        }
    }
}

/// The usage line shared by every experiment binary; printed (with the
/// parse error) at the call site before exiting.
pub const USAGE: &str = "usage: <bin> [--seed N] [--budget N] [--fast|--full] [--out DIR]";

impl Args {
    /// Parses `std::env::args`.
    ///
    /// # Errors
    ///
    /// Returns a message describing the malformed or unknown flag.
    /// Binaries print it with [`USAGE`] and exit at the call site; library
    /// callers (the flow runtime, tests) handle it like any other error.
    pub fn parse() -> Result<Self, String> {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (what [`Args::parse`] does to the
    /// process arguments).
    ///
    /// # Errors
    ///
    /// Returns a message describing the malformed or unknown flag.
    pub fn parse_from<I>(argv: I) -> Result<Self, String>
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        let mut args = Args::default();
        let mut it = argv.into_iter();
        while let Some(flag) = it.next() {
            match flag.as_ref() {
                "--seed" => {
                    args.seed = it
                        .next()
                        .and_then(|v| v.as_ref().parse().ok())
                        .ok_or("--seed needs an integer")?
                }
                "--budget" => {
                    args.budget = Some(
                        it.next()
                            .and_then(|v| v.as_ref().parse().ok())
                            .ok_or("--budget needs an integer")?,
                    )
                }
                "--fast" => args.scale = 0,
                "--full" => args.scale = 2,
                "--out" => {
                    args.out_dir = it
                        .next()
                        .map(|v| PathBuf::from(v.as_ref()))
                        .ok_or("--out needs a path")?
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        Ok(args)
    }

    /// Picks a size by scale: `(fast, default, full)`.
    pub fn pick(&self, fast: usize, default: usize, full: usize) -> usize {
        match self.scale {
            0 => fast,
            1 => default,
            _ => full,
        }
    }

    /// A seeded RNG offset by `stream` so sub-experiments are independent
    /// but reproducible.
    pub fn rng(&self, stream: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(self.seed.wrapping_mul(0x9E37_79B9).wrapping_add(stream))
    }
}

/// Seeds the global observability registry with one run's context: the
/// binary name, a deterministic run id, the RNG seed, scale, budget
/// override, worker-pool size, active numeric precision, detected CPU SIMD
/// features, and (when available) the git revision.
///
/// Every experiment binary calls this first, so the `run` record of the
/// manifest it writes on exit identifies the run completely. An f32-mode
/// run (`VAESA_PRECISION=f32`) gets a `-f32` run-id suffix so its telemetry
/// history never mixes with the bit-exact f64 baseline's.
pub fn init_run_meta(bin: &str, args: &Args) {
    let precision = vaesa_nn::Precision::active();
    vaesa_obs::set_meta("bin", bin);
    vaesa_obs::set_meta(
        "run_id",
        format!(
            "{bin}-seed{}-scale{}{}",
            args.seed,
            args.scale,
            if precision.is_f32() { "-f32" } else { "" }
        ),
    );
    vaesa_obs::set_meta("seed", args.seed);
    vaesa_obs::set_meta("scale", args.scale);
    vaesa_obs::set_meta("precision", precision.label());
    vaesa_obs::set_meta("cpu_features", vaesa_nn::cpu_features());
    if let Some(budget) = args.budget {
        vaesa_obs::set_meta("budget", budget);
    }
    vaesa_obs::set_meta("threads", vaesa_par::num_threads());
    if let Some(rev) = vaesa_obs::git_rev() {
        vaesa_obs::set_meta("git_rev", rev);
    }
}

/// Writes the global registry's run manifest to `<out_dir>/manifest.jsonl`,
/// publishing `scheduler` gauges first when a scheduler is given. Binaries
/// not built on [`ExperimentContext`] call this directly as their last
/// step; context binaries use [`ExperimentContext::finish`].
///
/// Also publishes the process's peak RSS as the `process.peak_rss_bytes`
/// gauge, and — when tracing is enabled (`VAESA_TRACE=1`) — exports the
/// recorded timeline as `<out_dir>/trace.json` (Chrome `trace_event`
/// JSON) and its flamegraph as `<out_dir>/flame.svg`.
///
/// # Panics
///
/// Panics on I/O failure — experiment binaries should fail loudly.
pub fn write_run_manifest(out_dir: &Path, scheduler: Option<&CachedScheduler>) -> PathBuf {
    let registry = vaesa_obs::global();
    if let Some(scheduler) = scheduler {
        // End-of-run is the last guaranteed point to sync the persistent
        // evaluation log; fsync batching may still be holding a partial
        // batch that the next (warm) run would otherwise recompute.
        if let Err(e) = scheduler.flush_persistent() {
            eprintln!("warning: persistent eval cache flush failed: {e}");
        }
        scheduler.publish_stats(registry, "scheduler");
    }
    if let Some(rss) = vaesa_obs::peak_rss_bytes() {
        registry.gauge("process.peak_rss_bytes").set(rss as f64);
    }
    let path = out_dir.join("manifest.jsonl");
    vaesa_obs::write_manifest(registry, &path).expect("write manifest");
    if registry.tracing_enabled() {
        // The manifest is already on disk, so these notices go straight to
        // stderr instead of through `progress!` (whose event would be lost).
        let trace_path = out_dir.join("trace.json");
        vaesa_obs::write_chrome_trace(registry, &trace_path).expect("write trace");
        eprintln!("wrote {}", trace_path.display());
        let title = registry
            .meta("run_id")
            .or_else(|| registry.meta("bin"))
            .unwrap_or_else(|| "trace".to_string());
        let mut flame = vaesa_plot::FlameGraph::new(format!("{title} spans"));
        for event in registry.trace_events() {
            flame.add(&event.path, event.dur_ns);
        }
        if flame.is_empty() {
            eprintln!("tracing enabled but no spans recorded; skipping flame.svg");
        } else {
            let flame_path = write_svg(out_dir, "flame.svg", &flame.render());
            eprintln!("wrote {}", flame_path.display());
        }
    }
    path
}

/// Writes a CSV file into the output directory, creating it if needed.
///
/// # Panics
///
/// Panics on I/O failure — experiment binaries should fail loudly.
pub fn write_csv(dir: &Path, name: &str, header: &str, rows: &[Vec<f64>]) -> PathBuf {
    fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(name);
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").expect("write header");
    for row in rows {
        let line = row
            .iter()
            .map(|v| format!("{v:.6e}"))
            .collect::<Vec<_>>()
            .join(",");
        writeln!(f, "{line}").expect("write row");
    }
    path
}

/// Writes an SVG figure into the output directory.
///
/// # Panics
///
/// Panics on I/O failure.
pub fn write_svg(dir: &Path, name: &str, svg: &str) -> PathBuf {
    fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(name);
    fs::write(&path, svg).expect("write svg");
    path
}

/// Writes a CSV with a leading string column (e.g. method names).
///
/// # Panics
///
/// Panics on I/O failure.
pub fn write_labeled_csv(
    dir: &Path,
    name: &str,
    header: &str,
    rows: &[(String, Vec<f64>)],
) -> PathBuf {
    fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(name);
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").expect("write header");
    for (label, row) in rows {
        let nums = row
            .iter()
            .map(|v| format!("{v:.6e}"))
            .collect::<Vec<_>>()
            .join(",");
        writeln!(f, "{label},{nums}").expect("write row");
    }
    path
}

/// The standard experiment setup: paper design space, cached scheduler, and
/// the Table III training-layer pool.
#[derive(Debug)]
pub struct Setup {
    /// The full Table II design space.
    pub space: DesignSpace,
    /// Shared (memoizing) scheduler.
    pub scheduler: CachedScheduler,
}

impl Setup {
    /// Creates the standard setup. With `VAESA_EVAL_CACHE` set, the
    /// scheduler is backed by the persistent cross-run evaluation cache,
    /// so figure/ablation reruns replay prior evaluations from disk.
    pub fn new() -> Self {
        Setup {
            space: DesignSpace::paper(),
            scheduler: CachedScheduler::from_env(),
        }
    }

    /// Builds the training dataset over the given layers with `n_configs`
    /// random design points (plus a 2-per-axis seeding grid).
    pub fn dataset(&self, layers: &[LayerShape], n_configs: usize, args: &Args) -> Dataset {
        let mut rng = args.rng(1_000);
        DatasetBuilder::new(&self.space, layers.to_vec())
            .random_configs(n_configs)
            .grid_per_axis(2)
            .build(&self.scheduler, &mut rng)
    }

    /// Trains a VAESA model with the given latent dimension and α.
    pub fn train(
        &self,
        dataset: &Dataset,
        latent_dim: usize,
        alpha: f64,
        epochs: usize,
        args: &Args,
    ) -> (VaesaModel, History) {
        let mut rng = args.rng(2_000 + latent_dim as u64);
        let config = VaesaConfig::paper()
            .with_latent_dim(latent_dim)
            .with_alpha(alpha);
        let mut model = VaesaModel::new(config, &mut rng);
        let train_cfg = TrainConfig {
            epochs,
            batch_size: 64,
            learning_rate: 1e-3,
        };
        let history = Trainer::new(train_cfg).train_vae(&mut model, dataset, &mut rng);
        (model, history)
    }
}

impl Default for Setup {
    fn default() -> Self {
        Setup::new()
    }
}

/// A fully-built standard experiment: CLI args, the paper design space with
/// its shared scheduler, the Table III training dataset, and a trained
/// VAESA model.
///
/// Every figure/ablation binary used to open with the same copy-pasted
/// prologue (parse args, pick sizes, build dataset, train); they now call
/// [`ExperimentContext::build`] and get the pieces plus ready-made
/// [`HardwareEvaluator`]/[`DseDriver`] constructors. The builder reproduces
/// the historical RNG streams exactly (dataset on stream 1 000, training on
/// stream 2 000 + latent dim), so migrated binaries emit bit-identical
/// artifacts.
#[derive(Debug)]
pub struct ExperimentContext {
    /// Parsed CLI arguments.
    pub args: Args,
    /// Design space + shared memoizing scheduler.
    pub setup: Setup,
    /// Number of random configs the dataset was built from.
    pub n_configs: usize,
    /// Epochs the model was trained for; binaries reuse this knob for
    /// auxiliary models (input-space predictors, fine-tuning).
    pub epochs: usize,
    /// The labeled training dataset over the Table III layer pool.
    pub dataset: Dataset,
    /// The trained VAESA model.
    pub model: VaesaModel,
    /// Training history of `model`.
    pub history: History,
}

impl ExperimentContext {
    /// Builds the standard context: 4-D latent space, α = 1e-4, dataset and
    /// epoch sizes scaled by `--fast`/`--full`.
    pub fn build(args: Args) -> Self {
        Self::with_latent(args, 4, 1e-4)
    }

    /// Like [`ExperimentContext::build`] with an explicit latent dimension
    /// and KL weight, for the ablations that sweep them.
    pub fn with_latent(args: Args, latent_dim: usize, alpha: f64) -> Self {
        let setup = Setup::new();
        let pool = workloads::training_layers();
        let n_configs = args.pick(60, 400, 1200);
        let epochs = args.pick(10, 40, 80);
        vaesa_obs::progress!(
            "building dataset ({n_configs} configs) and training {latent_dim}-D VAESA \
             ({epochs} epochs)..."
        );
        let dataset = {
            let _span = vaesa_obs::span("bench/dataset");
            setup.dataset(&pool, n_configs, &args)
        };
        let (model, history) = {
            let _span = vaesa_obs::span("bench/train");
            setup.train(&dataset, latent_dim, alpha, epochs, &args)
        };
        ExperimentContext {
            args,
            setup,
            n_configs,
            epochs,
            dataset,
            model,
            history,
        }
    }

    /// An evaluator scoring `layers` through the shared cached scheduler.
    pub fn evaluator_for<'a>(&'a self, layers: &'a [LayerShape]) -> HardwareEvaluator<'a> {
        HardwareEvaluator::new(&self.setup.space, &self.setup.scheduler, layers)
    }

    /// A DSE driver over `evaluator` with the trained model wired in, ready
    /// for both [`vaesa::SpaceMode`] variants.
    pub fn driver<'a>(&'a self, evaluator: &'a HardwareEvaluator<'a>) -> DseDriver<'a> {
        DseDriver::new(evaluator, &self.dataset).with_model(&self.model)
    }

    /// Prints the shared scheduler cache's hit/miss summary.
    pub fn report_cache_stats(&self) {
        report_cache_stats(&self.setup.scheduler);
    }

    /// Ends the run: reports the scheduler cache summary and writes the run
    /// manifest (scheduler gauges included) to `<out>/manifest.jsonl`.
    ///
    /// # Panics
    ///
    /// Panics on I/O failure.
    pub fn finish(&self) -> PathBuf {
        self.report_cache_stats();
        write_run_manifest(&self.args.out_dir, Some(&self.setup.scheduler))
    }
}

/// Formats a mean ± std pair the way the paper's tables read.
pub fn fmt_mean_std(mean: f64, std: f64) -> String {
    format!("{mean:.3e} ± {std:.2e}")
}

/// Reports the scheduler cache's hit/miss summary (stderr + manifest
/// event); the DSE flow binaries call this last so the memoization payoff
/// of each run is visible.
pub fn report_cache_stats(scheduler: &CachedScheduler) {
    vaesa_obs::progress!("scheduler cache: {}", scheduler.cache_stats());
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaesa_accel::workloads;

    #[test]
    fn args_parse_defaults_and_all_flags() {
        assert_eq!(
            Args::parse_from(Vec::<String>::new()).unwrap(),
            Args::default()
        );
        let args =
            Args::parse_from(["--seed", "7", "--budget", "12", "--fast", "--out", "x/y"]).unwrap();
        assert_eq!(
            args,
            Args {
                seed: 7,
                budget: Some(12),
                scale: 0,
                out_dir: PathBuf::from("x/y"),
            }
        );
        // Flag order is free; later scale flags win.
        let args = Args::parse_from(["--fast", "--full", "--seed", "3"]).unwrap();
        assert_eq!(args.scale, 2);
        assert_eq!(args.seed, 3);
        assert_eq!(args.budget, None);
        let args = Args::parse_from(["--out", "results2", "--budget", "1"]).unwrap();
        assert_eq!(args.out_dir, PathBuf::from("results2"));
        assert_eq!(args.budget, Some(1));
        assert_eq!(args.scale, 1);
    }

    #[test]
    fn args_parse_rejects_malformed_input() {
        assert!(Args::parse_from(["--wat"])
            .unwrap_err()
            .contains("unknown flag --wat"));
        assert!(Args::parse_from(["--seed"])
            .unwrap_err()
            .contains("--seed needs an integer"));
        assert!(Args::parse_from(["--seed", "abc"])
            .unwrap_err()
            .contains("--seed needs an integer"));
        assert!(Args::parse_from(["--budget"])
            .unwrap_err()
            .contains("--budget needs an integer"));
        assert!(Args::parse_from(["--budget", "-2"])
            .unwrap_err()
            .contains("--budget needs an integer"));
        assert!(Args::parse_from(["--out"])
            .unwrap_err()
            .contains("--out needs a path"));
        // Positional arguments are rejected like unknown flags.
        assert!(Args::parse_from(["fig11"])
            .unwrap_err()
            .contains("unknown flag fig11"));
    }

    #[test]
    fn args_pick_scales() {
        for (scale, want) in [(0u8, 1usize), (1, 2), (2, 3)] {
            let a = Args {
                scale,
                ..Args::default()
            };
            assert_eq!(a.pick(1, 2, 3), want);
        }
    }

    #[test]
    fn rng_streams_are_independent_and_reproducible() {
        let a = Args::default();
        use rand::RngCore;
        let mut r1 = a.rng(1);
        let mut r2 = a.rng(1);
        let mut r3 = a.rng(2);
        assert_eq!(r1.next_u64(), r2.next_u64());
        let mut r1b = a.rng(1);
        assert_ne!(r1b.next_u64(), r3.next_u64());
    }

    #[test]
    fn csv_writers_produce_files() {
        let dir = std::env::temp_dir().join("vaesa_bench_test_csv");
        let p = write_csv(&dir, "t.csv", "a,b", &[vec![1.0, 2.0]]);
        let content = std::fs::read_to_string(p).unwrap();
        assert!(content.starts_with("a,b\n"));
        assert!(content.contains("1.0"));
        let p = write_labeled_csv(&dir, "l.csv", "m,a", &[("bo".to_string(), vec![3.0])]);
        let content = std::fs::read_to_string(p).unwrap();
        assert!(content.contains("bo,"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn svg_writer_produces_files() {
        let dir = std::env::temp_dir().join("vaesa_bench_test_svg");
        let p = write_svg(&dir, "t.svg", "<svg></svg>");
        assert_eq!(std::fs::read_to_string(p).unwrap(), "<svg></svg>");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn experiment_context_driver_runs_both_modes() {
        use vaesa::SpaceMode;
        use vaesa_dse::RandomEngine;

        // Assemble a tiny context by hand — the standard `build` pipeline is
        // CI-sized, while this only checks the evaluator/driver wiring.
        let args = Args {
            scale: 0,
            ..Args::default()
        };
        let setup = Setup::new();
        let layers = vec![workloads::alexnet()[2].clone()];
        let dataset = setup.dataset(&layers, 12, &args);
        let model = VaesaModel::new(VaesaConfig::paper().with_latent_dim(2), &mut args.rng(9));
        let ctx = ExperimentContext {
            args,
            setup,
            n_configs: 12,
            epochs: 0,
            dataset,
            model,
            history: History::default(),
        };
        let evaluator = ctx.evaluator_for(&layers);
        for (mode, stream) in [(SpaceMode::Direct, 10), (SpaceMode::Latent, 11)] {
            let trace =
                ctx.driver(&evaluator)
                    .run(&RandomEngine, mode, 5, &mut ctx.args.rng(stream));
            assert_eq!(trace.len(), 5);
        }
        ctx.report_cache_stats();
    }

    #[test]
    fn setup_builds_small_dataset() {
        let setup = Setup::new();
        let args = Args::default();
        let layers = vec![workloads::alexnet()[2].clone()];
        let ds = setup.dataset(&layers, 10, &args);
        assert!(ds.len() >= 10);
    }
}
