//! Ablation: how the latent search box affects `vae_bo`.
//!
//! The paper searches "the latent space" without pinning down its extent.
//! Two natural choices: a fixed prior-based box (±3, three standard
//! deviations of `N(0, I)`), or the bounding box of the *encoded training
//! data* (what this reproduction uses by default). When the KL weight is
//! small (α = 1e-4), encodings spread well beyond the prior, so a fixed box
//! can clip the region the decoder actually covers.

use vaesa::flows::{decode_to_config, latent_box};
use vaesa_accel::workloads;
use vaesa_bench::{write_labeled_csv, Args, ExperimentContext};
use vaesa_dse::{BayesOpt, BoxSpace, FnObjective};
use vaesa_linalg::stats;

fn main() {
    let cli = Args::parse();
    vaesa_bench::init_run_meta("ablation_latent_box", &cli);
    let ctx = ExperimentContext::build(cli);
    let args = &ctx.args;
    let resnet = workloads::resnet50();

    let budget = args.budget.unwrap_or(args.pick(60, 300, 1000));
    let seeds = args.pick(2, 3, 5);

    let evaluator = ctx.evaluator_for(&resnet);
    let data_box = latent_box(&ctx.model, &ctx.dataset);
    println!(
        "data-derived box: lo {:?}, hi {:?}",
        data_box.lower(),
        data_box.upper()
    );

    let boxes = [
        ("prior_pm1".to_string(), BoxSpace::symmetric(4, 1.0)),
        ("prior_pm3".to_string(), BoxSpace::symmetric(4, 3.0)),
        ("prior_pm6".to_string(), BoxSpace::symmetric(4, 6.0)),
        ("data_box".to_string(), data_box),
    ];

    let mut rows = Vec::new();
    println!("\n{budget} samples x {seeds} seeds per box:");
    for (name, space) in &boxes {
        let mut bests = Vec::new();
        for seed in 0..seeds {
            let mut objective = FnObjective::new(4, |z: &[f64]| {
                let config = decode_to_config(&ctx.model, z, &ctx.dataset.hw_norm, &evaluator);
                evaluator.edp_of_config(&config)
            });
            let mut rng = args.rng(40_000 + seed as u64 * 17);
            let trace = BayesOpt::new(space.clone()).run(&mut objective, budget, &mut rng);
            bests.push(trace.best_value().unwrap_or(f64::NAN));
        }
        let mean = stats::mean(&bests).unwrap_or(f64::NAN);
        let std = stats::std_dev(&bests).unwrap_or(f64::NAN);
        println!("  {name:>10}: best ResNet-50 EDP {mean:.4e} ± {std:.2e}");
        rows.push((name.clone(), vec![mean, std]));
    }

    let path = write_labeled_csv(
        &args.out_dir,
        "ablation_latent_box.csv",
        "box,best_edp_mean,best_edp_std",
        &rows,
    );
    vaesa_obs::progress!("wrote {}", path.display());
    println!("expected: the data-derived box matches or beats every fixed prior box.");
    ctx.finish();
}
