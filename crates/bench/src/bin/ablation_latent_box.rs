//! Ablation: how the latent search box affects `vae_bo`.
//!
//! The paper searches "the latent space" without pinning down its extent.
//! Two natural choices: a fixed prior-based box (±3, three standard
//! deviations of `N(0, I)`), or the bounding box of the *encoded training
//! data* (what this reproduction uses by default). When the KL weight is
//! small (α = 1e-4), encodings spread well beyond the prior, so a fixed box
//! can clip the region the decoder actually covers.

fn main() {
    let args = match vaesa_bench::Args::parse() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", vaesa_bench::USAGE);
            std::process::exit(2);
        }
    };
    if let Err(e) = vaesa_bench::pipelines::run("ablation_latent_box", args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
