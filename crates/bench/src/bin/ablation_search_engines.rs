//! Ablation: which black-box engine profits most from the latent space?
//!
//! The paper demonstrates the latent space with BO and GD; Table I also
//! lists evolutionary search (NAAS) as a mainstream hardware-DSE engine.
//! This ablation runs random / BO / evolutionary, each on both the
//! original input space and the VAESA latent space, on ResNet-50.

fn main() {
    let args = match vaesa_bench::Args::parse() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", vaesa_bench::USAGE);
            std::process::exit(2);
        }
    };
    if let Err(e) = vaesa_bench::pipelines::run("ablation_search_engines", args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
