//! Ablation: which black-box engine profits most from the latent space?
//!
//! The paper demonstrates the latent space with BO and GD; Table I also
//! lists evolutionary search (NAAS) as a mainstream hardware-DSE engine.
//! This ablation runs random / BO / evolutionary, each on both the
//! original input space and the VAESA latent space, on ResNet-50.

use vaesa::SpaceMode;
use vaesa_accel::workloads;
use vaesa_bench::{write_labeled_csv, Args, ExperimentContext};
use vaesa_dse::engine_by_name;
use vaesa_linalg::stats;

fn main() {
    let cli = Args::parse();
    vaesa_bench::init_run_meta("ablation_search_engines", &cli);
    let ctx = ExperimentContext::build(cli);
    let args = &ctx.args;
    let resnet = workloads::resnet50();

    let budget = args.budget.unwrap_or(args.pick(60, 300, 1000));
    let seeds = args.pick(2, 3, 5);

    let evaluator = ctx.evaluator_for(&resnet);
    let driver = ctx.driver(&evaluator);

    println!("{budget} samples x {seeds} seeds per engine on ResNet-50:\n");
    let mut rows = Vec::new();
    // (label, engine, space) — every run goes through the one DSE driver.
    let engines = [
        ("random", "random", SpaceMode::Direct),
        ("bo", "bo", SpaceMode::Direct),
        ("evo", "evo", SpaceMode::Direct),
        ("sa", "sa", SpaceMode::Direct),
        ("cd", "cd", SpaceMode::Direct),
        ("vae_bo", "bo", SpaceMode::Latent),
        ("vae_evo", "evo", SpaceMode::Latent),
        ("vae_sa", "sa", SpaceMode::Latent),
    ];

    for (name, engine_name, mode) in engines {
        let engine = engine_by_name(engine_name).expect("known engine");
        let mut bests = Vec::new();
        for seed in 0..seeds {
            let mut rng = args.rng(60_000 + seed as u64 * 13);
            let trace = driver.run(engine.as_ref(), mode, budget, &mut rng);
            bests.push(trace.best_value().unwrap_or(f64::NAN));
        }
        let mean = stats::mean(&bests).unwrap_or(f64::NAN);
        let std = stats::std_dev(&bests).unwrap_or(f64::NAN);
        println!("  {name:>8}: best EDP {mean:.4e} ± {std:.2e}");
        rows.push((name.to_string(), vec![mean, std]));
    }

    let path = write_labeled_csv(
        &args.out_dir,
        "ablation_search_engines.csv",
        "engine,best_edp_mean,best_edp_std",
        &rows,
    );
    vaesa_obs::progress!("wrote {}", path.display());
    println!("expected: each engine improves when moved to the latent space.");
    ctx.finish();
}
