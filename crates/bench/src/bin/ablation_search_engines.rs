//! Ablation: which black-box engine profits most from the latent space?
//!
//! The paper demonstrates the latent space with BO and GD; Table I also
//! lists evolutionary search (NAAS) as a mainstream hardware-DSE engine.
//! This ablation runs random / BO / evolutionary, each on both the
//! original input space and the VAESA latent space, on ResNet-50.

use vaesa::flows::{
    run_annealing, run_bo, run_coordinate_descent, run_evo, run_random, run_vae_annealing,
    run_vae_bo, run_vae_evo, HardwareEvaluator,
};
use vaesa_accel::workloads;
use vaesa_bench::{write_labeled_csv, Args, Setup};
use vaesa_linalg::stats;

fn main() {
    let args = Args::parse();
    let setup = Setup::new();
    let pool = workloads::training_layers();
    let resnet = workloads::resnet50();

    let budget = args.budget.unwrap_or(args.pick(60, 300, 1000));
    let seeds = args.pick(2, 3, 5);
    let n_configs = args.pick(60, 400, 1200);
    let epochs = args.pick(10, 40, 80);

    println!("building dataset and training 4-D VAESA...");
    let dataset = setup.dataset(&pool, n_configs, &args);
    let (model, _) = setup.train(&dataset, 4, 1e-4, epochs, &args);
    let evaluator = HardwareEvaluator::new(&setup.space, &setup.scheduler, &resnet);

    println!("{budget} samples x {seeds} seeds per engine on ResNet-50:\n");
    let mut rows = Vec::new();
    type Runner<'a> = Box<dyn Fn(u64) -> vaesa_dse::Trace + 'a>;
    let engines: Vec<(&str, Runner)> = vec![
        (
            "random",
            Box::new(|s| run_random(&evaluator, &dataset.hw_norm, budget, &mut args.rng(s))),
        ),
        (
            "bo",
            Box::new(|s| run_bo(&evaluator, &dataset.hw_norm, budget, &mut args.rng(s))),
        ),
        (
            "evo",
            Box::new(|s| run_evo(&evaluator, &dataset.hw_norm, budget, &mut args.rng(s))),
        ),
        (
            "sa",
            Box::new(|s| run_annealing(&evaluator, &dataset.hw_norm, budget, &mut args.rng(s))),
        ),
        (
            "cd",
            Box::new(|s| run_coordinate_descent(&evaluator, budget, &mut args.rng(s))),
        ),
        (
            "vae_bo",
            Box::new(|s| run_vae_bo(&evaluator, &model, &dataset, budget, &mut args.rng(s))),
        ),
        (
            "vae_evo",
            Box::new(|s| run_vae_evo(&evaluator, &model, &dataset, budget, &mut args.rng(s))),
        ),
        (
            "vae_sa",
            Box::new(|s| run_vae_annealing(&evaluator, &model, &dataset, budget, &mut args.rng(s))),
        ),
    ];

    for (name, run) in &engines {
        let mut bests = Vec::new();
        for seed in 0..seeds {
            let trace = run(60_000 + seed as u64 * 13);
            bests.push(trace.best_value().unwrap_or(f64::NAN));
        }
        let mean = stats::mean(&bests).unwrap_or(f64::NAN);
        let std = stats::std_dev(&bests).unwrap_or(f64::NAN);
        println!("  {name:>8}: best EDP {mean:.4e} ± {std:.2e}");
        rows.push((name.to_string(), vec![mean, std]));
    }

    let path = write_labeled_csv(
        &args.out_dir,
        "ablation_search_engines.csv",
        "engine,best_edp_mean,best_edp_std",
        &rows,
    );
    println!("\nwrote {}", path.display());
    println!("expected: each engine improves when moved to the latent space.");
    vaesa_bench::report_cache_stats(&setup.scheduler);
}
