//! Figure 11 + Table V: Bayesian optimization with and without the VAESA
//! latent space.
//!
//! For each of the four DNN workloads (AlexNet, ResNet-50, ResNeXt-50,
//! DeepBench), runs `random`, `bo` (input space), and `vae_bo` (latent
//! space) for a fixed sample budget and multiple seeds, then reports:
//!
//! - Figure 11: mean ± std best-EDP-so-far curves per method;
//! - Table V: search performance (best EDP relative to the average random
//!   result; higher is better) and sample efficiency (rate of reaching
//!   within 3% of the best-known EDP, relative to random).

fn main() {
    let args = match vaesa_bench::Args::parse() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", vaesa_bench::USAGE);
            std::process::exit(2);
        }
    };
    if let Err(e) = vaesa_bench::pipelines::run("fig11_table5_bo", args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
