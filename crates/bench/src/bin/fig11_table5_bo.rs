//! Figure 11 + Table V: Bayesian optimization with and without the VAESA
//! latent space.
//!
//! For each of the four DNN workloads (AlexNet, ResNet-50, ResNeXt-50,
//! DeepBench), runs `random`, `bo` (input space), and `vae_bo` (latent
//! space) for a fixed sample budget and multiple seeds, then reports:
//!
//! - Figure 11: mean ± std best-EDP-so-far curves per method;
//! - Table V: search performance (best EDP relative to the average random
//!   result; higher is better) and sample efficiency (rate of reaching
//!   within 3% of the best-known EDP, relative to random).

use vaesa::flows::{decode_to_config, run_bo, run_random, run_vae_bo};
use vaesa::report::{Comparison, MethodRuns};
use vaesa_accel::Network;
use vaesa_bench::{write_csv, write_svg, Args, ExperimentContext};
use vaesa_dse::Trace;
use vaesa_linalg::stats;
use vaesa_plot::{LineChart, Series};

fn curve_filled(trace: &Trace, len: usize) -> Vec<f64> {
    // Replace leading invalid samples with the first valid best value so
    // seeds can be averaged; the tail is padded with the final best.
    let first_valid = trace
        .samples()
        .iter()
        .find_map(|s| s.best_so_far)
        .unwrap_or(f64::NAN);
    trace
        .best_curve(len, first_valid)
        .iter()
        .map(|v| if v.is_nan() { first_valid } else { *v })
        .collect()
}

fn main() {
    let cli = Args::parse();
    vaesa_bench::init_run_meta("fig11_table5_bo", &cli);
    let ctx = ExperimentContext::build(cli);
    let args = &ctx.args;

    let budget = args.budget.unwrap_or(args.pick(60, 400, 2000));
    let seeds = args.pick(2, 3, 3);

    // Every search below funnels through `DseDriver::run`, so the metrics
    // gate can assert the counter `dse.evals` lands exactly here.
    vaesa_obs::set_meta(
        "dse.expected_evals",
        budget * seeds * 3 * Network::ALL.len(),
    );
    vaesa_obs::progress!("budget: {budget} samples, {seeds} seeds per method\n");

    let methods = ["random", "bo", "vae_bo"];
    // (workload, [SP, SE] per method in `methods` order).
    type TableRow = (String, [f64; 2], [f64; 2], [f64; 2]);
    let mut table: Vec<TableRow> = Vec::new();

    for (w, network) in Network::ALL.into_iter().enumerate() {
        let layers = network.layers();
        let evaluator = ctx.evaluator_for(&layers);
        println!("=== {network} ({} layers) ===", layers.len());

        let mut curves: Vec<Vec<Vec<f64>>> = vec![Vec::new(); 3];
        let mut traces: Vec<Vec<Trace>> = vec![Vec::new(), Vec::new(), Vec::new()];
        for seed in 0..seeds {
            let stream = |m: u64| 10_000 + (w as u64) * 100 + (seed as u64) * 10 + m;
            let runs = [
                run_random(
                    &evaluator,
                    &ctx.dataset.hw_norm,
                    budget,
                    &mut args.rng(stream(0)),
                ),
                run_bo(
                    &evaluator,
                    &ctx.dataset.hw_norm,
                    budget,
                    &mut args.rng(stream(1)),
                ),
                run_vae_bo(
                    &evaluator,
                    &ctx.model,
                    &ctx.dataset,
                    budget,
                    &mut args.rng(stream(2)),
                ),
            ];
            for (m, trace) in runs.into_iter().enumerate() {
                curves[m].push(curve_filled(&trace, budget));
                traces[m].push(trace);
            }
        }

        // Figure 11 CSV: per-sample mean and std for each method.
        let aggregated: Vec<Vec<(f64, f64)>> = curves
            .iter()
            .map(|c| stats::mean_std_curves(c).expect("aligned curves"))
            .collect();
        let rows: Vec<Vec<f64>> = (0..budget)
            .map(|i| {
                vec![
                    (i + 1) as f64,
                    aggregated[0][i].0,
                    aggregated[0][i].1,
                    aggregated[1][i].0,
                    aggregated[1][i].1,
                    aggregated[2][i].0,
                    aggregated[2][i].1,
                ]
            })
            .collect();
        let fname = format!(
            "fig11_{}.csv",
            network.name().to_lowercase().replace('-', "")
        );
        let path = write_csv(
            &args.out_dir,
            &fname,
            "sample,random_mean,random_std,bo_mean,bo_std,vae_bo_mean,vae_bo_std",
            &rows,
        );
        vaesa_obs::progress!("wrote {}", path.display());

        let mut chart = LineChart::new(
            format!("{network}: best EDP vs samples (Fig. 11)"),
            "samples",
            "best EDP (cycles*pJ)",
        );
        chart.log_y();
        for (m, label) in methods.iter().enumerate() {
            chart.series(
                Series::new(
                    label.to_string(),
                    aggregated[m]
                        .iter()
                        .enumerate()
                        .map(|(i, &(mean, _))| ((i + 1) as f64, mean))
                        .collect(),
                )
                .with_band(aggregated[m].iter().map(|&(_, std)| std).collect()),
            );
        }
        let svg_name = fname.replace(".csv", ".svg");
        let p = write_svg(&args.out_dir, &svg_name, &chart.render());
        vaesa_obs::progress!("wrote {}", p.display());

        // Re-score the overall winning design through the shared scheduler.
        // Decode/snap are deterministic, so this reproduces a config whose
        // layers were already scheduled during the search — a guaranteed
        // cache hit (the metrics gate asserts the cache warmed up) — and
        // names the best architecture found for the network.
        let winner = traces
            .iter()
            .enumerate()
            .flat_map(|(m, runs)| runs.iter().map(move |t| (m, t)))
            .filter_map(|(m, t)| t.best_value().map(|v| (m, t, v)))
            .min_by(|a, b| a.2.total_cmp(&b.2));
        if let Some((m, t, _)) = winner {
            let point = t.best_point().expect("best value implies a best point");
            let config = if m == 2 {
                decode_to_config(&ctx.model, point, &ctx.dataset.hw_norm, &evaluator)
            } else {
                evaluator.snap(point, &ctx.dataset.hw_norm)
            };
            let edp = evaluator.edp_of_config(&config).unwrap_or(f64::NAN);
            println!(
                "  best design ({}): {} (EDP {edp:.3e})",
                methods[m],
                evaluator.space().describe(&config)
            );
        }

        // Table V metrics via the library's report module.
        let mut it = traces.into_iter();
        let random_runs = MethodRuns::new("random", it.next().expect("random"));
        let bo_runs = MethodRuns::new("bo", it.next().expect("bo"));
        let vae_runs = MethodRuns::new("vae_bo", it.next().expect("vae_bo"));
        let cmp = Comparison::against_random(&random_runs, &[bo_runs, vae_runs], budget);
        for m in &cmp.methods {
            println!(
                "  {:>8}: SP = {:.2}, SE = {:.2} (mean best EDP {:.3e}, samples-to-3% {:.0})",
                m.label,
                m.search_performance,
                m.sample_efficiency,
                m.mean_best,
                m.mean_samples_to_3pct
            );
        }
        println!();
        table.push((
            network.name().to_string(),
            [
                cmp.methods[0].search_performance,
                cmp.methods[0].sample_efficiency,
            ],
            [
                cmp.methods[1].search_performance,
                cmp.methods[1].sample_efficiency,
            ],
            [
                cmp.methods[2].search_performance,
                cmp.methods[2].sample_efficiency,
            ],
        ));
    }

    println!("=== Table V (SP = search performance, SE = sample efficiency; random = 1.00) ===");
    println!(
        "{:<12} {:>7} {:>7}   {:>7} {:>7}   {:>7} {:>7}",
        "workload", "rnd SP", "rnd SE", "bo SP", "bo SE", "vae SP", "vae SE"
    );
    for (name, r, b, v) in &table {
        println!(
            "{name:<12} {:>7.2} {:>7.2}   {:>7.2} {:>7.2}   {:>7.2} {:>7.2}",
            r[0], r[1], b[0], b[1], v[0], v[1]
        );
    }
    println!(
        "\npaper (2000 samples): vae_bo SP 1.00-1.01, SE 1.27-4.46; bo SP 0.96-1.00, SE 0.31-1.00"
    );
    ctx.finish();
}
