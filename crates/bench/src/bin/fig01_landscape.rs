//! Figure 1: the irregular latency and energy landscapes of ResNet-50
//! across a slice of the design space.
//!
//! The paper sweeps the accumulation-buffer share of a fixed 2.7 MB total
//! on-chip buffer budget with all other hardware parameters held constant,
//! and plots workload latency (a) and energy (b). The curves are
//! non-monotonic with plateaus and cliffs — evidence that the raw space is
//! hard to search.

fn main() {
    let args = match vaesa_bench::Args::parse() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", vaesa_bench::USAGE);
            std::process::exit(2);
        }
    };
    if let Err(e) = vaesa_bench::pipelines::run("fig01_landscape", args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
