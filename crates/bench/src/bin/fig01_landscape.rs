//! Figure 1: the irregular latency and energy landscapes of ResNet-50
//! across a slice of the design space.
//!
//! The paper sweeps the accumulation-buffer share of a fixed 2.7 MB total
//! on-chip buffer budget with all other hardware parameters held constant,
//! and plots workload latency (a) and energy (b). The curves are
//! non-monotonic with plateaus and cliffs — evidence that the raw space is
//! hard to search.

use vaesa_accel::{workloads, ArchDescription};
use vaesa_bench::{write_csv, write_svg, Args};
use vaesa_cosa::Scheduler;
use vaesa_plot::{LineChart, Series};

fn main() {
    let args = Args::parse();
    vaesa_bench::init_run_meta("fig01_landscape", &args);
    let scheduler = Scheduler::default();
    let layers = workloads::resnet50();

    // 2.7 MB total buffer budget, split between the accumulation buffer and
    // the remaining buffers at fixed relative proportions, as in Fig. 1.
    let total_budget: f64 = 2.7 * 1024.0 * 1024.0;
    let points = args.pick(16, 48, 96);

    println!("Figure 1: ResNet-50 latency/energy vs accumulation-buffer share");
    println!("total buffer budget: {:.1} KiB", total_budget / 1024.0);
    println!(
        "{:>8} {:>14} {:>14} {:>14}",
        "accum%", "latency(cyc)", "energy(pJ)", "EDP"
    );

    let mut rows = Vec::new();
    let pe_count = 16u64;
    for i in 1..=points {
        // Sweep the accumulation share across (0, 90%) of the budget; the
        // remaining bytes are split weight-heavy (as in Simba) between the
        // weight, input, and global buffers. Per-PE buffers share the
        // budget across all PEs.
        let pct = i as f64 / (points + 1) as f64 * 0.90;
        let accum_total = pct * total_budget;
        let rest = total_budget - accum_total;
        let accum = (accum_total / pe_count as f64) as u64;
        let weight = (rest * 0.70 / pe_count as f64) as u64;
        let input = (rest * 0.15 / pe_count as f64) as u64;
        let global = (rest * 0.15) as u64;
        let arch = ArchDescription {
            pe_count,
            macs_per_pe: 1024,
            accum_buf_bytes: accum.max(64),
            weight_buf_bytes: weight.max(256),
            input_buf_bytes: input.max(128),
            global_buf_bytes: global.max(256),
        };
        match scheduler.schedule_workload(&arch, &layers) {
            Ok(w) => {
                println!(
                    "{:>7.1}% {:>14.4e} {:>14.4e} {:>14.4e}",
                    pct * 100.0,
                    w.total_latency_cycles,
                    w.total_energy_pj,
                    w.edp()
                );
                rows.push(vec![
                    pct * 100.0,
                    w.total_latency_cycles,
                    w.total_energy_pj,
                    w.edp(),
                ]);
            }
            Err(e) => println!("{:>7.1}% invalid: {e}", pct * 100.0),
        }
    }

    let path = write_csv(
        &args.out_dir,
        "fig01_landscape.csv",
        "accum_pct,latency_cycles,energy_pj,edp",
        &rows,
    );
    vaesa_obs::progress!("wrote {}", path.display());

    for (col, name, file) in [
        (1usize, "latency (cycles)", "fig01_latency.svg"),
        (2, "energy (pJ)", "fig01_energy.svg"),
    ] {
        let mut chart = LineChart::new(
            "ResNet-50 vs accumulation-buffer share (Fig. 1)",
            "accum buffer (% of 2.7 MB)",
            name,
        );
        chart.series(Series::new(
            name,
            rows.iter().map(|r| (r[0], r[col])).collect(),
        ));
        let p = write_svg(&args.out_dir, file, &chart.render());
        vaesa_obs::progress!("wrote {}", p.display());
    }

    // Quantify the paper's qualitative claim: the landscape is irregular
    // (non-monotone in both directions for latency and energy).
    let lat: Vec<f64> = rows.iter().map(|r| r[1]).collect();
    let en: Vec<f64> = rows.iter().map(|r| r[2]).collect();
    for (name, series) in [("latency", &lat), ("energy", &en)] {
        let ups = series.windows(2).filter(|w| w[1] > w[0]).count();
        let downs = series.windows(2).filter(|w| w[1] < w[0]).count();
        println!("{name}: {ups} increases, {downs} decreases across the sweep");
    }
    vaesa_bench::write_run_manifest(&args.out_dir, None);
}
