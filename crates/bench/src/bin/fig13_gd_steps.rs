//! Figure 13: EDP of decoded designs after 0, 100, and 200 gradient-descent
//! steps from random latent starting points.
//!
//! The paper reports that descending the predictor surface improves the
//! decoded design's real EDP by large factors (306x after 100 steps, 390x
//! after 200) relative to the random starts, before a single simulator
//! query is spent on intermediate points.

use vaesa::flows::{latent_box, vae_gd_edp_at_steps};
use vaesa_accel::workloads;
use vaesa_bench::{write_csv, write_svg, Args, ExperimentContext};
use vaesa_dse::GdConfig;
use vaesa_linalg::stats;
use vaesa_plot::Histogram;

fn main() {
    let cli = Args::parse();
    vaesa_bench::init_run_meta("fig13_gd_steps", &cli);
    let ctx = ExperimentContext::build(cli);
    let args = &ctx.args;

    let starts = args.budget.unwrap_or(args.pick(20, 80, 200));

    // A diverse subset of the Table IV test layers.
    let test = workloads::gd_test_layers();
    let layers = [test[3].clone(), test[6].clone(), test[11].clone()];

    let step_counts = [0usize, 100, 200];
    let gd_cfg = GdConfig {
        steps: 200,
        ..GdConfig::default()
    };
    let space = latent_box(&ctx.model, &ctx.dataset);

    let mut rows = Vec::new();
    let mut log_improve_100 = Vec::new();
    let mut log_improve_200 = Vec::new();
    for (li, layer) in layers.iter().enumerate() {
        let single = vec![layer.clone()];
        let evaluator = ctx.evaluator_for(&single);
        let mut rng = args.rng(30_000 + li as u64);
        for s in 0..starts {
            let start = space.sample(&mut rng);
            let edps = vae_gd_edp_at_steps(
                &evaluator,
                &ctx.model,
                &ctx.dataset,
                layer,
                &start,
                &step_counts,
                gd_cfg,
            );
            if let (Some(e0), Some(e100), Some(e200)) = (edps[0], edps[1], edps[2]) {
                rows.push(vec![li as f64, s as f64, e0, e100, e200]);
                log_improve_100.push((e0 / e100).ln());
                log_improve_200.push((e0 / e200).ln());
            }
        }
        println!(
            "layer {:>4}: {} valid starts so far",
            layer.name(),
            rows.len()
        );
    }

    let path = write_csv(
        &args.out_dir,
        "fig13_gd_steps.csv",
        "layer_index,start,edp_step0,edp_step100,edp_step200",
        &rows,
    );
    vaesa_obs::progress!("wrote {}", path.display());

    let mut hist = Histogram::new(
        "per-start EDP improvement after 200 GD steps (Fig. 13)",
        "EDP(start) / EDP(200 steps)",
    );
    hist.log_x();
    hist.values(log_improve_200.iter().map(|l| l.exp()));
    let p = write_svg(&args.out_dir, "fig13_gd_steps.svg", &hist.render());
    vaesa_obs::progress!("wrote {}", p.display());

    // Geometric-mean improvement factors (EDPs span orders of magnitude).
    let geo = |logs: &[f64]| stats::mean(logs).map(f64::exp).unwrap_or(f64::NAN);
    let g100 = geo(&log_improve_100);
    let g200 = geo(&log_improve_200);
    println!("\ngeometric-mean EDP improvement over the random start:");
    println!("  after 100 steps: {g100:.2}x (paper: 306x)");
    println!("  after 200 steps: {g200:.2}x (paper: 390x)");
    println!(
        "  monotone in steps: {}",
        if g200 >= g100 * 0.98 {
            "yes (matches paper; see EXPERIMENTS.md on the magnitude gap)"
        } else {
            "no"
        }
    );
    let improved = log_improve_200.iter().filter(|v| **v > 0.0).count();
    println!(
        "  starts improved after 200 steps: {improved}/{}",
        log_improve_200.len()
    );
    ctx.finish();
}
