//! Figure 13: EDP of decoded designs after 0, 100, and 200 gradient-descent
//! steps from random latent starting points.
//!
//! The paper reports that descending the predictor surface improves the
//! decoded design's real EDP by large factors (306x after 100 steps, 390x
//! after 200) relative to the random starts, before a single simulator
//! query is spent on intermediate points.

fn main() {
    let args = match vaesa_bench::Args::parse() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", vaesa_bench::USAGE);
            std::process::exit(2);
        }
    };
    if let Err(e) = vaesa_bench::pipelines::run("fig13_gd_steps", args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
