//! Ablation: dataset expansion + fine-tuning during DSE (§III-B3).
//!
//! The paper: "As we explore more and more hardware designs during DSE, we
//! can expand the dataset and retrain or fine tune the VAE and predictor
//! models." This binary measures that loop: run a first `vae_bo` round,
//! fold every evaluated design back into the dataset (keeping the original
//! normalizers so the model stays valid), fine-tune for a few epochs, and
//! compare a second search round against continuing with the frozen model.

fn main() {
    let args = match vaesa_bench::Args::parse() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", vaesa_bench::USAGE);
            std::process::exit(2);
        }
    };
    if let Err(e) = vaesa_bench::pipelines::run("ablation_finetune", args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
