//! Ablation: dataset expansion + fine-tuning during DSE (§III-B3).
//!
//! The paper: "As we explore more and more hardware designs during DSE, we
//! can expand the dataset and retrain or fine tune the VAE and predictor
//! models." This binary measures that loop: run a first `vae_bo` round,
//! fold every evaluated design back into the dataset (keeping the original
//! normalizers so the model stays valid), fine-tune for a few epochs, and
//! compare a second search round against continuing with the frozen model.

use vaesa::flows::{decode_to_config, run_vae_bo};
use vaesa::{Record, TrainConfig, Trainer};
use vaesa_accel::workloads;
use vaesa_bench::{write_labeled_csv, Args, ExperimentContext};
use vaesa_linalg::stats;

fn main() {
    let cli = Args::parse();
    vaesa_bench::init_run_meta("ablation_finetune", &cli);
    let ctx = ExperimentContext::build(cli);
    let args = &ctx.args;
    let resnet = workloads::resnet50();

    let round = args.budget.unwrap_or(args.pick(40, 150, 500));
    let seeds = args.pick(2, 3, 5);

    let evaluator = ctx.evaluator_for(&resnet);

    let mut frozen_bests = Vec::new();
    let mut finetuned_bests = Vec::new();
    for seed in 0..seeds {
        // Round 1 (shared): explore with the freshly trained model.
        let mut rng = args.rng(70_000 + seed as u64);
        let round1 = run_vae_bo(&evaluator, &ctx.model, &ctx.dataset, round, &mut rng);

        // Fold the evaluated designs back into the dataset as per-layer
        // records (exactly what the scheduler + cost model already computed).
        let mut new_records = Vec::new();
        for sample in round1.samples() {
            let config = decode_to_config(&ctx.model, &sample.x, &ctx.dataset.hw_norm, &evaluator);
            let Some(w) = evaluator.workload_eval(&config) else {
                continue;
            };
            let hw_raw = ctx.setup.space.raw_features(&config);
            for (layer, sched) in resnet.iter().zip(&w.layers) {
                new_records.push(Record {
                    config,
                    hw_raw,
                    layer_raw: layer.features(),
                    latency: sched.evaluation.latency_cycles,
                    energy: sched.evaluation.energy_pj,
                });
            }
        }
        println!(
            "seed {seed}: round 1 best {:.4e}, {} new records",
            round1.best_value().unwrap_or(f64::NAN),
            new_records.len()
        );

        // Branch A: continue with the frozen model.
        let mut rng = args.rng(71_000 + seed as u64);
        let frozen = run_vae_bo(&evaluator, &ctx.model, &ctx.dataset, round, &mut rng);
        frozen_bests.push(
            frozen
                .best_value()
                .unwrap_or(f64::NAN)
                .min(round1.best_value().unwrap_or(f64::NAN)),
        );

        // Branch B: extend + fine-tune (low LR, few epochs), then search.
        let extended = ctx.dataset.extended(new_records);
        let mut tuned = ctx.model.clone();
        let mut rng = args.rng(72_000 + seed as u64);
        Trainer::new(TrainConfig {
            epochs: ctx.epochs / 4,
            batch_size: 64,
            learning_rate: 2e-4,
        })
        .train_vae(&mut tuned, &extended, &mut rng);
        let mut rng = args.rng(71_000 + seed as u64); // same budget RNG as branch A
        let fine = run_vae_bo(&evaluator, &tuned, &extended, round, &mut rng);
        finetuned_bests.push(
            fine.best_value()
                .unwrap_or(f64::NAN)
                .min(round1.best_value().unwrap_or(f64::NAN)),
        );
    }

    let fm = stats::mean(&frozen_bests).unwrap_or(f64::NAN);
    let tm = stats::mean(&finetuned_bests).unwrap_or(f64::NAN);
    println!("\nbest ResNet-50 EDP after two rounds ({round} samples each, {seeds} seeds):");
    println!("  frozen model:     {fm:.4e}");
    println!("  fine-tuned model: {tm:.4e}");
    println!(
        "  fine-tuning is {}",
        if tm <= fm * 1.001 {
            "at least as good (matches the paper's expectation)"
        } else {
            "not better at this scale"
        }
    );

    let rows = vec![
        ("frozen".to_string(), vec![fm]),
        ("finetuned".to_string(), vec![tm]),
    ];
    let path = write_labeled_csv(
        &args.out_dir,
        "ablation_finetune.csv",
        "strategy,best_edp_mean",
        &rows,
    );
    vaesa_obs::progress!("wrote {}", path.display());
    ctx.finish();
}
