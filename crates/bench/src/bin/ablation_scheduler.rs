//! Ablation: how much the one-shot scheduler's mapping quality matters.
//!
//! The VAESA pipeline assumes CoSA returns a *good* mapping per
//! `(architecture, layer)`; the labels the VAE trains on are only as
//! meaningful as the mapper. This ablation compares three mappers on the
//! same architectures:
//!
//! - `unit`: no tiling, no parallelism (worst case);
//! - `random_valid`: the best of N random valid mappings (a naive mapper);
//! - `greedy` (ours): the deterministic EDP-greedy descent.

use vaesa_accel::workloads;
use vaesa_bench::{write_labeled_csv, Args, Setup};
use vaesa_cosa::random_mapping;
use vaesa_linalg::stats;
use vaesa_timeloop::Mapping;

fn main() {
    let args = Args::parse();
    vaesa_bench::init_run_meta("ablation_scheduler", &args);
    let setup = Setup::new();
    let layers = workloads::resnet50();
    let scheduler = vaesa_cosa::Scheduler::default();
    let model = scheduler.model();

    let n_archs = args.pick(10, 40, 100);
    let n_random_mappings = args.pick(20, 100, 400);
    let mut rng = args.rng(50_000);

    // Per-mapper geometric-mean EDP across (arch, layer) pairs.
    let mut logs: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut archs_used = 0;
    while archs_used < n_archs {
        let config = setup.space.random(&mut rng);
        let arch = setup.space.describe(&config);
        let Ok(greedy) = scheduler.schedule_workload(&arch, &layers) else {
            continue;
        };
        archs_used += 1;

        for (li, layer) in layers.iter().enumerate() {
            // Unit mapping.
            let unit = model
                .evaluate(&arch, layer, &Mapping::unit())
                .expect("unit is valid when the workload schedules");
            logs[0].push(unit.edp().ln());

            // Best of N random valid mappings.
            let mut best_random = f64::INFINITY;
            for _ in 0..n_random_mappings {
                let m = random_mapping(&arch, layer, &mut rng);
                if let Ok(e) = model.evaluate(&arch, layer, &m) {
                    best_random = best_random.min(e.edp());
                }
            }
            if best_random.is_finite() {
                logs[1].push(best_random.ln());
            }

            logs[2].push(greedy.layers[li].evaluation.edp().ln());
        }
    }

    let names = ["unit", "random_valid", "greedy"];
    let mut rows = Vec::new();
    println!("geometric-mean per-layer EDP over {archs_used} random architectures:");
    let geo: Vec<f64> = logs
        .iter()
        .map(|l| stats::mean(l).map(f64::exp).unwrap_or(f64::NAN))
        .collect();
    for (name, g) in names.iter().zip(&geo) {
        println!("  {name:>13}: {g:.4e}");
        rows.push((name.to_string(), vec![*g]));
    }
    println!(
        "\ngreedy improves on best-of-{n_random_mappings} random mappings by {:.1}x \
         and on the unit mapping by {:.0}x",
        geo[1] / geo[2],
        geo[0] / geo[2]
    );

    let path = write_labeled_csv(
        &args.out_dir,
        "ablation_scheduler.csv",
        "mapper,geomean_edp",
        &rows,
    );
    vaesa_obs::progress!("wrote {}", path.display());
    vaesa_bench::write_run_manifest(&args.out_dir, Some(&setup.scheduler));
}
