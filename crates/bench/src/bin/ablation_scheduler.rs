//! Ablation: how much the one-shot scheduler's mapping quality matters.
//!
//! The VAESA pipeline assumes CoSA returns a *good* mapping per
//! `(architecture, layer)`; the labels the VAE trains on are only as
//! meaningful as the mapper. This ablation compares three mappers on the
//! same architectures:
//!
//! - `unit`: no tiling, no parallelism (worst case);
//! - `random_valid`: the best of N random valid mappings (a naive mapper);
//! - `greedy` (ours): the deterministic EDP-greedy descent.

fn main() {
    let args = match vaesa_bench::Args::parse() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", vaesa_bench::USAGE);
            std::process::exit(2);
        }
    };
    if let Err(e) = vaesa_bench::pipelines::run("ablation_scheduler", args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
