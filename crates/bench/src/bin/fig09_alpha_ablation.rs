//! Figure 9: the effect of the KL weight α on the learned latent space.
//!
//! Encoders trained with α ∈ {0, 1e-4, 1e-2} on a 2-D latent space:
//!
//! - α = 0 removes the variational regularizer; encodings scatter far from
//!   the origin (regions of high predictor uncertainty).
//! - α = 1e-4 produces a structured but continuous cloud — the paper's
//!   choice, and the best reconstructor of the three.
//! - α = 1e-2 collapses the encoding toward the standard normal,
//!   destroying structure.

fn main() {
    let args = match vaesa_bench::Args::parse() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", vaesa_bench::USAGE);
            std::process::exit(2);
        }
    };
    if let Err(e) = vaesa_bench::pipelines::run("fig09_alpha_ablation", args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
