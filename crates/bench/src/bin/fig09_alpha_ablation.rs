//! Figure 9: the effect of the KL weight α on the learned latent space.
//!
//! Encoders trained with α ∈ {0, 1e-4, 1e-2} on a 2-D latent space:
//!
//! - α = 0 removes the variational regularizer; encodings scatter far from
//!   the origin (regions of high predictor uncertainty).
//! - α = 1e-4 produces a structured but continuous cloud — the paper's
//!   choice, and the best reconstructor of the three.
//! - α = 1e-2 collapses the encoding toward the standard normal,
//!   destroying structure.

use vaesa_accel::workloads;
use vaesa_bench::{write_csv, write_svg, Args, Setup};
use vaesa_linalg::stats;
use vaesa_plot::ScatterChart;

fn main() {
    let args = Args::parse();
    vaesa_bench::init_run_meta("fig09_alpha_ablation", &args);
    let setup = Setup::new();
    let pool = workloads::training_layers();

    let n_configs = args.pick(60, 400, 1200);
    let epochs = args.pick(10, 40, 80);
    vaesa_obs::progress!("building dataset ({n_configs} configs)...");
    let dataset = setup.dataset(&pool, n_configs, &args);

    let alphas = [0.0, 1e-4, 1e-2];
    let mut rows = Vec::new();
    let mut summary = Vec::new();
    for (i, &alpha) in alphas.iter().enumerate() {
        vaesa_obs::progress!("training 2-D VAESA with alpha = {alpha:e} ({epochs} epochs)...");
        let (model, history) = setup.train(&dataset, 2, alpha, epochs, &args);
        let z = model.encode_mean(&dataset.hw);
        let z1: Vec<f64> = (0..z.rows()).map(|r| z.get(r, 0)).collect();
        let z2: Vec<f64> = (0..z.rows()).map(|r| z.get(r, 1)).collect();

        let spread = |v: &[f64]| {
            stats::quantile(v, 0.99).unwrap_or(0.0) - stats::quantile(v, 0.01).unwrap_or(0.0)
        };
        let std1 = stats::std_dev(&z1).unwrap_or(0.0);
        let std2 = stats::std_dev(&z2).unwrap_or(0.0);
        let recon = history.last().recon;
        println!(
            "  encoding std = ({std1:.3}, {std2:.3}), 98% spread = ({:.2}, {:.2}), final recon loss = {recon:.5}",
            spread(&z1),
            spread(&z2),
        );
        summary.push((alpha, std1.max(std2), recon));

        for r in 0..z.rows().min(3000) {
            let macs = dataset.records[r].hw_raw[0] * dataset.records[r].hw_raw[1];
            rows.push(vec![i as f64, z.get(r, 0), z.get(r, 1), macs]);
        }
    }

    let path = write_csv(
        &args.out_dir,
        "fig09_alpha_ablation.csv",
        "alpha_index,z1,z2,total_macs",
        &rows,
    );
    println!(
        "\nwrote {} (alpha_index: 0 => 0, 1 => 1e-4, 2 => 1e-2)",
        path.display()
    );

    // All three encodings on one chart, colored by α index, so the
    // spread ordering (α=0 widest, α=1e-2 collapsed) reads directly.
    let mut chart = ScatterChart::new(
        "2-D latent encodings by KL weight (Fig. 9; color: 0 => alpha 0, 1 => 1e-4, 2 => 1e-2)",
        "latent dim 1",
        "latent dim 2",
        "alpha index",
    );
    chart.points(rows.iter().map(|r| (r[1], r[2], r[0])));
    let p = write_svg(&args.out_dir, "fig09_alpha_ablation.svg", &chart.render());
    vaesa_obs::progress!("wrote {}", p.display());

    println!("\nsummary (alpha, max encoding std, final recon loss):");
    for (alpha, spread, recon) in &summary {
        println!("  alpha={alpha:>8.0e}  std={spread:>7.3}  recon={recon:.5}");
    }
    println!("\nexpected shape (paper):");
    println!("  - spread(alpha=0) > spread(1e-4) > spread(1e-2) ~ 1");
    println!("  - recon(1e-4) < recon(1e-2); alpha=1e-2 is near-random");
    let s0 = summary[0].1;
    let s1 = summary[1].1;
    let s2 = summary[2].1;
    println!(
        "measured: spread ordering {}, recon(1e-4) {} recon(1e-2)",
        if s0 >= s1 && s1 >= s2 {
            "HOLDS"
        } else {
            "DIFFERS"
        },
        if summary[1].2 <= summary[2].2 {
            "<="
        } else {
            ">"
        },
    );
    vaesa_bench::write_run_manifest(&args.out_dir, Some(&setup.scheduler));
}
