//! Figure 4: visualization of training designs encoded into a
//! 2-dimensional latent space, colored by (a) total MAC count, (b) global
//! buffer size, and (c) ResNet-50 EDP.
//!
//! The paper's qualitative findings, which this binary quantifies:
//! encodings cluster by feature value, and the low-EDP region coincides
//! with the high-compute region.

fn main() {
    let args = match vaesa_bench::Args::parse() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", vaesa_bench::USAGE);
            std::process::exit(2);
        }
    };
    if let Err(e) = vaesa_bench::pipelines::run("fig04_latent_viz", args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
