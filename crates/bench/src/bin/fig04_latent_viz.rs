//! Figure 4: visualization of training designs encoded into a
//! 2-dimensional latent space, colored by (a) total MAC count, (b) global
//! buffer size, and (c) ResNet-50 EDP.
//!
//! The paper's qualitative findings, which this binary quantifies:
//! encodings cluster by feature value, and the low-EDP region coincides
//! with the high-compute region.

use std::collections::HashSet;
use vaesa_accel::workloads;
use vaesa_bench::{write_csv, write_svg, Args, Setup};
use vaesa_linalg::stats;
use vaesa_nn::Tensor;
use vaesa_plot::ScatterChart;

fn main() {
    let args = Args::parse();
    vaesa_bench::init_run_meta("fig04_latent_viz", &args);
    let setup = Setup::new();
    let layers = workloads::training_layers();
    let resnet = workloads::resnet50();

    let n_configs = args.pick(60, 400, 1200);
    let epochs = args.pick(10, 40, 80);
    vaesa_obs::progress!(
        "building dataset ({n_configs} random configs x {} layers)...",
        layers.len()
    );
    let dataset = setup.dataset(&layers, n_configs, &args);
    vaesa_obs::progress!(
        "training 2-D VAESA on {} samples for {epochs} epochs...",
        dataset.len()
    );
    let (model, history) = setup.train(&dataset, 2, 1e-4, epochs, &args);
    println!("final losses: {:?}", history.last());

    // One point per unique architecture, colored by the whole-workload
    // (ResNet-50) EDP of that architecture — the paper's "current workload".
    let mut seen = HashSet::new();
    let mut rows = Vec::new();
    for r in &dataset.records {
        if !seen.insert(r.config) {
            continue;
        }
        let arch = setup.space.describe(&r.config);
        let Ok(w) = setup.scheduler.schedule_workload(&arch, &resnet) else {
            continue;
        };
        let normalized = dataset.hw_norm.transform_row(&r.hw_raw);
        let z = model.encode_mean(&Tensor::row_vector(&normalized));
        let total_macs = r.hw_raw[0] * r.hw_raw[1];
        rows.push(vec![
            z.get(0, 0),
            z.get(0, 1),
            total_macs,
            r.hw_raw[5], // global buffer bytes
            w.edp(),
        ]);
    }
    let path = write_csv(
        &args.out_dir,
        "fig04_latent_viz.csv",
        "z1,z2,total_macs,global_buf_bytes,resnet50_edp",
        &rows,
    );
    println!(
        "wrote {} ({} unique architectures)",
        path.display(),
        rows.len()
    );

    for (col, label, file) in [
        (2usize, "total MACs", "fig04a_macs.svg"),
        (3, "global buffer bytes", "fig04b_globalbuf.svg"),
        (4, "ResNet-50 EDP", "fig04c_edp.svg"),
    ] {
        let mut chart = ScatterChart::new(
            format!("latent encodings colored by {label} (Fig. 4)"),
            "latent dim 1",
            "latent dim 2",
            label,
        );
        chart.log_color();
        chart.points(rows.iter().map(|r| (r[0], r[1], r[col])));
        let p = write_svg(&args.out_dir, file, &chart.render());
        vaesa_obs::progress!("wrote {}", p.display());
    }

    // Quantify "grouped by feature values": each colored quantity should be
    // predictable from the latent position. We report the larger |Spearman|
    // against the two latent axes.
    let z1: Vec<f64> = rows.iter().map(|r| r[0]).collect();
    let z2: Vec<f64> = rows.iter().map(|r| r[1]).collect();
    println!("\nlatent-structure summary (|Spearman| vs best latent axis):");
    for (name, col) in [("total MACs", 2usize), ("global buffer", 3), ("EDP", 4)] {
        let vals: Vec<f64> = rows.iter().map(|r| r[col].ln()).collect();
        let s1 = stats::spearman(&z1, &vals).unwrap_or(0.0).abs();
        let s2 = stats::spearman(&z2, &vals).unwrap_or(0.0).abs();
        println!("  {name:>14}: {:.3}", s1.max(s2));
    }

    // "Purple (low-EDP) points overlap the dark-blue (high-MAC) points":
    // workload EDP should anticorrelate with compute.
    let macs: Vec<f64> = rows.iter().map(|r| r[2].ln()).collect();
    let edp: Vec<f64> = rows.iter().map(|r| r[4].ln()).collect();
    let corr = stats::spearman(&macs, &edp).unwrap_or(0.0);
    println!("\nSpearman(log MACs, log ResNet-50 EDP) = {corr:.3} (paper: strongly negative)");
    vaesa_bench::write_run_manifest(&args.out_dir, Some(&setup.scheduler));
}
