//! Ablation: register-level dataflow choice per layer type.
//!
//! The paper's motivation lists dataflow among the key hardware knobs
//! (§I). Simba (and therefore this reproduction's default) is
//! weight-stationary; this ablation lets the scheduler choose among
//! weight-/output-/input-stationary per layer and reports which dataflow
//! wins where — the classic result being that the best choice depends on
//! layer geometry (e.g. output-stationary for reduction-heavy FC layers).

fn main() {
    let args = match vaesa_bench::Args::parse() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", vaesa_bench::USAGE);
            std::process::exit(2);
        }
    };
    if let Err(e) = vaesa_bench::pipelines::run("ablation_dataflow", args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
