//! Ablation: register-level dataflow choice per layer type.
//!
//! The paper's motivation lists dataflow among the key hardware knobs
//! (§I). Simba (and therefore this reproduction's default) is
//! weight-stationary; this ablation lets the scheduler choose among
//! weight-/output-/input-stationary per layer and reports which dataflow
//! wins where — the classic result being that the best choice depends on
//! layer geometry (e.g. output-stationary for reduction-heavy FC layers).

use std::collections::HashMap;
use vaesa_accel::{workloads, ArchDescription};
use vaesa_bench::{write_labeled_csv, Args};
use vaesa_cosa::Scheduler;
use vaesa_linalg::stats;

fn main() {
    let args = Args::parse();
    vaesa_bench::init_run_meta("ablation_dataflow", &args);
    let scheduler = Scheduler::default();
    let arch = ArchDescription {
        pe_count: 16,
        macs_per_pe: 1024,
        accum_buf_bytes: 32 * 1024,
        weight_buf_bytes: 512 * 1024,
        input_buf_bytes: 64 * 1024,
        global_buf_bytes: 128 * 1024,
    };

    let mut pools: Vec<(&str, Vec<vaesa_accel::LayerShape>)> = vec![
        ("resnet50", workloads::resnet50()),
        ("alexnet", workloads::alexnet()),
        ("mobilenet_v1", workloads::mobilenet_v1()),
        ("bert_gemms", workloads::bert_base_gemms()),
    ];
    if args.scale == 0 {
        pools.truncate(2);
    }

    let mut wins: HashMap<&'static str, usize> = HashMap::new();
    let mut improvement_logs = Vec::new();
    let mut rows = Vec::new();
    println!("per-layer dataflow selection on {arch}\n");
    println!(
        "{:<14} {:>8} {:>10} {:>22}",
        "workload", "layers", "geo gain", "dataflow wins (WS/OS/IS)"
    );
    for (name, layers) in &pools {
        let mut logs = Vec::new();
        let mut local = [0usize; 3];
        for layer in layers {
            let (Ok(ws), Ok(best)) = (
                scheduler.schedule(&arch, layer),
                scheduler.schedule_with_dataflows(&arch, layer),
            ) else {
                continue;
            };
            let gain = ws.evaluation.edp() / best.evaluation.edp();
            logs.push(gain.ln());
            improvement_logs.push(gain.ln());
            let df = best.mapping.dataflow.name();
            *wins.entry(df).or_default() += 1;
            match df {
                "WS" => local[0] += 1,
                "OS" => local[1] += 1,
                _ => local[2] += 1,
            }
        }
        let geo = stats::mean(&logs).map(f64::exp).unwrap_or(f64::NAN);
        println!(
            "{name:<14} {:>8} {:>9.3}x {:>13}/{}/{}",
            layers.len(),
            geo,
            local[0],
            local[1],
            local[2]
        );
        rows.push((
            name.to_string(),
            vec![geo, local[0] as f64, local[1] as f64, local[2] as f64],
        ));
    }

    let overall = stats::mean(&improvement_logs)
        .map(f64::exp)
        .unwrap_or(f64::NAN);
    println!("\noverall geometric-mean EDP gain from dataflow freedom: {overall:.3}x");
    println!(
        "dataflow wins: WS {} | OS {} | IS {}",
        wins.get("WS").copied().unwrap_or(0),
        wins.get("OS").copied().unwrap_or(0),
        wins.get("IS").copied().unwrap_or(0)
    );

    let path = write_labeled_csv(
        &args.out_dir,
        "ablation_dataflow.csv",
        "workload,geo_gain,ws_wins,os_wins,is_wins",
        &rows,
    );
    vaesa_obs::progress!("wrote {}", path.display());
    vaesa_bench::write_run_manifest(&args.out_dir, None);
}
