//! Figures 7 and 8: interpolation in the latent space between the worst
//! and best training designs, for 2-D and 4-D latent spaces.
//!
//! The paper reports the L2 distance between the worst and best encodings
//! (0.96 in 2-D, 2.58 in 4-D) and shows that the predicted-EDP contour
//! along the worst→best axis trends downward — with a local minimum in 2-D
//! that the 4-D space smooths out.

fn main() {
    let args = match vaesa_bench::Args::parse() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", vaesa_bench::USAGE);
            std::process::exit(2);
        }
    };
    if let Err(e) = vaesa_bench::pipelines::run("fig07_interpolation", args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
