//! Figures 7 and 8: interpolation in the latent space between the worst
//! and best training designs, for 2-D and 4-D latent spaces.
//!
//! The paper reports the L2 distance between the worst and best encodings
//! (0.96 in 2-D, 2.58 in 4-D) and shows that the predicted-EDP contour
//! along the worst→best axis trends downward — with a local minimum in 2-D
//! that the 4-D space smooths out.

use vaesa::interpolate::interpolate_worst_best;
use vaesa_accel::workloads;
use vaesa_bench::{write_csv, write_svg, Args, Setup};
use vaesa_plot::{LineChart, Series};

fn main() {
    let args = Args::parse();
    vaesa_bench::init_run_meta("fig07_interpolation", &args);
    let setup = Setup::new();
    let pool = workloads::training_layers();

    let n_configs = args.pick(60, 400, 1200);
    let epochs = args.pick(10, 40, 80);
    vaesa_obs::progress!("building dataset ({n_configs} configs)...");
    let dataset = setup.dataset(&pool, n_configs, &args);

    // Probe along the axis for a representative ResNet-50 layer.
    let layer = workloads::resnet50()[6].clone(); // 3x3 s2_conv3, 28x28
    let layer_raw = layer.features();
    let n_inner = args.pick(8, 20, 40);
    let n_beyond = args.pick(3, 8, 16);

    let mut all_rows = Vec::new();
    for dz in [2usize, 4] {
        vaesa_obs::progress!("training {dz}-D VAESA ({epochs} epochs)...");
        let (model, _) = setup.train(&dataset, dz, 1e-4, epochs, &args);
        let interp = interpolate_worst_best(&model, &dataset, &layer_raw, n_inner, n_beyond);
        println!(
            "{dz}-D latent space: |z_best - z_worst| = {:.3} (paper: {} )",
            interp.worst_best_distance(),
            if dz == 2 { "0.96" } else { "2.58" }
        );
        println!(
            "monotonicity of predicted EDP along worst->best: {:.2}",
            interp.monotonicity()
        );
        let start = interp.points.first().expect("points").predicted_edp;
        let at_best = interp
            .points
            .iter()
            .min_by(|a, b| {
                (a.t - 1.0)
                    .abs()
                    .partial_cmp(&(b.t - 1.0).abs())
                    .expect("finite")
            })
            .expect("points")
            .predicted_edp;
        println!("predicted EDP: worst {start:.3e} -> best {at_best:.3e}");
        for p in &interp.points {
            all_rows.push(vec![dz as f64, p.t, p.predicted_edp]);
        }
    }

    let path = write_csv(
        &args.out_dir,
        "fig07_interpolation.csv",
        "latent_dim,t,predicted_edp",
        &all_rows,
    );
    vaesa_obs::progress!("wrote {}", path.display());

    let mut chart = LineChart::new(
        "predicted EDP along the worst-to-best axis (Figs. 7-8)",
        "interpolation t (0 = worst, 1 = best)",
        "predicted EDP",
    );
    chart.log_y();
    for dz in [2.0f64, 4.0] {
        chart.series(Series::new(
            format!("{}-D latent", dz as usize),
            all_rows
                .iter()
                .filter(|r| r[0] == dz)
                .map(|r| (r[1], r[2]))
                .collect(),
        ));
    }
    let p = write_svg(&args.out_dir, "fig07_interpolation.svg", &chart.render());
    vaesa_obs::progress!("wrote {}", p.display());
    vaesa_bench::write_run_manifest(&args.out_dir, Some(&setup.scheduler));
}
