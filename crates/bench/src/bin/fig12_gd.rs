//! Figure 12: average EDP of `vae_gd` vs `gd` vs `random` over the 12
//! unseen Table IV layers, at small sample budgets.
//!
//! Each `vae_gd`/`gd` sample is one full predictor-descent from a random
//! start, costing a single scheduler+cost-model query; `random` queries a
//! uniform design per sample. The paper's finding: `vae_gd` consistently
//! wins for small sample counts (≲ 30), e.g. 16% lower EDP than random at
//! 10 samples.

use vaesa::flows::{run_gd, run_random_layer, run_vae_gd};
use vaesa::{InputPredictors, TrainConfig, Trainer};
use vaesa_accel::workloads;
use vaesa_bench::{write_csv, write_svg, Args, ExperimentContext};
use vaesa_dse::{GdConfig, Trace};
use vaesa_linalg::stats;
use vaesa_plot::{LineChart, Series};

fn filled(trace: &Trace, len: usize) -> Vec<f64> {
    let first = trace
        .samples()
        .iter()
        .find_map(|s| s.best_so_far)
        .unwrap_or(f64::NAN);
    trace.best_curve(len, first)
}

fn main() {
    let cli = Args::parse();
    vaesa_bench::init_run_meta("fig12_gd", &cli);
    let ctx = ExperimentContext::build(cli);
    let args = &ctx.args;
    let test_layers = workloads::gd_test_layers();

    let samples = args.budget.unwrap_or(args.pick(10, 40, 60));
    let seeds = args.pick(2, 5, 5);

    // Every search below funnels through `DseDriver::run`, so the metrics
    // gate can assert the counter `dse.evals` lands exactly here.
    vaesa_obs::set_meta(
        "dse.expected_evals",
        samples * seeds * 3 * test_layers.len(),
    );

    vaesa_obs::progress!("training input-space predictors ({} epochs)...", ctx.epochs);
    let mut input_preds = InputPredictors::new(&[64, 32], &mut args.rng(3_000));
    input_preds.train(
        &Trainer::new(TrainConfig {
            epochs: ctx.epochs,
            batch_size: 64,
            learning_rate: 1e-3,
        }),
        &ctx.dataset,
        &mut args.rng(3_001),
    );

    let gd_cfg = GdConfig::default();
    vaesa_obs::progress!(
        "{samples} samples x {seeds} seeds x {} layers\n",
        test_layers.len()
    );

    // Per-method normalized best-so-far curves pooled across layers/seeds.
    let mut pooled: [Vec<Vec<f64>>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for (li, layer) in test_layers.iter().enumerate() {
        let single = vec![layer.clone()];
        let evaluator = ctx.evaluator_for(&single);
        let mut per_layer: [Vec<Vec<f64>>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for seed in 0..seeds {
            let stream = |m: u64| 20_000 + (li as u64) * 100 + (seed as u64) * 10 + m;
            let traces = [
                run_vae_gd(
                    &evaluator,
                    &ctx.model,
                    &ctx.dataset,
                    layer,
                    samples,
                    gd_cfg,
                    &mut args.rng(stream(0)),
                ),
                run_gd(
                    &evaluator,
                    &input_preds,
                    &ctx.dataset,
                    layer,
                    samples,
                    gd_cfg,
                    &mut args.rng(stream(1)),
                ),
                run_random_layer(
                    &evaluator,
                    &ctx.dataset.hw_norm,
                    samples,
                    &mut args.rng(stream(2)),
                ),
            ];
            for (m, t) in traces.iter().enumerate() {
                per_layer[m].push(filled(t, samples));
            }
        }
        // Normalize by the best value any method found on this layer, so
        // layers with wildly different EDP scales can be averaged.
        let best_known = per_layer
            .iter()
            .flatten()
            .flatten()
            .copied()
            .filter(|v| v.is_finite())
            .fold(f64::INFINITY, f64::min);
        for m in 0..3 {
            for curve in &per_layer[m] {
                pooled[m].push(curve.iter().map(|v| v / best_known).collect());
            }
        }
        vaesa_obs::progress!(
            "layer {:>4} done (best known EDP {best_known:.3e})",
            layer.name()
        );
    }

    let methods = ["vae_gd", "gd", "random"];
    let agg: Vec<Vec<(f64, f64)>> = pooled
        .iter()
        .map(|c| stats::mean_std_curves(c).expect("aligned"))
        .collect();

    let rows: Vec<Vec<f64>> = (0..samples)
        .map(|i| {
            vec![
                (i + 1) as f64,
                agg[0][i].0,
                agg[0][i].1,
                agg[1][i].0,
                agg[1][i].1,
                agg[2][i].0,
                agg[2][i].1,
            ]
        })
        .collect();
    let path = write_csv(
        &args.out_dir,
        "fig12_gd.csv",
        "sample,vae_gd_mean,vae_gd_std,gd_mean,gd_std,random_mean,random_std",
        &rows,
    );
    vaesa_obs::progress!("wrote {}", path.display());

    let mut chart = LineChart::new(
        "average normalized best EDP over the 12 unseen layers (Fig. 12)",
        "samples (simulator queries)",
        "best EDP / best known",
    );
    for (m, label) in methods.iter().enumerate() {
        chart.series(
            Series::new(
                label.to_string(),
                agg[m]
                    .iter()
                    .enumerate()
                    .map(|(i, &(mean, _))| ((i + 1) as f64, mean))
                    .collect(),
            )
            .with_band(agg[m].iter().map(|&(_, std)| std).collect()),
        );
    }
    let p = write_svg(&args.out_dir, "fig12_gd.svg", &chart.render());
    vaesa_obs::progress!("wrote {}", p.display());

    println!("\nmean normalized best EDP (lower is better):");
    println!(
        "{:>8} {:>10} {:>10} {:>10}",
        "samples", "vae_gd", "gd", "random"
    );
    let mut checkpoints = vec![5usize, 10, 20, 30, samples];
    checkpoints.sort_unstable();
    checkpoints.dedup();
    for &s in &checkpoints {
        if s > samples {
            continue;
        }
        let i = s - 1;
        println!(
            "{s:>8} {:>10.3} {:>10.3} {:>10.3}",
            agg[0][i].0, agg[1][i].0, agg[2][i].0
        );
    }
    let at = samples.min(10) - 1;
    let vs_random = 100.0 * (1.0 - agg[0][at].0 / agg[2][at].0);
    let vs_gd = 100.0 * (1.0 - agg[0][at].0 / agg[1][at].0);
    for (m, name) in methods.iter().enumerate() {
        let final_val = agg[m][samples - 1].0;
        println!("final mean normalized EDP for {name}: {final_val:.3}");
    }
    println!(
        "\nat {} samples: vae_gd is {vs_random:.1}% better than random, {vs_gd:.1}% better than gd",
        at + 1
    );
    println!("(paper: vae_gd 16% lower EDP than random at 10 samples, ahead of gd throughout)");
    ctx.finish();
}
