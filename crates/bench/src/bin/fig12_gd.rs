//! Figure 12: average EDP of `vae_gd` vs `gd` vs `random` over the 12
//! unseen Table IV layers, at small sample budgets.
//!
//! Each `vae_gd`/`gd` sample is one full predictor-descent from a random
//! start, costing a single scheduler+cost-model query; `random` queries a
//! uniform design per sample. The paper's finding: `vae_gd` consistently
//! wins for small sample counts (≲ 30), e.g. 16% lower EDP than random at
//! 10 samples.

fn main() {
    let args = match vaesa_bench::Args::parse() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", vaesa_bench::USAGE);
            std::process::exit(2);
        }
    };
    if let Err(e) = vaesa_bench::pipelines::run("fig12_gd", args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
