//! Figure 10: reconstruction loss during training for different latent
//! dimensionalities.
//!
//! The paper trains VAESA with several latent widths and finds that
//! reconstruction accuracy improves with dimensionality but saturates
//! around 4 — the width it selects.

use vaesa_accel::workloads;
use vaesa_bench::{write_labeled_csv, write_svg, Args, Setup};
use vaesa_plot::{LineChart, Series};

fn main() {
    let args = Args::parse();
    vaesa_bench::init_run_meta("fig10_latent_dim", &args);
    let setup = Setup::new();
    let pool = workloads::training_layers();

    let n_configs = args.pick(60, 400, 1200);
    let epochs = args.pick(12, 50, 100);
    vaesa_obs::progress!("building dataset ({n_configs} configs)...");
    let dataset = setup.dataset(&pool, n_configs, &args);

    let dims = [1usize, 2, 3, 4, 6, 8];
    let mut curves = Vec::new();
    let mut finals = Vec::new();
    for &dz in &dims {
        vaesa_obs::progress!("training {dz}-D VAESA ({epochs} epochs)...");
        let (_, history) = setup.train(&dataset, dz, 1e-4, epochs, &args);
        let curve = history.recon_curve();
        println!("  final recon loss: {:.5}", curve.last().expect("epochs"));
        finals.push((dz, *curve.last().expect("epochs")));
        curves.push((format!("dz{dz}"), curve));
    }

    let header = {
        let cols: Vec<String> = (1..=epochs).map(|e| format!("epoch{e}")).collect();
        format!("latent_dim,{}", cols.join(","))
    };
    let path = write_labeled_csv(&args.out_dir, "fig10_latent_dim.csv", &header, &curves);
    vaesa_obs::progress!("wrote {}", path.display());

    let mut chart = LineChart::new(
        "reconstruction loss vs latent dimensionality (Fig. 10)",
        "epoch",
        "reconstruction MSE",
    );
    for (label, curve) in &curves {
        chart.series(Series::new(
            label.clone(),
            curve
                .iter()
                .enumerate()
                .map(|(i, &y)| ((i + 1) as f64, y))
                .collect(),
        ));
    }
    let p = write_svg(&args.out_dir, "fig10_latent_dim.svg", &chart.render());
    vaesa_obs::progress!("wrote {}", p.display());

    println!("\nfinal reconstruction loss by latent dimension:");
    for (dz, l) in &finals {
        println!("  dz={dz}: {l:.5}");
    }
    // The paper's claim: improvement with dimension, diminishing past 4.
    let l1 = finals.iter().find(|(d, _)| *d == 1).expect("dz1").1;
    let l4 = finals.iter().find(|(d, _)| *d == 4).expect("dz4").1;
    let l8 = finals.iter().find(|(d, _)| *d == 8).expect("dz8").1;
    let gain_1_to_4 = l1 - l4;
    let gain_4_to_8 = l4 - l8;
    println!(
        "\nrecon gain 1->4: {gain_1_to_4:.5}, 4->8: {gain_4_to_8:.5} ({})",
        if gain_1_to_4 > gain_4_to_8 {
            "diminishing returns past 4, as in the paper"
        } else {
            "shape differs from the paper"
        }
    );
    vaesa_bench::write_run_manifest(&args.out_dir, Some(&setup.scheduler));
}
