//! Figure 10: reconstruction loss during training for different latent
//! dimensionalities.
//!
//! The paper trains VAESA with several latent widths and finds that
//! reconstruction accuracy improves with dimensionality but saturates
//! around 4 — the width it selects.

fn main() {
    let args = match vaesa_bench::Args::parse() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", vaesa_bench::USAGE);
            std::process::exit(2);
        }
    };
    if let Err(e) = vaesa_bench::pipelines::run("fig10_latent_dim", args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
