//! Latency–energy Pareto analysis of the explored designs (§IV-A2).
//!
//! The paper motivates EDP as the metric "because it allows us to
//! investigate Pareto-optimal design points that trade off latency and
//! energy". This binary makes the front explicit: it pools the designs
//! visited by random search and `vae_bo` on ResNet-50, extracts the
//! latency–energy Pareto front, and reports how the front discovered by
//! `vae_bo` compares to random's under the same budget.

fn main() {
    let args = match vaesa_bench::Args::parse() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", vaesa_bench::USAGE);
            std::process::exit(2);
        }
    };
    if let Err(e) = vaesa_bench::pipelines::run("pareto_front", args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
