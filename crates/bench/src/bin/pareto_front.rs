//! Latency–energy Pareto analysis of the explored designs (§IV-A2).
//!
//! The paper motivates EDP as the metric "because it allows us to
//! investigate Pareto-optimal design points that trade off latency and
//! energy". This binary makes the front explicit: it pools the designs
//! visited by random search and `vae_bo` on ResNet-50, extracts the
//! latency–energy Pareto front, and reports how the front discovered by
//! `vae_bo` compares to random's under the same budget.

use vaesa::flows::{decode_to_config, run_random, run_vae_bo};
use vaesa::pareto::{pareto_front, summarize_front, ScoredDesign};
use vaesa_accel::workloads;
use vaesa_bench::{write_csv, write_svg, Args, ExperimentContext};
use vaesa_plot::ScatterChart;

fn main() {
    let cli = Args::parse();
    vaesa_bench::init_run_meta("pareto_front", &cli);
    let ctx = ExperimentContext::build(cli);
    let args = &ctx.args;
    let resnet = workloads::resnet50();

    let budget = args.budget.unwrap_or(args.pick(60, 300, 1000));

    let evaluator = ctx.evaluator_for(&resnet);

    let score = |config: &vaesa_accel::ArchConfig| -> Option<ScoredDesign> {
        evaluator.workload_eval(config).map(|w| ScoredDesign {
            config: *config,
            latency: w.total_latency_cycles,
            energy: w.total_energy_pj,
        })
    };

    vaesa_obs::progress!("searching ({budget} samples per method)...");
    let mut rng = args.rng(80_000);
    let random_trace = run_random(&evaluator, &ctx.dataset.hw_norm, budget, &mut rng);
    let mut rng = args.rng(80_001);
    let vae_trace = run_vae_bo(&evaluator, &ctx.model, &ctx.dataset, budget, &mut rng);

    let mut scored: Vec<(u8, ScoredDesign)> = Vec::new();
    for s in random_trace.samples() {
        let config = evaluator.snap(&s.x, &ctx.dataset.hw_norm);
        if let Some(d) = score(&config) {
            scored.push((0, d));
        }
    }
    for s in vae_trace.samples() {
        let config = decode_to_config(&ctx.model, &s.x, &ctx.dataset.hw_norm, &evaluator);
        if let Some(d) = score(&config) {
            scored.push((1, d));
        }
    }

    let designs: Vec<ScoredDesign> = scored.iter().map(|(_, d)| *d).collect();
    let front = pareto_front(&designs);
    let summary = summarize_front(&designs);

    let mut rows = Vec::new();
    for (i, (method, d)) in scored.iter().enumerate() {
        rows.push(vec![
            *method as f64,
            d.latency,
            d.energy,
            d.edp(),
            front.contains(&i) as u8 as f64,
        ]);
    }
    let path = write_csv(
        &args.out_dir,
        "pareto_front.csv",
        "method,latency_cycles,energy_pj,edp,on_front",
        &rows,
    );
    vaesa_obs::progress!("wrote {}", path.display());

    let mut chart = ScatterChart::new(
        "latency-energy tradeoff of explored ResNet-50 designs",
        "latency (cycles)",
        "energy (pJ)",
        "EDP",
    );
    chart.log_color();
    chart.points(rows.iter().map(|r| (r[1], r[2], r[3])));
    let p = write_svg(&args.out_dir, "pareto_front.svg", &chart.render());
    vaesa_obs::progress!("wrote {}", p.display());

    let from_vae = front.iter().filter(|&&i| scored[i].0 == 1).count();
    println!(
        "\njoint Pareto front: {} points ({} contributed by vae_bo, {} by random)",
        summary.size,
        from_vae,
        summary.size - from_vae
    );
    let best = &designs[summary.edp_optimal];
    println!(
        "EDP-optimal front member: latency {:.3e}, energy {:.3e}, EDP {:.3e} (found by {})",
        best.latency,
        best.energy,
        best.edp(),
        if scored[summary.edp_optimal].0 == 1 {
            "vae_bo"
        } else {
            "random"
        },
    );
    let lat_best = &designs[summary.latency_optimal];
    let en_best = &designs[summary.energy_optimal];
    println!(
        "front extremes: min latency {:.3e} cyc, min energy {:.3e} pJ",
        lat_best.latency, en_best.energy
    );
    ctx.finish();
}
