//! Ablation: does explicit NoC modeling change which designs win?
//!
//! Simba (the paper's hardware template) is chiplet-based; its PEs
//! communicate over a mesh NoC that the base analytical model folds into
//! buffer accesses. This ablation enables the explicit mesh model and
//! compares (a) the cost landscape shift and (b) the design chosen by a
//! fixed search budget, with and without the NoC.

fn main() {
    let args = match vaesa_bench::Args::parse() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", vaesa_bench::USAGE);
            std::process::exit(2);
        }
    };
    if let Err(e) = vaesa_bench::pipelines::run("ablation_noc", args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
