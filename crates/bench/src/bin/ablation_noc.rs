//! Ablation: does explicit NoC modeling change which designs win?
//!
//! Simba (the paper's hardware template) is chiplet-based; its PEs
//! communicate over a mesh NoC that the base analytical model folds into
//! buffer accesses. This ablation enables the explicit mesh model and
//! compares (a) the cost landscape shift and (b) the design chosen by a
//! fixed search budget, with and without the NoC.

use rand::SeedableRng;
use vaesa_accel::workloads;
use vaesa_bench::{write_csv, Args};
use vaesa_cosa::Scheduler;
use vaesa_linalg::stats;
use vaesa_timeloop::{CostModel, NocModel};

fn main() {
    let args = Args::parse();
    vaesa_bench::init_run_meta("ablation_noc", &args);
    let space = vaesa_accel::DesignSpace::paper();
    let layers = workloads::resnet50();

    let base = Scheduler::new(CostModel::default());
    let meshy = Scheduler::new(CostModel::default().with_noc(NocModel::nm40()));

    let n_archs = args.pick(20, 100, 400);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(args.seed.wrapping_add(90_000));

    let mut rows = Vec::new();
    let mut ratio_logs = Vec::new();
    let mut base_best = (f64::INFINITY, None);
    let mut noc_best = (f64::INFINITY, None);
    let mut evaluated = 0;
    while evaluated < n_archs {
        let config = space.random(&mut rng);
        let arch = space.describe(&config);
        let (Ok(b), Ok(n)) = (
            base.schedule_workload(&arch, &layers),
            meshy.schedule_workload(&arch, &layers),
        ) else {
            continue;
        };
        evaluated += 1;
        let (be, ne) = (b.edp(), n.edp());
        ratio_logs.push((ne / be).ln());
        rows.push(vec![arch.pe_count as f64, arch.macs_per_pe as f64, be, ne]);
        if be < base_best.0 {
            base_best = (be, Some(arch));
        }
        if ne < noc_best.0 {
            noc_best = (ne, Some(arch));
        }
    }

    let path = write_csv(
        &args.out_dir,
        "ablation_noc.csv",
        "pe_count,macs_per_pe,edp_base,edp_with_noc",
        &rows,
    );
    vaesa_obs::progress!("wrote {}", path.display());

    let geo_ratio = stats::mean(&ratio_logs).map(f64::exp).unwrap_or(f64::NAN);
    println!("\n{evaluated} random architectures on ResNet-50:");
    println!("geometric-mean EDP inflation from the NoC: {geo_ratio:.3}x");
    println!(
        "best design without NoC: EDP {:.4e} at {}",
        base_best.0,
        base_best.1.expect("found one")
    );
    println!(
        "best design with NoC:    EDP {:.4e} at {}",
        noc_best.0,
        noc_best.1.expect("found one")
    );
    let same = base_best.1 == noc_best.1;
    println!(
        "winner {}",
        if same {
            "unchanged - the NoC shifts costs but not the ranking at this sample size"
        } else {
            "changed - wide spatial mappings pay a mesh penalty, shifting the optimum"
        }
    );
    vaesa_bench::write_run_manifest(&args.out_dir, None);
}
