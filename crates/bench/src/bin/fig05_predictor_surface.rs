//! Figure 5: predicted vs real performance surfaces over the 2-D latent
//! space.
//!
//! Left panels in the paper: latency and energy predicted by the MLP heads
//! at points across the latent space. Right panels: the decoded designs'
//! real (scheduler + cost model) latency and energy. The claim is that the
//! two surfaces match qualitatively — well inside the data region (radius
//! ~1.5), approximately outside it.

use vaesa::flows::HardwareEvaluator;
use vaesa_accel::workloads;
use vaesa_bench::{write_csv, write_svg, Args, Setup};
use vaesa_linalg::stats;
use vaesa_nn::Tensor;
use vaesa_plot::Heatmap;

fn main() {
    let args = Args::parse();
    vaesa_bench::init_run_meta("fig05_predictor_surface", &args);
    let setup = Setup::new();
    let pool = workloads::training_layers();
    let resnet = workloads::resnet50();

    let n_configs = args.pick(60, 400, 1200);
    let epochs = args.pick(10, 40, 80);
    vaesa_obs::progress!("building dataset and training 2-D VAESA...");
    let dataset = setup.dataset(&pool, n_configs, &args);
    let (model, _) = setup.train(&dataset, 2, 1e-4, epochs, &args);

    let evaluator = HardwareEvaluator::new(&setup.space, &setup.scheduler, &resnet);
    let grid_n = args.pick(9, 21, 31);
    let half = 2.5;

    vaesa_obs::progress!("probing a {grid_n}x{grid_n} latent grid over [-{half}, {half}]^2 ...");
    let mut rows = Vec::new();
    for iy in 0..grid_n {
        for ix in 0..grid_n {
            let z1 = -half + 2.0 * half * ix as f64 / (grid_n - 1) as f64;
            let z2 = -half + 2.0 * half * iy as f64 / (grid_n - 1) as f64;
            let z = Tensor::row_vector(&[z1, z2]);

            // Predicted whole-network latency/energy: sum the denormalized
            // per-layer predictions, as a user optimizing a full network
            // would (§IV-D).
            let mut pred_lat = 0.0;
            let mut pred_en = 0.0;
            for layer in &resnet {
                let ln = dataset.layer_norm.transform_row(&layer.features());
                let (l, e) = model.predict(&z, &Tensor::row_vector(&ln));
                pred_lat += dataset.latency_norm.inverse_row(&[l.get(0, 0)])[0];
                pred_en += dataset.energy_norm.inverse_row(&[e.get(0, 0)])[0];
            }

            // Real surface: decode, snap, schedule.
            let config =
                vaesa::flows::decode_to_config(&model, &[z1, z2], &dataset.hw_norm, &evaluator);
            let arch = setup.space.describe(&config);
            let (real_lat, real_en) = match setup.scheduler.schedule_workload(&arch, &resnet) {
                Ok(w) => (w.total_latency_cycles, w.total_energy_pj),
                Err(_) => (f64::NAN, f64::NAN),
            };
            rows.push(vec![z1, z2, pred_lat, pred_en, real_lat, real_en]);
        }
    }

    let path = write_csv(
        &args.out_dir,
        "fig05_predictor_surface.csv",
        "z1,z2,pred_latency,pred_energy,real_latency,real_energy",
        &rows,
    );
    vaesa_obs::progress!("wrote {}", path.display());

    for (col, label, file) in [
        (2usize, "predicted latency", "fig05a_pred_latency.svg"),
        (4, "real latency", "fig05b_real_latency.svg"),
        (3, "predicted energy", "fig05c_pred_energy.svg"),
        (5, "real energy", "fig05d_real_energy.svg"),
    ] {
        let mut hm = Heatmap::new(
            format!("{label} over the latent space (Fig. 5)"),
            "latent dim 1",
            "latent dim 2",
            label,
        );
        hm.log_color();
        hm.cells(
            rows.iter()
                .filter(|r| r[col].is_finite() && r[col] > 0.0)
                .map(|r| (r[0], r[1], r[col])),
        );
        let p = write_svg(&args.out_dir, file, &hm.render());
        vaesa_obs::progress!("wrote {}", p.display());
    }

    // Quantify surface agreement, inside and outside the data region.
    let inside = |r: &Vec<f64>| (r[0] * r[0] + r[1] * r[1]).sqrt() <= 1.5;
    for (region, filter) in [("inside r<=1.5", true), ("outside r>1.5", false)] {
        let sel: Vec<&Vec<f64>> = rows
            .iter()
            .filter(|r| inside(r) == filter && r[4].is_finite())
            .collect();
        if sel.len() < 4 {
            continue;
        }
        let pl: Vec<f64> = sel.iter().map(|r| r[2].ln()).collect();
        let rl: Vec<f64> = sel.iter().map(|r| r[4].ln()).collect();
        let pe: Vec<f64> = sel.iter().map(|r| r[3].ln()).collect();
        let re: Vec<f64> = sel.iter().map(|r| r[5].ln()).collect();
        println!(
            "{region}: Spearman latency {:.3}, energy {:.3} ({} points)",
            stats::spearman(&pl, &rl).unwrap_or(f64::NAN),
            stats::spearman(&pe, &re).unwrap_or(f64::NAN),
            sel.len()
        );
    }
    println!("(paper: accurate inside the data region, qualitative outside)");
    vaesa_bench::write_run_manifest(&args.out_dir, Some(&setup.scheduler));
}
