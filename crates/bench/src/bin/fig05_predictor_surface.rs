//! Figure 5: predicted vs real performance surfaces over the 2-D latent
//! space.
//!
//! Left panels in the paper: latency and energy predicted by the MLP heads
//! at points across the latent space. Right panels: the decoded designs'
//! real (scheduler + cost model) latency and energy. The claim is that the
//! two surfaces match qualitatively — well inside the data region (radius
//! ~1.5), approximately outside it.

fn main() {
    let args = match vaesa_bench::Args::parse() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", vaesa_bench::USAGE);
            std::process::exit(2);
        }
    };
    if let Err(e) = vaesa_bench::pipelines::run("fig05_predictor_surface", args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
