//! Figure 12 pipeline: average EDP of `vae_gd` vs `gd` vs `random` over
//! the 12 unseen Table IV layers at small sample budgets.
//!
//! Graph shape: `dataset → {train, input_preds} → search_l<li> (one per
//! unseen layer) → agg → {csv,render,report}`. Each search node persists
//! its layer's normalized best-so-far curves, so adding a layer or
//! tweaking the plot re-runs only what changed.

use std::collections::BTreeMap;
use std::sync::Arc;

use super::util;
use super::{dataset_node, train_node, PipelineEnv, TrainArtifact};
use vaesa::flows::{run_gd, run_random_layer, run_vae_gd, HardwareEvaluator};
use vaesa::{Dataset, InputPredictors, TrainConfig, Trainer};
use vaesa_accel::workloads;
use vaesa_dse::GdConfig;
use vaesa_flow::{format_csv, CachePolicy, FlowGraph, NodeSpec, StageKind, Value};
use vaesa_linalg::stats;
use vaesa_plot::{LineChart, Series};

const METHODS: [&str; 3] = ["vae_gd", "gd", "random"];
const CSV_HEADER: &str = "sample,vae_gd_mean,vae_gd_std,gd_mean,gd_std,random_mean,random_std";

/// Decodes the `agg` artifact: per method, per sample `(mean, std)`.
fn decode_agg(value: &Value) -> Result<Vec<Vec<(f64, f64)>>, String> {
    value
        .as_list()
        .ok_or("agg artifact is not a list")?
        .iter()
        .map(|t| {
            Ok(t.to_table()
                .ok_or("agg method entry is not a table")?
                .into_iter()
                .map(|row| (row[0], row[1]))
                .collect())
        })
        .collect()
}

pub(super) fn build(env: &Arc<PipelineEnv>) -> Result<FlowGraph, String> {
    let args = &env.args;
    let n_configs = args.pick(60, 400, 1200);
    let epochs = args.pick(10, 40, 80);
    let samples = args.budget.unwrap_or(args.pick(10, 40, 60));
    let seeds = args.pick(2, 5, 5);
    let test_layers = workloads::gd_test_layers();
    vaesa_obs::progress!(
        "{samples} samples x {seeds} seeds x {} layers\n",
        test_layers.len()
    );

    let mut nodes = vec![
        dataset_node(env, n_configs),
        train_node(env, "train", 4, 1e-4, epochs),
    ];

    let env2 = Arc::clone(env);
    nodes.push(
        NodeSpec::new("input_preds", StageKind::Train)
            .dep("dataset")
            .param("hidden", "64,32")
            .param("epochs", epochs)
            .policy(CachePolicy::Stamp)
            .exclusive()
            .runs(move |deps| {
                let dataset = deps[0].as_mem::<Dataset>().ok_or("dataset unavailable")?;
                vaesa_obs::progress!("training input-space predictors ({epochs} epochs)...");
                let mut preds = InputPredictors::new(&[64, 32], &mut env2.args.rng(3_000));
                preds.train(
                    &Trainer::new(TrainConfig {
                        epochs,
                        batch_size: 64,
                        learning_rate: 1e-3,
                    }),
                    &dataset,
                    &mut env2.args.rng(3_001),
                );
                Ok(Value::mem(preds))
            }),
    );

    let mut search_ids = Vec::new();
    for (li, layer) in test_layers.iter().enumerate() {
        let search_id = format!("search_l{li:02}");
        search_ids.push(search_id.clone());
        let env2 = Arc::clone(env);
        let layer = layer.clone();
        nodes.push(
            NodeSpec::new(&search_id, StageKind::Engine("gd".into()))
                .dep("dataset")
                .dep("train")
                .dep("input_preds")
                .param("layer", layer.name())
                .param("stream_base", li)
                .param("samples", samples)
                .param("seeds", seeds)
                .exclusive()
                .runs(move |deps| {
                    let dataset = deps[0].as_mem::<Dataset>().ok_or("dataset unavailable")?;
                    let trained = deps[1]
                        .as_mem::<TrainArtifact>()
                        .ok_or("model unavailable")?;
                    let input_preds = deps[2]
                        .as_mem::<InputPredictors>()
                        .ok_or("input predictors unavailable")?;
                    env2.expect_evals(samples * seeds * 3);
                    let single = vec![layer.clone()];
                    let evaluator =
                        HardwareEvaluator::new(&env2.setup.space, &env2.setup.scheduler, &single);
                    let gd_cfg = GdConfig::default();
                    let mut per_layer: [Vec<Vec<f64>>; 3] = [Vec::new(), Vec::new(), Vec::new()];
                    for seed in 0..seeds {
                        let stream = |m: u64| 20_000 + (li as u64) * 100 + (seed as u64) * 10 + m;
                        let traces = [
                            run_vae_gd(
                                &evaluator,
                                &trained.0,
                                &dataset,
                                &layer,
                                samples,
                                gd_cfg,
                                &mut env2.args.rng(stream(0)),
                            ),
                            run_gd(
                                &evaluator,
                                &input_preds,
                                &dataset,
                                &layer,
                                samples,
                                gd_cfg,
                                &mut env2.args.rng(stream(1)),
                            ),
                            run_random_layer(
                                &evaluator,
                                &dataset.hw_norm,
                                samples,
                                &mut env2.args.rng(stream(2)),
                            ),
                        ];
                        for (m, t) in traces.iter().enumerate() {
                            per_layer[m].push(util::filled(t, samples));
                        }
                    }
                    // Normalize by the best value any method found on this
                    // layer, so layers with wildly different EDP scales can
                    // be averaged.
                    let best_known = per_layer
                        .iter()
                        .flatten()
                        .flatten()
                        .copied()
                        .filter(|v| v.is_finite())
                        .fold(f64::INFINITY, f64::min);
                    let curves: Vec<Value> = per_layer
                        .iter()
                        .map(|runs| {
                            let rows: Vec<Vec<f64>> = runs
                                .iter()
                                .map(|c| c.iter().map(|v| v / best_known).collect())
                                .collect();
                            Value::table(&rows)
                        })
                        .collect();
                    vaesa_obs::progress!(
                        "layer {:>4} done (best known EDP {best_known:.3e})",
                        layer.name()
                    );
                    let mut m = BTreeMap::new();
                    m.insert("curves".to_string(), Value::List(curves));
                    m.insert("best_known".to_string(), Value::F64(best_known));
                    Ok(Value::Map(m))
                }),
        );
    }

    // Pool the normalized curves across layers (in layer order) and reduce
    // to per-sample mean/std per method.
    nodes.push(
        NodeSpec::new("agg", StageKind::Custom("aggregate".into()))
            .deps(search_ids.clone())
            .runs(move |deps| {
                let mut pooled: [Vec<Vec<f64>>; 3] = [Vec::new(), Vec::new(), Vec::new()];
                for dep in deps {
                    let curves = dep
                        .get("curves")
                        .and_then(Value::as_list)
                        .ok_or("layer artifact missing curves")?;
                    for (m, t) in curves.iter().enumerate() {
                        pooled[m].extend(t.to_table().ok_or("layer curves not a table")?);
                    }
                }
                let agg: Vec<Value> = pooled
                    .iter()
                    .map(|c| {
                        let pairs = stats::mean_std_curves(c).expect("aligned");
                        let rows: Vec<Vec<f64>> =
                            pairs.into_iter().map(|(m, s)| vec![m, s]).collect();
                        Value::table(&rows)
                    })
                    .collect();
                Ok(Value::List(agg))
            }),
    );

    nodes.push(
        NodeSpec::new("csv", StageKind::Csv)
            .dep("agg")
            .emit("fig12_gd.csv")
            .runs(move |deps| {
                let agg = decode_agg(&deps[0])?;
                let rows: Vec<Vec<f64>> = (0..samples)
                    .map(|i| {
                        vec![
                            (i + 1) as f64,
                            agg[0][i].0,
                            agg[0][i].1,
                            agg[1][i].0,
                            agg[1][i].1,
                            agg[2][i].0,
                            agg[2][i].1,
                        ]
                    })
                    .collect();
                Ok(Value::Str(format_csv(CSV_HEADER, &rows)))
            }),
    );

    nodes.push(
        NodeSpec::new("render", StageKind::Render)
            .dep("agg")
            .emit("fig12_gd.svg")
            .runs(move |deps| {
                let agg = decode_agg(&deps[0])?;
                let mut chart = LineChart::new(
                    "average normalized best EDP over the 12 unseen layers (Fig. 12)",
                    "samples (simulator queries)",
                    "best EDP / best known",
                );
                for (m, label) in METHODS.iter().enumerate() {
                    chart.series(
                        Series::new(
                            label.to_string(),
                            agg[m]
                                .iter()
                                .enumerate()
                                .map(|(i, &(mean, _))| ((i + 1) as f64, mean))
                                .collect(),
                        )
                        .with_band(agg[m].iter().map(|&(_, std)| std).collect()),
                    );
                }
                Ok(Value::Str(chart.render()))
            }),
    );

    nodes.push(
        NodeSpec::new("report", StageKind::Report)
            .dep("agg")
            .print()
            .runs(move |deps| {
                let agg = decode_agg(&deps[0])?;
                let mut text = String::from("\nmean normalized best EDP (lower is better):\n");
                text.push_str(&format!(
                    "{:>8} {:>10} {:>10} {:>10}\n",
                    "samples", "vae_gd", "gd", "random"
                ));
                let mut checkpoints = vec![5usize, 10, 20, 30, samples];
                checkpoints.sort_unstable();
                checkpoints.dedup();
                for &s in &checkpoints {
                    if s > samples {
                        continue;
                    }
                    let i = s - 1;
                    text.push_str(&format!(
                        "{s:>8} {:>10.3} {:>10.3} {:>10.3}\n",
                        agg[0][i].0, agg[1][i].0, agg[2][i].0
                    ));
                }
                let at = samples.min(10) - 1;
                let vs_random = 100.0 * (1.0 - agg[0][at].0 / agg[2][at].0);
                let vs_gd = 100.0 * (1.0 - agg[0][at].0 / agg[1][at].0);
                for (m, name) in METHODS.iter().enumerate() {
                    let final_val = agg[m][samples - 1].0;
                    text.push_str(&format!(
                        "final mean normalized EDP for {name}: {final_val:.3}\n"
                    ));
                }
                text.push_str(&format!(
                    "\nat {} samples: vae_gd is {vs_random:.1}% better than random, \
                     {vs_gd:.1}% better than gd\n",
                    at + 1
                ));
                text.push_str(
                    "(paper: vae_gd 16% lower EDP than random at 10 samples, ahead of gd throughout)\n",
                );
                Ok(Value::Str(text))
            }),
    );

    FlowGraph::new(nodes)
}
