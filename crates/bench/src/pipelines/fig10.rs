//! Figure 10 pipeline: reconstruction loss during training for different
//! latent dimensionalities.
//!
//! Graph shape: `dataset → train_dz<d> → recon_dz<d> → {csv,render,report}`.
//! The per-width recon-curve nodes persist the training curves, so plot
//! tweaks replot without retraining six models.

use std::sync::Arc;

use super::{dataset_node, train_node, PipelineEnv, TrainArtifact};
use vaesa_flow::{format_labeled_csv, FlowGraph, NodeSpec, StageKind, Value};
use vaesa_plot::{LineChart, Series};

const DIMS: [usize; 6] = [1, 2, 3, 4, 6, 8];

pub(super) fn build(env: &Arc<PipelineEnv>) -> Result<FlowGraph, String> {
    let args = &env.args;
    let n_configs = args.pick(60, 400, 1200);
    let epochs = args.pick(12, 50, 100);

    let mut nodes = vec![dataset_node(env, n_configs)];
    let mut recon_ids = Vec::new();
    for dz in DIMS {
        let train_id = format!("train_dz{dz}");
        nodes.push(train_node(env, &train_id, dz, 1e-4, epochs));
        let recon_id = format!("recon_dz{dz}");
        nodes.push(
            NodeSpec::new(&recon_id, StageKind::Custom("recon".into()))
                .dep(&train_id)
                .runs(|deps| {
                    let trained = deps[0]
                        .as_mem::<TrainArtifact>()
                        .ok_or("model unavailable")?;
                    Ok(Value::floats(trained.1.recon_curve()))
                }),
        );
        recon_ids.push(recon_id);
    }

    nodes.push(
        NodeSpec::new("csv", StageKind::Csv)
            .deps(recon_ids.clone())
            .emit("fig10_latent_dim.csv")
            .runs(move |deps| {
                let header = {
                    let cols: Vec<String> = (1..=epochs).map(|e| format!("epoch{e}")).collect();
                    format!("latent_dim,{}", cols.join(","))
                };
                let rows: Vec<(String, Vec<f64>)> = DIMS
                    .iter()
                    .zip(deps)
                    .map(|(dz, dep)| {
                        Ok((
                            format!("dz{dz}"),
                            dep.to_floats().ok_or("recon curve not floats")?,
                        ))
                    })
                    .collect::<Result<_, String>>()?;
                Ok(Value::Str(format_labeled_csv(&header, &rows)))
            }),
    );

    nodes.push(
        NodeSpec::new("render", StageKind::Render)
            .deps(recon_ids.clone())
            .emit("fig10_latent_dim.svg")
            .runs(|deps| {
                let mut chart = LineChart::new(
                    "reconstruction loss vs latent dimensionality (Fig. 10)",
                    "epoch",
                    "reconstruction MSE",
                );
                for (dz, dep) in DIMS.iter().zip(deps) {
                    let curve = dep.to_floats().ok_or("recon curve not floats")?;
                    chart.series(Series::new(
                        format!("dz{dz}"),
                        curve
                            .iter()
                            .enumerate()
                            .map(|(i, &y)| ((i + 1) as f64, y))
                            .collect(),
                    ));
                }
                Ok(Value::Str(chart.render()))
            }),
    );

    nodes.push(
        NodeSpec::new("report", StageKind::Report)
            .deps(recon_ids)
            .print()
            .runs(|deps| {
                let mut text = String::new();
                let mut finals = Vec::new();
                for (dz, dep) in DIMS.iter().zip(deps) {
                    let curve = dep.to_floats().ok_or("recon curve not floats")?;
                    let last = *curve.last().ok_or("empty recon curve")?;
                    text.push_str(&format!("  final recon loss: {last:.5}\n"));
                    finals.push((*dz, last));
                }
                text.push_str("\nfinal reconstruction loss by latent dimension:\n");
                for (dz, l) in &finals {
                    text.push_str(&format!("  dz={dz}: {l:.5}\n"));
                }
                // The paper's claim: improvement with dimension,
                // diminishing past 4.
                let l1 = finals.iter().find(|(d, _)| *d == 1).expect("dz1").1;
                let l4 = finals.iter().find(|(d, _)| *d == 4).expect("dz4").1;
                let l8 = finals.iter().find(|(d, _)| *d == 8).expect("dz8").1;
                let gain_1_to_4 = l1 - l4;
                let gain_4_to_8 = l4 - l8;
                text.push_str(&format!(
                    "\nrecon gain 1->4: {gain_1_to_4:.5}, 4->8: {gain_4_to_8:.5} ({})\n",
                    if gain_1_to_4 > gain_4_to_8 {
                        "diminishing returns past 4, as in the paper"
                    } else {
                        "shape differs from the paper"
                    }
                ));
                Ok(Value::Str(text))
            }),
    );

    FlowGraph::new(nodes)
}
