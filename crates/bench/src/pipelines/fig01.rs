//! Figure 1 pipeline: ResNet-50 latency/energy landscapes across the
//! accumulation-buffer share sweep.
//!
//! Graph shape: `sweep → {csv, render_latency, render_energy, report}`.
//! The sweep node persists both the numeric rows and the per-point sweep
//! log (valid and invalid points), so warm runs replay the exact stdout.

use std::collections::BTreeMap;
use std::sync::Arc;

use super::PipelineEnv;
use vaesa_accel::{workloads, ArchDescription};
use vaesa_cosa::Scheduler;
use vaesa_flow::{format_csv, FlowGraph, NodeSpec, StageKind, Value};
use vaesa_plot::{LineChart, Series};

const CSV_HEADER: &str = "accum_pct,latency_cycles,energy_pj,edp";

pub(super) fn build(env: &Arc<PipelineEnv>) -> Result<FlowGraph, String> {
    let points = env.args.pick(16, 48, 96);

    let mut nodes = Vec::new();
    nodes.push(
        NodeSpec::new("sweep", StageKind::Custom("sweep".into()))
            .param("points", points)
            .exclusive()
            .runs(move |_| {
                let scheduler = Scheduler::default();
                let layers = workloads::resnet50();
                // 2.7 MB total buffer budget, split between the
                // accumulation buffer and the remaining buffers at fixed
                // relative proportions, as in Fig. 1.
                let total_budget: f64 = 2.7 * 1024.0 * 1024.0;
                let mut text = String::from(
                    "Figure 1: ResNet-50 latency/energy vs accumulation-buffer share\n",
                );
                text.push_str(&format!(
                    "total buffer budget: {:.1} KiB\n",
                    total_budget / 1024.0
                ));
                text.push_str(&format!(
                    "{:>8} {:>14} {:>14} {:>14}\n",
                    "accum%", "latency(cyc)", "energy(pJ)", "EDP"
                ));
                let mut rows = Vec::new();
                let pe_count = 16u64;
                for i in 1..=points {
                    // Sweep the accumulation share across (0, 90%) of the
                    // budget; the remaining bytes are split weight-heavy
                    // (as in Simba) between the weight, input, and global
                    // buffers. Per-PE buffers share the budget across all
                    // PEs.
                    let pct = i as f64 / (points + 1) as f64 * 0.90;
                    let accum_total = pct * total_budget;
                    let rest = total_budget - accum_total;
                    let accum = (accum_total / pe_count as f64) as u64;
                    let weight = (rest * 0.70 / pe_count as f64) as u64;
                    let input = (rest * 0.15 / pe_count as f64) as u64;
                    let global = (rest * 0.15) as u64;
                    let arch = ArchDescription {
                        pe_count,
                        macs_per_pe: 1024,
                        accum_buf_bytes: accum.max(64),
                        weight_buf_bytes: weight.max(256),
                        input_buf_bytes: input.max(128),
                        global_buf_bytes: global.max(256),
                    };
                    match scheduler.schedule_workload(&arch, &layers) {
                        Ok(w) => {
                            text.push_str(&format!(
                                "{:>7.1}% {:>14.4e} {:>14.4e} {:>14.4e}\n",
                                pct * 100.0,
                                w.total_latency_cycles,
                                w.total_energy_pj,
                                w.edp()
                            ));
                            rows.push(vec![
                                pct * 100.0,
                                w.total_latency_cycles,
                                w.total_energy_pj,
                                w.edp(),
                            ]);
                        }
                        Err(e) => {
                            text.push_str(&format!("{:>7.1}% invalid: {e}\n", pct * 100.0));
                        }
                    }
                }
                let mut m = BTreeMap::new();
                m.insert("rows".to_string(), Value::table(&rows));
                m.insert("text".to_string(), Value::Str(text));
                Ok(Value::Map(m))
            }),
    );

    nodes.push(
        NodeSpec::new("csv", StageKind::Csv)
            .dep("sweep")
            .emit("fig01_landscape.csv")
            .runs(|deps| {
                let rows = deps[0]
                    .get("rows")
                    .and_then(Value::to_table)
                    .ok_or("sweep artifact missing rows")?;
                Ok(Value::Str(format_csv(CSV_HEADER, &rows)))
            }),
    );

    for (col, name, file) in [
        (1usize, "latency (cycles)", "fig01_latency.svg"),
        (2, "energy (pJ)", "fig01_energy.svg"),
    ] {
        nodes.push(
            NodeSpec::new(
                format!("render_{}", file.trim_end_matches(".svg")),
                StageKind::Render,
            )
            .dep("sweep")
            .emit(file)
            .runs(move |deps| {
                let rows = deps[0]
                    .get("rows")
                    .and_then(Value::to_table)
                    .ok_or("sweep artifact missing rows")?;
                let mut chart = LineChart::new(
                    "ResNet-50 vs accumulation-buffer share (Fig. 1)",
                    "accum buffer (% of 2.7 MB)",
                    name,
                );
                chart.series(Series::new(
                    name,
                    rows.iter().map(|r| (r[0], r[col])).collect(),
                ));
                Ok(Value::Str(chart.render()))
            }),
        );
    }

    nodes.push(
        NodeSpec::new("report", StageKind::Report)
            .dep("sweep")
            .print()
            .runs(|deps| {
                let mut text = deps[0]
                    .get("text")
                    .and_then(Value::as_str)
                    .ok_or("sweep artifact missing text")?
                    .to_string();
                let rows = deps[0]
                    .get("rows")
                    .and_then(Value::to_table)
                    .ok_or("sweep artifact missing rows")?;
                // Quantify the paper's qualitative claim: the landscape is
                // irregular (non-monotone in both directions).
                let lat: Vec<f64> = rows.iter().map(|r| r[1]).collect();
                let en: Vec<f64> = rows.iter().map(|r| r[2]).collect();
                for (name, series) in [("latency", &lat), ("energy", &en)] {
                    let ups = series.windows(2).filter(|w| w[1] > w[0]).count();
                    let downs = series.windows(2).filter(|w| w[1] < w[0]).count();
                    text.push_str(&format!(
                        "{name}: {ups} increases, {downs} decreases across the sweep\n"
                    ));
                }
                Ok(Value::Str(text))
            }),
    );

    FlowGraph::new(nodes)
}
