//! Figure 11 + Table V pipeline: Bayesian optimization with and without
//! the VAESA latent space, per DNN workload.
//!
//! Graph shape: `dataset → train → search_<net> → {csv,render,report}`
//! per network, plus a final Table V node over all four searches. The
//! search nodes persist their traces, so a plot-only tweak re-renders
//! without re-searching.

use std::sync::Arc;

use super::util;
use super::{dataset_node, train_node, PipelineEnv, TrainArtifact};
use vaesa::flows::{decode_to_config, run_bo, run_random, run_vae_bo, HardwareEvaluator};
use vaesa::report::{Comparison, MethodRuns};
use vaesa::Dataset;
use vaesa_accel::Network;
use vaesa_dse::Trace;
use vaesa_flow::{format_csv, CachePolicy, FlowGraph, NodeSpec, StageKind, Value};
use vaesa_linalg::stats;
use vaesa_plot::{LineChart, Series};

const METHODS: [&str; 3] = ["random", "bo", "vae_bo"];
const CSV_HEADER: &str = "sample,random_mean,random_std,bo_mean,bo_std,vae_bo_mean,vae_bo_std";

fn short_name(network: Network) -> String {
    network.name().to_lowercase().replace('-', "")
}

/// Per-sample (mean, std) aggregation of the filled best-so-far curves,
/// per method.
fn aggregated(traces: &[Vec<Trace>], budget: usize) -> Vec<Vec<(f64, f64)>> {
    traces
        .iter()
        .map(|runs| {
            let curves: Vec<Vec<f64>> =
                runs.iter().map(|t| util::curve_filled(t, budget)).collect();
            stats::mean_std_curves(&curves).expect("aligned curves")
        })
        .collect()
}

fn comparison(traces: Vec<Vec<Trace>>, budget: usize) -> Comparison {
    let mut it = traces.into_iter();
    let random_runs = MethodRuns::new("random", it.next().expect("random"));
    let bo_runs = MethodRuns::new("bo", it.next().expect("bo"));
    let vae_runs = MethodRuns::new("vae_bo", it.next().expect("vae_bo"));
    Comparison::against_random(&random_runs, &[bo_runs, vae_runs], budget)
}

pub(super) fn build(env: &Arc<PipelineEnv>) -> Result<FlowGraph, String> {
    let args = &env.args;
    let n_configs = args.pick(60, 400, 1200);
    let epochs = args.pick(10, 40, 80);
    let budget = args.budget.unwrap_or(args.pick(60, 400, 2000));
    let seeds = args.pick(2, 3, 3);
    vaesa_obs::progress!("budget: {budget} samples, {seeds} seeds per method\n");

    let mut nodes = vec![
        dataset_node(env, n_configs),
        train_node(env, "train", 4, 1e-4, epochs),
    ];

    for (w, network) in Network::ALL.into_iter().enumerate() {
        let short = short_name(network);
        let search_id = format!("search_{short}");

        let env2 = Arc::clone(env);
        nodes.push(
            NodeSpec::new(&search_id, StageKind::Engine("bo".into()))
                .dep("dataset")
                .dep("train")
                .param("network", network.name())
                .param("stream_base", w)
                .param("budget", budget)
                .param("seeds", seeds)
                .exclusive()
                .runs(move |deps| {
                    let dataset = deps[0].as_mem::<Dataset>().ok_or("dataset unavailable")?;
                    let trained = deps[1]
                        .as_mem::<TrainArtifact>()
                        .ok_or("model unavailable")?;
                    env2.expect_evals(budget * seeds * 3);
                    let layers = network.layers();
                    let evaluator =
                        HardwareEvaluator::new(&env2.setup.space, &env2.setup.scheduler, &layers);
                    let mut traces: Vec<Vec<Trace>> = vec![Vec::new(); 3];
                    for seed in 0..seeds {
                        let stream = |m: u64| 10_000 + (w as u64) * 100 + (seed as u64) * 10 + m;
                        let runs = [
                            run_random(
                                &evaluator,
                                &dataset.hw_norm,
                                budget,
                                &mut env2.args.rng(stream(0)),
                            ),
                            run_bo(
                                &evaluator,
                                &dataset.hw_norm,
                                budget,
                                &mut env2.args.rng(stream(1)),
                            ),
                            run_vae_bo(
                                &evaluator,
                                &trained.0,
                                &dataset,
                                budget,
                                &mut env2.args.rng(stream(2)),
                            ),
                        ];
                        for (m, trace) in runs.into_iter().enumerate() {
                            traces[m].push(trace);
                        }
                    }
                    Ok(util::trace_groups_value(&traces))
                }),
        );

        nodes.push(
            NodeSpec::new(format!("csv_{short}"), StageKind::Csv)
                .dep(&search_id)
                .emit(format!("fig11_{short}.csv"))
                .runs(move |deps| {
                    let traces = util::value_trace_groups(&deps[0])?;
                    let agg = aggregated(&traces, budget);
                    let rows: Vec<Vec<f64>> = (0..budget)
                        .map(|i| {
                            vec![
                                (i + 1) as f64,
                                agg[0][i].0,
                                agg[0][i].1,
                                agg[1][i].0,
                                agg[1][i].1,
                                agg[2][i].0,
                                agg[2][i].1,
                            ]
                        })
                        .collect();
                    Ok(Value::Str(format_csv(CSV_HEADER, &rows)))
                }),
        );

        nodes.push(
            NodeSpec::new(format!("render_{short}"), StageKind::Render)
                .dep(&search_id)
                .emit(format!("fig11_{short}.svg"))
                .runs(move |deps| {
                    let traces = util::value_trace_groups(&deps[0])?;
                    let agg = aggregated(&traces, budget);
                    let mut chart = LineChart::new(
                        format!("{network}: best EDP vs samples (Fig. 11)"),
                        "samples",
                        "best EDP (cycles*pJ)",
                    );
                    chart.log_y();
                    for (m, label) in METHODS.iter().enumerate() {
                        chart.series(
                            Series::new(
                                label.to_string(),
                                agg[m]
                                    .iter()
                                    .enumerate()
                                    .map(|(i, &(mean, _))| ((i + 1) as f64, mean))
                                    .collect(),
                            )
                            .with_band(agg[m].iter().map(|&(_, std)| std).collect()),
                        );
                    }
                    Ok(Value::Str(chart.render()))
                }),
        );

        let env2 = Arc::clone(env);
        nodes.push(
            NodeSpec::new(format!("report_{short}"), StageKind::Report)
                .dep(&search_id)
                .dep("dataset")
                .dep("train")
                .print()
                .exclusive()
                .runs(move |deps| {
                    let traces = util::value_trace_groups(&deps[0])?;
                    let dataset = deps[1].as_mem::<Dataset>().ok_or("dataset unavailable")?;
                    let trained = deps[2]
                        .as_mem::<TrainArtifact>()
                        .ok_or("model unavailable")?;
                    let layers = network.layers();
                    let evaluator = HardwareEvaluator::new(
                        &env2.setup.space,
                        &env2.setup.scheduler,
                        &layers,
                    );
                    let mut text = format!("=== {network} ({} layers) ===\n", layers.len());

                    // Re-score the overall winning design through the
                    // shared scheduler; decode/snap are deterministic, so
                    // this reproduces a config scheduled during the search.
                    let winner = traces
                        .iter()
                        .enumerate()
                        .flat_map(|(m, runs)| runs.iter().map(move |t| (m, t)))
                        .filter_map(|(m, t)| t.best_value().map(|v| (m, t, v)))
                        .min_by(|a, b| a.2.total_cmp(&b.2));
                    if let Some((m, t, _)) = winner {
                        let point = t.best_point().expect("best value implies a best point");
                        let config = if m == 2 {
                            decode_to_config(&trained.0, point, &dataset.hw_norm, &evaluator)
                        } else {
                            evaluator.snap(point, &dataset.hw_norm)
                        };
                        let edp = evaluator.edp_of_config(&config).unwrap_or(f64::NAN);
                        text.push_str(&format!(
                            "  best design ({}): {} (EDP {edp:.3e})\n",
                            METHODS[m],
                            evaluator.space().describe(&config)
                        ));
                    }

                    let cmp = comparison(traces, budget);
                    for m in &cmp.methods {
                        text.push_str(&format!(
                            "  {:>8}: SP = {:.2}, SE = {:.2} (mean best EDP {:.3e}, samples-to-3% {:.0})\n",
                            m.label,
                            m.search_performance,
                            m.sample_efficiency,
                            m.mean_best,
                            m.mean_samples_to_3pct
                        ));
                    }
                    text.push('\n');
                    Ok(Value::Str(text))
                }),
        );
    }

    let search_ids: Vec<String> = Network::ALL
        .into_iter()
        .map(|n| format!("search_{}", short_name(n)))
        .collect();
    nodes.push(
        NodeSpec::new("table5", StageKind::Report)
            .deps(search_ids)
            .policy(CachePolicy::Persist)
            .print()
            .runs(move |deps| {
                let mut text = String::from(
                    "=== Table V (SP = search performance, SE = sample efficiency; random = 1.00) ===\n",
                );
                text.push_str(&format!(
                    "{:<12} {:>7} {:>7}   {:>7} {:>7}   {:>7} {:>7}\n",
                    "workload", "rnd SP", "rnd SE", "bo SP", "bo SE", "vae SP", "vae SE"
                ));
                for (w, network) in Network::ALL.into_iter().enumerate() {
                    let traces = util::value_trace_groups(&deps[w])?;
                    let cmp = comparison(traces, budget);
                    let name = network.name();
                    let (r, b, v) = (&cmp.methods[0], &cmp.methods[1], &cmp.methods[2]);
                    text.push_str(&format!(
                        "{name:<12} {:>7.2} {:>7.2}   {:>7.2} {:>7.2}   {:>7.2} {:>7.2}\n",
                        r.search_performance,
                        r.sample_efficiency,
                        b.search_performance,
                        b.sample_efficiency,
                        v.search_performance,
                        v.sample_efficiency
                    ));
                }
                text.push_str(
                    "\npaper (2000 samples): vae_bo SP 1.00-1.01, SE 1.27-4.46; \
                     bo SP 0.96-1.00, SE 0.31-1.00\n",
                );
                Ok(Value::Str(text))
            }),
    );

    FlowGraph::new(nodes)
}
