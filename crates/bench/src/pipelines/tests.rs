//! Registry-level tests: every pipeline builds a schedulable graph with
//! stable content-hash keys.

use std::path::PathBuf;

use super::{find, registry, PipelineEnv};
use crate::Args;
use vaesa_flow::{FlowRunner, RunConfig};

fn fast_args(seed: u64) -> Args {
    Args {
        seed,
        budget: Some(3),
        scale: 0,
        out_dir: PathBuf::from("results"),
    }
}

fn config(seed: u64) -> RunConfig {
    RunConfig {
        seed,
        precision: "f64".to_string(),
        cache_root: PathBuf::from("results/cache/flow"),
        out_dir: PathBuf::from("results"),
    }
}

#[test]
fn registry_covers_every_binary_once() {
    let specs = registry();
    assert_eq!(specs.len(), 16);
    let mut names: Vec<&str> = specs.iter().map(|s| s.name).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), 16, "duplicate pipeline names");
    for name in names {
        assert!(find(name).is_ok());
    }
}

#[test]
fn find_unknown_lists_known_names() {
    let err = find("fig99_nope").err().expect("unknown name must fail");
    assert!(err.contains("unknown pipeline 'fig99_nope'"));
    assert!(err.contains("fig12_gd"));
}

#[test]
fn every_pipeline_builds_a_schedulable_graph() {
    for spec in registry() {
        let env = PipelineEnv::new(fast_args(7));
        let graph =
            (spec.build)(&env).unwrap_or_else(|e| panic!("{} failed to build: {e}", spec.name));
        graph
            .topo_order()
            .unwrap_or_else(|e| panic!("{} is not a DAG: {e}", spec.name));
        let keys = FlowRunner::new(graph, config(7))
            .keys()
            .unwrap_or_else(|e| panic!("{} key derivation failed: {e}", spec.name));
        assert!(!keys.is_empty(), "{} has no nodes", spec.name);
    }
}

#[test]
fn pipeline_keys_are_stable_across_rebuilds_and_vary_with_seed() {
    let build = find("fig12_gd").unwrap().build;

    let keys_a = FlowRunner::new(build(&PipelineEnv::new(fast_args(7))).unwrap(), config(7))
        .keys()
        .unwrap();
    let keys_b = FlowRunner::new(build(&PipelineEnv::new(fast_args(7))).unwrap(), config(7))
        .keys()
        .unwrap();
    assert_eq!(keys_a, keys_b, "same spec + config must hash identically");

    let keys_c = FlowRunner::new(build(&PipelineEnv::new(fast_args(8))).unwrap(), config(8))
        .keys()
        .unwrap();
    for ((id, a), (_, c)) in keys_a.iter().zip(&keys_c) {
        assert_ne!(a, c, "node '{id}' key must depend on the seed");
    }
}
