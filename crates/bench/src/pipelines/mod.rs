//! Declarative pipeline specs for every experiment binary.
//!
//! Each of the 16 figure/ablation binaries is a named [`vaesa_flow`]
//! pipeline here: a [`FlowGraph`] of dataset → train → search →
//! render/CSV/report nodes whose artifacts are content-hash cached under
//! `results/cache/flow/`. The binaries themselves are thin shims — parse
//! [`Args`], call [`run`] — and `vaesa-cli flow run <name>` drives the
//! same registry.
//!
//! Porting preserved the historical RNG streams of every binary, so a
//! pipeline writes byte-identical CSV/SVG artifacts to its pre-flow
//! predecessor at the same seed/scale/precision (the equivalence tests in
//! `tests.rs` assert this for fig11, fig12, and the Pareto study).
//!
//! Node conventions:
//!
//! - dataset/train/search nodes are [`NodeSpec::exclusive`]: they publish
//!   shared observability series (`train.*`, `dse.*`) and query the shared
//!   memoizing scheduler, so they run serially in deterministic
//!   declaration order, exactly like the straight-line binaries did.
//! - dataset/train outputs are in-memory ([`Value::mem`]) and use
//!   [`CachePolicy::Stamp`]; search/report/CSV/SVG outputs are encodable
//!   and persist, which is what lets a warm re-run rebuild every artifact
//!   without recomputing anything.
//! - CSV nodes format through [`vaesa_flow::format_csv`] /
//!   [`vaesa_flow::format_labeled_csv`] — the single shared writer that
//!   replaced the per-binary copies.

pub(crate) mod util;

mod ablations;
mod fig01;
mod fig10;
mod fig11;
mod fig12;
mod fig13;
mod pareto;
mod space;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::{init_run_meta, report_cache_stats, write_run_manifest, Args, Setup};
use vaesa::{Dataset, History, VaesaModel};
use vaesa_accel::workloads;
use vaesa_flow::{CachePolicy, FlowGraph, FlowRunner, NodeSpec, RunConfig, StageKind, Value};

/// The trained-model artifact a `train` node carries.
pub(crate) type TrainArtifact = (VaesaModel, History);

/// Shared state every node closure captures: the parsed CLI arguments,
/// the paper design space with its memoizing scheduler, and the running
/// total of driver evaluations the executed search nodes will perform
/// (published as the `dse.expected_evals` meta for the metrics gate).
pub struct PipelineEnv {
    /// Parsed CLI arguments.
    pub args: Args,
    /// Design space + shared memoizing scheduler.
    pub setup: Setup,
    /// Driver evaluations the executed search nodes account for.
    pub expected_evals: AtomicU64,
}

impl PipelineEnv {
    /// Builds the environment for one run.
    pub fn new(args: Args) -> Arc<Self> {
        Arc::new(PipelineEnv {
            args,
            setup: Setup::new(),
            expected_evals: AtomicU64::new(0),
        })
    }

    /// Records that an executed search node performs `n` driver
    /// evaluations (only the gated figure pipelines call this).
    pub(crate) fn expect_evals(&self, n: usize) {
        self.expected_evals.fetch_add(n as u64, Ordering::Relaxed);
    }
}

/// What the pipeline writes into `manifest.jsonl` on completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ManifestMode {
    /// Manifest without scheduler gauges.
    Plain,
    /// Manifest with scheduler gauges.
    Scheduler,
    /// Scheduler cache summary (stderr + event) and scheduler gauges —
    /// what `ExperimentContext::finish` used to do.
    SchedulerStats,
}

/// One named pipeline in the registry.
pub struct PipelineSpec {
    /// Registry name — identical to the historical binary name.
    pub name: &'static str,
    /// One-line description for `flow list`.
    pub summary: &'static str,
    /// Builds the graph for a run.
    pub build: fn(&Arc<PipelineEnv>) -> Result<FlowGraph, String>,
    /// Manifest finalization mode.
    pub manifest: ManifestMode,
}

/// Every experiment pipeline, in the order of the experiment index.
pub fn registry() -> Vec<PipelineSpec> {
    vec![
        PipelineSpec {
            name: "fig01_landscape",
            summary: "EDP landscape slice of the design space (Fig. 1)",
            build: fig01::build,
            manifest: ManifestMode::Plain,
        },
        PipelineSpec {
            name: "fig04_latent_viz",
            summary: "latent-space visualization colored by EDP (Fig. 4)",
            build: space::build_fig04,
            manifest: ManifestMode::Scheduler,
        },
        PipelineSpec {
            name: "fig05_predictor_surface",
            summary: "predicted-EDP surface over the latent plane (Fig. 5)",
            build: space::build_fig05,
            manifest: ManifestMode::Scheduler,
        },
        PipelineSpec {
            name: "fig07_interpolation",
            summary: "latent interpolation smoothness (Fig. 7)",
            build: space::build_fig07,
            manifest: ManifestMode::Scheduler,
        },
        PipelineSpec {
            name: "fig09_alpha_ablation",
            summary: "KL weight ablation over the latent layout (Fig. 9)",
            build: space::build_fig09,
            manifest: ManifestMode::Scheduler,
        },
        PipelineSpec {
            name: "fig10_latent_dim",
            summary: "reconstruction loss vs latent dimension (Fig. 10)",
            build: fig10::build,
            manifest: ManifestMode::Scheduler,
        },
        PipelineSpec {
            name: "fig11_table5_bo",
            summary: "BO with/without the latent space; Table V metrics (Fig. 11)",
            build: fig11::build,
            manifest: ManifestMode::SchedulerStats,
        },
        PipelineSpec {
            name: "fig12_gd",
            summary: "gradient descent over unseen layers (Fig. 12)",
            build: fig12::build,
            manifest: ManifestMode::SchedulerStats,
        },
        PipelineSpec {
            name: "fig13_gd_steps",
            summary: "predictor-descent trajectories (Fig. 13)",
            build: fig13::build,
            manifest: ManifestMode::SchedulerStats,
        },
        PipelineSpec {
            name: "pareto_front",
            summary: "latency-energy Pareto front of explored designs (§IV-A2)",
            build: pareto::build,
            manifest: ManifestMode::SchedulerStats,
        },
        PipelineSpec {
            name: "ablation_search_engines",
            summary: "search-engine zoo ablation over both spaces",
            build: ablations::build_engines,
            manifest: ManifestMode::SchedulerStats,
        },
        PipelineSpec {
            name: "ablation_latent_box",
            summary: "latent search-box sizing ablation",
            build: ablations::build_latent_box,
            manifest: ManifestMode::SchedulerStats,
        },
        PipelineSpec {
            name: "ablation_finetune",
            summary: "frozen vs fine-tuned predictor across DSE rounds",
            build: ablations::build_finetune,
            manifest: ManifestMode::SchedulerStats,
        },
        PipelineSpec {
            name: "ablation_noc",
            summary: "NoC bandwidth sensitivity sweep",
            build: ablations::build_noc,
            manifest: ManifestMode::Plain,
        },
        PipelineSpec {
            name: "ablation_scheduler",
            summary: "greedy scheduler vs random mappings",
            build: ablations::build_scheduler,
            manifest: ManifestMode::Scheduler,
        },
        PipelineSpec {
            name: "ablation_dataflow",
            summary: "dataflow/loop-order sensitivity on a fixed architecture",
            build: ablations::build_dataflow,
            manifest: ManifestMode::Plain,
        },
    ]
}

/// Looks a pipeline up by name.
///
/// # Errors
///
/// Returns a message listing the known names.
pub fn find(name: &str) -> Result<PipelineSpec, String> {
    let mut names = Vec::new();
    for spec in registry() {
        if spec.name == name {
            return Ok(spec);
        }
        names.push(spec.name);
    }
    Err(format!(
        "unknown pipeline '{name}' (known: {})",
        names.join(", ")
    ))
}

/// Runs a named pipeline end to end: seeds the run meta, builds the
/// graph, executes it under the flow cache, publishes the
/// `dse.expected_evals` meta accumulated by executed search nodes, and
/// writes the run manifest.
///
/// # Errors
///
/// Returns the first node failure or cache/emit I/O error.
pub fn run(name: &str, args: Args) -> Result<(), String> {
    let spec = find(name)?;
    init_run_meta(name, &args);
    let env = PipelineEnv::new(args);
    let graph = (spec.build)(&env)?;
    let config = RunConfig {
        seed: env.args.seed,
        precision: vaesa_nn::Precision::active().label().to_string(),
        cache_root: vaesa_flow::default_cache_root(),
        out_dir: env.args.out_dir.clone(),
    };
    let report = FlowRunner::new(graph, config).run()?;
    let expected = env.expected_evals.load(Ordering::Relaxed);
    if expected > 0 {
        vaesa_obs::set_meta("dse.expected_evals", expected);
    }
    vaesa_obs::progress!("flow {name}: {}", report.summary());
    match spec.manifest {
        ManifestMode::Plain => {
            write_run_manifest(&env.args.out_dir, None);
        }
        ManifestMode::Scheduler => {
            write_run_manifest(&env.args.out_dir, Some(&env.setup.scheduler));
        }
        ManifestMode::SchedulerStats => {
            report_cache_stats(&env.setup.scheduler);
            write_run_manifest(&env.args.out_dir, Some(&env.setup.scheduler));
        }
    }
    Ok(())
}

/// The standard dataset node: Table III layer pool, `n_configs` random
/// points plus the 2-per-axis grid, historical RNG stream 1 000.
pub(crate) fn dataset_node(env: &Arc<PipelineEnv>, n_configs: usize) -> NodeSpec {
    let env = Arc::clone(env);
    NodeSpec::new("dataset", StageKind::Dataset)
        .param("pool", "table3")
        .param("n_configs", n_configs)
        .policy(CachePolicy::Stamp)
        .exclusive()
        .runs(move |_| {
            vaesa_obs::progress!("building dataset ({n_configs} configs)...");
            let pool = workloads::training_layers();
            let dataset = {
                let _span = vaesa_obs::span("bench/dataset");
                env.setup.dataset(&pool, n_configs, &env.args)
            };
            Ok(Value::mem(dataset))
        })
}

/// A standard train node (`id` defaults to `train`): VAESA with the given
/// latent dimension, KL weight α, and epoch budget, historical RNG stream
/// `2000 + latent_dim`.
pub(crate) fn train_node(
    env: &Arc<PipelineEnv>,
    id: &str,
    latent_dim: usize,
    alpha: f64,
    epochs: usize,
) -> NodeSpec {
    let env = Arc::clone(env);
    NodeSpec::new(id, StageKind::Train)
        .dep("dataset")
        .param("latent_dim", latent_dim)
        .param("alpha", alpha)
        .param("epochs", epochs)
        .policy(CachePolicy::Stamp)
        .exclusive()
        .runs(move |deps| {
            let dataset = deps[0].as_mem::<Dataset>().ok_or("dataset unavailable")?;
            vaesa_obs::progress!("training {latent_dim}-D VAESA ({epochs} epochs)...");
            let trained = {
                let _span = vaesa_obs::span("bench/train");
                env.setup
                    .train(&dataset, latent_dim, alpha, epochs, &env.args)
            };
            Ok(Value::mem::<TrainArtifact>(trained))
        })
}

#[cfg(test)]
mod tests;
