//! Latent-space structure pipelines: Figs. 4, 5, 7/8, and 9.
//!
//! These share the standard dataset node and differ in which models they
//! train (2-D and/or 4-D, α sweep) and how they probe the latent space.
//! Report nodes whose historical stdout embeds an output path run under
//! [`CachePolicy::Never`] and format the path from the live `--out`
//! directory, so a warm cache never replays a stale path.

use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

use super::{dataset_node, train_node, PipelineEnv, TrainArtifact};
use vaesa::flows::HardwareEvaluator;
use vaesa::interpolate::interpolate_worst_best;
use vaesa::Dataset;
use vaesa_accel::workloads;
use vaesa_flow::{format_csv, CachePolicy, FlowGraph, NodeSpec, StageKind, Value};
use vaesa_linalg::stats;
use vaesa_nn::Tensor;
use vaesa_plot::{Heatmap, LineChart, ScatterChart, Series};

// ---------------------------------------------------------------- Fig. 4

pub(super) fn build_fig04(env: &Arc<PipelineEnv>) -> Result<FlowGraph, String> {
    let args = &env.args;
    let n_configs = args.pick(60, 400, 1200);
    let epochs = args.pick(10, 40, 80);

    let mut nodes = vec![
        dataset_node(env, n_configs),
        train_node(env, "train", 2, 1e-4, epochs),
    ];

    let env2 = Arc::clone(env);
    nodes.push(
        NodeSpec::new("viz", StageKind::Custom("encode".into()))
            .dep("dataset")
            .dep("train")
            .param("workload", "resnet50")
            .exclusive()
            .runs(move |deps| {
                let dataset = deps[0].as_mem::<Dataset>().ok_or("dataset unavailable")?;
                let trained = deps[1]
                    .as_mem::<TrainArtifact>()
                    .ok_or("model unavailable")?;
                let (model, history) = (&trained.0, &trained.1);
                let resnet = workloads::resnet50();
                // One point per unique architecture, colored by the
                // whole-workload (ResNet-50) EDP of that architecture — the
                // paper's "current workload".
                let mut seen = HashSet::new();
                let mut rows = Vec::new();
                for r in &dataset.records {
                    if !seen.insert(r.config) {
                        continue;
                    }
                    let arch = env2.setup.space.describe(&r.config);
                    let Ok(w) = env2.setup.scheduler.schedule_workload(&arch, &resnet) else {
                        continue;
                    };
                    let normalized = dataset.hw_norm.transform_row(&r.hw_raw);
                    let z = model.encode_mean(&Tensor::row_vector(&normalized));
                    let total_macs = r.hw_raw[0] * r.hw_raw[1];
                    rows.push(vec![
                        z.get(0, 0),
                        z.get(0, 1),
                        total_macs,
                        r.hw_raw[5], // global buffer bytes
                        w.edp(),
                    ]);
                }
                let mut m = BTreeMap::new();
                m.insert("rows".to_string(), Value::table(&rows));
                m.insert(
                    "final_losses".to_string(),
                    Value::Str(format!("{:?}", history.last())),
                );
                Ok(Value::Map(m))
            }),
    );

    nodes.push(
        NodeSpec::new("csv", StageKind::Csv)
            .dep("viz")
            .emit("fig04_latent_viz.csv")
            .runs(|deps| {
                let rows = deps[0]
                    .get("rows")
                    .and_then(Value::to_table)
                    .ok_or("viz artifact missing rows")?;
                Ok(Value::Str(format_csv(
                    "z1,z2,total_macs,global_buf_bytes,resnet50_edp",
                    &rows,
                )))
            }),
    );

    for (col, label, file) in [
        (2usize, "total MACs", "fig04a_macs.svg"),
        (3, "global buffer bytes", "fig04b_globalbuf.svg"),
        (4, "ResNet-50 EDP", "fig04c_edp.svg"),
    ] {
        nodes.push(
            NodeSpec::new(
                format!("render_{}", file.trim_end_matches(".svg")),
                StageKind::Render,
            )
            .dep("viz")
            .emit(file)
            .runs(move |deps| {
                let rows = deps[0]
                    .get("rows")
                    .and_then(Value::to_table)
                    .ok_or("viz artifact missing rows")?;
                let mut chart = ScatterChart::new(
                    format!("latent encodings colored by {label} (Fig. 4)"),
                    "latent dim 1",
                    "latent dim 2",
                    label,
                );
                chart.log_color();
                chart.points(rows.iter().map(|r| (r[0], r[1], r[col])));
                Ok(Value::Str(chart.render()))
            }),
        );
    }

    let env2 = Arc::clone(env);
    nodes.push(
        NodeSpec::new("report", StageKind::Report)
            .dep("viz")
            .policy(CachePolicy::Never)
            .print()
            .runs(move |deps| {
                let rows = deps[0]
                    .get("rows")
                    .and_then(Value::to_table)
                    .ok_or("viz artifact missing rows")?;
                let losses = deps[0]
                    .get("final_losses")
                    .and_then(Value::as_str)
                    .ok_or("viz artifact missing final_losses")?;
                let mut text = format!("final losses: {losses}\n");
                text.push_str(&format!(
                    "wrote {} ({} unique architectures)\n",
                    env2.args.out_dir.join("fig04_latent_viz.csv").display(),
                    rows.len()
                ));
                // Quantify "grouped by feature values": each colored
                // quantity should be predictable from the latent position.
                let z1: Vec<f64> = rows.iter().map(|r| r[0]).collect();
                let z2: Vec<f64> = rows.iter().map(|r| r[1]).collect();
                text.push_str("\nlatent-structure summary (|Spearman| vs best latent axis):\n");
                for (name, col) in [("total MACs", 2usize), ("global buffer", 3), ("EDP", 4)] {
                    let vals: Vec<f64> = rows.iter().map(|r| r[col].ln()).collect();
                    let s1 = stats::spearman(&z1, &vals).unwrap_or(0.0).abs();
                    let s2 = stats::spearman(&z2, &vals).unwrap_or(0.0).abs();
                    text.push_str(&format!("  {name:>14}: {:.3}\n", s1.max(s2)));
                }
                let macs: Vec<f64> = rows.iter().map(|r| r[2].ln()).collect();
                let edp: Vec<f64> = rows.iter().map(|r| r[4].ln()).collect();
                let corr = stats::spearman(&macs, &edp).unwrap_or(0.0);
                text.push_str(&format!(
                    "\nSpearman(log MACs, log ResNet-50 EDP) = {corr:.3} (paper: strongly negative)\n"
                ));
                Ok(Value::Str(text))
            }),
    );

    FlowGraph::new(nodes)
}

// ---------------------------------------------------------------- Fig. 5

pub(super) fn build_fig05(env: &Arc<PipelineEnv>) -> Result<FlowGraph, String> {
    let args = &env.args;
    let n_configs = args.pick(60, 400, 1200);
    let epochs = args.pick(10, 40, 80);
    let grid_n = args.pick(9, 21, 31);
    let half = 2.5;

    let mut nodes = vec![
        dataset_node(env, n_configs),
        train_node(env, "train", 2, 1e-4, epochs),
    ];

    let env2 = Arc::clone(env);
    nodes.push(
        NodeSpec::new("grid", StageKind::Custom("grid".into()))
            .dep("dataset")
            .dep("train")
            .param("grid_n", grid_n)
            .param("half", half)
            .exclusive()
            .runs(move |deps| {
                let dataset = deps[0].as_mem::<Dataset>().ok_or("dataset unavailable")?;
                let trained = deps[1]
                    .as_mem::<TrainArtifact>()
                    .ok_or("model unavailable")?;
                let model = &trained.0;
                let resnet = workloads::resnet50();
                let evaluator =
                    HardwareEvaluator::new(&env2.setup.space, &env2.setup.scheduler, &resnet);
                vaesa_obs::progress!(
                    "probing a {grid_n}x{grid_n} latent grid over [-{half}, {half}]^2 ..."
                );
                let mut rows = Vec::new();
                for iy in 0..grid_n {
                    for ix in 0..grid_n {
                        let z1 = -half + 2.0 * half * ix as f64 / (grid_n - 1) as f64;
                        let z2 = -half + 2.0 * half * iy as f64 / (grid_n - 1) as f64;
                        let z = Tensor::row_vector(&[z1, z2]);

                        // Predicted whole-network latency/energy: sum the
                        // denormalized per-layer predictions (§IV-D).
                        let mut pred_lat = 0.0;
                        let mut pred_en = 0.0;
                        for layer in &resnet {
                            let ln = dataset.layer_norm.transform_row(&layer.features());
                            let (l, e) = model.predict(&z, &Tensor::row_vector(&ln));
                            pred_lat += dataset.latency_norm.inverse_row(&[l.get(0, 0)])[0];
                            pred_en += dataset.energy_norm.inverse_row(&[e.get(0, 0)])[0];
                        }

                        // Real surface: decode, snap, schedule.
                        let config = vaesa::flows::decode_to_config(
                            model,
                            &[z1, z2],
                            &dataset.hw_norm,
                            &evaluator,
                        );
                        let arch = env2.setup.space.describe(&config);
                        let (real_lat, real_en) =
                            match env2.setup.scheduler.schedule_workload(&arch, &resnet) {
                                Ok(w) => (w.total_latency_cycles, w.total_energy_pj),
                                Err(_) => (f64::NAN, f64::NAN),
                            };
                        rows.push(vec![z1, z2, pred_lat, pred_en, real_lat, real_en]);
                    }
                }
                Ok(Value::table(&rows))
            }),
    );

    nodes.push(
        NodeSpec::new("csv", StageKind::Csv)
            .dep("grid")
            .emit("fig05_predictor_surface.csv")
            .runs(|deps| {
                let rows = deps[0].to_table().ok_or("grid artifact not a table")?;
                Ok(Value::Str(format_csv(
                    "z1,z2,pred_latency,pred_energy,real_latency,real_energy",
                    &rows,
                )))
            }),
    );

    for (col, label, file) in [
        (2usize, "predicted latency", "fig05a_pred_latency.svg"),
        (4, "real latency", "fig05b_real_latency.svg"),
        (3, "predicted energy", "fig05c_pred_energy.svg"),
        (5, "real energy", "fig05d_real_energy.svg"),
    ] {
        nodes.push(
            NodeSpec::new(
                format!("render_{}", file.trim_end_matches(".svg")),
                StageKind::Render,
            )
            .dep("grid")
            .emit(file)
            .runs(move |deps| {
                let rows = deps[0].to_table().ok_or("grid artifact not a table")?;
                let mut hm = Heatmap::new(
                    format!("{label} over the latent space (Fig. 5)"),
                    "latent dim 1",
                    "latent dim 2",
                    label,
                );
                hm.log_color();
                hm.cells(
                    rows.iter()
                        .filter(|r| r[col].is_finite() && r[col] > 0.0)
                        .map(|r| (r[0], r[1], r[col])),
                );
                Ok(Value::Str(hm.render()))
            }),
        );
    }

    nodes.push(
        NodeSpec::new("report", StageKind::Report)
            .dep("grid")
            .print()
            .runs(|deps| {
                let rows = deps[0].to_table().ok_or("grid artifact not a table")?;
                let mut text = String::new();
                // Quantify surface agreement, inside and outside the data
                // region.
                let inside = |r: &Vec<f64>| (r[0] * r[0] + r[1] * r[1]).sqrt() <= 1.5;
                for (region, filter) in [("inside r<=1.5", true), ("outside r>1.5", false)] {
                    let sel: Vec<&Vec<f64>> = rows
                        .iter()
                        .filter(|r| inside(r) == filter && r[4].is_finite())
                        .collect();
                    if sel.len() < 4 {
                        continue;
                    }
                    let pl: Vec<f64> = sel.iter().map(|r| r[2].ln()).collect();
                    let rl: Vec<f64> = sel.iter().map(|r| r[4].ln()).collect();
                    let pe: Vec<f64> = sel.iter().map(|r| r[3].ln()).collect();
                    let re: Vec<f64> = sel.iter().map(|r| r[5].ln()).collect();
                    text.push_str(&format!(
                        "{region}: Spearman latency {:.3}, energy {:.3} ({} points)\n",
                        stats::spearman(&pl, &rl).unwrap_or(f64::NAN),
                        stats::spearman(&pe, &re).unwrap_or(f64::NAN),
                        sel.len()
                    ));
                }
                text.push_str("(paper: accurate inside the data region, qualitative outside)\n");
                Ok(Value::Str(text))
            }),
    );

    FlowGraph::new(nodes)
}

// ------------------------------------------------------------- Figs. 7-8

pub(super) fn build_fig07(env: &Arc<PipelineEnv>) -> Result<FlowGraph, String> {
    let args = &env.args;
    let n_configs = args.pick(60, 400, 1200);
    let epochs = args.pick(10, 40, 80);
    let n_inner = args.pick(8, 20, 40);
    let n_beyond = args.pick(3, 8, 16);

    let mut nodes = vec![dataset_node(env, n_configs)];
    let mut interp_ids = Vec::new();
    for dz in [2usize, 4] {
        let train_id = format!("train_dz{dz}");
        nodes.push(train_node(env, &train_id, dz, 1e-4, epochs));
        let interp_id = format!("interp_dz{dz}");
        nodes.push(
            NodeSpec::new(&interp_id, StageKind::Custom("interp".into()))
                .dep("dataset")
                .dep(&train_id)
                .param("layer", "resnet50[6]")
                .param("n_inner", n_inner)
                .param("n_beyond", n_beyond)
                .exclusive()
                .runs(move |deps| {
                    let dataset = deps[0].as_mem::<Dataset>().ok_or("dataset unavailable")?;
                    let trained = deps[1]
                        .as_mem::<TrainArtifact>()
                        .ok_or("model unavailable")?;
                    // Probe along the axis for a representative ResNet-50
                    // layer (3x3 s2_conv3, 28x28).
                    let layer_raw = workloads::resnet50()[6].features();
                    let interp =
                        interpolate_worst_best(&trained.0, &dataset, &layer_raw, n_inner, n_beyond);
                    let mut text = format!(
                        "{dz}-D latent space: |z_best - z_worst| = {:.3} (paper: {} )\n",
                        interp.worst_best_distance(),
                        if dz == 2 { "0.96" } else { "2.58" }
                    );
                    text.push_str(&format!(
                        "monotonicity of predicted EDP along worst->best: {:.2}\n",
                        interp.monotonicity()
                    ));
                    let start = interp.points.first().expect("points").predicted_edp;
                    let at_best = interp
                        .points
                        .iter()
                        .min_by(|a, b| {
                            (a.t - 1.0)
                                .abs()
                                .partial_cmp(&(b.t - 1.0).abs())
                                .expect("finite")
                        })
                        .expect("points")
                        .predicted_edp;
                    text.push_str(&format!(
                        "predicted EDP: worst {start:.3e} -> best {at_best:.3e}\n"
                    ));
                    let rows: Vec<Vec<f64>> = interp
                        .points
                        .iter()
                        .map(|p| vec![dz as f64, p.t, p.predicted_edp])
                        .collect();
                    let mut m = BTreeMap::new();
                    m.insert("rows".to_string(), Value::table(&rows));
                    m.insert("report".to_string(), Value::Str(text));
                    Ok(Value::Map(m))
                }),
        );
        interp_ids.push(interp_id);
    }

    nodes.push(
        NodeSpec::new("csv", StageKind::Csv)
            .deps(interp_ids.clone())
            .emit("fig07_interpolation.csv")
            .runs(|deps| {
                let mut rows = Vec::new();
                for dep in deps {
                    rows.extend(
                        dep.get("rows")
                            .and_then(Value::to_table)
                            .ok_or("interp artifact missing rows")?,
                    );
                }
                Ok(Value::Str(format_csv("latent_dim,t,predicted_edp", &rows)))
            }),
    );

    nodes.push(
        NodeSpec::new("render", StageKind::Render)
            .deps(interp_ids.clone())
            .emit("fig07_interpolation.svg")
            .runs(|deps| {
                let mut all_rows = Vec::new();
                for dep in deps {
                    all_rows.extend(
                        dep.get("rows")
                            .and_then(Value::to_table)
                            .ok_or("interp artifact missing rows")?,
                    );
                }
                let mut chart = LineChart::new(
                    "predicted EDP along the worst-to-best axis (Figs. 7-8)",
                    "interpolation t (0 = worst, 1 = best)",
                    "predicted EDP",
                );
                chart.log_y();
                for dz in [2.0f64, 4.0] {
                    chart.series(Series::new(
                        format!("{}-D latent", dz as usize),
                        all_rows
                            .iter()
                            .filter(|r| r[0] == dz)
                            .map(|r| (r[1], r[2]))
                            .collect(),
                    ));
                }
                Ok(Value::Str(chart.render()))
            }),
    );

    nodes.push(
        NodeSpec::new("report", StageKind::Report)
            .deps(interp_ids)
            .print()
            .runs(|deps| {
                let mut text = String::new();
                for dep in deps {
                    text.push_str(
                        dep.get("report")
                            .and_then(Value::as_str)
                            .ok_or("interp artifact missing report")?,
                    );
                }
                Ok(Value::Str(text))
            }),
    );

    FlowGraph::new(nodes)
}

// ---------------------------------------------------------------- Fig. 9

const ALPHAS: [f64; 3] = [0.0, 1e-4, 1e-2];

pub(super) fn build_fig09(env: &Arc<PipelineEnv>) -> Result<FlowGraph, String> {
    let args = &env.args;
    let n_configs = args.pick(60, 400, 1200);
    let epochs = args.pick(10, 40, 80);

    let mut nodes = vec![dataset_node(env, n_configs)];
    let mut encode_ids = Vec::new();
    for (i, alpha) in ALPHAS.into_iter().enumerate() {
        let train_id = format!("train_alpha{i}");
        nodes.push(train_node(env, &train_id, 2, alpha, epochs));
        let encode_id = format!("encode_alpha{i}");
        nodes.push(
            NodeSpec::new(&encode_id, StageKind::Custom("encode".into()))
                .dep("dataset")
                .dep(&train_id)
                .param("alpha_index", i)
                .exclusive()
                .runs(move |deps| {
                    let dataset = deps[0].as_mem::<Dataset>().ok_or("dataset unavailable")?;
                    let trained = deps[1]
                        .as_mem::<TrainArtifact>()
                        .ok_or("model unavailable")?;
                    let (model, history) = (&trained.0, &trained.1);
                    let z = model.encode_mean(&dataset.hw);
                    let z1: Vec<f64> = (0..z.rows()).map(|r| z.get(r, 0)).collect();
                    let z2: Vec<f64> = (0..z.rows()).map(|r| z.get(r, 1)).collect();
                    let spread = |v: &[f64]| {
                        stats::quantile(v, 0.99).unwrap_or(0.0)
                            - stats::quantile(v, 0.01).unwrap_or(0.0)
                    };
                    let std1 = stats::std_dev(&z1).unwrap_or(0.0);
                    let std2 = stats::std_dev(&z2).unwrap_or(0.0);
                    let recon = history.last().recon;
                    let line = format!(
                        "  encoding std = ({std1:.3}, {std2:.3}), 98% spread = ({:.2}, {:.2}), final recon loss = {recon:.5}\n",
                        spread(&z1),
                        spread(&z2),
                    );
                    let mut rows = Vec::new();
                    for r in 0..z.rows().min(3000) {
                        let macs = dataset.records[r].hw_raw[0] * dataset.records[r].hw_raw[1];
                        rows.push(vec![i as f64, z.get(r, 0), z.get(r, 1), macs]);
                    }
                    let mut m = BTreeMap::new();
                    m.insert("rows".to_string(), Value::table(&rows));
                    m.insert(
                        "summary".to_string(),
                        Value::floats([alpha, std1.max(std2), recon]),
                    );
                    m.insert("line".to_string(), Value::Str(line));
                    Ok(Value::Map(m))
                }),
        );
        encode_ids.push(encode_id);
    }

    nodes.push(
        NodeSpec::new("csv", StageKind::Csv)
            .deps(encode_ids.clone())
            .emit("fig09_alpha_ablation.csv")
            .runs(|deps| {
                let mut rows = Vec::new();
                for dep in deps {
                    rows.extend(
                        dep.get("rows")
                            .and_then(Value::to_table)
                            .ok_or("encode artifact missing rows")?,
                    );
                }
                Ok(Value::Str(format_csv(
                    "alpha_index,z1,z2,total_macs",
                    &rows,
                )))
            }),
    );

    nodes.push(
        NodeSpec::new("render", StageKind::Render)
            .deps(encode_ids.clone())
            .emit("fig09_alpha_ablation.svg")
            .runs(|deps| {
                let mut rows = Vec::new();
                for dep in deps {
                    rows.extend(
                        dep.get("rows")
                            .and_then(Value::to_table)
                            .ok_or("encode artifact missing rows")?,
                    );
                }
                // All three encodings on one chart, colored by α index, so
                // the spread ordering reads directly.
                let mut chart = ScatterChart::new(
                    "2-D latent encodings by KL weight (Fig. 9; color: 0 => alpha 0, 1 => 1e-4, 2 => 1e-2)",
                    "latent dim 1",
                    "latent dim 2",
                    "alpha index",
                );
                chart.points(rows.iter().map(|r| (r[1], r[2], r[0])));
                Ok(Value::Str(chart.render()))
            }),
    );

    let env2 = Arc::clone(env);
    nodes.push(
        NodeSpec::new("report", StageKind::Report)
            .deps(encode_ids)
            .policy(CachePolicy::Never)
            .print()
            .runs(move |deps| {
                let mut text = String::new();
                let mut summary = Vec::new();
                for dep in deps {
                    text.push_str(
                        dep.get("line")
                            .and_then(Value::as_str)
                            .ok_or("encode artifact missing line")?,
                    );
                    let s = dep
                        .get("summary")
                        .and_then(Value::to_floats)
                        .ok_or("encode artifact missing summary")?;
                    summary.push((s[0], s[1], s[2]));
                }
                text.push_str(&format!(
                    "\nwrote {} (alpha_index: 0 => 0, 1 => 1e-4, 2 => 1e-2)\n",
                    env2.args.out_dir.join("fig09_alpha_ablation.csv").display()
                ));
                text.push_str("\nsummary (alpha, max encoding std, final recon loss):\n");
                for (alpha, spread, recon) in &summary {
                    text.push_str(&format!(
                        "  alpha={alpha:>8.0e}  std={spread:>7.3}  recon={recon:.5}\n"
                    ));
                }
                text.push_str("\nexpected shape (paper):\n");
                text.push_str("  - spread(alpha=0) > spread(1e-4) > spread(1e-2) ~ 1\n");
                text.push_str("  - recon(1e-4) < recon(1e-2); alpha=1e-2 is near-random\n");
                let s0 = summary[0].1;
                let s1 = summary[1].1;
                let s2 = summary[2].1;
                text.push_str(&format!(
                    "measured: spread ordering {}, recon(1e-4) {} recon(1e-2)\n",
                    if s0 >= s1 && s1 >= s2 {
                        "HOLDS"
                    } else {
                        "DIFFERS"
                    },
                    if summary[1].2 <= summary[2].2 {
                        "<="
                    } else {
                        ">"
                    },
                ));
                Ok(Value::Str(text))
            }),
    );

    FlowGraph::new(nodes)
}
