//! Pareto-front pipeline (§IV-A2): latency–energy tradeoff of the
//! designs explored by random search and `vae_bo` on ResNet-50.
//!
//! Graph shape: `dataset → train → {search_random, search_vae} → score →
//! {csv,render,report}`. The score node re-scores every visited design
//! through the shared scheduler and persists the scored rows plus the
//! rendered report text.

use std::collections::BTreeMap;
use std::sync::Arc;

use super::util;
use super::{dataset_node, train_node, PipelineEnv, TrainArtifact};
use vaesa::flows::{decode_to_config, run_random, run_vae_bo, HardwareEvaluator};
use vaesa::pareto::{pareto_front, summarize_front, ScoredDesign};
use vaesa::Dataset;
use vaesa_accel::workloads;
use vaesa_flow::{format_csv, FlowGraph, NodeSpec, StageKind, Value};
use vaesa_plot::ScatterChart;

const CSV_HEADER: &str = "method,latency_cycles,energy_pj,edp,on_front";

pub(super) fn build(env: &Arc<PipelineEnv>) -> Result<FlowGraph, String> {
    let args = &env.args;
    let n_configs = args.pick(60, 400, 1200);
    let epochs = args.pick(10, 40, 80);
    let budget = args.budget.unwrap_or(args.pick(60, 300, 1000));
    vaesa_obs::progress!("searching ({budget} samples per method)...");

    let mut nodes = vec![
        dataset_node(env, n_configs),
        train_node(env, "train", 4, 1e-4, epochs),
    ];

    let env2 = Arc::clone(env);
    nodes.push(
        NodeSpec::new("search_random", StageKind::Engine("random".into()))
            .dep("dataset")
            .param("network", "resnet50")
            .param("budget", budget)
            .exclusive()
            .runs(move |deps| {
                let dataset = deps[0].as_mem::<Dataset>().ok_or("dataset unavailable")?;
                let resnet = workloads::resnet50();
                let evaluator =
                    HardwareEvaluator::new(&env2.setup.space, &env2.setup.scheduler, &resnet);
                let mut rng = env2.args.rng(80_000);
                let trace = run_random(&evaluator, &dataset.hw_norm, budget, &mut rng);
                Ok(util::trace_value(&trace))
            }),
    );

    let env2 = Arc::clone(env);
    nodes.push(
        NodeSpec::new("search_vae", StageKind::Engine("vae_bo".into()))
            .dep("dataset")
            .dep("train")
            .param("network", "resnet50")
            .param("budget", budget)
            .exclusive()
            .runs(move |deps| {
                let dataset = deps[0].as_mem::<Dataset>().ok_or("dataset unavailable")?;
                let trained = deps[1]
                    .as_mem::<TrainArtifact>()
                    .ok_or("model unavailable")?;
                let resnet = workloads::resnet50();
                let evaluator =
                    HardwareEvaluator::new(&env2.setup.space, &env2.setup.scheduler, &resnet);
                let mut rng = env2.args.rng(80_001);
                let trace = run_vae_bo(&evaluator, &trained.0, &dataset, budget, &mut rng);
                Ok(util::trace_value(&trace))
            }),
    );

    let env2 = Arc::clone(env);
    nodes.push(
        NodeSpec::new("score", StageKind::Custom("pareto".into()))
            .dep("search_random")
            .dep("search_vae")
            .dep("dataset")
            .dep("train")
            .exclusive()
            .runs(move |deps| {
                let random_trace = util::value_trace(&deps[0])?;
                let vae_trace = util::value_trace(&deps[1])?;
                let dataset = deps[2].as_mem::<Dataset>().ok_or("dataset unavailable")?;
                let trained = deps[3]
                    .as_mem::<TrainArtifact>()
                    .ok_or("model unavailable")?;
                let resnet = workloads::resnet50();
                let evaluator =
                    HardwareEvaluator::new(&env2.setup.space, &env2.setup.scheduler, &resnet);
                let score = |config: &vaesa_accel::ArchConfig| -> Option<ScoredDesign> {
                    evaluator.workload_eval(config).map(|w| ScoredDesign {
                        config: *config,
                        latency: w.total_latency_cycles,
                        energy: w.total_energy_pj,
                    })
                };

                let mut scored: Vec<(u8, ScoredDesign)> = Vec::new();
                for s in random_trace.samples() {
                    let config = evaluator.snap(&s.x, &dataset.hw_norm);
                    if let Some(d) = score(&config) {
                        scored.push((0, d));
                    }
                }
                for s in vae_trace.samples() {
                    let config = decode_to_config(&trained.0, &s.x, &dataset.hw_norm, &evaluator);
                    if let Some(d) = score(&config) {
                        scored.push((1, d));
                    }
                }

                let designs: Vec<ScoredDesign> = scored.iter().map(|(_, d)| *d).collect();
                let front = pareto_front(&designs);
                let summary = summarize_front(&designs);

                let mut rows = Vec::new();
                for (i, (method, d)) in scored.iter().enumerate() {
                    rows.push(vec![
                        *method as f64,
                        d.latency,
                        d.energy,
                        d.edp(),
                        front.contains(&i) as u8 as f64,
                    ]);
                }

                let from_vae = front.iter().filter(|&&i| scored[i].0 == 1).count();
                let mut text = format!(
                    "\njoint Pareto front: {} points ({} contributed by vae_bo, {} by random)\n",
                    summary.size,
                    from_vae,
                    summary.size - from_vae
                );
                let best = &designs[summary.edp_optimal];
                text.push_str(&format!(
                    "EDP-optimal front member: latency {:.3e}, energy {:.3e}, EDP {:.3e} (found by {})\n",
                    best.latency,
                    best.energy,
                    best.edp(),
                    if scored[summary.edp_optimal].0 == 1 {
                        "vae_bo"
                    } else {
                        "random"
                    },
                ));
                let lat_best = &designs[summary.latency_optimal];
                let en_best = &designs[summary.energy_optimal];
                text.push_str(&format!(
                    "front extremes: min latency {:.3e} cyc, min energy {:.3e} pJ\n",
                    lat_best.latency, en_best.energy
                ));

                let mut m = BTreeMap::new();
                m.insert("rows".to_string(), Value::table(&rows));
                m.insert("report".to_string(), Value::Str(text));
                Ok(Value::Map(m))
            }),
    );

    nodes.push(
        NodeSpec::new("csv", StageKind::Csv)
            .dep("score")
            .emit("pareto_front.csv")
            .runs(|deps| {
                let rows = deps[0]
                    .get("rows")
                    .and_then(Value::to_table)
                    .ok_or("score artifact missing rows")?;
                Ok(Value::Str(format_csv(CSV_HEADER, &rows)))
            }),
    );

    nodes.push(
        NodeSpec::new("render", StageKind::Render)
            .dep("score")
            .emit("pareto_front.svg")
            .runs(|deps| {
                let rows = deps[0]
                    .get("rows")
                    .and_then(Value::to_table)
                    .ok_or("score artifact missing rows")?;
                let mut chart = ScatterChart::new(
                    "latency-energy tradeoff of explored ResNet-50 designs",
                    "latency (cycles)",
                    "energy (pJ)",
                    "EDP",
                );
                chart.log_color();
                chart.points(rows.iter().map(|r| (r[1], r[2], r[3])));
                Ok(Value::Str(chart.render()))
            }),
    );

    nodes.push(
        NodeSpec::new("report", StageKind::Report)
            .dep("score")
            .print()
            .runs(|deps| {
                let text = deps[0]
                    .get("report")
                    .and_then(Value::as_str)
                    .ok_or("score artifact missing report")?;
                Ok(Value::Str(text.to_string()))
            }),
    );

    FlowGraph::new(nodes)
}
