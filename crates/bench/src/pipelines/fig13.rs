//! Figure 13 pipeline: EDP of decoded designs after 0/100/200
//! gradient-descent steps from random latent starts, on three unseen
//! layers.
//!
//! Graph shape: `dataset → train → gd_l<i> (one per layer) →
//! {csv,render,report}`. Each layer node persists its `(layer, start,
//! edp@0, edp@100, edp@200)` rows for the valid starts.

use std::sync::Arc;

use super::{dataset_node, train_node, PipelineEnv, TrainArtifact};
use vaesa::flows::{latent_box, vae_gd_edp_at_steps, HardwareEvaluator};
use vaesa::Dataset;
use vaesa_accel::workloads;
use vaesa_dse::GdConfig;
use vaesa_flow::{format_csv, FlowGraph, NodeSpec, StageKind, Value};
use vaesa_linalg::stats;
use vaesa_plot::Histogram;

const CSV_HEADER: &str = "layer_index,start,edp_step0,edp_step100,edp_step200";
const STEP_COUNTS: [usize; 3] = [0, 100, 200];

pub(super) fn build(env: &Arc<PipelineEnv>) -> Result<FlowGraph, String> {
    let args = &env.args;
    let n_configs = args.pick(60, 400, 1200);
    let epochs = args.pick(10, 40, 80);
    let starts = args.budget.unwrap_or(args.pick(20, 80, 200));

    // A diverse subset of the Table IV test layers.
    let test = workloads::gd_test_layers();
    let layers = [test[3].clone(), test[6].clone(), test[11].clone()];
    let layer_names: Vec<String> = layers.iter().map(|l| l.name().to_string()).collect();

    let mut nodes = vec![
        dataset_node(env, n_configs),
        train_node(env, "train", 4, 1e-4, epochs),
    ];

    let mut gd_ids = Vec::new();
    for (li, layer) in layers.iter().enumerate() {
        let gd_id = format!("gd_l{li}");
        gd_ids.push(gd_id.clone());
        let env2 = Arc::clone(env);
        let layer = layer.clone();
        nodes.push(
            NodeSpec::new(&gd_id, StageKind::Engine("vae_gd".into()))
                .dep("dataset")
                .dep("train")
                .param("layer", layer.name())
                .param("stream_base", li)
                .param("starts", starts)
                .exclusive()
                .runs(move |deps| {
                    let dataset = deps[0].as_mem::<Dataset>().ok_or("dataset unavailable")?;
                    let trained = deps[1]
                        .as_mem::<TrainArtifact>()
                        .ok_or("model unavailable")?;
                    let gd_cfg = GdConfig {
                        steps: 200,
                        ..GdConfig::default()
                    };
                    let space = latent_box(&trained.0, &dataset);
                    let single = vec![layer.clone()];
                    let evaluator =
                        HardwareEvaluator::new(&env2.setup.space, &env2.setup.scheduler, &single);
                    let mut rng = env2.args.rng(30_000 + li as u64);
                    let mut rows = Vec::new();
                    for s in 0..starts {
                        let start = space.sample(&mut rng);
                        let edps = vae_gd_edp_at_steps(
                            &evaluator,
                            &trained.0,
                            &dataset,
                            &layer,
                            &start,
                            &STEP_COUNTS,
                            gd_cfg,
                        );
                        if let (Some(e0), Some(e100), Some(e200)) = (edps[0], edps[1], edps[2]) {
                            rows.push(vec![li as f64, s as f64, e0, e100, e200]);
                        }
                    }
                    Ok(Value::table(&rows))
                }),
        );
    }

    nodes.push(
        NodeSpec::new("csv", StageKind::Csv)
            .deps(gd_ids.clone())
            .emit("fig13_gd_steps.csv")
            .runs(|deps| {
                let mut rows = Vec::new();
                for dep in deps {
                    rows.extend(dep.to_table().ok_or("layer artifact not a table")?);
                }
                Ok(Value::Str(format_csv(CSV_HEADER, &rows)))
            }),
    );

    nodes.push(
        NodeSpec::new("render", StageKind::Render)
            .deps(gd_ids.clone())
            .emit("fig13_gd_steps.svg")
            .runs(|deps| {
                let mut hist = Histogram::new(
                    "per-start EDP improvement after 200 GD steps (Fig. 13)",
                    "EDP(start) / EDP(200 steps)",
                );
                hist.log_x();
                let mut improvements = Vec::new();
                for dep in deps {
                    for row in dep.to_table().ok_or("layer artifact not a table")? {
                        improvements.push((row[2] / row[4]).ln().exp());
                    }
                }
                hist.values(improvements);
                Ok(Value::Str(hist.render()))
            }),
    );

    nodes.push(
        NodeSpec::new("report", StageKind::Report)
            .deps(gd_ids)
            .print()
            .runs(move |deps| {
                let mut text = String::new();
                let mut log_improve_100 = Vec::new();
                let mut log_improve_200 = Vec::new();
                let mut total = 0usize;
                for (li, dep) in deps.iter().enumerate() {
                    let rows = dep.to_table().ok_or("layer artifact not a table")?;
                    total += rows.len();
                    for row in &rows {
                        log_improve_100.push((row[2] / row[3]).ln());
                        log_improve_200.push((row[2] / row[4]).ln());
                    }
                    text.push_str(&format!(
                        "layer {:>4}: {total} valid starts so far\n",
                        layer_names[li]
                    ));
                }
                // Geometric-mean improvement factors (EDPs span orders of
                // magnitude).
                let geo = |logs: &[f64]| stats::mean(logs).map(f64::exp).unwrap_or(f64::NAN);
                let g100 = geo(&log_improve_100);
                let g200 = geo(&log_improve_200);
                text.push_str("\ngeometric-mean EDP improvement over the random start:\n");
                text.push_str(&format!("  after 100 steps: {g100:.2}x (paper: 306x)\n"));
                text.push_str(&format!("  after 200 steps: {g200:.2}x (paper: 390x)\n"));
                text.push_str(&format!(
                    "  monotone in steps: {}\n",
                    if g200 >= g100 * 0.98 {
                        "yes (matches paper; see EXPERIMENTS.md on the magnitude gap)"
                    } else {
                        "no"
                    }
                ));
                let improved = log_improve_200.iter().filter(|v| **v > 0.0).count();
                text.push_str(&format!(
                    "  starts improved after 200 steps: {improved}/{}\n",
                    log_improve_200.len()
                ));
                Ok(Value::Str(text))
            }),
    );

    FlowGraph::new(nodes)
}
