//! Ablation pipelines: search engines, latent search box, fine-tuning,
//! NoC modeling, scheduler quality, and dataflow freedom.
//!
//! The model-dependent ablations share the standard `dataset`/`train`
//! nodes (and therefore their cache entries) with the figure pipelines;
//! the cost-model ablations (`noc`, `scheduler`, `dataflow`) are a single
//! exclusive sweep node feeding csv/report sinks.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use super::util;
use super::{dataset_node, train_node, PipelineEnv, TrainArtifact};
use vaesa::flows::{decode_to_config, latent_box, run_vae_bo, HardwareEvaluator};
use vaesa::{Dataset, DseDriver, Record, SpaceMode, TrainConfig, Trainer};
use vaesa_accel::{workloads, ArchDescription};
use vaesa_cosa::{random_mapping, Scheduler};
use vaesa_dse::{engine_by_name, BayesOpt, BoxSpace, FnObjective};
use vaesa_flow::{format_csv, format_labeled_csv, FlowGraph, NodeSpec, StageKind, Value};
use vaesa_linalg::stats;
use vaesa_timeloop::{CostModel, Mapping, NocModel};

// ------------------------------------------------------- search engines

/// `(label, engine, latent?)` — every run goes through the one DSE driver.
const ENGINES: [(&str, &str, bool); 8] = [
    ("random", "random", false),
    ("bo", "bo", false),
    ("evo", "evo", false),
    ("sa", "sa", false),
    ("cd", "cd", false),
    ("vae_bo", "bo", true),
    ("vae_evo", "evo", true),
    ("vae_sa", "sa", true),
];

pub(super) fn build_engines(env: &Arc<PipelineEnv>) -> Result<FlowGraph, String> {
    let args = &env.args;
    let n_configs = args.pick(60, 400, 1200);
    let epochs = args.pick(10, 40, 80);
    let budget = args.budget.unwrap_or(args.pick(60, 300, 1000));
    let seeds = args.pick(2, 3, 5);

    let mut nodes = vec![
        dataset_node(env, n_configs),
        train_node(env, "train", 4, 1e-4, epochs),
    ];

    let mut search_ids = Vec::new();
    for (label, engine_name, latent) in ENGINES {
        let id = format!("search_{label}");
        search_ids.push(id.clone());
        let env2 = Arc::clone(env);
        nodes.push(
            NodeSpec::new(&id, StageKind::Engine(engine_name.into()))
                .dep("dataset")
                .dep("train")
                .param("space", if latent { "latent" } else { "direct" })
                .param("budget", budget)
                .param("seeds", seeds)
                .exclusive()
                .runs(move |deps| {
                    let dataset = deps[0].as_mem::<Dataset>().ok_or("dataset unavailable")?;
                    let trained = deps[1]
                        .as_mem::<TrainArtifact>()
                        .ok_or("model unavailable")?;
                    let resnet = workloads::resnet50();
                    let evaluator =
                        HardwareEvaluator::new(&env2.setup.space, &env2.setup.scheduler, &resnet);
                    let driver = DseDriver::new(&evaluator, &dataset).with_model(&trained.0);
                    let engine = engine_by_name(engine_name)
                        .ok_or_else(|| format!("unknown engine '{engine_name}'"))?;
                    let mode = if latent {
                        SpaceMode::Latent
                    } else {
                        SpaceMode::Direct
                    };
                    let mut bests = Vec::new();
                    for seed in 0..seeds {
                        let mut rng = env2.args.rng(60_000 + seed as u64 * 13);
                        let trace = driver.run(engine.as_ref(), mode, budget, &mut rng);
                        bests.push(trace.best_value().unwrap_or(f64::NAN));
                    }
                    Ok(Value::floats(bests))
                }),
        );
    }

    let mean_std = |dep: &Value| -> Result<(f64, f64), String> {
        let bests = dep.to_floats().ok_or("search artifact not floats")?;
        Ok((
            stats::mean(&bests).unwrap_or(f64::NAN),
            stats::std_dev(&bests).unwrap_or(f64::NAN),
        ))
    };

    nodes.push(
        NodeSpec::new("csv", StageKind::Csv)
            .deps(search_ids.clone())
            .emit("ablation_search_engines.csv")
            .runs(move |deps| {
                let rows: Vec<(String, Vec<f64>)> = ENGINES
                    .iter()
                    .zip(deps)
                    .map(|((label, _, _), dep)| {
                        let (mean, std) = mean_std(dep)?;
                        Ok((label.to_string(), vec![mean, std]))
                    })
                    .collect::<Result<_, String>>()?;
                Ok(Value::Str(format_labeled_csv(
                    "engine,best_edp_mean,best_edp_std",
                    &rows,
                )))
            }),
    );

    nodes.push(
        NodeSpec::new("report", StageKind::Report)
            .deps(search_ids)
            .print()
            .runs(move |deps| {
                let mut text =
                    format!("{budget} samples x {seeds} seeds per engine on ResNet-50:\n\n");
                for ((label, _, _), dep) in ENGINES.iter().zip(deps) {
                    let (mean, std) = mean_std(dep)?;
                    text.push_str(&format!("  {label:>8}: best EDP {mean:.4e} ± {std:.2e}\n"));
                }
                text.push_str("expected: each engine improves when moved to the latent space.\n");
                Ok(Value::Str(text))
            }),
    );

    FlowGraph::new(nodes)
}

// ----------------------------------------------------------- latent box

const BOXES: [(&str, f64); 4] = [
    ("prior_pm1", 1.0),
    ("prior_pm3", 3.0),
    ("prior_pm6", 6.0),
    ("data_box", f64::NAN), // derived from the encoded training data
];

pub(super) fn build_latent_box(env: &Arc<PipelineEnv>) -> Result<FlowGraph, String> {
    let args = &env.args;
    let n_configs = args.pick(60, 400, 1200);
    let epochs = args.pick(10, 40, 80);
    let budget = args.budget.unwrap_or(args.pick(60, 300, 1000));
    let seeds = args.pick(2, 3, 5);

    let mut nodes = vec![
        dataset_node(env, n_configs),
        train_node(env, "train", 4, 1e-4, epochs),
    ];

    let mut search_ids = Vec::new();
    for (name, half) in BOXES {
        let id = format!("search_{name}");
        search_ids.push(id.clone());
        let env2 = Arc::clone(env);
        nodes.push(
            NodeSpec::new(&id, StageKind::Engine("bo".into()))
                .dep("dataset")
                .dep("train")
                .param("box", name)
                .param("budget", budget)
                .param("seeds", seeds)
                .exclusive()
                .runs(move |deps| {
                    let dataset = deps[0].as_mem::<Dataset>().ok_or("dataset unavailable")?;
                    let trained = deps[1]
                        .as_mem::<TrainArtifact>()
                        .ok_or("model unavailable")?;
                    let model = &trained.0;
                    let resnet = workloads::resnet50();
                    let evaluator =
                        HardwareEvaluator::new(&env2.setup.space, &env2.setup.scheduler, &resnet);
                    let (space, line) = if half.is_nan() {
                        let b = latent_box(model, &dataset);
                        let line =
                            format!("data-derived box: lo {:?}, hi {:?}\n", b.lower(), b.upper());
                        (b, line)
                    } else {
                        (BoxSpace::symmetric(4, half), String::new())
                    };
                    let mut bests = Vec::new();
                    for seed in 0..seeds {
                        let mut objective = FnObjective::new(4, |z: &[f64]| {
                            let config = decode_to_config(model, z, &dataset.hw_norm, &evaluator);
                            evaluator.edp_of_config(&config)
                        });
                        let mut rng = env2.args.rng(40_000 + seed as u64 * 17);
                        let trace =
                            BayesOpt::new(space.clone()).run(&mut objective, budget, &mut rng);
                        bests.push(trace.best_value().unwrap_or(f64::NAN));
                    }
                    let mut m = BTreeMap::new();
                    m.insert("bests".to_string(), Value::floats(bests));
                    m.insert("line".to_string(), Value::Str(line));
                    Ok(Value::Map(m))
                }),
        );
    }

    let mean_std = |dep: &Value| -> Result<(f64, f64), String> {
        let bests = dep
            .get("bests")
            .and_then(Value::to_floats)
            .ok_or("search artifact missing bests")?;
        Ok((
            stats::mean(&bests).unwrap_or(f64::NAN),
            stats::std_dev(&bests).unwrap_or(f64::NAN),
        ))
    };

    nodes.push(
        NodeSpec::new("csv", StageKind::Csv)
            .deps(search_ids.clone())
            .emit("ablation_latent_box.csv")
            .runs(move |deps| {
                let rows: Vec<(String, Vec<f64>)> = BOXES
                    .iter()
                    .zip(deps)
                    .map(|((name, _), dep)| {
                        let (mean, std) = mean_std(dep)?;
                        Ok((name.to_string(), vec![mean, std]))
                    })
                    .collect::<Result<_, String>>()?;
                Ok(Value::Str(format_labeled_csv(
                    "box,best_edp_mean,best_edp_std",
                    &rows,
                )))
            }),
    );

    nodes.push(
        NodeSpec::new("report", StageKind::Report)
            .deps(search_ids)
            .print()
            .runs(move |deps| {
                // The data-box description line prints first, as in the
                // original binary.
                let mut text = deps
                    .last()
                    .and_then(|d| d.get("line"))
                    .and_then(Value::as_str)
                    .ok_or("data_box artifact missing line")?
                    .to_string();
                text.push_str(&format!("\n{budget} samples x {seeds} seeds per box:\n"));
                for ((name, _), dep) in BOXES.iter().zip(deps) {
                    let (mean, std) = mean_std(dep)?;
                    text.push_str(&format!(
                        "  {name:>10}: best ResNet-50 EDP {mean:.4e} ± {std:.2e}\n"
                    ));
                }
                text.push_str(
                    "expected: the data-derived box matches or beats every fixed prior box.\n",
                );
                Ok(Value::Str(text))
            }),
    );

    FlowGraph::new(nodes)
}

// ------------------------------------------------------------ fine-tune

pub(super) fn build_finetune(env: &Arc<PipelineEnv>) -> Result<FlowGraph, String> {
    let args = &env.args;
    let n_configs = args.pick(60, 400, 1200);
    let epochs = args.pick(10, 40, 80);
    let round = args.budget.unwrap_or(args.pick(40, 150, 500));
    let seeds = args.pick(2, 3, 5);

    let mut nodes = vec![
        dataset_node(env, n_configs),
        train_node(env, "train", 4, 1e-4, epochs),
    ];

    let mut seed_ids = Vec::new();
    for seed in 0..seeds {
        let id = format!("seed_{seed}");
        seed_ids.push(id.clone());
        let env2 = Arc::clone(env);
        nodes.push(
            NodeSpec::new(&id, StageKind::Engine("vae_bo".into()))
                .dep("dataset")
                .dep("train")
                .param("seed_index", seed)
                .param("round", round)
                .param("finetune_epochs", epochs / 4)
                .exclusive()
                .runs(move |deps| {
                    let dataset = deps[0].as_mem::<Dataset>().ok_or("dataset unavailable")?;
                    let trained = deps[1]
                        .as_mem::<TrainArtifact>()
                        .ok_or("model unavailable")?;
                    let model = &trained.0;
                    let resnet = workloads::resnet50();
                    let evaluator =
                        HardwareEvaluator::new(&env2.setup.space, &env2.setup.scheduler, &resnet);

                    // Round 1 (shared): explore with the freshly trained
                    // model.
                    let mut rng = env2.args.rng(70_000 + seed as u64);
                    let round1 = run_vae_bo(&evaluator, model, &dataset, round, &mut rng);

                    // Fold the evaluated designs back into the dataset as
                    // per-layer records.
                    let mut new_records = Vec::new();
                    for sample in round1.samples() {
                        let config =
                            decode_to_config(model, &sample.x, &dataset.hw_norm, &evaluator);
                        let Some(w) = evaluator.workload_eval(&config) else {
                            continue;
                        };
                        let hw_raw = env2.setup.space.raw_features(&config);
                        for (layer, sched) in resnet.iter().zip(&w.layers) {
                            new_records.push(Record {
                                config,
                                hw_raw,
                                layer_raw: layer.features(),
                                latency: sched.evaluation.latency_cycles,
                                energy: sched.evaluation.energy_pj,
                            });
                        }
                    }
                    let line = format!(
                        "seed {seed}: round 1 best {:.4e}, {} new records\n",
                        round1.best_value().unwrap_or(f64::NAN),
                        new_records.len()
                    );

                    // Branch A: continue with the frozen model.
                    let mut rng = env2.args.rng(71_000 + seed as u64);
                    let frozen = run_vae_bo(&evaluator, model, &dataset, round, &mut rng);
                    let frozen_best = frozen
                        .best_value()
                        .unwrap_or(f64::NAN)
                        .min(round1.best_value().unwrap_or(f64::NAN));

                    // Branch B: extend + fine-tune (low LR, few epochs),
                    // then search.
                    let extended = dataset.extended(new_records);
                    let mut tuned = model.clone();
                    let mut rng = env2.args.rng(72_000 + seed as u64);
                    Trainer::new(TrainConfig {
                        epochs: epochs / 4,
                        batch_size: 64,
                        learning_rate: 2e-4,
                    })
                    .train_vae(&mut tuned, &extended, &mut rng);
                    let mut rng = env2.args.rng(71_000 + seed as u64); // same budget RNG as branch A
                    let fine = run_vae_bo(&evaluator, &tuned, &extended, round, &mut rng);
                    let finetuned_best = fine
                        .best_value()
                        .unwrap_or(f64::NAN)
                        .min(round1.best_value().unwrap_or(f64::NAN));

                    let mut m = BTreeMap::new();
                    m.insert("frozen".to_string(), Value::F64(frozen_best));
                    m.insert("finetuned".to_string(), Value::F64(finetuned_best));
                    m.insert("line".to_string(), Value::Str(line));
                    Ok(Value::Map(m))
                }),
        );
    }

    let means = |deps: &[std::sync::Arc<Value>]| -> Result<(f64, f64), String> {
        let mut frozen = Vec::new();
        let mut finetuned = Vec::new();
        for dep in deps {
            frozen.push(
                dep.get("frozen")
                    .and_then(Value::as_f64)
                    .ok_or("seed artifact missing frozen")?,
            );
            finetuned.push(
                dep.get("finetuned")
                    .and_then(Value::as_f64)
                    .ok_or("seed artifact missing finetuned")?,
            );
        }
        Ok((
            stats::mean(&frozen).unwrap_or(f64::NAN),
            stats::mean(&finetuned).unwrap_or(f64::NAN),
        ))
    };

    nodes.push(
        NodeSpec::new("csv", StageKind::Csv)
            .deps(seed_ids.clone())
            .emit("ablation_finetune.csv")
            .runs(move |deps| {
                let (fm, tm) = means(deps)?;
                let rows = vec![
                    ("frozen".to_string(), vec![fm]),
                    ("finetuned".to_string(), vec![tm]),
                ];
                Ok(Value::Str(format_labeled_csv(
                    "strategy,best_edp_mean",
                    &rows,
                )))
            }),
    );

    nodes.push(
        NodeSpec::new("report", StageKind::Report)
            .deps(seed_ids)
            .print()
            .runs(move |deps| {
                let mut text = String::new();
                for dep in deps {
                    text.push_str(
                        dep.get("line")
                            .and_then(Value::as_str)
                            .ok_or("seed artifact missing line")?,
                    );
                }
                let (fm, tm) = means(deps)?;
                text.push_str(&format!(
                    "\nbest ResNet-50 EDP after two rounds ({round} samples each, {seeds} seeds):\n"
                ));
                text.push_str(&format!("  frozen model:     {fm:.4e}\n"));
                text.push_str(&format!("  fine-tuned model: {tm:.4e}\n"));
                text.push_str(&format!(
                    "  fine-tuning is {}\n",
                    if tm <= fm * 1.001 {
                        "at least as good (matches the paper's expectation)"
                    } else {
                        "not better at this scale"
                    }
                ));
                Ok(Value::Str(text))
            }),
    );

    FlowGraph::new(nodes)
}

// ------------------------------------------------------------------ NoC

pub(super) fn build_noc(env: &Arc<PipelineEnv>) -> Result<FlowGraph, String> {
    let n_archs = env.args.pick(20, 100, 400);

    let mut nodes = Vec::new();
    let env2 = Arc::clone(env);
    nodes.push(
        NodeSpec::new("sweep", StageKind::Custom("noc".into()))
            .param("n_archs", n_archs)
            .exclusive()
            .runs(move |_| {
                let space = vaesa_accel::DesignSpace::paper();
                let layers = workloads::resnet50();
                let base = Scheduler::new(CostModel::default());
                let meshy = Scheduler::new(CostModel::default().with_noc(NocModel::nm40()));
                let mut rng = ChaCha8Rng::seed_from_u64(env2.args.seed.wrapping_add(90_000));

                let mut rows = Vec::new();
                let mut ratio_logs = Vec::new();
                let mut base_best = (f64::INFINITY, None);
                let mut noc_best = (f64::INFINITY, None);
                let mut evaluated = 0;
                while evaluated < n_archs {
                    let config = space.random(&mut rng);
                    let arch = space.describe(&config);
                    let (Ok(b), Ok(n)) = (
                        base.schedule_workload(&arch, &layers),
                        meshy.schedule_workload(&arch, &layers),
                    ) else {
                        continue;
                    };
                    evaluated += 1;
                    let (be, ne) = (b.edp(), n.edp());
                    ratio_logs.push((ne / be).ln());
                    rows.push(vec![arch.pe_count as f64, arch.macs_per_pe as f64, be, ne]);
                    if be < base_best.0 {
                        base_best = (be, Some(arch));
                    }
                    if ne < noc_best.0 {
                        noc_best = (ne, Some(arch));
                    }
                }

                let geo_ratio = stats::mean(&ratio_logs).map(f64::exp).unwrap_or(f64::NAN);
                let mut text = format!("\n{evaluated} random architectures on ResNet-50:\n");
                text.push_str(&format!(
                    "geometric-mean EDP inflation from the NoC: {geo_ratio:.3}x\n"
                ));
                let base_arch = base_best.1.ok_or("no valid architecture found")?;
                let noc_arch = noc_best.1.ok_or("no valid architecture found")?;
                text.push_str(&format!(
                    "best design without NoC: EDP {:.4e} at {}\n",
                    base_best.0, base_arch
                ));
                text.push_str(&format!(
                    "best design with NoC:    EDP {:.4e} at {}\n",
                    noc_best.0, noc_arch
                ));
                text.push_str(&format!(
                    "winner {}\n",
                    if base_arch == noc_arch {
                        "unchanged - the NoC shifts costs but not the ranking at this sample size"
                    } else {
                        "changed - wide spatial mappings pay a mesh penalty, shifting the optimum"
                    }
                ));

                let mut m = BTreeMap::new();
                m.insert("rows".to_string(), Value::table(&rows));
                m.insert("report".to_string(), Value::Str(text));
                Ok(Value::Map(m))
            }),
    );

    nodes.push(
        NodeSpec::new("csv", StageKind::Csv)
            .dep("sweep")
            .emit("ablation_noc.csv")
            .runs(|deps| {
                let rows = deps[0]
                    .get("rows")
                    .and_then(Value::to_table)
                    .ok_or("sweep artifact missing rows")?;
                Ok(Value::Str(format_csv(
                    "pe_count,macs_per_pe,edp_base,edp_with_noc",
                    &rows,
                )))
            }),
    );

    nodes.push(
        NodeSpec::new("report", StageKind::Report)
            .dep("sweep")
            .print()
            .runs(|deps| {
                Ok(Value::Str(
                    deps[0]
                        .get("report")
                        .and_then(Value::as_str)
                        .ok_or("sweep artifact missing report")?
                        .to_string(),
                ))
            }),
    );

    FlowGraph::new(nodes)
}

// ------------------------------------------------------------ scheduler

const MAPPERS: [&str; 3] = ["unit", "random_valid", "greedy"];

pub(super) fn build_scheduler(env: &Arc<PipelineEnv>) -> Result<FlowGraph, String> {
    let args = &env.args;
    let n_archs = args.pick(10, 40, 100);
    let n_random_mappings = args.pick(20, 100, 400);

    let mut nodes = Vec::new();
    let env2 = Arc::clone(env);
    nodes.push(
        NodeSpec::new("mappers", StageKind::Custom("mappers".into()))
            .param("n_archs", n_archs)
            .param("n_random_mappings", n_random_mappings)
            .exclusive()
            .runs(move |_| {
                let layers = workloads::resnet50();
                // A plain (uncached) scheduler: this ablation measures the
                // mapper itself, not the memoization layer.
                let scheduler = Scheduler::default();
                let model = scheduler.model();
                let mut rng = env2.args.rng(50_000);

                // Per-mapper geometric-mean EDP across (arch, layer) pairs.
                let mut logs: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
                let mut archs_used = 0;
                while archs_used < n_archs {
                    let config = env2.setup.space.random(&mut rng);
                    let arch = env2.setup.space.describe(&config);
                    let Ok(greedy) = scheduler.schedule_workload(&arch, &layers) else {
                        continue;
                    };
                    archs_used += 1;

                    for (li, layer) in layers.iter().enumerate() {
                        let unit = model
                            .evaluate(&arch, layer, &Mapping::unit())
                            .map_err(|e| format!("unit mapping rejected: {e}"))?;
                        logs[0].push(unit.edp().ln());

                        let mut best_random = f64::INFINITY;
                        for _ in 0..n_random_mappings {
                            let m = random_mapping(&arch, layer, &mut rng);
                            if let Ok(e) = model.evaluate(&arch, layer, &m) {
                                best_random = best_random.min(e.edp());
                            }
                        }
                        if best_random.is_finite() {
                            logs[1].push(best_random.ln());
                        }

                        logs[2].push(greedy.layers[li].evaluation.edp().ln());
                    }
                }

                let geo: Vec<f64> = logs
                    .iter()
                    .map(|l| stats::mean(l).map(f64::exp).unwrap_or(f64::NAN))
                    .collect();
                let mut m = BTreeMap::new();
                m.insert("geo".to_string(), Value::floats(geo));
                m.insert("archs_used".to_string(), Value::Int(archs_used as i64));
                Ok(Value::Map(m))
            }),
    );

    nodes.push(
        NodeSpec::new("csv", StageKind::Csv)
            .dep("mappers")
            .emit("ablation_scheduler.csv")
            .runs(|deps| {
                let geo = deps[0]
                    .get("geo")
                    .and_then(Value::to_floats)
                    .ok_or("mappers artifact missing geo")?;
                let rows: Vec<(String, Vec<f64>)> = MAPPERS
                    .iter()
                    .zip(&geo)
                    .map(|(name, g)| (name.to_string(), vec![*g]))
                    .collect();
                Ok(Value::Str(format_labeled_csv("mapper,geomean_edp", &rows)))
            }),
    );

    nodes.push(
        NodeSpec::new("report", StageKind::Report)
            .dep("mappers")
            .print()
            .runs(move |deps| {
                let geo = deps[0]
                    .get("geo")
                    .and_then(Value::to_floats)
                    .ok_or("mappers artifact missing geo")?;
                let archs_used = deps[0]
                    .get("archs_used")
                    .and_then(Value::as_int)
                    .ok_or("mappers artifact missing archs_used")?;
                let mut text = format!(
                    "geometric-mean per-layer EDP over {archs_used} random architectures:\n"
                );
                for (name, g) in MAPPERS.iter().zip(&geo) {
                    text.push_str(&format!("  {name:>13}: {g:.4e}\n"));
                }
                text.push_str(&format!(
                    "\ngreedy improves on best-of-{n_random_mappings} random mappings by {:.1}x \
                     and on the unit mapping by {:.0}x\n",
                    geo[1] / geo[2],
                    geo[0] / geo[2]
                ));
                Ok(Value::Str(text))
            }),
    );

    FlowGraph::new(nodes)
}

// ------------------------------------------------------------- dataflow

pub(super) fn build_dataflow(env: &Arc<PipelineEnv>) -> Result<FlowGraph, String> {
    let n_pools: usize = if env.args.scale == 0 { 2 } else { 4 };

    let mut nodes = Vec::new();
    nodes.push(
        NodeSpec::new("sweep", StageKind::Custom("dataflow".into()))
            .param("pools", n_pools)
            .exclusive()
            .runs(move |_| {
                let scheduler = Scheduler::default();
                let arch = ArchDescription {
                    pe_count: 16,
                    macs_per_pe: 1024,
                    accum_buf_bytes: 32 * 1024,
                    weight_buf_bytes: 512 * 1024,
                    input_buf_bytes: 64 * 1024,
                    global_buf_bytes: 128 * 1024,
                };

                let mut pools: Vec<(&str, Vec<vaesa_accel::LayerShape>)> = vec![
                    ("resnet50", workloads::resnet50()),
                    ("alexnet", workloads::alexnet()),
                    ("mobilenet_v1", workloads::mobilenet_v1()),
                    ("bert_gemms", workloads::bert_base_gemms()),
                ];
                pools.truncate(n_pools);

                let mut wins: HashMap<&'static str, usize> = HashMap::new();
                let mut improvement_logs = Vec::new();
                let mut rows = Vec::new();
                let mut text = format!("per-layer dataflow selection on {arch}\n\n");
                text.push_str(&format!(
                    "{:<14} {:>8} {:>10} {:>22}\n",
                    "workload", "layers", "geo gain", "dataflow wins (WS/OS/IS)"
                ));
                for (name, layers) in &pools {
                    let mut logs = Vec::new();
                    let mut local = [0usize; 3];
                    for layer in layers {
                        let (Ok(ws), Ok(best)) = (
                            scheduler.schedule(&arch, layer),
                            scheduler.schedule_with_dataflows(&arch, layer),
                        ) else {
                            continue;
                        };
                        let gain = ws.evaluation.edp() / best.evaluation.edp();
                        logs.push(gain.ln());
                        improvement_logs.push(gain.ln());
                        let df = best.mapping.dataflow.name();
                        *wins.entry(df).or_default() += 1;
                        match df {
                            "WS" => local[0] += 1,
                            "OS" => local[1] += 1,
                            _ => local[2] += 1,
                        }
                    }
                    let geo = stats::mean(&logs).map(f64::exp).unwrap_or(f64::NAN);
                    text.push_str(&format!(
                        "{name:<14} {:>8} {:>9.3}x {:>13}/{}/{}\n",
                        layers.len(),
                        geo,
                        local[0],
                        local[1],
                        local[2]
                    ));
                    rows.push((
                        name.to_string(),
                        vec![geo, local[0] as f64, local[1] as f64, local[2] as f64],
                    ));
                }

                let overall = stats::mean(&improvement_logs)
                    .map(f64::exp)
                    .unwrap_or(f64::NAN);
                text.push_str(&format!(
                    "\noverall geometric-mean EDP gain from dataflow freedom: {overall:.3}x\n"
                ));
                text.push_str(&format!(
                    "dataflow wins: WS {} | OS {} | IS {}\n",
                    wins.get("WS").copied().unwrap_or(0),
                    wins.get("OS").copied().unwrap_or(0),
                    wins.get("IS").copied().unwrap_or(0)
                ));

                let mut m = BTreeMap::new();
                m.insert("rows".to_string(), util::labeled_rows_value(&rows));
                m.insert("report".to_string(), Value::Str(text));
                Ok(Value::Map(m))
            }),
    );

    nodes.push(
        NodeSpec::new("csv", StageKind::Csv)
            .dep("sweep")
            .emit("ablation_dataflow.csv")
            .runs(|deps| {
                let rows = util::value_labeled_rows(
                    deps[0].get("rows").ok_or("sweep artifact missing rows")?,
                )?;
                Ok(Value::Str(format_labeled_csv(
                    "workload,geo_gain,ws_wins,os_wins,is_wins",
                    &rows,
                )))
            }),
    );

    nodes.push(
        NodeSpec::new("report", StageKind::Report)
            .dep("sweep")
            .print()
            .runs(|deps| {
                Ok(Value::Str(
                    deps[0]
                        .get("report")
                        .and_then(Value::as_str)
                        .ok_or("sweep artifact missing report")?
                        .to_string(),
                ))
            }),
    );

    FlowGraph::new(nodes)
}
