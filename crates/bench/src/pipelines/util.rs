//! Shared artifact codecs and curve helpers for the pipeline specs.
//!
//! Search nodes persist their [`Trace`]s through the flow cache, so the
//! traces need a lossless [`Value`] form: `x` coordinates and objective
//! values are stored as bit-exact `f64`s, and decoding replays
//! [`Trace::record`] so derived fields (`best_so_far`) are rebuilt by the
//! same code that produced them.

use std::collections::BTreeMap;

use vaesa_dse::Trace;
use vaesa_flow::Value;

/// Encodes one trace.
pub(crate) fn trace_value(trace: &Trace) -> Value {
    let samples: Vec<Value> = trace
        .samples()
        .iter()
        .map(|s| {
            let mut m = BTreeMap::new();
            m.insert("x".to_string(), Value::floats(s.x.iter().copied()));
            m.insert(
                "value".to_string(),
                match s.value {
                    Some(v) => Value::F64(v),
                    None => Value::Unit,
                },
            );
            Value::Map(m)
        })
        .collect();
    let mut m = BTreeMap::new();
    m.insert("label".to_string(), Value::Str(trace.label().to_string()));
    m.insert("samples".to_string(), Value::List(samples));
    Value::Map(m)
}

/// Decodes one trace, replaying [`Trace::record`].
pub(crate) fn value_trace(value: &Value) -> Result<Trace, String> {
    let label = value
        .get("label")
        .and_then(Value::as_str)
        .ok_or("trace artifact missing label")?;
    let mut trace = Trace::new(label);
    let samples = value
        .get("samples")
        .and_then(Value::as_list)
        .ok_or("trace artifact missing samples")?;
    for s in samples {
        let x = s
            .get("x")
            .and_then(Value::to_floats)
            .ok_or("trace sample missing x")?;
        let v = match s.get("value") {
            Some(Value::F64(v)) => Some(*v),
            Some(Value::Unit) => None,
            _ => return Err("trace sample missing value".to_string()),
        };
        trace.record(x, v);
    }
    Ok(trace)
}

/// Encodes a method-major collection of traces (`groups[m][seed]`).
pub(crate) fn trace_groups_value(groups: &[Vec<Trace>]) -> Value {
    Value::List(
        groups
            .iter()
            .map(|runs| Value::List(runs.iter().map(trace_value).collect()))
            .collect(),
    )
}

/// Decodes a method-major collection of traces.
pub(crate) fn value_trace_groups(value: &Value) -> Result<Vec<Vec<Trace>>, String> {
    value
        .as_list()
        .ok_or("trace groups artifact is not a list")?
        .iter()
        .map(|runs| {
            runs.as_list()
                .ok_or("trace group is not a list")?
                .iter()
                .map(value_trace)
                .collect()
        })
        .collect()
}

/// Encodes labeled CSV rows (`(label, values)` pairs).
pub(crate) fn labeled_rows_value(rows: &[(String, Vec<f64>)]) -> Value {
    Value::List(
        rows.iter()
            .map(|(label, vals)| {
                let mut m = BTreeMap::new();
                m.insert("label".to_string(), Value::Str(label.clone()));
                m.insert("vals".to_string(), Value::floats(vals.iter().copied()));
                Value::Map(m)
            })
            .collect(),
    )
}

/// Decodes labeled CSV rows.
pub(crate) fn value_labeled_rows(value: &Value) -> Result<Vec<(String, Vec<f64>)>, String> {
    value
        .as_list()
        .ok_or("labeled rows artifact is not a list")?
        .iter()
        .map(|r| {
            Ok((
                r.get("label")
                    .and_then(Value::as_str)
                    .ok_or("labeled row missing label")?
                    .to_string(),
                r.get("vals")
                    .and_then(Value::to_floats)
                    .ok_or("labeled row missing vals")?,
            ))
        })
        .collect()
}

/// Fig. 11 curve fill: leading invalid samples take the first valid best
/// value so seeds can be averaged; the tail is padded with the final
/// best.
pub(crate) fn curve_filled(trace: &Trace, len: usize) -> Vec<f64> {
    let first_valid = trace
        .samples()
        .iter()
        .find_map(|s| s.best_so_far)
        .unwrap_or(f64::NAN);
    trace
        .best_curve(len, first_valid)
        .iter()
        .map(|v| if v.is_nan() { first_valid } else { *v })
        .collect()
}

/// Fig. 12 curve fill (no NaN replacement after the first valid value).
pub(crate) fn filled(trace: &Trace, len: usize) -> Vec<f64> {
    let first = trace
        .samples()
        .iter()
        .find_map(|s| s.best_so_far)
        .unwrap_or(f64::NAN);
    trace.best_curve(len, first)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_roundtrip_is_lossless() {
        let mut t = Trace::new("bo");
        t.record(vec![0.25, -0.5], Some(5.0));
        t.record(vec![1.0, 2.0], None);
        t.record(vec![-0.0, f64::MIN_POSITIVE], Some(2.0_f64.powi(-40)));
        let rt = value_trace(&trace_value(&t)).unwrap();
        assert_eq!(t, rt);
        let groups = vec![vec![t.clone()], vec![t.clone(), t.clone()]];
        let rt = value_trace_groups(&trace_groups_value(&groups)).unwrap();
        assert_eq!(groups, rt);
    }

    #[test]
    fn trace_decode_rejects_malformed_artifacts() {
        assert!(value_trace(&Value::Int(3)).is_err());
        let mut m = BTreeMap::new();
        m.insert("label".to_string(), Value::Str("x".into()));
        assert!(value_trace(&Value::Map(m)).is_err());
    }
}
