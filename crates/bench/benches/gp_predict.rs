//! Batched vs per-candidate GP posterior prediction — the `BayesOpt::propose`
//! hot path, which scores a 320-candidate EI pool per iteration.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use vaesa_dse::GpRegressor;

const DIM: usize = 4;
const POOL: usize = 320;

fn data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..DIM).map(|_| rng.gen_range(-2.0..2.0)).collect())
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x: &Vec<f64>| x.iter().map(|v| v * v).sum::<f64>() + (x[0] * 3.0).sin())
        .collect();
    (xs, ys)
}

fn pool() -> Vec<Vec<f64>> {
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    (0..POOL)
        .map(|_| (0..DIM).map(|_| rng.gen_range(-2.0..2.0)).collect())
        .collect()
}

fn bench_predict_pool(c: &mut Criterion) {
    let candidates = pool();
    for n in [100usize, 400] {
        let (xs, ys) = data(n);
        let gp = GpRegressor::fit(&xs, &ys).expect("fit");
        c.bench_function(&format!("gp_predict/loop_n{n}_m{POOL}"), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for x in &candidates {
                    let (mean, var) = gp.predict(black_box(x));
                    acc += mean + var;
                }
                black_box(acc)
            })
        });
        c.bench_function(&format!("gp_predict/batch_n{n}_m{POOL}"), |b| {
            b.iter(|| black_box(gp.predict_batch(black_box(&candidates))))
        });
    }
}

criterion_group!(benches, bench_predict_pool);
criterion_main!(benches);
