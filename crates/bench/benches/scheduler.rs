//! Microbenchmarks for the one-shot scheduler: mapping quality costs one
//! greedy descent per `(architecture, layer)` pair.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vaesa_accel::{workloads, ArchDescription, LayerShape};
use vaesa_cosa::{CachedScheduler, Scheduler};

fn arch() -> ArchDescription {
    ArchDescription {
        pe_count: 16,
        macs_per_pe: 1024,
        accum_buf_bytes: 32 * 1024,
        weight_buf_bytes: 512 * 1024,
        input_buf_bytes: 64 * 1024,
        global_buf_bytes: 128 * 1024,
    }
}

fn bench_schedule(c: &mut Criterion) {
    let scheduler = Scheduler::default();
    let a = arch();
    let conv = LayerShape::new("conv", 3, 3, 28, 28, 128, 128, 1, 1);
    let fc = LayerShape::fully_connected("fc", 4096, 1000);

    c.bench_function("scheduler/schedule_conv", |b| {
        b.iter(|| scheduler.schedule(black_box(&a), black_box(&conv)))
    });
    c.bench_function("scheduler/schedule_fc", |b| {
        b.iter(|| scheduler.schedule(black_box(&a), black_box(&fc)))
    });
}

fn bench_workloads(c: &mut Criterion) {
    let scheduler = Scheduler::default();
    let a = arch();
    for (name, layers) in [
        ("alexnet", workloads::alexnet()),
        ("resnet50", workloads::resnet50()),
    ] {
        c.bench_function(&format!("scheduler/workload_{name}"), |b| {
            b.iter(|| scheduler.schedule_workload(black_box(&a), black_box(&layers)))
        });
    }
}

fn bench_cached(c: &mut Criterion) {
    // A cache hit is the common case inside BO loops that revisit designs.
    let cached = CachedScheduler::default();
    let a = arch();
    let layers = workloads::resnet50();
    let _ = cached.schedule_workload(&a, &layers);
    c.bench_function("scheduler/workload_resnet50_cached", |b| {
        b.iter(|| cached.schedule_workload(black_box(&a), black_box(&layers)))
    });
}

criterion_group!(benches, bench_schedule, bench_workloads, bench_cached);
criterion_main!(benches);
