//! Batched vs per-start multi-start latent gradient descent — the `vae_gd`
//! hot path, where every descent step differentiates the predictor heads.
//!
//! Uses a freshly initialized paper-config model (dz = 4): the graph work
//! per step is identical to a trained model's, and no scheduler is needed
//! because only the descent itself is timed.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use vaesa::{EdpGradBatch, VaesaConfig, VaesaModel};
use vaesa_dse::{
    BatchDifferentiableObjective, BoxSpace, FnBatchDifferentiable, FnDifferentiable, GdConfig,
    GdEngine, GradientDescent, Objective, SearchEngine, SearchObjective,
};

const DZ: usize = 4;
const STEPS: usize = 10;

fn bench_multi_start_gd(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let model = VaesaModel::new(VaesaConfig::paper(), &mut rng);
    let layer = [0.5; 8];
    let space = BoxSpace::symmetric(DZ, 3.0);
    let driver = GradientDescent::new(
        space.clone(),
        GdConfig {
            steps: STEPS,
            ..GdConfig::default()
        },
    );
    for batch in [16usize, 64] {
        let starts: Vec<Vec<f64>> = (0..batch).map(|_| space.sample(&mut rng)).collect();
        c.bench_function(&format!("vae_gd/gd_step_per_start_b{batch}"), |b| {
            b.iter(|| {
                let mut total = 0.0;
                for start in &starts {
                    let mut objective = FnDifferentiable::new(DZ, |z: &[f64]| {
                        model.predicted_edp_grad(z, &layer, 1.0, 1.0)
                    });
                    total += driver.run(&mut objective, start).final_value();
                }
                black_box(total)
            })
        });
        c.bench_function(&format!("vae_gd/gd_step_batch_b{batch}"), |b| {
            b.iter(|| {
                let mut scratch = EdpGradBatch::default();
                let mut objective = FnBatchDifferentiable::new(DZ, |xs: &[f64], n: usize| {
                    model.predicted_edp_grad_batch(xs, n, &layer, 1.0, 1.0, &mut scratch)
                });
                let paths = driver.run_batch(&mut objective, &starts);
                black_box(paths.iter().map(|p| p.final_value()).sum::<f64>())
            })
        });
        // Same batched descent, but entered through the SearchEngine trait
        // (as `DseDriver` does) — measures the unified driver's overhead on
        // top of the raw `run_batch` call above.
        let engine = GdEngine {
            config: GdConfig {
                steps: STEPS,
                ..GdConfig::default()
            },
        };
        c.bench_function(&format!("vae_gd/gd_step_engine_b{batch}"), |b| {
            b.iter(|| {
                let mut scratch = EdpGradBatch::default();
                let mut objective = ProxyOnly {
                    proxy: FnBatchDifferentiable::new(DZ, |xs: &[f64], n: usize| {
                        model.predicted_edp_grad_batch(xs, n, &layer, 1.0, 1.0, &mut scratch)
                    }),
                };
                let mut rng = ChaCha8Rng::seed_from_u64(9 + batch as u64);
                let trace = engine.run(&space, &mut objective, batch, &mut rng);
                black_box(trace.best_value())
            })
        });
        // The identical engine-driven descent with the process-global
        // precision flipped to f32, so the predictor-head matmuls inside
        // `predicted_edp_grad_batch` take the SIMD backend; restored to
        // the bit-exact f64 default immediately after.
        vaesa_nn::set_precision(vaesa_nn::Precision::F32);
        c.bench_function(&format!("vae_gd/gd_step_engine_f32_b{batch}"), |b| {
            b.iter(|| {
                let mut scratch = EdpGradBatch::default();
                let mut objective = ProxyOnly {
                    proxy: FnBatchDifferentiable::new(DZ, |xs: &[f64], n: usize| {
                        model.predicted_edp_grad_batch(xs, n, &layer, 1.0, 1.0, &mut scratch)
                    }),
                };
                let mut rng = ChaCha8Rng::seed_from_u64(9 + batch as u64);
                let trace = engine.run(&space, &mut objective, batch, &mut rng);
                black_box(trace.best_value())
            })
        });
        vaesa_nn::set_precision(vaesa_nn::Precision::F64);
    }
}

/// A [`SearchObjective`] whose final-point scoring reuses the proxy's value
/// — isolates the engine/trace plumbing from any evaluator cost.
struct ProxyOnly<F: FnMut(&[f64], usize) -> (Vec<f64>, Vec<f64>)> {
    proxy: FnBatchDifferentiable<F>,
}

impl<F: FnMut(&[f64], usize) -> (Vec<f64>, Vec<f64>)> Objective for ProxyOnly<F> {
    fn dim(&self) -> usize {
        DZ
    }

    fn evaluate(&mut self, x: &[f64]) -> Option<f64> {
        let (values, _) = self.proxy.evaluate_with_grad_batch(x, 1);
        Some(values[0])
    }
}

impl<F: FnMut(&[f64], usize) -> (Vec<f64>, Vec<f64>)> SearchObjective for ProxyOnly<F> {
    fn evaluate_batch(&mut self, xs: &[Vec<f64>]) -> Vec<Option<f64>> {
        let flat: Vec<f64> = xs.iter().flatten().copied().collect();
        let (values, _) = self.proxy.evaluate_with_grad_batch(&flat, xs.len());
        values.into_iter().map(Some).collect()
    }

    fn proxy(&mut self) -> Option<&mut dyn BatchDifferentiableObjective> {
        Some(&mut self.proxy)
    }
}

criterion_group!(benches, bench_multi_start_gd);
criterion_main!(benches);
