//! Batched vs per-start multi-start latent gradient descent — the `vae_gd`
//! hot path, where every descent step differentiates the predictor heads.
//!
//! Uses a freshly initialized paper-config model (dz = 4): the graph work
//! per step is identical to a trained model's, and no scheduler is needed
//! because only the descent itself is timed.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use vaesa::{EdpGradBatch, VaesaConfig, VaesaModel};
use vaesa_dse::{BoxSpace, FnBatchDifferentiable, FnDifferentiable, GdConfig, GradientDescent};

const DZ: usize = 4;
const STEPS: usize = 10;

fn bench_multi_start_gd(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let model = VaesaModel::new(VaesaConfig::paper(), &mut rng);
    let layer = [0.5; 8];
    let space = BoxSpace::symmetric(DZ, 3.0);
    let driver = GradientDescent::new(
        space.clone(),
        GdConfig {
            steps: STEPS,
            ..GdConfig::default()
        },
    );
    for batch in [16usize, 64] {
        let starts: Vec<Vec<f64>> = (0..batch).map(|_| space.sample(&mut rng)).collect();
        c.bench_function(&format!("vae_gd/gd_step_per_start_b{batch}"), |b| {
            b.iter(|| {
                let mut total = 0.0;
                for start in &starts {
                    let mut objective = FnDifferentiable::new(DZ, |z: &[f64]| {
                        model.predicted_edp_grad(z, &layer, 1.0, 1.0)
                    });
                    total += driver.run(&mut objective, start).final_value();
                }
                black_box(total)
            })
        });
        c.bench_function(&format!("vae_gd/gd_step_batch_b{batch}"), |b| {
            b.iter(|| {
                let mut scratch = EdpGradBatch::default();
                let mut objective = FnBatchDifferentiable::new(DZ, |xs: &[f64], n: usize| {
                    model.predicted_edp_grad_batch(xs, n, &layer, 1.0, 1.0, &mut scratch)
                });
                let paths = driver.run_batch(&mut objective, &starts);
                black_box(paths.iter().map(|p| p.final_value()).sum::<f64>())
            })
        });
    }
}

criterion_group!(benches, bench_multi_start_gd);
criterion_main!(benches);
