//! Microbenchmarks for the neural-network substrate: VAE forward/backward
//! steps and deterministic encode/decode/predict inference.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use vaesa::{VaesaConfig, VaesaModel};
use vaesa_nn::{randn, set_precision, Graph, Precision, Tensor, TensorF32};

fn model() -> VaesaModel {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    VaesaModel::new(VaesaConfig::paper(), &mut rng)
}

/// Reference triple-loop matmul, for measuring the blocked kernel's speedup.
fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, inner) = a.shape();
    let n = b.cols();
    let mut out = Tensor::zeros(m, n);
    for i in 0..m {
        for k in 0..inner {
            let av = a.get(i, k);
            for j in 0..n {
                out.set(i, j, out.get(i, j) + av * b.get(k, j));
            }
        }
    }
    out
}

/// Reference triple-loop matmul on f32 storage, so the `matmul_f32` entry
/// measures the SIMD kernel against a naive loop of the *same* precision.
fn naive_matmul_f32(a: &TensorF32, b: &TensorF32) -> TensorF32 {
    let (m, inner) = a.shape();
    let n = b.cols();
    let mut out = TensorF32::zeros(m, n);
    for i in 0..m {
        for k in 0..inner {
            let av = a.as_slice()[i * inner + k];
            for j in 0..n {
                out.as_mut_slice()[i * n + j] += av * b.as_slice()[k * n + j];
            }
        }
    }
    out
}

fn bench_matmul(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    for n in [64usize, 128, 256] {
        let a = randn(n, n, &mut rng);
        let b = randn(n, n, &mut rng);
        c.bench_function(&format!("nn/matmul_{n}"), |bch| {
            bch.iter(|| black_box(black_box(&a).matmul(black_box(&b))))
        });
        c.bench_function(&format!("nn/matmul_naive_{n}"), |bch| {
            bch.iter(|| black_box(naive_matmul(black_box(&a), black_box(&b))))
        });
        let a32 = TensorF32::from_f64(&a);
        let b32 = TensorF32::from_f64(&b);
        c.bench_function(&format!("nn/matmul_f32_{n}"), |bch| {
            bch.iter(|| black_box(black_box(&a32).matmul(black_box(&b32))))
        });
        c.bench_function(&format!("nn/matmul_naive_f32_{n}"), |bch| {
            bch.iter(|| black_box(naive_matmul_f32(black_box(&a32), black_box(&b32))))
        });
    }
    // The backward pass's fused transpose products vs. materializing the
    // transpose first (what Op::MatMul backward used to do).
    let a = randn(256, 128, &mut rng);
    let b = randn(256, 64, &mut rng);
    c.bench_function("nn/matmul_transpose_a_fused", |bch| {
        bch.iter(|| black_box(black_box(&a).matmul_transpose_a(black_box(&b))))
    });
    c.bench_function("nn/matmul_transpose_a_materialized", |bch| {
        bch.iter(|| black_box(black_box(&a).transpose().matmul(black_box(&b))))
    });
    let c2 = randn(128, 64, &mut rng);
    let d = randn(256, 64, &mut rng);
    c.bench_function("nn/matmul_transpose_b_fused", |bch| {
        bch.iter(|| black_box(black_box(&c2).matmul_transpose_b(black_box(&d))))
    });
    c.bench_function("nn/matmul_transpose_b_materialized", |bch| {
        bch.iter(|| black_box(black_box(&c2).matmul(&black_box(&d).transpose())))
    });
}

fn bench_train_step(c: &mut Criterion) {
    let m = model();
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    for batch in [16usize, 64, 256] {
        let hw = Tensor::fill(batch, 6, 0.4);
        let layer = Tensor::fill(batch, 8, 0.6);
        let lat = Tensor::fill(batch, 1, 0.5);
        let en = Tensor::fill(batch, 1, 0.5);
        let eps = randn(batch, m.latent_dim(), &mut rng);
        c.bench_function(&format!("nn/train_step_fwd_bwd_b{batch}"), |b| {
            b.iter(|| {
                let mut g = Graph::new();
                let step = m.train_step(
                    &mut g,
                    hw.clone(),
                    layer.clone(),
                    eps.clone(),
                    lat.clone(),
                    en.clone(),
                );
                g.backward(step.total);
                black_box(g.value(step.total).get(0, 0))
            })
        });
        // Same step with the process-global precision flipped to f32, so
        // the matmul/activation hot loops take the SIMD backend; restored
        // to the bit-exact f64 default immediately after.
        set_precision(Precision::F32);
        c.bench_function(&format!("nn/train_step_fwd_bwd_f32_b{batch}"), |b| {
            b.iter(|| {
                let mut g = Graph::new();
                let step = m.train_step(
                    &mut g,
                    hw.clone(),
                    layer.clone(),
                    eps.clone(),
                    lat.clone(),
                    en.clone(),
                );
                g.backward(step.total);
                black_box(g.value(step.total).get(0, 0))
            })
        });
        set_precision(Precision::F64);
    }
}

fn bench_inference(c: &mut Criterion) {
    let m = model();
    let hw = Tensor::fill(256, 6, 0.4);
    let z = Tensor::fill(256, m.latent_dim(), 0.1);
    let layer = Tensor::fill(256, 8, 0.6);

    c.bench_function("nn/encode_mean_b256", |b| {
        b.iter(|| black_box(m.encode_mean(black_box(&hw))))
    });
    c.bench_function("nn/decode_b256", |b| {
        b.iter(|| black_box(m.decode(black_box(&z))))
    });
    c.bench_function("nn/predict_b256", |b| {
        b.iter(|| black_box(m.predict(black_box(&z), black_box(&layer))))
    });
    c.bench_function("nn/predicted_edp_grad", |b| {
        b.iter(|| {
            black_box(m.predicted_edp_grad(
                black_box(&[0.1, -0.2, 0.3, 0.0]),
                black_box(&[0.5; 8]),
                1.0,
                1.0,
            ))
        })
    });
}

criterion_group!(benches, bench_matmul, bench_train_step, bench_inference);
criterion_main!(benches);
