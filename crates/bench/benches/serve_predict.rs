//! Telemetry overhead on the daemon's hot path: `/predict` with a
//! 16-row batch, bare vs fully observed.
//!
//! `predict_b16_bare` runs the coalescing batcher with no instruments
//! and no request context. `predict_b16_observed` runs the exact
//! handler-path instrumentation stack: a `RequestCtx` with spans and
//! notes, a named batcher recording queue-wait and batch-size on the
//! global registry, per-endpoint latency histogram + sliding window,
//! status counters, and span-tree publication.
//!
//! `request_telemetry_only` isolates the fixed per-request cost of that
//! stack with zero model work, so the overhead stays visible even when
//! run-to-run inference jitter exceeds it. The committed baseline
//! (`BENCH_pr10.json`) pins it at ~1 µs — about 1% of the ~100 µs bare
//! batch-16 predict, inside the ≤2% overhead budget. (Request spans
//! deliberately skip `process_cpu_ns`: two `/proc/self/stat` reads per
//! span cost ~10 µs and report 0 at request timescales anyway.)

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use vaesa_serve::{Batcher, CoreConfig, ServeCore, Telemetry};

fn rows16() -> Vec<Vec<f64>> {
    (0..16)
        .map(|i| vec![32.0 + i as f64, 4.0, 128.0, 4096.0, 8192.0, 65536.0])
        .collect()
}

fn bench_predict_overhead(c: &mut Criterion) {
    let core = std::sync::Arc::new(ServeCore::build(&CoreConfig {
        n_configs: 64,
        epochs: 2,
        latent_dim: 4,
        n_layers: 2,
        seed: 7,
        gp_cap: 64,
    }));

    // Zero coalescing window: single-threaded submits close their batch
    // immediately, so both paths measure compute + the machinery under
    // test rather than admission-queue sleep.
    let bare_core = std::sync::Arc::clone(&core);
    let bare = Batcher::new(Duration::ZERO, move |rows| bare_core.predict(rows));
    c.bench_function("serve/predict_b16_bare", |b| {
        b.iter(|| bare.submit(black_box(rows16())))
    });

    let observed_core = std::sync::Arc::clone(&core);
    let observed = Batcher::named(Duration::ZERO, "bench_predict", move |rows| {
        observed_core.predict(rows)
    });
    let telemetry = Telemetry::new(7, None).expect("no access log");
    // The fixed per-request cost of the telemetry hub alone (no model
    // work): context + span + notes + histograms + counters + tracker.
    c.bench_function("serve/request_telemetry_only", |b| {
        b.iter(|| {
            let ctx = telemetry.begin();
            ctx.set_endpoint("predict");
            ctx.note("rows", 16);
            let span = ctx.span("serve/predict/submit");
            span.finish();
            ctx.note("batch.id", 0);
            ctx.note("batch.size", 16);
            telemetry.finish(ctx, "POST", 200);
        })
    });
    c.bench_function("serve/predict_b16_observed", |b| {
        b.iter(|| {
            let ctx = telemetry.begin();
            ctx.set_endpoint("predict");
            ctx.note("rows", 16);
            let span = ctx.span("serve/predict/submit");
            let (predictions, batch) = observed.submit_tagged(black_box(rows16()), Some(ctx.id()));
            span.finish();
            ctx.note("batch.id", batch.batch_id);
            ctx.note("batch.size", batch.size);
            telemetry.finish(ctx, "POST", 200);
            predictions
        })
    });
}

criterion_group!(benches, bench_predict_overhead);
criterion_main!(benches);
