//! End-to-end microbenchmarks for the latent DSE path: one decoded and
//! scheduled latent sample, and one full predictor-descent (`vae_gd`)
//! sample.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use vaesa::flows::{decode_to_config, run_vae_gd, HardwareEvaluator};
use vaesa::{Dataset, DatasetBuilder, TrainConfig, Trainer, VaesaConfig, VaesaModel};
use vaesa_accel::{workloads, DesignSpace};
use vaesa_cosa::CachedScheduler;
use vaesa_dse::GdConfig;

struct Fixture {
    space: DesignSpace,
    scheduler: CachedScheduler,
    dataset: Dataset,
    model: VaesaModel,
}

fn fixture() -> Fixture {
    let space = DesignSpace::paper();
    let scheduler = CachedScheduler::default();
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let dataset = DatasetBuilder::new(&space, workloads::alexnet())
        .random_configs(60)
        .grid_per_axis(0)
        .build(&scheduler, &mut rng);
    let mut model = VaesaModel::new(VaesaConfig::paper(), &mut rng);
    Trainer::new(TrainConfig {
        epochs: 5,
        batch_size: 64,
        learning_rate: 1e-3,
    })
    .train_vae(&mut model, &dataset, &mut rng);
    Fixture {
        space,
        scheduler,
        dataset,
        model,
    }
}

fn bench_decode_and_score(c: &mut Criterion) {
    let f = fixture();
    let layers = workloads::alexnet();
    let evaluator = HardwareEvaluator::new(&f.space, &f.scheduler, &layers);
    let z = [0.3, -0.5, 0.1, 0.8];

    c.bench_function("latent_dse/decode_to_config", |b| {
        b.iter(|| {
            black_box(decode_to_config(
                &f.model,
                black_box(&z),
                &f.dataset.hw_norm,
                &evaluator,
            ))
        })
    });
    c.bench_function("latent_dse/decode_and_evaluate_alexnet", |b| {
        b.iter(|| {
            let config = decode_to_config(&f.model, black_box(&z), &f.dataset.hw_norm, &evaluator);
            black_box(evaluator.edp_of_config(&config))
        })
    });
}

fn bench_vae_gd_sample(c: &mut Criterion) {
    let f = fixture();
    let layer = workloads::gd_test_layers()[3].clone();
    let single = vec![layer.clone()];
    let evaluator = HardwareEvaluator::new(&f.space, &f.scheduler, &single);
    let gd = GdConfig {
        steps: 100,
        ..GdConfig::default()
    };
    c.bench_function("latent_dse/vae_gd_one_sample_100_steps", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(9);
            black_box(run_vae_gd(
                &evaluator, &f.model, &f.dataset, &layer, 1, gd, &mut rng,
            ))
        })
    });
}

criterion_group!(benches, bench_decode_and_score, bench_vae_gd_sample);
criterion_main!(benches);
