//! Microbenchmarks for the Gaussian process behind Bayesian optimization:
//! full refits, incremental updates, and posterior predictions.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use vaesa_dse::GpRegressor;

fn data(n: usize, d: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..d).map(|_| rng.gen_range(-2.0..2.0)).collect())
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x: &Vec<f64>| x.iter().map(|v| v * v).sum::<f64>() + (x[0] * 3.0).sin())
        .collect();
    (xs, ys)
}

fn bench_fit(c: &mut Criterion) {
    for n in [50usize, 200, 400] {
        let (xs, ys) = data(n, 4);
        c.bench_function(&format!("gp/fit_n{n}"), |b| {
            b.iter(|| black_box(GpRegressor::fit(black_box(&xs), black_box(&ys))))
        });
    }
}

fn bench_incremental_add(c: &mut Criterion) {
    let (xs, ys) = data(400, 4);
    let base = GpRegressor::fit(&xs[..399], &ys[..399]).expect("fit");
    c.bench_function("gp/add_1_to_400", |b| {
        b.iter_batched(
            || base.clone(),
            |mut gp| {
                gp.add(xs[399].clone(), ys[399]).expect("posdef");
                black_box(gp.len())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_predict(c: &mut Criterion) {
    for n in [50usize, 400] {
        let (xs, ys) = data(n, 4);
        let gp = GpRegressor::fit(&xs, &ys).expect("fit");
        let probe = [0.3, -0.7, 1.1, 0.0];
        c.bench_function(&format!("gp/predict_n{n}"), |b| {
            b.iter(|| black_box(gp.predict(black_box(&probe))))
        });
    }
}

criterion_group!(benches, bench_fit, bench_incremental_add, bench_predict);
criterion_main!(benches);
