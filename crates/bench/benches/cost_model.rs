//! Microbenchmarks for the analytical cost model: the innermost kernel of
//! every DSE sample.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use vaesa_accel::{workloads, ArchDescription, LayerShape};
use vaesa_timeloop::{CostModel, Mapping};

fn arch() -> ArchDescription {
    ArchDescription {
        pe_count: 16,
        macs_per_pe: 1024,
        accum_buf_bytes: 32 * 1024,
        weight_buf_bytes: 512 * 1024,
        input_buf_bytes: 64 * 1024,
        global_buf_bytes: 128 * 1024,
    }
}

fn mapping() -> Mapping {
    Mapping {
        spatial_k: 16,
        spatial_c: 64,
        p0: 7,
        q0: 7,
        c0: 2,
        k0: 8,
        p1: 2,
        q1: 2,
        ..Mapping::unit()
    }
}

fn bench_evaluate(c: &mut Criterion) {
    let model = CostModel::default();
    let a = arch();
    let conv = LayerShape::new("conv", 3, 3, 28, 28, 128, 128, 1, 1);
    let fc = LayerShape::fully_connected("fc", 4096, 1000);
    let m = mapping();

    c.bench_function("cost_model/evaluate_conv", |b| {
        b.iter(|| model.evaluate(black_box(&a), black_box(&conv), black_box(&m)))
    });
    c.bench_function("cost_model/evaluate_fc", |b| {
        b.iter(|| model.evaluate(black_box(&a), black_box(&fc), black_box(&m)))
    });
}

fn bench_resnet_sweep(c: &mut Criterion) {
    // Evaluating every unique ResNet-50 layer with a fixed mapping: the
    // lower bound on one workload cost query.
    let model = CostModel::default();
    let a = arch();
    let layers = workloads::resnet50();
    let m = Mapping::unit();
    c.bench_function("cost_model/resnet50_unit_mappings", |b| {
        b.iter_batched(
            || layers.clone(),
            |ls| {
                for l in &ls {
                    let _ = black_box(model.evaluate(&a, l, &m));
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_dataset_labeling(c: &mut Criterion) {
    // Scheduler + cost-model labeling of a dataset batch, serial vs. the
    // vaesa-par pool: the dominant cost of every `DatasetBuilder::build`.
    // A fresh scheduler per iteration keeps the mapping cache cold, so each
    // measurement does the full mapspace search.
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use vaesa::DatasetBuilder;
    use vaesa_accel::DesignSpace;
    use vaesa_cosa::CachedScheduler;

    let space = DesignSpace::coarse(4);
    let layers = vec![
        workloads::alexnet()[2].clone(),
        workloads::resnet50()[5].clone(),
    ];
    for threads in [1usize, vaesa_par::num_threads()] {
        let builder = DatasetBuilder::new(&space, layers.clone())
            .random_configs(40)
            .grid_per_axis(0);
        c.bench_function(&format!("cost_model/dataset_labeling_t{threads}"), |b| {
            b.iter_batched(
                CachedScheduler::default,
                |scheduler| {
                    let mut rng = ChaCha8Rng::seed_from_u64(3);
                    black_box(builder.build_parallel(&scheduler, &mut rng, threads))
                },
                BatchSize::PerIteration,
            )
        });
    }
}

criterion_group!(
    benches,
    bench_evaluate,
    bench_resnet_sweep,
    bench_dataset_labeling
);
criterion_main!(benches);
