//! Flamegraph rendering of folded span timings.
//!
//! Input is the *fold* of an execution trace: total wall time per
//! `/`-separated span path (e.g. `dse/run/fit → 1.2 ms`), as produced by
//! `vaesa-obs` trace events or `vaesa-xtask`'s Chrome-trace fold. The
//! renderer rebuilds the span tree from the paths and draws a top-down
//! icicle graph: each frame's width is proportional to its total time,
//! children are nested inside their parent in lexicographic order, and
//! the unaccounted remainder of a parent (its *self* time) is the empty
//! space at the frame's right edge.

use crate::svg::Svg;
use std::collections::BTreeMap;

const WIDTH: u32 = 960;
const ROW_H: f64 = 18.0;
const MARGIN: f64 = 10.0;
const TITLE_H: f64 = 26.0;
/// Frames narrower than this many pixels get no label.
const MIN_LABEL_PX: f64 = 42.0;
/// Frames narrower than this many pixels are not drawn at all.
const MIN_FRAME_PX: f64 = 0.3;

/// One node of the reconstructed span tree.
#[derive(Debug, Default)]
struct Frame {
    /// Wall time recorded at exactly this path, nanoseconds.
    own_ns: u64,
    /// Children keyed by path segment (BTreeMap for deterministic layout).
    children: BTreeMap<String, Frame>,
}

impl Frame {
    fn add(&mut self, path: &str, wall_ns: u64) {
        match path.split_once('/') {
            None => {
                self.children.entry(path.to_string()).or_default().own_ns += wall_ns;
            }
            Some((head, rest)) => {
                self.children
                    .entry(head.to_string())
                    .or_default()
                    .add(rest, wall_ns);
            }
        }
    }

    /// A frame's width: its own recorded time, or the sum of its
    /// children's totals when they exceed it (a parent path that was
    /// never recorded directly still spans its recorded descendants).
    fn total_ns(&self) -> u64 {
        let children: u64 = self.children.values().map(Frame::total_ns).sum();
        self.own_ns.max(children)
    }

    fn depth(&self) -> usize {
        1 + self.children.values().map(Frame::depth).max().unwrap_or(0)
    }
}

/// A flamegraph (icicle) chart over folded span timings.
///
/// # Examples
///
/// ```
/// let mut flame = vaesa_plot::FlameGraph::new("fig12_gd spans");
/// flame.add("dse/run", 3_000_000);
/// flame.add("dse/run/score", 2_000_000);
/// flame.add("train/epoch", 1_000_000);
/// let svg = flame.render();
/// assert!(svg.starts_with("<svg") && svg.contains("dse ("));
/// ```
#[derive(Debug)]
pub struct FlameGraph {
    title: String,
    root: Frame,
}

impl FlameGraph {
    /// An empty flamegraph with the given title.
    pub fn new(title: impl Into<String>) -> Self {
        FlameGraph {
            title: title.into(),
            root: Frame::default(),
        }
    }

    /// Accumulates `wall_ns` of wall time onto the span `path`
    /// (`/`-separated). Call once per trace event or once per folded
    /// path — times on the same path add up either way.
    pub fn add(&mut self, path: &str, wall_ns: u64) -> &mut Self {
        if !path.is_empty() {
            self.root.add(path, wall_ns);
        }
        self
    }

    /// Builds a flamegraph from `(path, wall_ns)` pairs.
    pub fn from_folded<'a>(
        title: impl Into<String>,
        entries: impl IntoIterator<Item = (&'a str, u64)>,
    ) -> Self {
        let mut flame = FlameGraph::new(title);
        for (path, ns) in entries {
            flame.add(path, ns);
        }
        flame
    }

    /// Whether no time has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.root.children.is_empty()
    }

    /// Renders to an SVG string.
    ///
    /// # Panics
    ///
    /// Panics if nothing was added (an empty flamegraph is a caller bug,
    /// matching the other charts in this crate).
    pub fn render(&self) -> String {
        vaesa_obs::counter("plot.charts_rendered").incr();
        assert!(!self.is_empty(), "flamegraph has no frames");
        let total_ns = self.root.total_ns().max(1);
        let depth = self.root.depth() - 1; // root itself is synthetic
        let height = (TITLE_H + (depth as f64 + 1.0) * ROW_H + MARGIN) as u32;
        let mut svg = Svg::new(WIDTH, height);
        svg.text(
            MARGIN,
            TITLE_H - 9.0,
            &format!("{} — total {}", self.title, fmt_ms(total_ns)),
            13.0,
            "start",
        );
        let span_w = WIDTH as f64 - 2.0 * MARGIN;
        // Synthetic "all" frame on row 0, children below.
        draw_frame(&mut svg, "all", total_ns, total_ns, MARGIN, TITLE_H, span_w);
        draw_children(
            &mut svg,
            &self.root,
            total_ns,
            MARGIN,
            TITLE_H + ROW_H,
            span_w,
        );
        svg.finish()
    }
}

fn draw_children(svg: &mut Svg, frame: &Frame, graph_total_ns: u64, x: f64, y: f64, width: f64) {
    let parent_ns = frame.total_ns().max(1);
    let mut cursor = x;
    for (name, child) in &frame.children {
        let child_ns = child.total_ns();
        let w = width * child_ns as f64 / parent_ns as f64;
        if w >= MIN_FRAME_PX {
            draw_frame(svg, name, child_ns, graph_total_ns, cursor, y, w);
            draw_children(svg, child, graph_total_ns, cursor, y + ROW_H, w);
        }
        cursor += w;
    }
}

fn draw_frame(svg: &mut Svg, name: &str, ns: u64, graph_total_ns: u64, x: f64, y: f64, w: f64) {
    svg.rect(x, y, w, ROW_H - 1.0, &frame_color(name), Some("#ffffff"));
    if w >= MIN_LABEL_PX {
        let pct = 100.0 * ns as f64 / graph_total_ns.max(1) as f64;
        let label = format!("{name} ({} · {pct:.1}%)", fmt_ms(ns));
        // ~6 px per glyph at 10 px sans-serif; truncate to the frame.
        let fit = ((w - 8.0) / 6.0) as usize;
        let label: String = label.chars().take(fit).collect();
        svg.text(x + 4.0, y + ROW_H - 6.0, &label, 10.0, "start");
    }
}

fn fmt_ms(ns: u64) -> String {
    let ms = ns as f64 / 1e6;
    if ms >= 100.0 {
        format!("{ms:.0} ms")
    } else if ms >= 1.0 {
        format!("{ms:.1} ms")
    } else {
        format!("{:.2} ms", ms)
    }
}

/// Deterministic warm color (flamegraph convention) from the frame name.
fn frame_color(name: &str) -> String {
    let mut h: u32 = 2166136261;
    for b in name.bytes() {
        h = (h ^ b as u32).wrapping_mul(16777619);
    }
    let r = 200 + (h % 56) as u8;
    let g = 70 + ((h >> 8) % 110) as u8;
    let b = 20 + ((h >> 16) % 40) as u8;
    format!("#{r:02x}{g:02x}{b:02x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_paths_rebuild_the_tree() {
        let mut f = FlameGraph::new("t");
        f.add("a/b", 30)
            .add("a/b/c", 10)
            .add("a/d", 20)
            .add("e", 50);
        assert_eq!(f.root.children["a"].total_ns(), 50);
        assert_eq!(f.root.children["a"].children["b"].own_ns, 30);
        assert_eq!(f.root.children["a"].children["b"].children["c"].own_ns, 10);
        assert_eq!(f.root.total_ns(), 100);
        assert_eq!(f.root.depth() - 1, 3);
    }

    #[test]
    fn unrecorded_parents_span_their_children() {
        let f = FlameGraph::from_folded("t", [("dse/run/fit", 40u64), ("dse/run/score", 60)]);
        // Neither "dse" nor "dse/run" was recorded; both span 100.
        assert_eq!(f.root.children["dse"].total_ns(), 100);
        assert_eq!(f.root.children["dse"].children["run"].total_ns(), 100);
    }

    #[test]
    fn render_draws_frames_labels_and_title() {
        let mut f = FlameGraph::new("spans");
        f.add("train", 2_000_000).add("train/epoch", 1_500_000);
        f.add("dse/run", 6_000_000);
        let svg = f.render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("spans — total 8.0 ms"));
        // Root + train + train/epoch + dse + dse/run = 5 frames (plus the
        // background rect).
        assert_eq!(svg.matches("<rect").count(), 6);
        assert!(svg.contains("all (8.0 ms"));
        assert!(svg.contains("dse ("));
        assert!(svg.contains("75.0%"));
    }

    #[test]
    fn tiny_frames_are_dropped_but_totals_stand() {
        let mut f = FlameGraph::new("t");
        f.add("big", 1_000_000_000).add("tiny", 1);
        let svg = f.render();
        assert!(svg.contains("big ("));
        assert!(!svg.contains("tiny"));
    }

    #[test]
    #[should_panic(expected = "no frames")]
    fn empty_flamegraph_panics() {
        let _ = FlameGraph::new("t").render();
    }

    #[test]
    fn frame_colors_are_valid_hex_and_deterministic() {
        for name in ["dse/run", "train", "a", ""] {
            let c = frame_color(name);
            assert_eq!(c.len(), 7);
            assert!(c.starts_with('#'));
            assert!(c[1..].chars().all(|ch| ch.is_ascii_hexdigit()));
            assert_eq!(c, frame_color(name));
        }
    }
}
