//! High-level charts: multi-series line charts with optional ±std bands,
//! and value-colored scatter plots.

use crate::color::{series_color, viridis};
use crate::scale::{format_tick, Scale};
use crate::svg::Svg;

const MARGIN_LEFT: f64 = 70.0;
const MARGIN_RIGHT: f64 = 20.0;
const MARGIN_TOP: f64 = 36.0;
const MARGIN_BOTTOM: f64 = 52.0;

/// One line-chart series: points plus an optional symmetric band (±std).
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points in order.
    pub points: Vec<(f64, f64)>,
    /// Optional per-point half-band width (same length as `points`).
    pub band: Option<Vec<f64>>,
}

impl Series {
    /// A plain series with no band.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
            band: None,
        }
    }

    /// Attaches a ±band (e.g. standard deviation across seeds).
    ///
    /// # Panics
    ///
    /// Panics if the band length differs from the point count.
    pub fn with_band(mut self, band: Vec<f64>) -> Self {
        assert_eq!(band.len(), self.points.len(), "band length mismatch");
        self.band = Some(band);
        self
    }
}

/// A multi-series line chart.
#[derive(Debug, Clone)]
pub struct LineChart {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<Series>,
    log_y: bool,
    size: (u32, u32),
}

impl LineChart {
    /// Creates an empty chart.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        LineChart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            log_y: false,
            size: (640, 420),
        }
    }

    /// Adds a series.
    pub fn series(&mut self, series: Series) -> &mut Self {
        self.series.push(series);
        self
    }

    /// Uses a base-10 log y-axis (requires positive y values).
    pub fn log_y(&mut self) -> &mut Self {
        self.log_y = true;
        self
    }

    /// Sets the pixel size.
    pub fn size(&mut self, width: u32, height: u32) -> &mut Self {
        self.size = (width, height);
        self
    }

    /// Renders to an SVG string.
    ///
    /// # Panics
    ///
    /// Panics if no series or no finite points were added, or if `log_y`
    /// was requested with non-positive values.
    pub fn render(&self) -> String {
        vaesa_obs::counter("plot.charts_rendered").incr();
        let pts: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        assert!(!pts.is_empty(), "line chart has no finite points");
        let (w, h) = (self.size.0 as f64, self.size.1 as f64);

        let (mut x0, mut x1) = min_max(pts.iter().map(|p| p.0));
        if x0 == x1 {
            x0 -= 0.5;
            x1 += 0.5;
        }
        let (mut y0, mut y1) = min_max(pts.iter().map(|p| p.1));
        if self.log_y {
            assert!(y0 > 0.0, "log y-axis requires positive values");
            y0 /= 1.3;
            y1 *= 1.3;
        } else {
            let pad = ((y1 - y0) * 0.08).max(y1.abs() * 1e-6 + 1e-12);
            y0 -= pad;
            y1 += pad;
        }
        let sx = Scale::linear((x0, x1), (MARGIN_LEFT, w - MARGIN_RIGHT));
        let sy = if self.log_y {
            Scale::log10((y0, y1), (h - MARGIN_BOTTOM, MARGIN_TOP))
        } else {
            Scale::linear((y0, y1), (h - MARGIN_BOTTOM, MARGIN_TOP))
        };

        let mut svg = Svg::new(self.size.0, self.size.1);
        draw_axes(
            &mut svg,
            &sx,
            &sy,
            w,
            h,
            &self.title,
            &self.x_label,
            &self.y_label,
        );

        for (i, series) in self.series.iter().enumerate() {
            let color = series_color(i);
            if let Some(band) = &series.band {
                let mut hull: Vec<(f64, f64)> = series
                    .points
                    .iter()
                    .zip(band)
                    .map(|(&(x, y), &b)| (sx.map(x), sy.map((y + b).max(y0))))
                    .collect();
                let lower: Vec<(f64, f64)> = series
                    .points
                    .iter()
                    .zip(band)
                    .rev()
                    .map(|(&(x, y), &b)| (sx.map(x), sy.map((y - b).max(y0))))
                    .collect();
                hull.extend(lower);
                svg.polygon(&hull, color, 0.15);
            }
            let line: Vec<(f64, f64)> = series
                .points
                .iter()
                .filter(|(x, y)| x.is_finite() && y.is_finite())
                .map(|&(x, y)| (sx.map(x), sy.map(y)))
                .collect();
            svg.polyline(&line, color, 1.8);
        }

        // Legend: one row per series, top-right inside the plot.
        for (i, series) in self.series.iter().enumerate() {
            let y = MARGIN_TOP + 14.0 + i as f64 * 16.0;
            let x = w - MARGIN_RIGHT - 130.0;
            svg.line(x, y - 4.0, x + 18.0, y - 4.0, series_color(i), 2.0);
            svg.text(x + 24.0, y, &series.label, 11.0, "start");
        }
        svg.finish()
    }
}

/// A scatter plot whose marker colors encode a third value via viridis.
#[derive(Debug, Clone)]
pub struct ScatterChart {
    title: String,
    x_label: String,
    y_label: String,
    color_label: String,
    /// `(x, y, value)` triples.
    points: Vec<(f64, f64, f64)>,
    log_color: bool,
    size: (u32, u32),
}

impl ScatterChart {
    /// Creates an empty scatter chart.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
        color_label: impl Into<String>,
    ) -> Self {
        ScatterChart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            color_label: color_label.into(),
            points: Vec::new(),
            log_color: false,
            size: (560, 460),
        }
    }

    /// Adds one point.
    pub fn point(&mut self, x: f64, y: f64, value: f64) -> &mut Self {
        self.points.push((x, y, value));
        self
    }

    /// Adds many points.
    pub fn points(&mut self, pts: impl IntoIterator<Item = (f64, f64, f64)>) -> &mut Self {
        self.points.extend(pts);
        self
    }

    /// Color by `log10(value)` (for EDP-like quantities spanning decades).
    pub fn log_color(&mut self) -> &mut Self {
        self.log_color = true;
        self
    }

    /// Renders to an SVG string.
    ///
    /// # Panics
    ///
    /// Panics if no finite points were added.
    pub fn render(&self) -> String {
        vaesa_obs::counter("plot.charts_rendered").incr();
        let pts: Vec<(f64, f64, f64)> = self
            .points
            .iter()
            .copied()
            .filter(|(x, y, v)| x.is_finite() && y.is_finite() && v.is_finite())
            .collect();
        assert!(!pts.is_empty(), "scatter chart has no finite points");
        let (w, h) = (self.size.0 as f64, self.size.1 as f64);

        let (mut x0, mut x1) = min_max(pts.iter().map(|p| p.0));
        let (mut y0, mut y1) = min_max(pts.iter().map(|p| p.1));
        for (lo, hi) in [(&mut x0, &mut x1), (&mut y0, &mut y1)] {
            if lo == hi {
                *lo -= 0.5;
                *hi += 0.5;
            } else {
                let pad = (*hi - *lo) * 0.05;
                *lo -= pad;
                *hi += pad;
            }
        }
        let sx = Scale::linear((x0, x1), (MARGIN_LEFT, w - MARGIN_RIGHT - 24.0));
        let sy = Scale::linear((y0, y1), (h - MARGIN_BOTTOM, MARGIN_TOP));

        let key = |v: f64| if self.log_color { v.log10() } else { v };
        let (c0, c1) = min_max(pts.iter().map(|p| key(p.2)));
        let span = (c1 - c0).max(1e-300);

        let mut svg = Svg::new(self.size.0, self.size.1);
        draw_axes(
            &mut svg,
            &sx,
            &sy,
            w,
            h,
            &self.title,
            &self.x_label,
            &self.y_label,
        );
        for &(x, y, v) in &pts {
            let t = (key(v) - c0) / span;
            svg.circle(sx.map(x), sy.map(y), 2.6, &viridis(t));
        }

        // Color bar on the right edge.
        let bar_x = w - MARGIN_RIGHT - 12.0;
        let bar_top = MARGIN_TOP;
        let bar_h = h - MARGIN_TOP - MARGIN_BOTTOM;
        let steps = 32;
        for i in 0..steps {
            let t = i as f64 / (steps - 1) as f64;
            let y = bar_top + bar_h * (1.0 - t);
            svg.rect(
                bar_x,
                y - bar_h / steps as f64,
                10.0,
                bar_h / steps as f64 + 1.0,
                &viridis(t),
                None,
            );
        }
        svg.vtext(bar_x - 4.0, bar_top + bar_h / 2.0, &self.color_label, 11.0);
        svg.finish()
    }
}

fn min_max(values: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo, hi)
}

#[allow(clippy::too_many_arguments)]
fn draw_axes(
    svg: &mut Svg,
    sx: &Scale,
    sy: &Scale,
    w: f64,
    h: f64,
    title: &str,
    x_label: &str,
    y_label: &str,
) {
    let x_axis_y = h - MARGIN_BOTTOM;
    svg.line(
        MARGIN_LEFT,
        x_axis_y,
        w - MARGIN_RIGHT,
        x_axis_y,
        "#444444",
        1.0,
    );
    svg.line(
        MARGIN_LEFT,
        MARGIN_TOP,
        MARGIN_LEFT,
        x_axis_y,
        "#444444",
        1.0,
    );
    for t in sx.ticks(6) {
        let px = sx.map(t);
        svg.line(px, x_axis_y, px, x_axis_y + 4.0, "#444444", 1.0);
        svg.text(px, x_axis_y + 16.0, &format_tick(t), 10.0, "middle");
    }
    for t in sy.ticks(6) {
        let py = sy.map(t);
        svg.line(MARGIN_LEFT - 4.0, py, MARGIN_LEFT, py, "#444444", 1.0);
        svg.text(MARGIN_LEFT - 7.0, py + 3.0, &format_tick(t), 10.0, "end");
        svg.line(MARGIN_LEFT, py, w - MARGIN_RIGHT, py, "#eeeeee", 0.6);
    }
    svg.text(w / 2.0, 20.0, title, 13.0, "middle");
    svg.text(w / 2.0, h - 14.0, x_label, 11.0, "middle");
    svg.vtext(18.0, h / 2.0, y_label, 11.0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_chart_renders_all_series() {
        let mut chart = LineChart::new("t", "x", "y");
        chart.series(Series::new("a", vec![(0.0, 1.0), (1.0, 2.0)]));
        chart.series(Series::new("b", vec![(0.0, 3.0), (1.0, 1.0)]).with_band(vec![0.2, 0.1]));
        let svg = chart.render();
        assert!(svg.contains("<polyline"));
        assert!(svg.contains("<polygon")); // the band
        assert!(svg.contains(">a</text>"));
        assert!(svg.contains(">b</text>"));
        assert!(svg.contains(">t</text>"));
    }

    #[test]
    fn log_axis_renders_decades() {
        let mut chart = LineChart::new("edp", "sample", "EDP");
        chart.log_y();
        chart.series(Series::new(
            "curve",
            vec![(1.0, 1e16), (2.0, 3e15), (3.0, 1e15)],
        ));
        let svg = chart.render();
        assert!(svg.contains("1e15") || svg.contains("1e16"));
    }

    #[test]
    #[should_panic(expected = "no finite points")]
    fn empty_chart_panics() {
        let _ = LineChart::new("t", "x", "y").render();
    }

    #[test]
    fn scatter_renders_points_and_colorbar() {
        let mut chart = ScatterChart::new("latent", "z1", "z2", "EDP");
        chart.points((0..50).map(|i| {
            let t = i as f64 / 10.0;
            (t.sin(), t.cos(), 1e15 * (1.0 + t))
        }));
        chart.log_color();
        let svg = chart.render();
        assert!(svg.matches("<circle").count() >= 50);
        assert!(svg.contains("EDP"));
        assert!(svg.contains("rotate(-90"));
    }

    #[test]
    fn constant_axis_is_padded_not_degenerate() {
        let mut chart = ScatterChart::new("t", "x", "y", "v");
        chart.point(1.0, 5.0, 2.0);
        chart.point(1.0, 5.0, 3.0);
        let svg = chart.render(); // must not panic on zero-width domain
        assert!(svg.contains("<circle"));
    }

    #[test]
    #[should_panic(expected = "band length")]
    fn band_length_mismatch_panics() {
        let _ = Series::new("a", vec![(0.0, 0.0)]).with_band(vec![0.1, 0.2]);
    }
}
