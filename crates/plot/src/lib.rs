#![deny(missing_docs)]
//! Dependency-free SVG charts for the VAESA experiment harness.
//!
//! Every experiment binary writes CSV series; this crate turns them into
//! figures directly — line charts with ±std bands for the convergence plots
//! (Figures 10–12), log-scale EDP curves (Figure 11), and value-colored
//! scatter plots for the latent-space visualizations (Figure 4) and Pareto
//! fronts — without pulling a plotting dependency into the workspace.
//!
//! # Examples
//!
//! ```
//! use vaesa_plot::{LineChart, Series};
//!
//! let mut chart = LineChart::new("Best EDP vs samples", "sample", "EDP");
//! chart.log_y();
//! chart.series(Series::new("random", vec![(1.0, 3e16), (50.0, 2e16)]));
//! chart.series(Series::new("vae_bo", vec![(1.0, 3e16), (50.0, 1.6e16)]));
//! let svg = chart.render();
//! assert!(svg.starts_with("<svg"));
//! ```

mod chart;
pub mod color;
mod flame;
mod heatmap;
mod histogram;
pub mod scale;
mod sparkline;
mod svg;

pub use chart::{LineChart, ScatterChart, Series};
pub use flame::FlameGraph;
pub use heatmap::Heatmap;
pub use histogram::Histogram;
pub use sparkline::{text_sparkline, Dashboard};
pub use svg::Svg;
