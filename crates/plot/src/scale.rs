//! Axis scales and tick generation.

/// A one-dimensional mapping from data space to pixel space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    domain: (f64, f64),
    range: (f64, f64),
    log: bool,
}

impl Scale {
    /// A linear scale from `domain` to `range`.
    ///
    /// # Panics
    ///
    /// Panics if the domain is degenerate or non-finite.
    pub fn linear(domain: (f64, f64), range: (f64, f64)) -> Self {
        assert!(
            domain.0.is_finite() && domain.1.is_finite() && domain.0 < domain.1,
            "invalid domain {domain:?}"
        );
        Scale {
            domain,
            range,
            log: false,
        }
    }

    /// A base-10 logarithmic scale; the domain must be strictly positive.
    ///
    /// # Panics
    ///
    /// Panics if the domain is not positive or degenerate.
    pub fn log10(domain: (f64, f64), range: (f64, f64)) -> Self {
        assert!(
            domain.0 > 0.0 && domain.1 > domain.0 && domain.1.is_finite(),
            "log scale needs a positive domain, got {domain:?}"
        );
        Scale {
            domain,
            range,
            log: true,
        }
    }

    /// The data domain.
    pub fn domain(&self) -> (f64, f64) {
        self.domain
    }

    /// Returns `true` for logarithmic scales.
    pub fn is_log(&self) -> bool {
        self.log
    }

    /// Maps a data value into pixel space (values outside the domain
    /// extrapolate).
    pub fn map(&self, v: f64) -> f64 {
        let (d0, d1) = if self.log {
            (self.domain.0.log10(), self.domain.1.log10())
        } else {
            self.domain
        };
        let v = if self.log { v.log10() } else { v };
        let t = (v - d0) / (d1 - d0);
        self.range.0 + t * (self.range.1 - self.range.0)
    }

    /// Tick positions covering the domain: "nice" steps for linear scales,
    /// decades for log scales.
    pub fn ticks(&self, target: usize) -> Vec<f64> {
        if self.log {
            let lo = self.domain.0.log10().floor() as i32;
            let hi = self.domain.1.log10().ceil() as i32;
            let every = (((hi - lo) as usize / target.max(1)).max(1)) as i32;
            (lo..=hi)
                .step_by(every as usize)
                .map(|e| 10f64.powi(e))
                .filter(|&t| t >= self.domain.0 * 0.999 && t <= self.domain.1 * 1.001)
                .collect()
        } else {
            let step = nice_step((self.domain.1 - self.domain.0) / target.max(1) as f64);
            let start = (self.domain.0 / step).ceil() * step;
            let mut out = Vec::new();
            let mut t = start;
            while t <= self.domain.1 + step * 1e-9 {
                // Snap tiny float error to zero for clean labels.
                out.push(if t.abs() < step * 1e-9 { 0.0 } else { t });
                t += step;
            }
            out
        }
    }
}

/// Rounds `raw` up to 1, 2, or 5 times a power of ten.
pub fn nice_step(raw: f64) -> f64 {
    assert!(raw > 0.0 && raw.is_finite(), "invalid step {raw}");
    let mag = 10f64.powf(raw.log10().floor());
    let frac = raw / mag;
    let nice = if frac <= 1.0 {
        1.0
    } else if frac <= 2.0 {
        2.0
    } else if frac <= 5.0 {
        5.0
    } else {
        10.0
    };
    nice * mag
}

/// Formats a tick label compactly (scientific for tiny/huge magnitudes).
pub fn format_tick(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    let a = v.abs();
    if !(1e-3..1e4).contains(&a) {
        format!("{v:.0e}")
    } else if a >= 100.0 || (v - v.round()).abs() < 1e-9 {
        format!("{v:.0}")
    } else if a >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_maps_endpoints() {
        let s = Scale::linear((0.0, 10.0), (100.0, 200.0));
        assert_eq!(s.map(0.0), 100.0);
        assert_eq!(s.map(10.0), 200.0);
        assert_eq!(s.map(5.0), 150.0);
        // Inverted pixel ranges (SVG y axis) work too.
        let s = Scale::linear((0.0, 1.0), (300.0, 0.0));
        assert_eq!(s.map(1.0), 0.0);
        assert_eq!(s.map(0.0), 300.0);
    }

    #[test]
    fn log_maps_decades_evenly() {
        let s = Scale::log10((1.0, 1000.0), (0.0, 300.0));
        assert!((s.map(1.0) - 0.0).abs() < 1e-9);
        assert!((s.map(10.0) - 100.0).abs() < 1e-9);
        assert!((s.map(1000.0) - 300.0).abs() < 1e-9);
    }

    #[test]
    fn linear_ticks_are_nice_and_cover() {
        let s = Scale::linear((0.0, 97.0), (0.0, 1.0));
        let ticks = s.ticks(5);
        assert!(ticks.len() >= 4 && ticks.len() <= 8, "{ticks:?}");
        assert!(ticks.windows(2).all(|w| w[1] > w[0]));
        assert!(ticks[0] >= 0.0 && *ticks.last().unwrap() <= 97.0);
        assert!(ticks.contains(&0.0));
    }

    #[test]
    fn log_ticks_are_decades() {
        let s = Scale::log10((1e14, 1e17), (0.0, 1.0));
        let ticks = s.ticks(5);
        assert!(ticks.contains(&1e14));
        assert!(ticks.contains(&1e17));
        for t in ticks {
            let e = t.log10();
            assert!((e - e.round()).abs() < 1e-9);
        }
    }

    #[test]
    fn nice_steps() {
        assert_eq!(nice_step(0.7), 1.0);
        assert_eq!(nice_step(1.3), 2.0);
        assert_eq!(nice_step(3.9), 5.0);
        assert_eq!(nice_step(7.2), 10.0);
        assert_eq!(nice_step(23.0), 50.0);
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(format_tick(0.0), "0");
        assert_eq!(format_tick(2.0), "2");
        assert_eq!(format_tick(2.5), "2.5");
        assert_eq!(format_tick(1e16), "1e16");
        assert_eq!(format_tick(250.0), "250");
        assert_eq!(format_tick(0.025), "0.025");
    }

    #[test]
    #[should_panic(expected = "positive domain")]
    fn log_rejects_nonpositive() {
        let _ = Scale::log10((0.0, 10.0), (0.0, 1.0));
    }
}
