//! Series palette and a perceptual colormap for value-colored scatter
//! plots.

/// Categorical palette for line/series colors (colorblind-friendly Okabe–Ito).
pub const SERIES: [&str; 8] = [
    "#0072B2", // blue
    "#D55E00", // vermillion
    "#009E73", // green
    "#CC79A7", // purple
    "#E69F00", // orange
    "#56B4E9", // sky
    "#F0E442", // yellow
    "#000000", // black
];

/// Returns the `i`-th series color, cycling.
pub fn series_color(i: usize) -> &'static str {
    SERIES[i % SERIES.len()]
}

/// Maps `t in [0, 1]` through a viridis-like perceptual colormap and
/// returns an `#rrggbb` string. Values outside `[0, 1]` are clamped.
pub fn viridis(t: f64) -> String {
    // Five control points of viridis, linearly interpolated.
    const STOPS: [(f64, [u8; 3]); 5] = [
        (0.00, [68, 1, 84]),
        (0.25, [59, 82, 139]),
        (0.50, [33, 145, 140]),
        (0.75, [94, 201, 98]),
        (1.00, [253, 231, 37]),
    ];
    let t = t.clamp(0.0, 1.0);
    let mut lo = STOPS[0];
    let mut hi = STOPS[STOPS.len() - 1];
    for w in STOPS.windows(2) {
        if t >= w[0].0 && t <= w[1].0 {
            lo = w[0];
            hi = w[1];
            break;
        }
    }
    let f = if hi.0 > lo.0 {
        (t - lo.0) / (hi.0 - lo.0)
    } else {
        0.0
    };
    let mix = |a: u8, b: u8| (a as f64 + f * (b as f64 - a as f64)).round() as u8;
    format!(
        "#{:02x}{:02x}{:02x}",
        mix(lo.1[0], hi.1[0]),
        mix(lo.1[1], hi.1[1]),
        mix(lo.1[2], hi.1[2])
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn palette_cycles() {
        assert_eq!(series_color(0), SERIES[0]);
        assert_eq!(series_color(8), SERIES[0]);
        assert_eq!(series_color(9), SERIES[1]);
    }

    #[test]
    fn viridis_endpoints_and_clamping() {
        assert_eq!(viridis(0.0), "#440154");
        assert_eq!(viridis(1.0), "#fde725");
        assert_eq!(viridis(-5.0), viridis(0.0));
        assert_eq!(viridis(5.0), viridis(1.0));
    }

    #[test]
    fn viridis_is_valid_hex_everywhere() {
        for i in 0..=100 {
            let c = viridis(i as f64 / 100.0);
            assert_eq!(c.len(), 7);
            assert!(c.starts_with('#'));
            assert!(c[1..].chars().all(|ch| ch.is_ascii_hexdigit()));
        }
    }

    #[test]
    fn viridis_midpoint_matches_control() {
        assert_eq!(viridis(0.5), "#21918c");
    }
}
