//! Histograms, used for distributional results such as Figure 13's
//! per-start EDP improvement factors.

use crate::color::series_color;
use crate::scale::{format_tick, nice_step, Scale};
use crate::svg::Svg;

/// A single-series histogram with automatic binning.
#[derive(Debug, Clone)]
pub struct Histogram {
    title: String,
    x_label: String,
    values: Vec<f64>,
    bins: usize,
    log_x: bool,
    size: (u32, u32),
}

impl Histogram {
    /// Creates an empty histogram with 20 bins.
    pub fn new(title: impl Into<String>, x_label: impl Into<String>) -> Self {
        Histogram {
            title: title.into(),
            x_label: x_label.into(),
            values: Vec::new(),
            bins: 20,
            log_x: false,
            size: (560, 360),
        }
    }

    /// Adds values.
    pub fn values(&mut self, it: impl IntoIterator<Item = f64>) -> &mut Self {
        self.values.extend(it);
        self
    }

    /// Sets the bin count.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero.
    pub fn bins(&mut self, bins: usize) -> &mut Self {
        assert!(bins >= 1, "need at least one bin");
        self.bins = bins;
        self
    }

    /// Bins in log10 space (for ratio-like values spanning decades); the
    /// axis labels remain in raw units.
    pub fn log_x(&mut self) -> &mut Self {
        self.log_x = true;
        self
    }

    /// Bin counts as `(bin_start, bin_end, count)` in raw units.
    ///
    /// # Panics
    ///
    /// Panics if no finite (and, under `log_x`, positive) values were added.
    pub fn counts(&self) -> Vec<(f64, f64, usize)> {
        let key = |v: f64| if self.log_x { v.log10() } else { v };
        let unkey = |v: f64| if self.log_x { 10f64.powf(v) } else { v };
        let vals: Vec<f64> = self
            .values
            .iter()
            .copied()
            .filter(|v| v.is_finite() && (!self.log_x || *v > 0.0))
            .map(key)
            .collect();
        assert!(!vals.is_empty(), "histogram has no usable values");
        let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let width = ((hi - lo) / self.bins as f64).max(1e-12);
        let mut counts = vec![0usize; self.bins];
        for v in &vals {
            let idx = (((v - lo) / width) as usize).min(self.bins - 1);
            counts[idx] += 1;
        }
        counts
            .into_iter()
            .enumerate()
            .map(|(i, c)| {
                (
                    unkey(lo + i as f64 * width),
                    unkey(lo + (i + 1) as f64 * width),
                    c,
                )
            })
            .collect()
    }

    /// Renders to SVG.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Histogram::counts`].
    pub fn render(&self) -> String {
        vaesa_obs::counter("plot.charts_rendered").incr();
        let counts = self.counts();
        let (w, h) = (self.size.0 as f64, self.size.1 as f64);
        let max_count = counts.iter().map(|c| c.2).max().unwrap_or(1).max(1);

        let sx = Scale::linear((0.0, counts.len() as f64), (70.0, w - 20.0));
        let sy = Scale::linear((0.0, max_count as f64 * 1.05), (h - 52.0, 36.0));

        let mut svg = Svg::new(self.size.0, self.size.1);
        for (i, &(_, _, c)) in counts.iter().enumerate() {
            let x0 = sx.map(i as f64) + 1.0;
            let x1 = sx.map((i + 1) as f64) - 1.0;
            let y = sy.map(c as f64);
            svg.rect(
                x0,
                y,
                (x1 - x0).max(0.5),
                sy.map(0.0) - y,
                series_color(0),
                None,
            );
        }
        // Axis line + a few bin labels.
        svg.line(70.0, h - 52.0, w - 20.0, h - 52.0, "#444444", 1.0);
        let step = (counts.len() / 6).max(1);
        for i in (0..=counts.len()).step_by(step) {
            let edge = if i == counts.len() {
                counts[i - 1].1
            } else {
                counts[i].0
            };
            svg.text(
                sx.map(i as f64),
                h - 38.0,
                &format_tick(edge),
                9.0,
                "middle",
            );
        }
        for t in Scale::linear((0.0, max_count as f64), (0.0, 1.0)).ticks(4) {
            let step_t = nice_step(max_count as f64 / 4.0);
            if (t / step_t).fract().abs() > 1e-9 {
                continue;
            }
            svg.text(62.0, sy.map(t) + 3.0, &format_tick(t), 10.0, "end");
            svg.line(66.0, sy.map(t), 70.0, sy.map(t), "#444444", 1.0);
        }
        svg.text(w / 2.0, 20.0, &self.title, 13.0, "middle");
        svg.text(w / 2.0, h - 14.0, &self.x_label, 11.0, "middle");
        svg.vtext(18.0, h / 2.0, "count", 11.0);
        svg.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_cover_all_values() {
        let mut h = Histogram::new("t", "x");
        h.values([1.0, 2.0, 2.5, 9.0, 9.5]).bins(4);
        let counts = h.counts();
        assert_eq!(counts.len(), 4);
        let total: usize = counts.iter().map(|c| c.2).sum();
        assert_eq!(total, 5);
        // Edges are ordered and span the data.
        assert!(counts[0].0 <= 1.0 + 1e-9);
        assert!(counts[3].1 >= 9.5 - 1e-9);
    }

    #[test]
    fn log_binning_spans_decades_evenly() {
        let mut h = Histogram::new("t", "x");
        h.values([1.0, 10.0, 100.0, 1000.0]).bins(3).log_x();
        let counts = h.counts();
        // Bin widths should be equal in log space: edges 1, 10, 100, 1000.
        assert!((counts[0].1 - 10.0).abs() < 1e-6);
        assert!((counts[1].1 - 100.0).abs() < 1e-3);
        let total: usize = counts.iter().map(|c| c.2).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn renders_bars() {
        let mut h = Histogram::new("improvements", "factor");
        h.values((1..100).map(|i| 1.0 + (i % 13) as f64 * 0.3));
        let svg = h.render();
        assert!(svg.matches("<rect").count() > 10);
        assert!(svg.contains("improvements"));
    }

    #[test]
    #[should_panic(expected = "no usable values")]
    fn empty_histogram_panics() {
        let _ = Histogram::new("t", "x").render();
    }

    #[test]
    #[should_panic(expected = "no usable values")]
    fn log_x_rejects_all_nonpositive() {
        let mut h = Histogram::new("t", "x");
        h.values([-1.0, 0.0]).log_x();
        let _ = h.render();
    }
}
