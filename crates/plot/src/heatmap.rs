//! Grid heatmaps for surface plots (Figure 5's predicted vs real latency
//! and energy surfaces over the 2-D latent space).

use crate::color::viridis;
use crate::scale::{format_tick, Scale};
use crate::svg::Svg;

/// A regular-grid heatmap: cell values colored through viridis.
#[derive(Debug, Clone)]
pub struct Heatmap {
    title: String,
    x_label: String,
    y_label: String,
    color_label: String,
    /// `(x, y, value)` samples on a regular grid.
    cells: Vec<(f64, f64, f64)>,
    log_color: bool,
    size: (u32, u32),
}

impl Heatmap {
    /// Creates an empty heatmap.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
        color_label: impl Into<String>,
    ) -> Self {
        Heatmap {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            color_label: color_label.into(),
            cells: Vec::new(),
            log_color: false,
            size: (520, 440),
        }
    }

    /// Adds one grid cell sample.
    pub fn cell(&mut self, x: f64, y: f64, value: f64) -> &mut Self {
        self.cells.push((x, y, value));
        self
    }

    /// Adds many cells.
    pub fn cells(&mut self, it: impl IntoIterator<Item = (f64, f64, f64)>) -> &mut Self {
        self.cells.extend(it);
        self
    }

    /// Color by `log10(value)`.
    pub fn log_color(&mut self) -> &mut Self {
        self.log_color = true;
        self
    }

    /// Renders to SVG. Cell size is inferred from the smallest positive
    /// spacing between distinct x (and y) coordinates.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two distinct grid coordinates exist on either
    /// axis, or no finite cells were added.
    pub fn render(&self) -> String {
        vaesa_obs::counter("plot.charts_rendered").incr();
        let cells: Vec<(f64, f64, f64)> = self
            .cells
            .iter()
            .copied()
            .filter(|(x, y, v)| x.is_finite() && y.is_finite() && v.is_finite())
            .collect();
        assert!(!cells.is_empty(), "heatmap has no finite cells");
        let dx = min_spacing(cells.iter().map(|c| c.0));
        let dy = min_spacing(cells.iter().map(|c| c.1));

        let (w, h) = (self.size.0 as f64, self.size.1 as f64);
        let (x0, x1) = bounds(cells.iter().map(|c| c.0));
        let (y0, y1) = bounds(cells.iter().map(|c| c.1));
        let sx = Scale::linear((x0 - dx / 2.0, x1 + dx / 2.0), (70.0, w - 44.0));
        let sy = Scale::linear((y0 - dy / 2.0, y1 + dy / 2.0), (h - 52.0, 36.0));

        let key = |v: f64| if self.log_color { v.log10() } else { v };
        let (c0, c1) = bounds(cells.iter().map(|c| key(c.2)));
        let span = (c1 - c0).max(1e-300);

        let mut svg = Svg::new(self.size.0, self.size.1);
        let cell_w = (sx.map(x0 + dx) - sx.map(x0)).abs();
        let cell_h = (sy.map(y0 + dy) - sy.map(y0)).abs();
        for &(x, y, v) in &cells {
            let t = (key(v) - c0) / span;
            svg.rect(
                sx.map(x) - cell_w / 2.0,
                sy.map(y) - cell_h / 2.0,
                cell_w + 0.5,
                cell_h + 0.5,
                &viridis(t),
                None,
            );
        }
        // Axes on top of the cells.
        for t in sx.ticks(6) {
            svg.text(sx.map(t), h - 36.0, &format_tick(t), 10.0, "middle");
        }
        for t in sy.ticks(6) {
            svg.text(62.0, sy.map(t) + 3.0, &format_tick(t), 10.0, "end");
        }
        svg.text(w / 2.0, 20.0, &self.title, 13.0, "middle");
        svg.text(w / 2.0, h - 14.0, &self.x_label, 11.0, "middle");
        svg.vtext(18.0, h / 2.0, &self.y_label, 11.0);

        // Colorbar.
        let bar_x = w - 32.0;
        let bar_top = 36.0;
        let bar_h = h - 36.0 - 52.0;
        let steps = 32;
        for i in 0..steps {
            let t = i as f64 / (steps - 1) as f64;
            let y = bar_top + bar_h * (1.0 - t);
            svg.rect(
                bar_x,
                y - bar_h / steps as f64,
                10.0,
                bar_h / steps as f64 + 1.0,
                &viridis(t),
                None,
            );
        }
        svg.vtext(bar_x - 4.0, bar_top + bar_h / 2.0, &self.color_label, 11.0);
        svg.finish()
    }
}

fn bounds(values: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo, hi)
}

fn min_spacing(values: impl Iterator<Item = f64>) -> f64 {
    let mut distinct: Vec<f64> = values.collect();
    distinct.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    distinct.dedup();
    assert!(
        distinct.len() >= 2,
        "heatmap needs at least two distinct coordinates per axis"
    );
    distinct
        .windows(2)
        .map(|w| w[1] - w[0])
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_a_grid() {
        let mut hm = Heatmap::new("surface", "z1", "z2", "latency");
        for i in 0..5 {
            for j in 0..5 {
                hm.cell(i as f64, j as f64, (i * j + 1) as f64);
            }
        }
        hm.log_color();
        let svg = hm.render();
        // 25 cells + background + colorbar steps.
        assert!(svg.matches("<rect").count() > 25);
        assert!(svg.contains("latency"));
    }

    #[test]
    #[should_panic(expected = "two distinct coordinates")]
    fn single_column_panics() {
        let mut hm = Heatmap::new("t", "x", "y", "v");
        hm.cell(0.0, 0.0, 1.0);
        hm.cell(0.0, 1.0, 2.0);
        let _ = hm.render();
    }

    #[test]
    #[should_panic(expected = "no finite cells")]
    fn all_nan_panics() {
        let mut hm = Heatmap::new("t", "x", "y", "v");
        hm.cell(f64::NAN, 0.0, 1.0);
        let _ = hm.render();
    }
}
