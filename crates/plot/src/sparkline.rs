//! Sparklines and the live-service dashboard panel behind
//! `vaesa-cli serve-top`.
//!
//! Terminal rendering uses the eight Unicode block glyphs; the SVG
//! [`Dashboard`] is the `--snapshot-svg` artifact: one row per endpoint,
//! each with a label, a rate sparkline, and a stats annotation.

use crate::color;
use crate::svg::Svg;

const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders `values` as a Unicode block-glyph sparkline, min-max scaled.
/// Non-finite values render as spaces; an all-equal series renders flat
/// at the lowest glyph.
pub fn text_sparkline(values: &[f64]) -> String {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in values {
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() || !lo.is_finite() {
                ' '
            } else if hi <= lo {
                BLOCKS[0]
            } else {
                let t = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
                BLOCKS[((t * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

struct DashboardRow {
    label: String,
    values: Vec<f64>,
    note: String,
}

/// The `serve-top --snapshot-svg` panel: a titled stack of labelled
/// sparkline rows.
///
/// # Examples
///
/// ```
/// use vaesa_plot::Dashboard;
///
/// let mut dash = Dashboard::new("vaesa-serve");
/// dash.row("predict", vec![1.0, 4.0, 2.0], "p99 1.2ms");
/// let svg = dash.render();
/// assert!(svg.starts_with("<svg"));
/// ```
#[derive(Default)]
pub struct Dashboard {
    title: String,
    rows: Vec<DashboardRow>,
}

impl std::fmt::Debug for Dashboard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dashboard")
            .field("title", &self.title)
            .field("rows", &self.rows.len())
            .finish()
    }
}

impl Dashboard {
    /// An empty dashboard with the given title.
    pub fn new(title: impl Into<String>) -> Self {
        Dashboard {
            title: title.into(),
            rows: Vec::new(),
        }
    }

    /// Appends a row: a label, the sparkline series (oldest first), and a
    /// free-form annotation rendered to the right of the sparkline.
    pub fn row(&mut self, label: impl Into<String>, values: Vec<f64>, note: impl Into<String>) {
        self.rows.push(DashboardRow {
            label: label.into(),
            values,
            note: note.into(),
        });
    }

    /// Renders the panel as an SVG document.
    pub fn render(&self) -> String {
        const WIDTH: u32 = 680;
        const HEADER: f64 = 30.0;
        const ROW_H: f64 = 34.0;
        const LABEL_W: f64 = 110.0;
        const SPARK_W: f64 = 260.0;
        let height = (HEADER + ROW_H * self.rows.len() as f64 + 10.0).ceil() as u32;
        let mut svg = Svg::new(WIDTH, height.max(40));
        svg.text(10.0, 20.0, &self.title, 14.0, "start");
        svg.line(
            10.0,
            HEADER - 4.0,
            WIDTH as f64 - 10.0,
            HEADER - 4.0,
            "#cccccc",
            1.0,
        );
        for (i, row) in self.rows.iter().enumerate() {
            let top = HEADER + ROW_H * i as f64;
            let mid = top + ROW_H / 2.0;
            svg.text(10.0, mid + 4.0, &row.label, 12.0, "start");
            let x0 = LABEL_W;
            // Sparkline box with min-max scaling inside [top+4, top+ROW_H-6].
            svg.rect(
                x0,
                top + 4.0,
                SPARK_W,
                ROW_H - 10.0,
                "#f7f7f7",
                Some("#dddddd"),
            );
            let finite: Vec<f64> = row
                .values
                .iter()
                .copied()
                .filter(|v| v.is_finite())
                .collect();
            if finite.len() >= 2 {
                let lo = finite.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = finite.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let span = if hi > lo { hi - lo } else { 1.0 };
                let n = row.values.len();
                let points: Vec<(f64, f64)> = row
                    .values
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| v.is_finite())
                    .map(|(j, &v)| {
                        let x = x0 + SPARK_W * j as f64 / (n - 1).max(1) as f64;
                        let t = ((v - lo) / span).clamp(0.0, 1.0);
                        let y = (top + ROW_H - 8.0) - t * (ROW_H - 16.0);
                        (x, y)
                    })
                    .collect();
                svg.polyline(&points, color::series_color(i), 1.6);
                if let Some(&(x, y)) = points.last() {
                    svg.circle(x, y, 2.2, color::series_color(i));
                }
            }
            svg.text(x0 + SPARK_W + 10.0, mid + 4.0, &row.note, 11.0, "start");
        }
        svg.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_sparkline_scales_min_to_max() {
        assert_eq!(text_sparkline(&[]), "");
        assert_eq!(text_sparkline(&[1.0, 1.0, 1.0]), "▁▁▁");
        let s = text_sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert_eq!(s.chars().next(), Some('▁'));
        assert_eq!(s.chars().last(), Some('█'));
        // Non-finite values are blanks, finite neighbours still scale.
        let s = text_sparkline(&[0.0, f64::NAN, 2.0]);
        assert_eq!(s.chars().nth(1), Some(' '));
    }

    #[test]
    fn dashboard_renders_a_row_per_series() {
        let mut dash = Dashboard::new("vaesa-serve @ 127.0.0.1:1");
        dash.row("predict", vec![1.0, 3.0, 2.0, 5.0], "p99 1.1ms · 4.0 rps");
        dash.row("decode", vec![], "idle");
        let svg = dash.render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("predict"));
        assert!(svg.contains("idle"));
        // One polyline for the populated row, none for the empty one.
        assert_eq!(svg.matches("<polyline").count(), 1);
    }
}
