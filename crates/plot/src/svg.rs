//! Minimal SVG document builder.

use std::fmt::Write as _;

/// An SVG document under construction.
#[derive(Debug, Clone)]
pub struct Svg {
    width: u32,
    height: u32,
    body: String,
}

impl Svg {
    /// Creates an empty document of the given pixel size with a white
    /// background.
    pub fn new(width: u32, height: u32) -> Self {
        let mut svg = Svg {
            width,
            height,
            body: String::new(),
        };
        svg.rect(0.0, 0.0, width as f64, height as f64, "#ffffff", None);
        svg
    }

    /// Document width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Document height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Adds a filled rectangle (optionally stroked).
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str, stroke: Option<&str>) {
        let stroke_attr = stroke
            .map(|s| format!(" stroke=\"{s}\""))
            .unwrap_or_default();
        writeln!(
            self.body,
            "<rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{w:.2}\" height=\"{h:.2}\" fill=\"{fill}\"{stroke_attr}/>"
        )
        .expect("string write");
    }

    /// Adds a line segment.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        writeln!(
            self.body,
            "<line x1=\"{x1:.2}\" y1=\"{y1:.2}\" x2=\"{x2:.2}\" y2=\"{y2:.2}\" stroke=\"{stroke}\" stroke-width=\"{width:.2}\"/>"
        )
        .expect("string write");
    }

    /// Adds an unfilled polyline through `points`.
    pub fn polyline(&mut self, points: &[(f64, f64)], stroke: &str, width: f64) {
        if points.len() < 2 {
            return;
        }
        let pts: Vec<String> = points
            .iter()
            .map(|(x, y)| format!("{x:.2},{y:.2}"))
            .collect();
        writeln!(
            self.body,
            "<polyline points=\"{}\" fill=\"none\" stroke=\"{stroke}\" stroke-width=\"{width:.2}\"/>",
            pts.join(" ")
        )
        .expect("string write");
    }

    /// Adds a filled polygon (used for ±std bands).
    pub fn polygon(&mut self, points: &[(f64, f64)], fill: &str, opacity: f64) {
        if points.len() < 3 {
            return;
        }
        let pts: Vec<String> = points
            .iter()
            .map(|(x, y)| format!("{x:.2},{y:.2}"))
            .collect();
        writeln!(
            self.body,
            "<polygon points=\"{}\" fill=\"{fill}\" fill-opacity=\"{opacity:.2}\" stroke=\"none\"/>",
            pts.join(" ")
        )
        .expect("string write");
    }

    /// Adds a filled circle.
    pub fn circle(&mut self, cx: f64, cy: f64, r: f64, fill: &str) {
        writeln!(
            self.body,
            "<circle cx=\"{cx:.2}\" cy=\"{cy:.2}\" r=\"{r:.2}\" fill=\"{fill}\"/>"
        )
        .expect("string write");
    }

    /// Adds text. `anchor` is an SVG `text-anchor` (`start`, `middle`,
    /// `end`); `size` is in pixels.
    pub fn text(&mut self, x: f64, y: f64, content: &str, size: f64, anchor: &str) {
        writeln!(
            self.body,
            "<text x=\"{x:.2}\" y=\"{y:.2}\" font-family=\"sans-serif\" font-size=\"{size:.1}\" text-anchor=\"{anchor}\" fill=\"#222222\">{}</text>",
            escape(content)
        )
        .expect("string write");
    }

    /// Adds text rotated 90° counter-clockwise around `(x, y)` (for y-axis
    /// labels).
    pub fn vtext(&mut self, x: f64, y: f64, content: &str, size: f64) {
        writeln!(
            self.body,
            "<text x=\"{x:.2}\" y=\"{y:.2}\" font-family=\"sans-serif\" font-size=\"{size:.1}\" text-anchor=\"middle\" fill=\"#222222\" transform=\"rotate(-90 {x:.2} {y:.2})\">{}</text>",
            escape(content)
        )
        .expect("string write");
    }

    /// Serializes the document.
    pub fn finish(self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" viewBox=\"0 0 {} {}\">\n{}</svg>\n",
            self.width, self.height, self.width, self.height, self.body
        )
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_structure() {
        let mut svg = Svg::new(320, 200);
        svg.line(0.0, 0.0, 10.0, 10.0, "#000000", 1.0);
        svg.circle(5.0, 5.0, 2.0, "#ff0000");
        svg.text(1.0, 1.0, "a < b & c", 10.0, "start");
        let out = svg.finish();
        assert!(out.starts_with("<svg"));
        assert!(out.trim_end().ends_with("</svg>"));
        assert!(out.contains("width=\"320\""));
        assert!(out.contains("<line"));
        assert!(out.contains("<circle"));
        assert!(out.contains("a &lt; b &amp; c"));
    }

    #[test]
    fn degenerate_shapes_are_skipped() {
        let mut svg = Svg::new(10, 10);
        svg.polyline(&[(0.0, 0.0)], "#000", 1.0); // single point: no-op
        svg.polygon(&[(0.0, 0.0), (1.0, 1.0)], "#000", 0.5); // 2 points: no-op
        let out = svg.finish();
        assert!(!out.contains("<polyline"));
        assert!(!out.contains("<polygon"));
    }

    #[test]
    fn polyline_emits_all_points() {
        let mut svg = Svg::new(10, 10);
        svg.polyline(&[(0.0, 0.0), (1.0, 2.0), (3.0, 4.0)], "#00ff00", 1.5);
        let out = svg.finish();
        assert!(out.contains("0.00,0.00 1.00,2.00 3.00,4.00"));
    }
}
