//! Deterministic CSV formatting — the one artifact formatter every
//! pipeline shares.
//!
//! Numbers are formatted as `{:.6e}` (six significant decimals,
//! exponent form), matching the historical per-binary writers so ported
//! pipelines produce byte-identical files. Formatting is separated from
//! writing: pipeline nodes *format* CSV text (a cacheable string
//! artifact); the runner *writes* it via [`crate::write_text`] at
//! materialization time.

/// Formats one float the way every experiment CSV does.
pub fn format_cell(v: f64) -> String {
    format!("{v:.6e}")
}

/// Formats a header plus all-numeric rows into CSV text.
pub fn format_csv(header: &str, rows: &[Vec<f64>]) -> String {
    let mut out = String::with_capacity(header.len() + 1 + rows.len() * 16);
    out.push_str(header);
    out.push('\n');
    for row in rows {
        let line = row
            .iter()
            .map(|v| format_cell(*v))
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Formats a CSV whose rows carry a leading string column (e.g. method
/// names).
pub fn format_labeled_csv(header: &str, rows: &[(String, Vec<f64>)]) -> String {
    let mut out = String::with_capacity(header.len() + 1 + rows.len() * 24);
    out.push_str(header);
    out.push('\n');
    for (label, row) in rows {
        let nums = row
            .iter()
            .map(|v| format_cell(*v))
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(label);
        out.push(',');
        out.push_str(&nums);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_matches_historical_writers() {
        assert_eq!(format_cell(1234.5), "1.234500e3");
        assert_eq!(format_cell(0.0), "0.000000e0");
        let csv = format_csv("a,b", &[vec![1.0, 2.0], vec![0.5, -3.25]]);
        assert_eq!(csv, "a,b\n1.000000e0,2.000000e0\n5.000000e-1,-3.250000e0\n");
    }

    #[test]
    fn labeled_rows_lead_with_their_label() {
        let csv = format_labeled_csv("m,x", &[("bo".to_string(), vec![2.0])]);
        assert_eq!(csv, "m,x\nbo,2.000000e0\n");
    }

    #[test]
    fn empty_rows_yield_header_only() {
        assert_eq!(format_csv("h", &[]), "h\n");
        assert_eq!(format_labeled_csv("h", &[]), "h\n");
    }
}
