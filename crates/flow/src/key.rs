//! Content-hash cache keys.
//!
//! A node's [`CacheKey`] is a 128-bit FNV-1a digest over a canonical byte
//! serialization of everything that can change its output: a schema
//! version, the stage kind label, the node's parameters (in sorted key
//! order), its emit path (sibling render nodes often differ *only* in
//! which artifact they draw), the global run seed, the compute-precision
//! label, and the cache keys of its dependencies in dependency order.
//! Hashing dependency *keys*
//! rather than dependency *outputs* makes the key computable statically —
//! a warm cache answers "is anything upstream stale?" without running a
//! single node.
//!
//! FNV-1a is used (rather than `std::hash`) because its output is fixed by
//! the algorithm, not by the standard library release, so cache
//! directories stay valid across toolchain upgrades.

use std::collections::BTreeMap;
use std::fmt;

/// Bump when the key recipe or the artifact encoding changes shape;
/// invalidates every previously cached artifact.
const SCHEMA_VERSION: u64 = 2;

const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// A 128-bit content hash identifying one node's output.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CacheKey(u128);

impl CacheKey {
    /// The key as a 32-character lowercase hex string — used as the cache
    /// directory name.
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }
}

impl fmt::Debug for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CacheKey({})", self.hex())
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hex())
    }
}

/// Incremental FNV-1a-128 hasher with length-prefixed field framing, so
/// adjacent fields can never alias (`"ab","c"` vs `"a","bc"`).
pub struct KeyHasher {
    state: u128,
}

impl KeyHasher {
    /// Starts a hasher pre-seeded with the key schema version.
    pub fn new() -> Self {
        let mut h = KeyHasher { state: FNV_OFFSET };
        h.write_u64(SCHEMA_VERSION);
        h
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Hashes a raw integer (framed, little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Hashes a length-prefixed string field.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Hashes another key (e.g. a dependency's key).
    pub fn write_key(&mut self, key: CacheKey) {
        self.write_bytes(&key.0.to_le_bytes());
    }

    /// Finalizes the digest.
    pub fn finish(self) -> CacheKey {
        CacheKey(self.state)
    }
}

impl Default for KeyHasher {
    fn default() -> Self {
        Self::new()
    }
}

/// Computes a node's cache key from everything that determines its output.
///
/// `dep_keys` must be passed in the node's declared dependency order:
/// the same dependencies wired in a different order feed the node's
/// closure differently and must produce a different key.
pub fn node_key(
    kind: &str,
    params: &BTreeMap<String, String>,
    emit: Option<&str>,
    seed: u64,
    precision: &str,
    dep_keys: &[CacheKey],
) -> CacheKey {
    let mut h = KeyHasher::new();
    h.write_str(kind);
    h.write_u64(params.len() as u64);
    for (k, v) in params {
        h.write_str(k);
        h.write_str(v);
    }
    h.write_u64(emit.is_some() as u64);
    h.write_str(emit.unwrap_or(""));
    h.write_u64(seed);
    h.write_str(precision);
    h.write_u64(dep_keys.len() as u64);
    for &dep in dep_keys {
        h.write_key(dep);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn identical_inputs_give_identical_keys() {
        let p = params(&[("budget", "8"), ("network", "resnet50")]);
        let a = node_key("engine:bo", &p, None, 1, "f64", &[]);
        let b = node_key("engine:bo", &p, None, 1, "f64", &[]);
        assert_eq!(a, b);
        assert_eq!(a.hex().len(), 32);
    }

    #[test]
    fn every_ingredient_perturbs_the_key() {
        let p = params(&[("budget", "8")]);
        let base = node_key("engine:bo", &p, None, 1, "f64", &[]);
        assert_ne!(base, node_key("engine:gd", &p, None, 1, "f64", &[]));
        assert_ne!(
            base,
            node_key(
                "engine:bo",
                &params(&[("budget", "9")]),
                None,
                1,
                "f64",
                &[]
            )
        );
        assert_ne!(
            base,
            node_key("engine:bo", &params(&[]), None, 1, "f64", &[])
        );
        assert_ne!(base, node_key("engine:bo", &p, None, 2, "f64", &[]));
        assert_ne!(base, node_key("engine:bo", &p, None, 1, "f32", &[]));
        // Sibling render nodes may differ only in their emit path.
        assert_ne!(
            base,
            node_key("engine:bo", &p, Some("a.svg"), 1, "f64", &[])
        );
        assert_ne!(
            node_key("engine:bo", &p, Some("a.svg"), 1, "f64", &[]),
            node_key("engine:bo", &p, Some("b.svg"), 1, "f64", &[])
        );
        assert_ne!(base, node_key("engine:bo", &p, Some(""), 1, "f64", &[]));
        let dep = node_key("dataset", &params(&[]), None, 1, "f64", &[]);
        assert_ne!(base, node_key("engine:bo", &p, None, 1, "f64", &[dep]));
    }

    #[test]
    fn dep_order_and_upstream_changes_propagate() {
        let d1 = node_key("dataset", &params(&[("n", "60")]), None, 1, "f64", &[]);
        let d2 = node_key("train", &params(&[("dz", "4")]), None, 1, "f64", &[d1]);
        let fwd = node_key("csv", &params(&[]), None, 1, "f64", &[d1, d2]);
        let rev = node_key("csv", &params(&[]), None, 1, "f64", &[d2, d1]);
        assert_ne!(fwd, rev);

        // A changed upstream param ripples through transitively.
        let d1b = node_key("dataset", &params(&[("n", "61")]), None, 1, "f64", &[]);
        let d2b = node_key("train", &params(&[("dz", "4")]), None, 1, "f64", &[d1b]);
        assert_ne!(d2, d2b);
        assert_ne!(
            fwd,
            node_key("csv", &params(&[]), None, 1, "f64", &[d1b, d2b])
        );
    }

    #[test]
    fn field_framing_prevents_aliasing() {
        // Adjacent string fields must not concatenate.
        let a = node_key("csv", &params(&[("ab", "c")]), None, 1, "f64", &[]);
        let b = node_key("csv", &params(&[("a", "bc")]), None, 1, "f64", &[]);
        assert_ne!(a, b);
        let c = node_key("en", &params(&[("gine", "x")]), None, 1, "f64", &[]);
        let d = node_key("engine", &params(&[("", "x")]), None, 1, "f64", &[]);
        assert_ne!(c, d);
    }
}
