#![deny(missing_docs)]
//! Declarative experiment dataflow runtime with content-hashed artifact
//! caching.
//!
//! Every VAESA figure/ablation experiment is the same pipeline shape —
//! *dataset → train → search → render/CSV* — so instead of 16 hand-rolled
//! binaries, an experiment here is a [`FlowGraph`] of typed [`NodeSpec`]
//! stages whose edges carry [`Value`] artifacts. The [`FlowRunner`]:
//!
//! - **content-hashes** every node over `(stage kind, params, emit path,
//!   seed, precision, upstream keys)` ([`node_key`]) and persists completed
//!   outputs under `results/cache/flow/` ([`FlowCache`]), so re-running a
//!   pipeline after a plot tweak re-executes the render stage only;
//! - schedules **demand-driven**: a node runs only when its output is
//!   actually needed downstream and the cache can't supply it;
//! - runs independent ready nodes through the `vaesa-par` pool (nodes
//!   that publish shared observability series opt out via
//!   [`NodeSpec::exclusive`] and run serially in deterministic order);
//! - wraps every executed node in a `vaesa-obs` span (`flow/<id>`;
//!   cache materializations record `flow-cache/<id>` instead) and
//!   publishes `flow.cache.{hits,misses,refreshes}` counters plus a
//!   `flow.nodes` gauge into the run manifest;
//! - renders the graph as Graphviz DOT or mermaid
//!   ([`FlowGraph::dot`]/[`FlowGraph::mermaid`]).
//!
//! The cache root honors the `VAESA_FLOW_CACHE` environment variable
//! (default `results/cache/flow`); keys use FNV-1a-128, fixed by the
//! algorithm rather than the standard-library release, so a warm cache
//! survives toolchain upgrades. See `DESIGN.md` §2.11.
//!
//! # Examples
//!
//! ```
//! use vaesa_flow::{CachePolicy, FlowGraph, FlowRunner, NodeSpec, RunConfig, StageKind, Value};
//!
//! let graph = FlowGraph::new(vec![
//!     NodeSpec::new("dataset", StageKind::Dataset)
//!         .param("n", 4)
//!         .runs(|_| Ok(Value::floats([1.0, 2.0, 3.0, 4.0]))),
//!     NodeSpec::new("csv", StageKind::Csv)
//!         .dep("dataset")
//!         .emit("data.csv")
//!         .policy(CachePolicy::Never)
//!         .runs(|deps| {
//!             let rows: Vec<Vec<f64>> =
//!                 deps[0].to_floats().unwrap().into_iter().map(|v| vec![v]).collect();
//!             Ok(Value::Str(vaesa_flow::format_csv("x", &rows)))
//!         }),
//! ])
//! .unwrap();
//! let dir = std::env::temp_dir().join("vaesa-flow-doc");
//! let config = RunConfig {
//!     seed: 1,
//!     precision: "f64".to_string(),
//!     cache_root: dir.join("cache"),
//!     out_dir: dir.join("out"),
//! };
//! let report = FlowRunner::new(graph, config).run().unwrap();
//! assert_eq!(report.output("csv").unwrap().as_str().unwrap().lines().count(), 5);
//! ```

mod cache;
mod csv;
mod graph;
mod key;
mod runner;
mod value;

pub use cache::{default_cache_root, CacheEntry, FlowCache, CACHE_ROOT_ENV, DEFAULT_CACHE_ROOT};
pub use csv::{format_cell, format_csv, format_labeled_csv};
pub use graph::{CachePolicy, FlowGraph, NodeFn, NodeSpec, StageKind};
pub use key::{node_key, CacheKey, KeyHasher};
pub use runner::{
    precision_label, write_text, FlowReport, FlowRunner, NodeReport, NodeStatus, RunConfig,
};
pub use value::Value;
