//! The artifact value flowing along graph edges.
//!
//! A [`Value`] is a small JSON-like tree (unit, float, integer, string,
//! list, map) plus an in-memory-only variant ([`Value::Mem`]) for artifacts
//! that are expensive to serialize (trained models, labeled datasets).
//! Tree values encode to a deterministic, bit-exact binary form — floats
//! are stored as their IEEE-754 bit patterns, maps in sorted key order —
//! so a cached artifact decodes to exactly the value that produced it and
//! re-encoding a decoded value is byte-identical.

use std::any::Any;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A typed artifact carried along a graph edge.
#[derive(Clone)]
pub enum Value {
    /// No payload (stage ran for its side effects only).
    Unit,
    /// A double-precision float, preserved bit-exactly.
    F64(f64),
    /// A signed integer.
    Int(i64),
    /// A UTF-8 string (CSV text, SVG text, report text, ...).
    Str(String),
    /// An ordered sequence of values.
    List(Vec<Value>),
    /// A string-keyed map, ordered by key.
    Map(BTreeMap<String, Value>),
    /// An in-memory artifact that cannot be persisted (models, datasets).
    /// Nodes producing one should use [`CachePolicy::Stamp`].
    ///
    /// [`CachePolicy::Stamp`]: crate::CachePolicy::Stamp
    Mem(Arc<dyn Any + Send + Sync>),
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "Unit"),
            Value::F64(v) => write!(f, "F64({v})"),
            Value::Int(v) => write!(f, "Int({v})"),
            Value::Str(s) => write!(f, "Str({s:?})"),
            Value::List(items) => f.debug_list().entries(items).finish(),
            Value::Map(m) => f.debug_map().entries(m.iter()).finish(),
            Value::Mem(_) => write!(f, "Mem(..)"),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Unit, Value::Unit) => true,
            (Value::F64(a), Value::F64(b)) => a.to_bits() == b.to_bits(),
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::List(a), Value::List(b)) => a == b,
            (Value::Map(a), Value::Map(b)) => a == b,
            (Value::Mem(a), Value::Mem(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl Value {
    /// Wraps an in-memory artifact.
    pub fn mem<T: Any + Send + Sync>(value: T) -> Self {
        Value::Mem(Arc::new(value))
    }

    /// Downcasts an in-memory artifact to its concrete type.
    pub fn as_mem<T: Any + Send + Sync>(&self) -> Option<Arc<T>> {
        match self {
            Value::Mem(arc) => Arc::clone(arc).downcast::<T>().ok(),
            _ => None,
        }
    }

    /// The string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The float payload, if this is a [`Value::F64`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The integer payload, if this is a [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The list payload, if this is a [`Value::List`].
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(items) => Some(items),
            _ => None,
        }
    }

    /// The map payload, if this is a [`Value::Map`].
    pub fn as_map(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Looks up a map entry.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map().and_then(|m| m.get(key))
    }

    /// Builds a list of floats.
    pub fn floats(values: impl IntoIterator<Item = f64>) -> Self {
        Value::List(values.into_iter().map(Value::F64).collect())
    }

    /// Reads a list of floats back.
    pub fn to_floats(&self) -> Option<Vec<f64>> {
        self.as_list()?.iter().map(Value::as_f64).collect()
    }

    /// Builds a row-major table (list of float lists).
    pub fn table(rows: &[Vec<f64>]) -> Self {
        Value::List(
            rows.iter()
                .map(|r| Value::floats(r.iter().copied()))
                .collect(),
        )
    }

    /// Reads a row-major table back.
    pub fn to_table(&self) -> Option<Vec<Vec<f64>>> {
        self.as_list()?.iter().map(Value::to_floats).collect()
    }

    /// True when the value contains no [`Value::Mem`] node and can
    /// therefore be persisted.
    pub fn is_persistable(&self) -> bool {
        match self {
            Value::Mem(_) => false,
            Value::List(items) => items.iter().all(Value::is_persistable),
            Value::Map(m) => m.values().all(Value::is_persistable),
            _ => true,
        }
    }

    /// Encodes the value to its deterministic binary form.
    ///
    /// # Errors
    ///
    /// Returns an error naming the offending variant when the tree
    /// contains a [`Value::Mem`] node.
    pub fn encode(&self) -> Result<Vec<u8>, String> {
        let mut out = Vec::new();
        encode_into(self, &mut out)?;
        Ok(out)
    }

    /// Decodes a value previously produced by [`Value::encode`].
    ///
    /// # Errors
    ///
    /// Returns an error on truncated or malformed input, including
    /// trailing bytes after the root value.
    pub fn decode(bytes: &[u8]) -> Result<Self, String> {
        let mut cursor = 0usize;
        let value = decode_from(bytes, &mut cursor)?;
        if cursor != bytes.len() {
            return Err(format!(
                "trailing garbage: {} of {} bytes unread",
                bytes.len() - cursor,
                bytes.len()
            ));
        }
        Ok(value)
    }
}

const TAG_UNIT: u8 = 0;
const TAG_F64: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_LIST: u8 = 4;
const TAG_MAP: u8 = 5;

fn encode_into(value: &Value, out: &mut Vec<u8>) -> Result<(), String> {
    match value {
        Value::Unit => out.push(TAG_UNIT),
        Value::F64(v) => {
            out.push(TAG_F64);
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        Value::Int(v) => {
            out.push(TAG_INT);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            out.extend_from_slice(&(s.len() as u64).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::List(items) => {
            out.push(TAG_LIST);
            out.extend_from_slice(&(items.len() as u64).to_le_bytes());
            for item in items {
                encode_into(item, out)?;
            }
        }
        Value::Map(m) => {
            out.push(TAG_MAP);
            out.extend_from_slice(&(m.len() as u64).to_le_bytes());
            for (k, v) in m {
                out.extend_from_slice(&(k.len() as u64).to_le_bytes());
                out.extend_from_slice(k.as_bytes());
                encode_into(v, out)?;
            }
        }
        Value::Mem(_) => return Err("in-memory artifacts cannot be encoded".to_string()),
    }
    Ok(())
}

fn take<'a>(bytes: &'a [u8], cursor: &mut usize, n: usize) -> Result<&'a [u8], String> {
    let end = cursor
        .checked_add(n)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| format!("truncated value: need {n} bytes at offset {cursor}"))?;
    let slice = &bytes[*cursor..end];
    *cursor = end;
    Ok(slice)
}

fn take_u64(bytes: &[u8], cursor: &mut usize) -> Result<u64, String> {
    let raw = take(bytes, cursor, 8)?;
    Ok(u64::from_le_bytes(raw.try_into().expect("8 bytes")))
}

fn take_len(bytes: &[u8], cursor: &mut usize) -> Result<usize, String> {
    let n = take_u64(bytes, cursor)?;
    // A length can never exceed the remaining input (every element takes at
    // least one byte), which bounds allocations on corrupt input.
    if n > (bytes.len() - *cursor) as u64 {
        return Err(format!("corrupt length {n} at offset {cursor}"));
    }
    Ok(n as usize)
}

fn take_str(bytes: &[u8], cursor: &mut usize) -> Result<String, String> {
    let len = take_len(bytes, cursor)?;
    let raw = take(bytes, cursor, len)?;
    String::from_utf8(raw.to_vec()).map_err(|e| format!("invalid utf-8 string: {e}"))
}

fn decode_from(bytes: &[u8], cursor: &mut usize) -> Result<Value, String> {
    let tag = take(bytes, cursor, 1)?[0];
    match tag {
        TAG_UNIT => Ok(Value::Unit),
        TAG_F64 => {
            let raw = take(bytes, cursor, 8)?;
            Ok(Value::F64(f64::from_bits(u64::from_le_bytes(
                raw.try_into().expect("8 bytes"),
            ))))
        }
        TAG_INT => {
            let raw = take(bytes, cursor, 8)?;
            Ok(Value::Int(i64::from_le_bytes(
                raw.try_into().expect("8 bytes"),
            )))
        }
        TAG_STR => Ok(Value::Str(take_str(bytes, cursor)?)),
        TAG_LIST => {
            let len = take_len(bytes, cursor)?;
            let mut items = Vec::with_capacity(len);
            for _ in 0..len {
                items.push(decode_from(bytes, cursor)?);
            }
            Ok(Value::List(items))
        }
        TAG_MAP => {
            let len = take_len(bytes, cursor)?;
            let mut m = BTreeMap::new();
            for _ in 0..len {
                let key = take_str(bytes, cursor)?;
                let value = decode_from(bytes, cursor)?;
                m.insert(key, value);
            }
            Ok(Value::Map(m))
        }
        other => Err(format!("unknown value tag {other} at offset {cursor}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Value {
        let mut m = BTreeMap::new();
        m.insert(
            "rows".to_string(),
            Value::table(&[vec![1.0, -0.0], vec![f64::MIN_POSITIVE, 3e300]]),
        );
        m.insert("label".to_string(), Value::Str("vae_bo".to_string()));
        m.insert("n".to_string(), Value::Int(-7));
        m.insert("unit".to_string(), Value::Unit);
        Value::Map(m)
    }

    #[test]
    fn codec_round_trips_bit_exactly() {
        let v = sample();
        let bytes = v.encode().unwrap();
        let back = Value::decode(&bytes).unwrap();
        assert_eq!(v, back);
        // Re-encoding the decoded value is byte-identical.
        assert_eq!(back.encode().unwrap(), bytes);
    }

    #[test]
    fn negative_zero_and_nan_bits_survive() {
        let v = Value::List(vec![
            Value::F64(-0.0),
            Value::F64(f64::from_bits(0x7ff8_0000_0000_0001)),
        ]);
        let back = Value::decode(&v.encode().unwrap()).unwrap();
        let items = back.as_list().unwrap();
        assert_eq!(items[0].as_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(items[1].as_f64().unwrap().to_bits(), 0x7ff8_0000_0000_0001);
    }

    #[test]
    fn mem_values_refuse_to_encode() {
        let v = Value::List(vec![Value::mem(42usize)]);
        assert!(!v.is_persistable());
        assert!(v.encode().is_err());
        assert_eq!(
            v.as_list().unwrap()[0].as_mem::<usize>().map(|a| *a),
            Some(42)
        );
    }

    #[test]
    fn truncated_and_corrupt_input_is_rejected() {
        let bytes = sample().encode().unwrap();
        assert!(Value::decode(&bytes[..bytes.len() - 1]).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(Value::decode(&trailing).is_err());
        assert!(Value::decode(&[99]).is_err());
        // A declared length longer than the remaining input must not
        // allocate or loop.
        let mut huge = vec![TAG_LIST];
        huge.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(Value::decode(&huge).is_err());
    }

    #[test]
    fn table_helpers_round_trip() {
        let rows = vec![vec![1.5, 2.5], vec![3.5]];
        assert_eq!(Value::table(&rows).to_table().unwrap(), rows);
        assert_eq!(
            Value::floats([1.0, 2.0]).to_floats().unwrap(),
            vec![1.0, 2.0]
        );
        assert_eq!(Value::Unit.to_table(), None);
    }
}
